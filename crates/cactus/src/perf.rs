//! The Table 5 workload: Cactus's phase stream for the performance engine.
//!
//! Table 5 is weak scaling: each processor holds a fixed 80×80×80 or
//! 250×64×64 block. The per-point operation count is the linearized
//! system's measured [`crate::rhs::RHS_FLOPS_PER_POINT`] scaled by
//! [`BSSN_TERM_SCALE`] — the full ADM-BSSN right-hand side expands to
//! "thousands of terms" (§5), roughly 45× our twelve-field linearization —
//! so the stream carries production-Cactus operation counts while the
//! loop *structure* (one wide stencil sweep over 13 concurrent grid-
//! function streams, x innermost) matches the real code in this crate.

use crate::boundary::face_points;
use crate::grid::NFIELDS;
use crate::rhs::{CONCURRENT_STREAMS, RHS_FLOPS_PER_POINT};
use pvs_core::phase::{CommPattern, Phase, VectorizationInfo};
use pvs_memsim::bandwidth::AccessPattern;
use pvs_mpisim::cart::Cart3d;

/// Ratio of full ADM-BSSN RHS terms to our linearized twelve-field system.
pub const BSSN_TERM_SCALE: f64 = 45.0;

/// Flops per grid point per time step of the production solver (three ICN
/// iterations of the scaled RHS).
pub fn flops_per_point() -> f64 {
    3.0 * RHS_FLOPS_PER_POINT * BSSN_TERM_SCALE
}

/// Memory traffic per grid point per step: `NFIELDS` state fields read and
/// written per ICN iteration plus stencil-neighbour and temporary traffic.
pub const BYTES_PER_POINT: f64 = 3000.0;

/// Live vector temporaries of the BSSN source kernel — comfortably inside
/// the ES's 72 vector registers, far beyond the X1 SSP's 32 (the paper's
/// register-spilling discussion, §5.2).
pub const BSSN_LIVE_TEMPS: usize = 90;

/// Non-MADD operation mix overhead of the source kernel.
pub const BSSN_OP_OVERHEAD: f64 = 2.0;

/// ILP efficiency of the source kernel on superscalar cores ("relatively
/// low scalar performance … partially due to register spilling", §5.2).
pub const BSSN_ILP_EFFICIENCY: f64 = 0.25;

/// Which port of the application runs (the paper benchmarked different
/// code versions per machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CactusVariant {
    /// ES port: main loop vectorized, radiation boundaries **not**
    /// vectorized (the up-to-20%-of-runtime scalar hotspot).
    EarthSimulator,
    /// X1 port: hand-vectorized boundaries, but residual small routines
    /// still serialize (and pay the 32:1 MSP penalty).
    X1,
    /// Superscalar systems: cache-blocked via slice buffers; scalar code
    /// runs at native speed.
    Superscalar,
}

impl CactusVariant {
    /// The variant the paper ran on the named platform.
    pub fn for_machine(name: &str) -> Self {
        match name {
            "ES" => CactusVariant::EarthSimulator,
            "X1" | "X1-CAF" => CactusVariant::X1,
            _ => CactusVariant::Superscalar,
        }
    }
}

/// One Table 5 configuration (per-processor block, weak scaling).
#[derive(Debug, Clone, Copy)]
pub struct CactusWorkload {
    /// Per-processor block extent in x (the vectorized dimension).
    pub nx: usize,
    /// Per-processor block extent in y.
    pub ny: usize,
    /// Per-processor block extent in z.
    pub nz: usize,
    /// Processor count.
    pub procs: usize,
    /// Time steps modelled.
    pub steps: usize,
}

impl CactusWorkload {
    /// The small test case: 80³ per processor.
    pub fn small(procs: usize) -> Self {
        Self {
            nx: 80,
            ny: 80,
            nz: 80,
            procs,
            steps: 10,
        }
    }

    /// The large test case: 250×64×64 per processor (the odd shape the ES
    /// memory capacity forced, §5.2).
    pub fn large(procs: usize) -> Self {
        Self {
            nx: 250,
            ny: 64,
            nz: 64,
            procs,
            steps: 10,
        }
    }

    /// Points per processor.
    pub fn points(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// The phase stream for the given code variant.
    pub fn phases(&self, variant: CactusVariant) -> Vec<Phase> {
        let points = self.points();
        let outer = self.ny * self.nz * self.steps;
        // Whether the slice-buffer cache blocking applies (superscalar
        // only, and only effective on the cubic domain; §5.1 notes blocking
        // was disabled on the vector machines).
        let blocked_cube = variant == CactusVariant::Superscalar && self.nx == self.ny;
        let slice_bytes = (NFIELDS + 1) * self.nx * self.ny * 8;
        let (working_set, pattern) = if blocked_cube {
            (slice_bytes, AccessPattern::UnitStride)
        } else {
            (
                points * (NFIELDS + 1) * 8,
                AccessPattern::GhostZoneSweep {
                    interior_elems: self.nx,
                    elem_bytes: 8,
                    streams: CONCURRENT_STREAMS,
                },
            )
        };

        let mut main_vec = VectorizationInfo::full();
        main_vec.vector_op_overhead = BSSN_OP_OVERHEAD;
        main_vec.ilp_efficiency = BSSN_ILP_EFFICIENCY;
        main_vec.live_vector_temps = BSSN_LIVE_TEMPS;
        let main = Phase::loop_nest("ADM_BSSN_Sources", self.nx, outer)
            .flops_per_iter(flops_per_point())
            .bytes_per_iter(BYTES_PER_POINT)
            .pattern(pattern)
            .working_set(working_set)
            .vector(main_vec);

        // Radiation boundary enforcement on the six faces.
        let faces = face_points(self.nx, self.ny, self.nz);
        let bc_vec = match variant {
            CactusVariant::EarthSimulator => VectorizationInfo::scalar(),
            CactusVariant::X1 => {
                // Hand-coded vectorized boundaries (the port of §5.1).
                let mut v = VectorizationInfo::full();
                v.vector_op_overhead = BSSN_OP_OVERHEAD;
                v
            }
            CactusVariant::Superscalar => {
                let mut v = VectorizationInfo::full();
                v.ilp_efficiency = BSSN_ILP_EFFICIENCY;
                v
            }
        };
        let boundary =
            Phase::loop_nest("radiation_boundary", self.nx, faces / self.nx * self.steps)
                .flops_per_iter(flops_per_point() * 0.6)
                .bytes_per_iter(BYTES_PER_POINT * 0.6)
                .pattern(AccessPattern::UnitStride)
                .working_set(faces * NFIELDS * 8)
                .vector(bc_vec);

        // The residue of the profile (analysis thorns, gauge bookkeeping —
        // "the next most expensive routine … occupied only 4.5%"): scalar
        // on the vector machines.
        let other_vec = if variant == CactusVariant::Superscalar {
            let mut v = VectorizationInfo::full();
            v.ilp_efficiency = 0.5;
            v
        } else {
            VectorizationInfo::scalar()
        };
        let other = Phase::loop_nest("other_thorns", self.nx, outer)
            .flops_per_iter(flops_per_point() * 0.05)
            .bytes_per_iter(BYTES_PER_POINT * 0.05)
            .pattern(AccessPattern::UnitStride)
            .working_set(points * 2 * 8)
            .vector(other_vec);

        // Ghost-zone exchange: NFIELDS values per face point, every step.
        let cart = Cart3d::near_cubic(self.procs);
        let face_area = (self.nx * self.ny)
            .max(self.ny * self.nz)
            .max(self.nx * self.nz);
        let halo = Phase::comm(
            "ghost_exchange",
            CommPattern::Halo3d {
                px: cart.px,
                py: cart.py,
                pz: cart.pz,
                bytes_face: (face_area * NFIELDS * 8) as u64,
            },
        )
        .repetitions(self.steps * 3); // one per ICN iteration

        vec![main, boundary, other, halo]
    }
}

/// The kernels this crate registers with the static-analysis layer: both
/// Table 5 block shapes (80³ and the ES-memory-forced 250×64×64) on both
/// vector machines, each with that machine's own port variant. The two
/// shapes are the paper's own AVL discussion: x-extent 80 vs 250 is what
/// drives the reported AVL difference.
pub fn kernel_descriptors() -> Vec<pvs_core::kernel::KernelDescriptor> {
    use pvs_core::kernel::{descriptors_from_phases, MachineKind};
    let mut out = Vec::new();
    for (tag, w) in [
        ("small", CactusWorkload::small(64)),
        ("large", CactusWorkload::large(64)),
    ] {
        for machine in [MachineKind::Es, MachineKind::X1Msp] {
            let variant = CactusVariant::for_machine(machine.name());
            let mut ds = descriptors_from_phases(
                "cactus",
                "crates/cactus/src/perf.rs",
                machine,
                &w.phases(variant),
            );
            for d in &mut ds {
                d.kernel = format!("{tag}/{}", d.kernel);
            }
            out.extend(ds);
        }
    }
    out
}

/// The processor counts of Table 5.
pub fn table5_procs() -> Vec<usize> {
    vec![16, 64, 256, 1024]
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvs_core::engine::Engine;
    use pvs_core::platforms;
    use pvs_core::report::PerfReport;

    fn run(machine: pvs_core::machine::Machine, w: &CactusWorkload) -> PerfReport {
        let variant = CactusVariant::for_machine(machine.name);
        Engine::new(machine).run(&w.phases(variant), w.procs)
    }

    #[test]
    fn registered_kernels_static_dynamic_agree() {
        for d in kernel_descriptors() {
            let s = d.static_prediction();
            let m = d.dynamic_metrics();
            if s.avl > 0.0 {
                assert!(
                    (m.avl() - s.avl).abs() / s.avl < 0.05,
                    "{}: static AVL {} vs dynamic {}",
                    d.kernel,
                    s.avl,
                    m.avl()
                );
            }
            assert!((m.vor() - s.vor).abs() < 0.05, "{}", d.kernel);
        }
    }

    #[test]
    fn es_large_case_more_efficient_than_small() {
        // Paper: 34% of peak on 250x64x64 vs 17-18% on 80³ (AVL 248 vs 92).
        let large = run(platforms::earth_simulator(), &CactusWorkload::large(16));
        let small = run(platforms::earth_simulator(), &CactusWorkload::small(16));
        assert!(
            large.pct_peak > 1.3 * small.pct_peak,
            "large {}% vs small {}%",
            large.pct_peak,
            small.pct_peak
        );
        assert!(
            (20.0..45.0).contains(&large.pct_peak),
            "ES large {}%",
            large.pct_peak
        );
        assert!(
            (10.0..25.0).contains(&small.pct_peak),
            "ES small {}%",
            small.pct_peak
        );
    }

    #[test]
    fn es_avl_tracks_x_dimension() {
        let large = run(platforms::earth_simulator(), &CactusWorkload::large(16));
        let small = run(platforms::earth_simulator(), &CactusWorkload::small(16));
        assert!(
            large.avl().expect("vector") > 200.0,
            "AVL {}",
            large.avl().unwrap()
        );
        assert!(small.avl().expect("vector") < 100.0);
    }

    #[test]
    fn x1_far_below_es() {
        // Paper: X1 3-6% of peak vs ES 17-35%.
        let es = run(platforms::earth_simulator(), &CactusWorkload::large(16));
        let x1 = run(platforms::x1(), &CactusWorkload::large(16));
        assert!(
            x1.pct_peak < 0.5 * es.pct_peak,
            "X1 {}% must be far below ES {}%",
            x1.pct_peak,
            es.pct_peak
        );
    }

    #[test]
    fn es_boundary_cost_is_significant_unvectorized() {
        // Paper: unvectorized radiation boundaries were up to 20% of ES
        // runtime vs <5% on superscalar.
        let es = run(platforms::earth_simulator(), &CactusWorkload::small(16));
        let p3 = run(platforms::power3(), &CactusWorkload::small(16));
        let es_bc = es.phase_fraction("radiation_boundary");
        let p3_bc = p3.phase_fraction("radiation_boundary");
        assert!(
            (0.08..0.35).contains(&es_bc),
            "ES boundary fraction {es_bc}"
        );
        assert!(p3_bc < 0.08, "Power3 boundary fraction {p3_bc}");
    }

    #[test]
    fn power3_collapses_on_large_case() {
        // Paper: 0.21-0.31 Gflops/P small vs 0.06-0.10 large (prefetch
        // streams disengaged by the 13-array ghost-zone sweep).
        let small = run(platforms::power3(), &CactusWorkload::small(16));
        let large = run(platforms::power3(), &CactusWorkload::large(16));
        assert!(
            large.gflops_per_p < 0.6 * small.gflops_per_p,
            "large {} must collapse vs small {}",
            large.gflops_per_p,
            small.gflops_per_p
        );
    }

    #[test]
    fn superscalar_ordering_small_case() {
        // Paper small case raw Gflops/P: Altix > Power4 > Power3.
        let p3 = run(platforms::power3(), &CactusWorkload::small(16)).gflops_per_p;
        let p4 = run(platforms::power4(), &CactusWorkload::small(16)).gflops_per_p;
        let altix = run(platforms::altix(), &CactusWorkload::small(16)).gflops_per_p;
        assert!(
            altix > p4 && p4 > p3,
            "Altix {altix}, Power4 {p4}, Power3 {p3}"
        );
    }

    #[test]
    fn weak_scaling_is_flat_on_es() {
        // Paper: ES sustains 2.7 Gflops/P from P=16 to P=1024.
        let lo = run(platforms::earth_simulator(), &CactusWorkload::large(16));
        let hi = run(platforms::earth_simulator(), &CactusWorkload::large(256));
        let drop = 1.0 - hi.gflops_per_p / lo.gflops_per_p;
        assert!(drop < 0.15, "weak scaling drop {drop}");
    }
}
