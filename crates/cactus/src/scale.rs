//! Weak-scaling communication kernel for Cactus on both mpisim runtimes.
//!
//! Cactus exchanges six ghost faces over a 3D processor grid each
//! evolution step ([`crate::halo`]) and closes the step with a global
//! constraint-norm reduction. The schedule is fixed — no op depends on
//! received data — so the v2 form reuses [`ScriptProgram`] directly:
//! the same op list a [`pvs_mpisim::Comm`] closure executes, replayed by the
//! event-driven scheduler. Received faces and the reduced norm are
//! folded into a checksum by shared helpers so both runtimes produce
//! comparable values.

use pvs_mpisim::cart::Cart3d;
use pvs_mpisim::event::{EventSim, Op, Reply, ScriptProgram, SimStats};
use pvs_mpisim::CommStats;

/// Doubles per ghost face.
pub const FACE: usize = 16;

const TAG_FACE_BASE: u64 = 0x20;

/// The face rank `rank` ships in direction `dir` (0..6).
fn face(rank: usize, dir: usize) -> Vec<f64> {
    (0..FACE)
        .map(|i| {
            let base = ((rank * 167 + dir * 29 + i) % 1009) as f64 * 1e-3;
            if i == 0 {
                base + [1e16, 1.0, -1e16][rank % 3]
            } else {
                base
            }
        })
        .collect()
}

/// Local contribution to the constraint norm (data-independent).
fn residual(rank: usize) -> f64 {
    (rank % 5) as f64 * 0.125 + 1.0
}

/// Fold the six received faces and the reduced norm into the kernel's
/// output vector `[checksum, norm]` — shared by both runtimes.
fn fold_output(received: &[Vec<f64>], norm: f64) -> Vec<f64> {
    let checksum = received.iter().fold(0.0, |acc, f| {
        f.iter()
            .enumerate()
            .fold(acc, |a, (i, x)| a + x * (i % 5 + 1) as f64)
    });
    vec![checksum, norm]
}

/// The fixed op schedule for one rank: for each axis, a ring shift in
/// the plus direction then the minus direction, then the norm reduce.
fn schedule(rank: usize, cart: &Cart3d) -> Vec<Op> {
    let nbrs = cart.neighbors6(rank); // [+x, -x, +y, -y, +z, -z]
    let mut ops = Vec::with_capacity(13);
    for axis in 0..3 {
        let plus = nbrs[2 * axis];
        let minus = nbrs[2 * axis + 1];
        let tag_p = TAG_FACE_BASE + 2 * axis as u64;
        let tag_m = TAG_FACE_BASE + 2 * axis as u64 + 1;
        // Shift in +axis: send to plus, receive from minus.
        ops.push(Op::Send {
            dst: plus,
            tag: tag_p,
            data: face(rank, 2 * axis),
        });
        ops.push(Op::Recv {
            src: minus,
            tag: tag_p,
        });
        // Shift in -axis.
        ops.push(Op::Send {
            dst: minus,
            tag: tag_m,
            data: face(rank, 2 * axis + 1),
        });
        ops.push(Op::Recv { src: plus, tag: tag_m });
    }
    ops.push(Op::AllreduceMaxScalar { x: residual(rank) });
    ops
}

/// Run the kernel on the thread-backed runtime.
pub fn run_scale_v1(p: usize) -> Vec<(Vec<f64>, CommStats)> {
    let cart = Cart3d::near_cubic(p);
    pvs_mpisim::run(cart.size(), move |mut comm| {
        let rank = comm.rank();
        let mut received = Vec::with_capacity(6);
        // Execute exactly the ScriptProgram schedule through Comm.
        for op in schedule(rank, &cart) {
            match op {
                Op::Send { dst, tag, data } => comm.send(dst, tag, data),
                Op::Recv { src, tag } => received.push(comm.recv(src, tag)),
                Op::AllreduceMaxScalar { x } => {
                    let norm = comm.allreduce_max_scalar(x);
                    let out = fold_output(&received, norm);
                    return (out, comm.stats());
                }
                other => unreachable!("not in the Cactus schedule: {other:?}"),
            }
        }
        unreachable!("schedule always ends in the norm reduce")
    })
}

/// Run the kernel on the event-driven runtime.
pub fn run_scale_v2(p: usize, threads: usize) -> (Vec<(Vec<f64>, CommStats)>, SimStats) {
    let cart = Cart3d::near_cubic(p);
    let report = EventSim::new(cart.size())
        .threads(threads)
        .run(|rank, _| ScriptProgram::new(schedule(rank, &cart)));
    let sim = report.sim;
    let per_rank = report
        .outcomes
        .into_iter()
        .zip(report.comm_stats)
        .map(|(o, stats)| {
            let replies = o.value().expect("healthy run");
            let mut received = Vec::with_capacity(6);
            let mut norm = f64::NAN;
            for reply in replies {
                match reply {
                    Reply::Sent(Ok(())) => {}
                    Reply::Received(Ok(data)) => received.push(data.clone()),
                    Reply::MaxReduced(Ok(m)) => norm = *m,
                    other => unreachable!("not in the Cactus schedule: {other:?}"),
                }
            }
            (fold_output(&received, norm), stats.expect("healthy rank"))
        })
        .collect();
    (per_rank, sim)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v2_face_exchange_matches_v1_bitwise() {
        for p in [1usize, 2, 4, 16] {
            let v1 = run_scale_v1(p);
            let (v2, sim) = run_scale_v2(p, 2);
            assert_eq!(sim.ranks as usize, v1.len());
            for (rank, ((a, sa), (b, sb))) in v1.iter().zip(&v2).enumerate() {
                assert_eq!(
                    a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    b.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    "p={p} rank={rank}"
                );
                assert_eq!(sa, sb, "traffic p={p} rank={rank}");
            }
        }
    }

    #[test]
    fn norm_is_global_max_of_residuals() {
        let (v2, _) = run_scale_v2(8, 2);
        let expected = (0..v2.len()).map(residual).fold(f64::MIN, f64::max);
        for (v, _) in &v2 {
            assert_eq!(v[1], expected);
        }
    }
}
