//! # pvs-cactus — the astrophysics application
//!
//! A from-scratch stand-in for the Cactus ADM-BSSN general-relativity
//! solver evaluated in the paper: Einstein's equations as an initial-value
//! problem on a regular 3D grid, solved with the method of finite
//! differences and evolved with the iterative Crank–Nicholson scheme the
//! paper names (§5).
//!
//! **Substitution note** (see DESIGN.md): the full nonlinear BSSN system is
//! ~84 000 lines with thousands of RHS terms; we evolve the *linearized*
//! ADM equations — metric perturbation `h_ij` and extrinsic curvature
//! `k_ij`, twelve coupled fields — which exercise the identical
//! computational structure: a wide stencil loop over many simultaneously
//! swept grid functions (the register-pressure and prefetch-stream
//! behaviour §5.2 analyses), ghost-zone exchanges, radiation boundary
//! conditions (the unvectorized hotspot of the ES port), and constraint
//! monitoring. Gravitational plane waves propagate with the correct speed
//! and the linearized Hamiltonian/momentum constraints are preserved —
//! the physics tests verify both.
//!
//! * [`grid`]: multi-field 3D grid with ghost zones;
//! * [`rhs`]: the evolution equations `∂t h = −2k`, `∂t k = −½∇²h`;
//! * [`icn`]: the iterative Crank–Nicholson integrator;
//! * [`boundary`]: periodic and Sommerfeld (radiation) boundaries;
//! * [`solver`]: the serial driver with constraint diagnostics;
//! * [`halo`]: the block-decomposed distributed solver;
//! * [`perf`]: the Table 5 workload (80³ and 250×64×64 per processor,
//!   weak scaling).
//!
//! ## Example
//!
//! ```
//! use pvs_cactus::solver::{tt_plane_wave, CactusConfig, CactusSim};
//!
//! let n = 12;
//! let mut sim = CactusSim::from_fields(CactusConfig::periodic_cube(n), |_, _, z| {
//!     tt_plane_wave(z, n, 0.01)
//! });
//! sim.run(8);
//! assert!(sim.constraint_violation() < 1e-10);
//! ```

// Index loops mirror the Fortran-style kernels they reproduce (multi-field stencil loops).
#![allow(clippy::needless_range_loop)]

pub mod boundary;
pub mod grid;
pub mod halo;
pub mod icn;
pub mod perf;
pub mod scale;
pub mod rhs;
pub mod solver;

pub use grid::Grid3;
pub use solver::{CactusConfig, CactusSim};
