//! The evolution equations (linearized ADM) and constraint diagnostics.
//!
//! In the weak-field limit with geodesic slicing the ADM equations reduce
//! to `∂t h_ij = −2 k_ij` and `∂t k_ij = −½ ∇² h_ij` (harmonic-type gauge),
//! whose plane-wave solutions propagate at the speed of light — the
//! gravitational waves of the paper's Fig. 5 scenario. The single RHS loop
//! sweeps all twelve grid functions at once, reproducing the
//! register-pressure / prefetch-stream structure §5.2 analyses.

use crate::grid::{h, k, Grid3, NFIELDS};

/// Second-order 7-point Laplacian of field `f` at an interior point, for
/// grid spacing `dx`.
#[inline]
pub fn laplacian(g: &Grid3, f: usize, x: isize, y: isize, z: isize, dx: f64) -> f64 {
    let c = g.get(f, x, y, z);
    (g.get(f, x + 1, y, z)
        + g.get(f, x - 1, y, z)
        + g.get(f, x, y + 1, z)
        + g.get(f, x, y - 1, z)
        + g.get(f, x, y, z + 1)
        + g.get(f, x, y, z - 1)
        - 6.0 * c)
        / (dx * dx)
}

/// Evaluate the RHS of all fields into `out` (same geometry as `state`).
/// Ghost zones of `state` must be current.
pub fn evaluate(state: &Grid3, out: &mut Grid3, dx: f64) {
    debug_assert_eq!(state.interior_points(), out.interior_points());
    for z in 0..state.nz as isize {
        for y in 0..state.ny as isize {
            for x in 0..state.nx as isize {
                for c in 0..6 {
                    // ∂t h_ij = −2 k_ij
                    out.set(h(c), x, y, z, -2.0 * state.get(k(c), x, y, z));
                    // ∂t k_ij = −½ ∇² h_ij
                    out.set(k(c), x, y, z, -0.5 * laplacian(state, h(c), x, y, z, dx));
                }
            }
        }
    }
}

/// Override the RHS at the outermost interior layer with the Sommerfeld
/// outgoing-advection condition `∂t f = −(n̂·∇)f` (unit wave speed): waves
/// reaching a face keep moving out instead of reflecting. This is the
/// radiation-boundary enforcement whose (lack of) vectorization drives the
/// paper's §5 analysis.
pub fn apply_sommerfeld_rhs(state: &Grid3, out: &mut Grid3, dx: f64) {
    let (nx, ny, nz) = (state.nx as isize, state.ny as isize, state.nz as isize);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                // Outward normals of the faces this point lies on.
                let mut n = (0i32, 0i32, 0i32);
                if x == 0 {
                    n.0 = -1;
                } else if x == nx - 1 {
                    n.0 = 1;
                }
                if y == 0 {
                    n.1 = -1;
                } else if y == ny - 1 {
                    n.1 = 1;
                }
                if z == 0 {
                    n.2 = -1;
                } else if z == nz - 1 {
                    n.2 = 1;
                }
                if n == (0, 0, 0) {
                    continue;
                }
                for f in 0..NFIELDS {
                    // One-sided (inward-biased) normal derivative.
                    let mut dtf = 0.0;
                    if n.0 != 0 {
                        let inward = x - n.0 as isize;
                        dtf -= (state.get(f, x, y, z) - state.get(f, inward, y, z)) / dx;
                    }
                    if n.1 != 0 {
                        let inward = y - n.1 as isize;
                        dtf -= (state.get(f, x, y, z) - state.get(f, x, inward, z)) / dx;
                    }
                    if n.2 != 0 {
                        let inward = z - n.2 as isize;
                        dtf -= (state.get(f, x, y, z) - state.get(f, x, y, inward)) / dx;
                    }
                    out.set(f, x, y, z, dtf);
                }
            }
        }
    }
}

/// Linearized Hamiltonian constraint `H = ∂i∂j h_ij − ∇²(tr h)` at an
/// interior point (second-order central differences).
pub fn hamiltonian_constraint(g: &Grid3, x: isize, y: isize, z: isize, dx: f64) -> f64 {
    let dxx = |f: usize| {
        (g.get(f, x + 1, y, z) - 2.0 * g.get(f, x, y, z) + g.get(f, x - 1, y, z)) / (dx * dx)
    };
    let dyy = |f: usize| {
        (g.get(f, x, y + 1, z) - 2.0 * g.get(f, x, y, z) + g.get(f, x, y - 1, z)) / (dx * dx)
    };
    let dzz = |f: usize| {
        (g.get(f, x, y, z + 1) - 2.0 * g.get(f, x, y, z) + g.get(f, x, y, z - 1)) / (dx * dx)
    };
    let dxy = |f: usize| {
        (g.get(f, x + 1, y + 1, z) - g.get(f, x + 1, y - 1, z) - g.get(f, x - 1, y + 1, z)
            + g.get(f, x - 1, y - 1, z))
            / (4.0 * dx * dx)
    };
    let dxz = |f: usize| {
        (g.get(f, x + 1, y, z + 1) - g.get(f, x + 1, y, z - 1) - g.get(f, x - 1, y, z + 1)
            + g.get(f, x - 1, y, z - 1))
            / (4.0 * dx * dx)
    };
    let dyz = |f: usize| {
        (g.get(f, x, y + 1, z + 1) - g.get(f, x, y + 1, z - 1) - g.get(f, x, y - 1, z + 1)
            + g.get(f, x, y - 1, z - 1))
            / (4.0 * dx * dx)
    };
    // ∂i∂j h_ij over symmetric components (xx,xy,xz,yy,yz,zz).
    let didj =
        dxx(h(0)) + 2.0 * dxy(h(1)) + 2.0 * dxz(h(2)) + dyy(h(3)) + 2.0 * dyz(h(4)) + dzz(h(5));
    let trace = |f0: usize, f3: usize, f5: usize| {
        dxx(f0) + dyy(f0) + dzz(f0) + dxx(f3) + dyy(f3) + dzz(f3) + dxx(f5) + dyy(f5) + dzz(f5)
    };
    didj - trace(h(0), h(3), h(5))
}

/// Linearized momentum constraint `M_x = ∂j k_xj − ∂x (tr k)`.
pub fn momentum_constraint_x(g: &Grid3, x: isize, y: isize, z: isize, dx: f64) -> f64 {
    let d = |f: usize, ax: usize| -> f64 {
        match ax {
            0 => (g.get(f, x + 1, y, z) - g.get(f, x - 1, y, z)) / (2.0 * dx),
            1 => (g.get(f, x, y + 1, z) - g.get(f, x, y - 1, z)) / (2.0 * dx),
            _ => (g.get(f, x, y, z + 1) - g.get(f, x, y, z - 1)) / (2.0 * dx),
        }
    };
    let div = d(k(0), 0) + d(k(1), 1) + d(k(2), 2);
    let trk_x = d(k(0), 0) + d(k(3), 0) + d(k(5), 0);
    div - trk_x
}

/// RMS of the Hamiltonian constraint over the interior.
pub fn constraint_rms(g: &Grid3, dx: f64) -> f64 {
    let mut s = 0.0;
    let mut n = 0usize;
    for z in 0..g.nz as isize {
        for y in 0..g.ny as isize {
            for x in 0..g.nx as isize {
                let c = hamiltonian_constraint(g, x, y, z, dx);
                s += c * c;
                n += 1;
            }
        }
    }
    (s / n as f64).sqrt()
}

/// Flops per interior grid point of one [`evaluate`] call, counted from the
/// loop body (6 copies at 1 op + 6 Laplacians at ~9 ops). Used by the
/// performance workload as the linearized system's baseline; DESIGN.md
/// documents the scaling to the full BSSN operation count.
pub const RHS_FLOPS_PER_POINT: f64 = 66.0;

/// Distinct grid functions the RHS loop streams concurrently (12 reads +
/// 12 writes treated as 12 + 1 write-combine streams — what the prefetch
/// trackers must cover).
pub const CONCURRENT_STREAMS: usize = NFIELDS + 1;

#[cfg(test)]
mod tests {
    use super::*;

    fn wave_grid(n: usize, amp: f64) -> (Grid3, f64) {
        // TT plane wave along z: h_xx = −h_yy = A cos(k z), at t = 0 with
        // k_xx = −k_yy = (A κ / 2) sin(κ z) so that it propagates in +z.
        let mut g = Grid3::new(n, n, n, 1);
        let dx = 1.0;
        let kappa = 2.0 * std::f64::consts::PI / n as f64;
        for z in 0..n as isize {
            for y in 0..n as isize {
                for x in 0..n as isize {
                    let phase = kappa * z as f64;
                    g.set(h(0), x, y, z, amp * phase.cos());
                    g.set(h(3), x, y, z, -amp * phase.cos());
                    g.set(k(0), x, y, z, -amp * kappa / 2.0 * phase.sin());
                    g.set(k(3), x, y, z, amp * kappa / 2.0 * phase.sin());
                }
            }
        }
        g.fill_periodic_ghosts();
        (g, dx)
    }

    #[test]
    fn laplacian_of_constant_is_zero() {
        let mut g = Grid3::new(4, 4, 4, 1);
        for f in 0..NFIELDS {
            for z in 0..4 {
                for y in 0..4 {
                    for x in 0..4 {
                        g.set(f, x, y, z, 2.5);
                    }
                }
            }
        }
        g.fill_periodic_ghosts();
        assert!(laplacian(&g, 0, 1, 1, 1, 1.0).abs() < 1e-14);
    }

    #[test]
    fn laplacian_of_fourier_mode_matches_symbol() {
        let n = 16;
        let mut g = Grid3::new(n, n, n, 1);
        let kap = 2.0 * std::f64::consts::PI / n as f64;
        for z in 0..n as isize {
            for y in 0..n as isize {
                for x in 0..n as isize {
                    g.set(0, x, y, z, (kap * x as f64).sin());
                }
            }
        }
        g.fill_periodic_ghosts();
        // Discrete symbol: -(2 - 2 cos κ)/dx² = -4 sin²(κ/2).
        let symbol = -4.0 * (kap / 2.0).sin().powi(2);
        for x in 0..n as isize {
            let expect = symbol * (kap * x as f64).sin();
            let got = laplacian(&g, 0, x, 3, 5, 1.0);
            assert!((got - expect).abs() < 1e-12, "x={x}");
        }
    }

    #[test]
    fn rhs_couples_h_and_k() {
        let (g, dx) = wave_grid(8, 0.01);
        let mut out = Grid3::new(8, 8, 8, 1);
        evaluate(&g, &mut out, dx);
        // ∂t h_xx = −2 k_xx must be nonzero where k_xx is.
        let z = 2isize;
        let expect = -2.0 * g.get(k(0), 1, 1, z);
        assert!((out.get(h(0), 1, 1, z) - expect).abs() < 1e-14);
        // ∂t k_xx = −½ ∇² h_xx.
        let expect_k = -0.5 * laplacian(&g, h(0), 1, 1, z, dx);
        assert!((out.get(k(0), 1, 1, z) - expect_k).abs() < 1e-14);
    }

    #[test]
    fn tt_wave_satisfies_constraints() {
        let (g, dx) = wave_grid(16, 0.01);
        assert!(constraint_rms(&g, dx) < 1e-12, "TT wave is constraint-free");
        // Momentum constraint too.
        let m = momentum_constraint_x(&g, 5, 5, 5, dx);
        assert!(m.abs() < 1e-13);
    }

    #[test]
    fn random_data_violates_constraints() {
        let mut g = Grid3::new(8, 8, 8, 1);
        for z in 0..8 {
            for y in 0..8 {
                for x in 0..8 {
                    let v = ((x * 31 + y * 17 + z * 7) % 13) as f64 / 13.0;
                    g.set(h(0), x, y, z, v);
                }
            }
        }
        g.fill_periodic_ghosts();
        assert!(
            constraint_rms(&g, 1.0) > 1e-3,
            "generic data is constrained-violating"
        );
    }
}
