//! Multi-field 3D grids with ghost zones.

/// Number of evolved grid functions: the six metric perturbations `h_ij`
/// followed by the six extrinsic-curvature components `k_ij` (symmetric
/// index order xx, xy, xz, yy, yz, zz).
pub const NFIELDS: usize = 12;

/// Index of `h_ij` component `c` (0..6).
pub const fn h(c: usize) -> usize {
    c
}

/// Index of `k_ij` component `c` (0..6).
pub const fn k(c: usize) -> usize {
    6 + c
}

/// A block of `NFIELDS` grid functions on an `nx × ny × nz` interior with
/// `ghost` ghost layers on every face.
#[derive(Debug, Clone)]
pub struct Grid3 {
    /// Interior extent in x.
    pub nx: usize,
    /// Interior extent in y.
    pub ny: usize,
    /// Interior extent in z.
    pub nz: usize,
    /// Ghost layers per face.
    pub ghost: usize,
    fields: Vec<Vec<f64>>,
    wx: usize,
    wy: usize,
}

impl Grid3 {
    /// Allocate a zeroed grid.
    pub fn new(nx: usize, ny: usize, nz: usize, ghost: usize) -> Self {
        let wx = nx + 2 * ghost;
        let wy = ny + 2 * ghost;
        let wz = nz + 2 * ghost;
        Self {
            nx,
            ny,
            nz,
            ghost,
            fields: vec![vec![0.0; wx * wy * wz]; NFIELDS],
            wx,
            wy,
        }
    }

    /// Storage index of (possibly ghost) coordinates; interior runs
    /// `0..n`, ghosts use negative / `>= n` values.
    #[inline]
    pub fn idx(&self, x: isize, y: isize, z: isize) -> usize {
        let g = self.ghost as isize;
        debug_assert!(x >= -g && (x as i64) < (self.nx + self.ghost) as i64);
        (((z + g) as usize) * self.wy + ((y + g) as usize)) * self.wx + ((x + g) as usize)
    }

    /// Read field `f` at coordinates.
    #[inline]
    pub fn get(&self, f: usize, x: isize, y: isize, z: isize) -> f64 {
        self.fields[f][self.idx(x, y, z)]
    }

    /// Write field `f` at coordinates.
    #[inline]
    pub fn set(&mut self, f: usize, x: isize, y: isize, z: isize, v: f64) {
        let i = self.idx(x, y, z);
        self.fields[f][i] = v;
    }

    /// Immutable access to a whole field plane.
    pub fn field(&self, f: usize) -> &[f64] {
        &self.fields[f]
    }

    /// Mutable access to a whole field plane.
    pub fn field_mut(&mut self, f: usize) -> &mut [f64] {
        &mut self.fields[f]
    }

    /// Interior point count.
    pub fn interior_points(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Apply `op(f, x, y, z)` over every interior point of every field.
    pub fn for_interior(&self, mut op: impl FnMut(usize, usize, usize)) {
        for z in 0..self.nz {
            for y in 0..self.ny {
                for x in 0..self.nx {
                    op(x, y, z);
                }
            }
        }
    }

    /// Fill ghost zones of every field periodically from the interior.
    pub fn fill_periodic_ghosts(&mut self) {
        let g = self.ghost as isize;
        let (nx, ny, nz) = (self.nx as isize, self.ny as isize, self.nz as isize);
        for f in 0..NFIELDS {
            // Collect writes first to appease the borrow checker cheaply:
            // ghost count is small relative to the interior.
            let mut writes = Vec::new();
            for z in -g..nz + g {
                for y in -g..ny + g {
                    for x in -g..nx + g {
                        let interior =
                            (0..nx).contains(&x) && (0..ny).contains(&y) && (0..nz).contains(&z);
                        if interior {
                            continue;
                        }
                        let sx = x.rem_euclid(nx);
                        let sy = y.rem_euclid(ny);
                        let sz = z.rem_euclid(nz);
                        writes.push((self.idx(x, y, z), self.get(f, sx, sy, sz)));
                    }
                }
            }
            for (i, v) in writes {
                self.fields[f][i] = v;
            }
        }
    }

    /// Max |value| over the interior of field `f`.
    pub fn max_abs(&self, f: usize) -> f64 {
        let mut m: f64 = 0.0;
        for z in 0..self.nz as isize {
            for y in 0..self.ny as isize {
                for x in 0..self.nx as isize {
                    m = m.max(self.get(f, x, y, z).abs());
                }
            }
        }
        m
    }

    /// L2 norm over the interior of field `f`.
    pub fn l2(&self, f: usize) -> f64 {
        let mut s = 0.0;
        for z in 0..self.nz as isize {
            for y in 0..self.ny as isize {
                for x in 0..self.nx as isize {
                    let v = self.get(f, x, y, z);
                    s += v * v;
                }
            }
        }
        (s / self.interior_points() as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut g = Grid3::new(4, 5, 6, 1);
        g.set(3, 2, 4, 5, 7.5);
        assert_eq!(g.get(3, 2, 4, 5), 7.5);
        assert_eq!(g.get(3, 0, 0, 0), 0.0);
    }

    #[test]
    fn ghost_coordinates_are_addressable() {
        let mut g = Grid3::new(4, 4, 4, 2);
        g.set(0, -2, -1, 5, 1.0);
        assert_eq!(g.get(0, -2, -1, 5), 1.0);
    }

    #[test]
    fn periodic_fill_wraps() {
        let mut g = Grid3::new(4, 4, 4, 1);
        g.set(2, 0, 1, 2, 9.0);
        g.fill_periodic_ghosts();
        assert_eq!(g.get(2, 4, 1, 2), 9.0, "+x ghost mirrors x=0");
        g.set(2, 3, 1, 2, 4.0);
        g.fill_periodic_ghosts();
        assert_eq!(g.get(2, -1, 1, 2), 4.0, "-x ghost mirrors x=nx-1");
    }

    #[test]
    fn norms() {
        let mut g = Grid3::new(2, 2, 2, 1);
        for z in 0..2 {
            for y in 0..2 {
                for x in 0..2 {
                    g.set(0, x, y, z, 3.0);
                }
            }
        }
        assert_eq!(g.max_abs(0), 3.0);
        assert!((g.l2(0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn field_indices() {
        assert_eq!(h(0), 0);
        assert_eq!(k(0), 6);
        assert_eq!(k(5), 11);
    }
}
