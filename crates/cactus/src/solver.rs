//! The serial Cactus-style simulation driver.

use crate::boundary::{apply, BoundaryKind};
use crate::grid::{h, k, Grid3};
use crate::icn::icn_step;
use crate::rhs::{constraint_rms, evaluate};

/// Simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct CactusConfig {
    /// Grid extent in x.
    pub nx: usize,
    /// Grid extent in y.
    pub ny: usize,
    /// Grid extent in z.
    pub nz: usize,
    /// Grid spacing.
    pub dx: f64,
    /// Time step (CFL: `dt ≤ dx/√3` for the 3D wave system).
    pub dt: f64,
    /// Boundary treatment.
    pub boundary: BoundaryKind,
}

impl CactusConfig {
    /// A stable periodic configuration on an `n³` grid.
    pub fn periodic_cube(n: usize) -> Self {
        Self {
            nx: n,
            ny: n,
            nz: n,
            dx: 1.0,
            dt: 0.25,
            boundary: BoundaryKind::Periodic,
        }
    }
}

/// The evolving state.
#[derive(Debug, Clone)]
pub struct CactusSim {
    /// Parameters.
    pub config: CactusConfig,
    /// Current fields.
    pub grid: Grid3,
    time: f64,
}

impl CactusSim {
    /// Initialize from per-point `(h_ij, k_ij)` arrays (component order
    /// xx, xy, xz, yy, yz, zz).
    pub fn from_fields(
        config: CactusConfig,
        init: impl Fn(usize, usize, usize) -> ([f64; 6], [f64; 6]),
    ) -> Self {
        let mut grid = Grid3::new(config.nx, config.ny, config.nz, 1);
        for z in 0..config.nz {
            for y in 0..config.ny {
                for x in 0..config.nx {
                    let (hv, kv) = init(x, y, z);
                    for c in 0..6 {
                        grid.set(h(c), x as isize, y as isize, z as isize, hv[c]);
                        grid.set(k(c), x as isize, y as isize, z as isize, kv[c]);
                    }
                }
            }
        }
        Self {
            config,
            grid,
            time: 0.0,
        }
    }

    /// Simulated time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Advance one ICN step.
    pub fn step(&mut self) {
        let dx = self.config.dx;
        let kind = self.config.boundary;
        icn_step(
            &mut self.grid,
            self.config.dt,
            |g| apply(g, kind),
            |s, out| {
                evaluate(s, out, dx);
                if kind == BoundaryKind::Radiation {
                    crate::rhs::apply_sommerfeld_rhs(s, out, dx);
                }
            },
        );
        self.time += self.config.dt;
    }

    /// Advance `n` steps.
    pub fn run(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }

    /// RMS Hamiltonian-constraint violation.
    pub fn constraint_violation(&mut self) -> f64 {
        apply(&mut self.grid, self.config.boundary);
        constraint_rms(&self.grid, self.config.dx)
    }
}

/// A TT (transverse-traceless) gravitational plane wave travelling in +z:
/// `h_xx = −h_yy = A cos(κ(z − t))`, the standard Cactus validation
/// configuration. Returns the `(h, k)` component arrays for `t = 0`.
pub fn tt_plane_wave(z: usize, nz: usize, amplitude: f64) -> ([f64; 6], [f64; 6]) {
    let kappa = 2.0 * std::f64::consts::PI / nz as f64;
    let phase = kappa * z as f64;
    let mut hv = [0.0; 6];
    let mut kv = [0.0; 6];
    hv[0] = amplitude * phase.cos();
    hv[3] = -amplitude * phase.cos();
    // k_ij = −½ ∂t h_ij at t=0 for the right-moving wave (ω = κ).
    kv[0] = -amplitude * kappa / 2.0 * phase.sin();
    kv[3] = amplitude * kappa / 2.0 * phase.sin();
    (hv, kv)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wave_sim(n: usize) -> CactusSim {
        CactusSim::from_fields(CactusConfig::periodic_cube(n), |_, _, z| {
            tt_plane_wave(z, n, 0.01)
        })
    }

    #[test]
    fn flat_space_is_static() {
        let mut sim = CactusSim::from_fields(CactusConfig::periodic_cube(8), |_, _, _| {
            ([0.0; 6], [0.0; 6])
        });
        sim.run(10);
        assert!(sim.grid.max_abs(h(0)) < 1e-15);
        assert!(sim.grid.max_abs(k(0)) < 1e-15);
    }

    #[test]
    fn tt_wave_propagates_at_light_speed() {
        let n = 32;
        let mut sim = wave_sim(n);
        // Evolve for exactly one period T = n (speed 1, wavelength n):
        // the wave must return to its initial configuration.
        let steps = (n as f64 / sim.config.dt) as usize;
        let initial: Vec<f64> = (0..n)
            .map(|z| sim.grid.get(h(0), 3, 3, z as isize))
            .collect();
        sim.run(steps);
        for (z, &init) in initial.iter().enumerate() {
            let now = sim.grid.get(h(0), 3, 3, z as isize);
            assert!(
                (now - init).abs() < 0.1 * 0.01,
                "z={z}: {now} vs {init} after one period"
            );
        }
    }

    #[test]
    fn wave_amplitude_is_stable() {
        // The linear system is non-dissipative; ICN adds slight damping but
        // the amplitude must stay within a few percent over a period.
        let n = 16;
        let mut sim = wave_sim(n);
        let a0 = sim.grid.max_abs(h(0));
        sim.run((n as f64 / sim.config.dt) as usize);
        let a1 = sim.grid.max_abs(h(0));
        assert!(a1 > 0.9 * a0 && a1 < 1.05 * a0, "{a0} -> {a1}");
    }

    #[test]
    fn constraints_preserved_during_evolution() {
        let mut sim = wave_sim(16);
        let before = sim.constraint_violation();
        sim.run(40);
        let after = sim.constraint_violation();
        assert!(before < 1e-12);
        assert!(after < 1e-10, "constraints must stay near zero: {after}");
    }

    #[test]
    fn second_order_spatial_convergence() {
        // Error against the analytic wave after a fixed time, at two
        // resolutions (dt scaled with dx): ratio ≈ 4 for 2nd order.
        let error = |n: usize| -> f64 {
            let mut sim = CactusSim::from_fields(
                CactusConfig {
                    dt: 4.0 / n as f64,
                    ..CactusConfig::periodic_cube(n)
                },
                |_, _, z| tt_plane_wave(z, n, 0.01),
            );
            let t_final = 8.0;
            let steps = (t_final / sim.config.dt) as usize;
            sim.run(steps);
            let kappa = 2.0 * std::f64::consts::PI / n as f64;
            let mut worst: f64 = 0.0;
            for z in 0..n {
                // Analytic solution: h_xx(z, t) = A cos(κ z − κ c t), c = 1.
                let exact = 0.01 * (kappa * z as f64 - kappa * t_final).cos();
                let got = sim.grid.get(h(0), 1, 1, z as isize);
                worst = worst.max((got - exact).abs());
            }
            worst
        };
        let e_coarse = error(16);
        let e_fine = error(32);
        let order = (e_coarse / e_fine).log2();
        assert!(
            order > 1.5,
            "spatial order {order} (coarse {e_coarse}, fine {e_fine})"
        );
    }
}
