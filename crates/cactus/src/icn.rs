//! The iterative Crank–Nicholson time integrator.
//!
//! The paper lists ICN among Cactus's method-of-lines integrators; the
//! standard three-iteration form is second-order accurate and stable for
//! hyperbolic systems at CFL ≤ 1/√3 in 3D:
//!
//! ```text
//! u⁽¹⁾ = uⁿ + dt · R(uⁿ)
//! u⁽²⁾ = uⁿ + dt · R((uⁿ + u⁽¹⁾)/2)
//! uⁿ⁺¹ = uⁿ + dt · R((uⁿ + u⁽²⁾)/2)
//! ```

use crate::grid::{Grid3, NFIELDS};

/// One ICN step: advances `state` by `dt`, calling `fill_ghosts` before
/// each RHS evaluation (this is where boundary conditions and halo
/// exchanges plug in) and `rhs(state, out)` to evaluate derivatives.
pub fn icn_step(
    state: &mut Grid3,
    dt: f64,
    mut fill_ghosts: impl FnMut(&mut Grid3),
    mut rhs: impl FnMut(&Grid3, &mut Grid3),
) {
    let base = state.clone();
    let mut deriv = Grid3::new(state.nx, state.ny, state.nz, state.ghost);

    // Three ICN iterations; `state` holds the current iterate.
    for iter in 0..3 {
        // Evaluate the RHS at the midpoint of base and current iterate
        // (for the first iteration the midpoint is just the base state).
        let mut eval_point = if iter == 0 {
            base.clone()
        } else {
            let mut mid = base.clone();
            for f in 0..NFIELDS {
                let cur = state.field(f);
                for (m, c) in mid.field_mut(f).iter_mut().zip(cur) {
                    *m = 0.5 * (*m + *c);
                }
            }
            mid
        };
        fill_ghosts(&mut eval_point);
        rhs(&eval_point, &mut deriv);
        // state = base + dt * deriv (interior only; ghosts refreshed later).
        for f in 0..NFIELDS {
            let b = base.field(f);
            let d = deriv.field(f);
            for ((s, b), d) in state.field_mut(f).iter_mut().zip(b).zip(d) {
                *s = *b + dt * *d;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scalar ODE u' = λu embedded in field 0, point (0,0,0).
    fn scalar_rhs(lambda: f64) -> impl FnMut(&Grid3, &mut Grid3) {
        move |s: &Grid3, out: &mut Grid3| {
            let v = s.get(0, 0, 0, 0);
            out.set(0, 0, 0, 0, lambda * v);
            for f in 1..NFIELDS {
                out.set(f, 0, 0, 0, 0.0);
            }
        }
    }

    #[test]
    fn matches_exponential_to_second_order() {
        let lambda = -1.0;
        let dt = 0.1;
        let mut g = Grid3::new(1, 1, 1, 0);
        g.set(0, 0, 0, 0, 1.0);
        for _ in 0..10 {
            icn_step(&mut g, dt, |_| {}, scalar_rhs(lambda));
        }
        let exact = (lambda * 1.0f64).exp();
        let got = g.get(0, 0, 0, 0);
        assert!((got - exact).abs() < 1e-3, "{got} vs {exact}");
    }

    #[test]
    fn halving_dt_quarters_the_error() {
        let lambda = -2.0;
        let run = |dt: f64, steps: usize| {
            let mut g = Grid3::new(1, 1, 1, 0);
            g.set(0, 0, 0, 0, 1.0);
            for _ in 0..steps {
                icn_step(&mut g, dt, |_| {}, scalar_rhs(lambda));
            }
            (g.get(0, 0, 0, 0) - (lambda * dt * steps as f64).exp()).abs()
        };
        let e1 = run(0.1, 10);
        let e2 = run(0.05, 20);
        let order = (e1 / e2).log2();
        assert!(order > 1.7, "ICN must be ~2nd order, measured {order}");
    }

    #[test]
    fn zero_rhs_is_identity() {
        let mut g = Grid3::new(2, 2, 2, 1);
        g.set(3, 1, 1, 1, 5.0);
        icn_step(
            &mut g,
            0.5,
            |_| {},
            |_, out| {
                for f in 0..NFIELDS {
                    out.field_mut(f).iter_mut().for_each(|x| *x = 0.0);
                }
            },
        );
        assert_eq!(g.get(3, 1, 1, 1), 5.0);
    }

    #[test]
    fn ghost_fill_called_each_iteration() {
        let mut g = Grid3::new(1, 1, 1, 0);
        let mut calls = 0;
        icn_step(
            &mut g,
            0.1,
            |_| calls += 1,
            |_, out| {
                for f in 0..NFIELDS {
                    out.set(f, 0, 0, 0, 0.0);
                }
            },
        );
        assert_eq!(calls, 3, "one ghost fill per ICN iteration");
    }
}
