//! The block-decomposed distributed solver (ghost-zone exchange, Fig. 6).
//!
//! "The standard MPI driver for Cactus solves the PDE on a local grid
//! section and then updates the values at the ghost zones by exchanging
//! data on the faces of its topological neighbors" — exactly what this
//! module does on the `pvs-mpisim` runtime, with a 3D cartesian
//! decomposition and periodic global boundaries.

use crate::grid::{Grid3, NFIELDS};
use crate::icn::icn_step;
use crate::rhs::evaluate;
use pvs_mpisim::cart::Cart3d;
use pvs_mpisim::comm::Comm;

/// One rank's block of the global grid.
pub struct CactusBlock {
    /// Local fields (interior `nx × ny × nz`, one ghost layer).
    pub grid: Grid3,
    /// Global offsets.
    pub origin: (usize, usize, usize),
    cart: Cart3d,
    rank: usize,
    dx: f64,
}

impl CactusBlock {
    /// Build this rank's block of a `gn³` global periodic grid.
    pub fn new(
        cart: Cart3d,
        rank: usize,
        gn: (usize, usize, usize),
        dx: f64,
        init: impl Fn(usize, usize, usize) -> [f64; NFIELDS],
    ) -> Self {
        assert!(
            gn.0.is_multiple_of(cart.px)
                && gn.1.is_multiple_of(cart.py)
                && gn.2.is_multiple_of(cart.pz)
        );
        let (nx, ny, nz) = (gn.0 / cart.px, gn.1 / cart.py, gn.2 / cart.pz);
        let (cx, cy, cz) = cart.coords(rank);
        let origin = (cx * nx, cy * ny, cz * nz);
        let mut grid = Grid3::new(nx, ny, nz, 1);
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    let v = init(origin.0 + x, origin.1 + y, origin.2 + z);
                    for (f, val) in v.iter().enumerate() {
                        grid.set(f, x as isize, y as isize, z as isize, *val);
                    }
                }
            }
        }
        Self {
            grid,
            origin,
            cart,
            rank,
            dx,
        }
    }

    /// Exchange all six face ghost layers with the topological neighbours.
    pub fn exchange(&mut self, comm: &mut Comm) {
        exchange_grid(self.cart, self.rank, &mut self.grid, comm);
    }

    /// One distributed ICN step.
    pub fn step(&mut self, comm: &mut Comm, dt: f64) {
        let dx = self.dx;
        let cart = self.cart;
        let rank = self.rank;
        icn_step(
            &mut self.grid,
            dt,
            |g| exchange_grid(cart, rank, g, comm),
            |s, out| evaluate(s, out, dx),
        );
    }
}

/// Pack one face's boundary layer (all fields) for sending.
fn pack_face(g: &Grid3, face: usize) -> Vec<f64> {
    {
        let (nx, ny, nz) = (g.nx as isize, g.ny as isize, g.nz as isize);
        let mut buf = Vec::new();
        for f in 0..NFIELDS {
            match face {
                0 => (0..nz).for_each(|z| (0..ny).for_each(|y| buf.push(g.get(f, nx - 1, y, z)))),
                1 => (0..nz).for_each(|z| (0..ny).for_each(|y| buf.push(g.get(f, 0, y, z)))),
                2 => (0..nz).for_each(|z| (0..nx).for_each(|x| buf.push(g.get(f, x, ny - 1, z)))),
                3 => (0..nz).for_each(|z| (0..nx).for_each(|x| buf.push(g.get(f, x, 0, z)))),
                4 => (0..ny).for_each(|y| (0..nx).for_each(|x| buf.push(g.get(f, x, y, nz - 1)))),
                5 => (0..ny).for_each(|y| (0..nx).for_each(|x| buf.push(g.get(f, x, y, 0)))),
                _ => unreachable!(),
            }
        }
        buf
    }
}

/// Unpack a received face buffer into a block's ghost layer.
fn unpack_face(grid: &mut Grid3, face: usize, buf: &[f64]) {
    let (nx, ny, nz) = (grid.nx as isize, grid.ny as isize, grid.nz as isize);
    let mut it = buf.iter();
    let mut next = || *it.next().expect("buffer length");
    for f in 0..NFIELDS {
        match face {
            0 => (0..nz).for_each(|z| (0..ny).for_each(|y| grid.set(f, nx, y, z, next()))),
            1 => (0..nz).for_each(|z| (0..ny).for_each(|y| grid.set(f, -1, y, z, next()))),
            2 => (0..nz).for_each(|z| (0..nx).for_each(|x| grid.set(f, x, ny, z, next()))),
            3 => (0..nz).for_each(|z| (0..nx).for_each(|x| grid.set(f, x, -1, z, next()))),
            4 => (0..ny).for_each(|y| (0..nx).for_each(|x| grid.set(f, x, y, nz, next()))),
            5 => (0..ny).for_each(|y| (0..nx).for_each(|x| grid.set(f, x, y, -1, next()))),
            _ => unreachable!(),
        }
    }
}

/// Exchange all six face ghost layers of `grid` with the topological
/// neighbours of `rank` in `cart`. The edge/corner ghosts are not needed
/// by the 7-point stencil.
pub fn exchange_grid(cart: Cart3d, rank: usize, grid: &mut Grid3, comm: &mut Comm) {
    let neighbors = cart.neighbors6(rank);
    const PARTNER_FACE: [usize; 6] = [1, 0, 3, 2, 5, 4];
    const TAG: u64 = 0xCAC0;
    let mut loopback: [Option<Vec<f64>>; 6] = Default::default();
    for face in 0..6 {
        let buf = pack_face(grid, face);
        if neighbors[face] == rank {
            loopback[PARTNER_FACE[face]] = Some(buf);
        } else {
            comm.send(neighbors[face], TAG + face as u64, buf);
        }
    }
    for face in 0..6 {
        let buf = if neighbors[face] == rank {
            loopback[face].take().expect("loopback")
        } else {
            comm.recv(neighbors[face], TAG + PARTNER_FACE[face] as u64)
        };
        unpack_face(grid, face, &buf);
    }
}

/// Run a distributed evolution and return each rank's interior `h_xx`
/// field with its origin.
pub fn run_distributed(
    gn: usize,
    cart: Cart3d,
    steps: usize,
    dt: f64,
    init: impl Fn(usize, usize, usize) -> [f64; NFIELDS] + Send + Sync,
) -> Vec<((usize, usize, usize), Vec<f64>)> {
    let init = &init;
    pvs_mpisim::run(cart.size(), move |mut comm| {
        let mut block = CactusBlock::new(cart, comm.rank(), (gn, gn, gn), 1.0, init);
        for _ in 0..steps {
            block.step(&mut comm, dt);
        }
        let g = &block.grid;
        let mut out = Vec::with_capacity(g.interior_points());
        for z in 0..g.nz as isize {
            for y in 0..g.ny as isize {
                for x in 0..g.nx as isize {
                    out.push(g.get(0, x, y, z));
                }
            }
        }
        (block.origin, out)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boundary::BoundaryKind;
    use crate::solver::{tt_plane_wave, CactusConfig, CactusSim};

    fn init_fields(gn: usize) -> impl Fn(usize, usize, usize) -> [f64; NFIELDS] + Send + Sync {
        move |_, _, z| {
            let (h, k) = tt_plane_wave(z, gn, 0.01);
            let mut out = [0.0; NFIELDS];
            out[..6].copy_from_slice(&h);
            out[6..].copy_from_slice(&k);
            out
        }
    }

    #[test]
    fn distributed_matches_serial() {
        let gn = 8;
        let steps = 6;
        let dt = 0.25;
        let mut serial = CactusSim::from_fields(
            CactusConfig {
                nx: gn,
                ny: gn,
                nz: gn,
                dx: 1.0,
                dt,
                boundary: BoundaryKind::Periodic,
            },
            |_, _, z| tt_plane_wave(z, gn, 0.01),
        );
        serial.run(steps);

        let parts = run_distributed(gn, Cart3d::new(2, 2, 2), steps, dt, init_fields(gn));
        for ((ox, oy, oz), values) in parts {
            let mut i = 0;
            for z in 0..gn / 2 {
                for y in 0..gn / 2 {
                    for x in 0..gn / 2 {
                        let want = serial.grid.get(
                            0,
                            (ox + x) as isize,
                            (oy + y) as isize,
                            (oz + z) as isize,
                        );
                        assert!(
                            (values[i] - want).abs() < 1e-12,
                            "({},{},{})",
                            ox + x,
                            oy + y,
                            oz + z
                        );
                        i += 1;
                    }
                }
            }
        }
    }

    #[test]
    fn single_rank_distributed_matches_serial() {
        let gn = 6;
        let parts = run_distributed(gn, Cart3d::new(1, 1, 1), 4, 0.25, init_fields(gn));
        let mut serial = CactusSim::from_fields(
            CactusConfig {
                nx: gn,
                ny: gn,
                nz: gn,
                dx: 1.0,
                dt: 0.25,
                boundary: BoundaryKind::Periodic,
            },
            |_, _, z| tt_plane_wave(z, gn, 0.01),
        );
        serial.run(4);
        let (_, values) = &parts[0];
        let mut i = 0;
        for z in 0..gn as isize {
            for y in 0..gn as isize {
                for x in 0..gn as isize {
                    assert!((values[i] - serial.grid.get(0, x, y, z)).abs() < 1e-13);
                    i += 1;
                }
            }
        }
    }

    #[test]
    fn asymmetric_decomposition() {
        let gn = 8;
        let parts = run_distributed(gn, Cart3d::new(4, 1, 2), 3, 0.25, init_fields(gn));
        assert_eq!(parts.len(), 8);
        let total: usize = parts.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(total, gn * gn * gn);
    }
}
