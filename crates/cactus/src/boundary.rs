//! Boundary conditions: periodic and Sommerfeld radiation.
//!
//! Radiation ("outgoing wave") boundaries are the routine whose
//! vectorization dominated the paper's vector-machine analysis: cheap on
//! superscalar systems but "up to 20% of the ES runtime and over 30% of
//! the X1 overhead" until hand-vectorized (§5.1). Here we implement the
//! first-order outgoing-characteristic form: each ghost value takes the
//! adjacent boundary value from the *previous* step, advecting waves out
//! of the domain at unit speed when `dt = dx`.

use crate::grid::{Grid3, NFIELDS};

/// Which boundary treatment to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundaryKind {
    /// Periodic wraparound (used by the plane-wave validation tests).
    Periodic,
    /// Sommerfeld outgoing-radiation condition.
    Radiation,
}

/// Fill ghosts periodically.
pub fn apply_periodic(g: &mut Grid3) {
    g.fill_periodic_ghosts();
}

/// Fill ghosts with the outgoing-characteristic radiation condition:
/// ghost(face) ← value one cell inward, so a wave front crossing the
/// boundary keeps propagating out instead of reflecting.
pub fn apply_radiation(g: &mut Grid3) {
    let (nx, ny, nz) = (g.nx as isize, g.ny as isize, g.nz as isize);
    let gh = g.ghost as isize;
    for f in 0..NFIELDS {
        let mut writes = Vec::new();
        for z in -gh..nz + gh {
            for y in -gh..ny + gh {
                for x in -gh..nx + gh {
                    let interior =
                        (0..nx).contains(&x) && (0..ny).contains(&y) && (0..nz).contains(&z);
                    if interior {
                        continue;
                    }
                    // Clamp to the nearest interior point (the boundary
                    // value the outgoing characteristic carries).
                    let sx = x.clamp(0, nx - 1);
                    let sy = y.clamp(0, ny - 1);
                    let sz = z.clamp(0, nz - 1);
                    writes.push((g.idx(x, y, z), g.get(f, sx, sy, sz)));
                }
            }
        }
        for (i, v) in writes {
            g.field_mut(f)[i] = v;
        }
    }
}

/// Apply the selected boundary.
pub fn apply(g: &mut Grid3, kind: BoundaryKind) {
    match kind {
        BoundaryKind::Periodic => apply_periodic(g),
        BoundaryKind::Radiation => apply_radiation(g),
    }
}

/// Number of boundary-face points of a grid (the work unit of the
/// radiation-BC performance phase).
pub fn face_points(nx: usize, ny: usize, nz: usize) -> usize {
    2 * (nx * ny + ny * nz + nx * nz)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::h;

    #[test]
    fn radiation_copies_boundary_values() {
        let mut g = Grid3::new(4, 4, 4, 1);
        g.set(h(0), 3, 2, 2, 7.0);
        apply_radiation(&mut g);
        assert_eq!(
            g.get(h(0), 4, 2, 2),
            7.0,
            "+x ghost takes the boundary value"
        );
        g.set(h(0), 0, 0, 0, 3.0);
        apply_radiation(&mut g);
        assert_eq!(g.get(h(0), -1, -1, -1), 3.0, "corner ghost clamps");
    }

    #[test]
    fn face_point_count() {
        assert_eq!(face_points(4, 4, 4), 6 * 16);
        assert_eq!(
            face_points(250, 64, 64),
            2 * (250 * 64 + 64 * 64 + 250 * 64)
        );
    }

    #[test]
    fn radiation_damps_outgoing_pulse() {
        use crate::grid::k;
        use crate::solver::{CactusConfig, CactusSim};
        // A Gaussian pulse in k_xx centred in the domain radiates outward;
        // with radiation boundaries the wave energy must drain once the
        // front reaches the boundary, instead of persisting (the periodic
        // case conserves it up to ICN damping).
        let n = 16;
        let run = |kind: BoundaryKind| {
            let mut sim = CactusSim::from_fields(
                CactusConfig {
                    nx: n,
                    ny: n,
                    nz: n,
                    dx: 1.0,
                    dt: 0.25,
                    boundary: kind,
                },
                |x, y, z| {
                    let c = n as f64 / 2.0;
                    let r2 =
                        ((x as f64 - c).powi(2) + (y as f64 - c).powi(2) + (z as f64 - c).powi(2))
                            / 4.0;
                    let mut kv = [0.0; 6];
                    kv[0] = 0.01 * (-r2).exp();
                    ([0.0; 6], kv)
                },
            );
            sim.run(8 * n);
            sim.grid.l2(k(0))
        };
        let radiated = run(BoundaryKind::Radiation);
        let periodic = run(BoundaryKind::Periodic);
        assert!(
            radiated < 0.5 * periodic,
            "radiation boundaries must drain the pulse: {radiated} vs periodic {periodic}"
        );
    }
}
