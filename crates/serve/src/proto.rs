//! Wire protocol: newline-delimited JSON, one request per line, one
//! response line back.
//!
//! Requests are parsed with the workspace's own reader
//! ([`pvs_analyze::json`]) and rendered with its writer conventions
//! ([`pvs_report::json`]) — no external serialization crates (PVS001).
//! The operations:
//!
//! | request                                     | response                          |
//! |---------------------------------------------|-----------------------------------|
//! | `{"op":"cell","app":…,"config":…,…}`        | `{"ok":true,…,"cell":{…}}`        |
//! | `{"op":"stats"}`                            | telemetry snapshot (cumulative)   |
//! | `{"op":"stats","mode":"delta"}`             | snapshot since the last delta     |
//! | `{"op":"health"}`                           | liveness + occupancy summary      |
//! | `{"op":"ping"}`                             | `{"ok":true,"pong":true}`         |
//! | `{"op":"shutdown"}`                         | ack, then the server drains       |
//!
//! `stats` and `health` responses are versioned documents tagged
//! [`pvs_core::schema::SNAPSHOT_V1`]. A cumulative snapshot reports the
//! registry since server start; a delta snapshot reports counter and
//! histogram *increments* since the previous delta request (gauges are
//! always current values — subtracting them would be meaningless), so a
//! poller can chart rates without client-side bookkeeping.
//!
//! A cell request may carry `deadline_ms`, an optional time budget: the
//! server checks remaining budget at admission, while waiting on an
//! in-flight simulation, and at dispatch, answering
//! `{"error":"deadline_exceeded","stage":…}` once it runs out. Cache
//! hits always serve regardless of budget. Rejections under load
//! (`{"error":"overloaded"}`) carry a deterministic `retry_after_ms`
//! backoff hint derived from the queue depth, and a key whose
//! simulation the supervisor has retired answers
//! `{"error":"failed","panics":N}`.
//!
//! A cell response puts the `cell` member **last**, holding the cached
//! body verbatim — so the bytes after `"cell":` (minus the closing `}`
//! and newline) are exactly the `pvs_report::json::perf_report`
//! rendering a direct engine run would produce. Clients can check
//! byte-identity without re-parsing.

use pvs_analyze::json::parse;
use pvs_obs::Snapshot;
use pvs_report::json::{escape, JsonObject};

use crate::store::{CellResponse, ServeError};
use crate::workload::{FaultSpec, Request, DEFAULT_FAULT_EVENTS};

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Serve a sweep cell.
    Cell {
        /// The validated-shape request (semantic validation happens in
        /// the store).
        request: Request,
        /// Optional deadline budget in milliseconds. The server turns
        /// it into a remaining-budget probe checked at admission, queue
        /// wait, and simulation dispatch; exhaustion answers
        /// `deadline_exceeded`. Deliberately *not* part of
        /// [`Request`]: the deadline must never perturb the content
        /// address.
        deadline_ms: Option<u64>,
    },
    /// Dump the server's observability registry. `delta` reports
    /// increments since the previous delta request instead of totals.
    Stats {
        /// `{"mode":"delta"}` was requested.
        delta: bool,
    },
    /// Liveness + occupancy probe (no registry walk).
    Health,
    /// Liveness probe.
    Ping,
    /// Ask the server to stop accepting connections and exit.
    Shutdown,
}

/// Parse one request line. The error string is client-facing (it goes
/// back in a `malformed` response), so it names the offending field.
pub fn parse_line(line: &str) -> Result<Op, String> {
    let doc = parse(line).map_err(|e| e.to_string())?;
    let op = doc.str("op").ok_or("missing string field \"op\"")?;
    match op {
        "stats" => match doc.str("mode") {
            None | Some("cumulative") => Ok(Op::Stats { delta: false }),
            Some("delta") => Ok(Op::Stats { delta: true }),
            Some(other) => Err(format!(
                "\"mode\" must be \"cumulative\" or \"delta\", got {other:?}"
            )),
        },
        "health" => Ok(Op::Health),
        "ping" => Ok(Op::Ping),
        "shutdown" => Ok(Op::Shutdown),
        "cell" => {
            let field = |name: &str| {
                doc.str(name)
                    .map(str::to_string)
                    .ok_or(format!("missing string field {name:?}"))
            };
            let procs = doc.num("procs").ok_or("missing numeric field \"procs\"")?;
            if procs.fract() != 0.0 || procs < 0.0 {
                return Err(format!("\"procs\" must be a non-negative integer, got {procs}"));
            }
            let faults = match (doc.num("fault_seed"), doc.num("fault_events")) {
                (None, None) => None,
                (None, Some(_)) => {
                    return Err("\"fault_events\" given without \"fault_seed\"".to_string())
                }
                (Some(seed), events) => {
                    if seed.fract() != 0.0 || seed < 0.0 {
                        return Err(format!(
                            "\"fault_seed\" must be a non-negative integer, got {seed}"
                        ));
                    }
                    let events = match events {
                        None => DEFAULT_FAULT_EVENTS,
                        Some(e) if e.fract() == 0.0 && e >= 0.0 => e as usize,
                        Some(e) => {
                            return Err(format!(
                                "\"fault_events\" must be a non-negative integer, got {e}"
                            ))
                        }
                    };
                    Some(FaultSpec { seed: seed as u64, events })
                }
            };
            let deadline_ms = match doc.num("deadline_ms") {
                None => None,
                Some(ms) if ms.fract() == 0.0 && ms >= 0.0 => Some(ms as u64),
                Some(ms) => {
                    return Err(format!(
                        "\"deadline_ms\" must be a non-negative integer, got {ms}"
                    ))
                }
            };
            Ok(Op::Cell {
                request: Request {
                    app: field("app")?,
                    config: field("config")?,
                    machine: field("machine")?,
                    procs: procs as usize,
                    faults,
                },
                deadline_ms,
            })
        }
        other => Err(format!("unknown op {other:?}")),
    }
}

/// Successful cell response (one line, no trailing newline). `cell` is
/// last and verbatim — see the module docs.
pub fn cell_response(resp: &CellResponse) -> String {
    format!(
        "{{\"ok\":true,\"key\":\"{}\",\"source\":\"{}\",\"cell\":{}}}",
        resp.key,
        resp.source.as_str(),
        resp.body
    )
}

/// Error response for a failed cell request.
pub fn error_response(err: &ServeError) -> String {
    match err {
        ServeError::BadRequest(detail) => JsonObject::new()
            .boolean("ok", false)
            .string("error", "bad_request")
            .string("detail", &detail.to_string())
            .render(),
        ServeError::Overloaded { pending, max, retry_after_ms } => JsonObject::new()
            .boolean("ok", false)
            .string("error", "overloaded")
            .number("pending", *pending as f64)
            .number("max", *max as f64)
            .number("retry_after_ms", *retry_after_ms as f64)
            .render(),
        ServeError::DeadlineExceeded { stage } => JsonObject::new()
            .boolean("ok", false)
            .string("error", "deadline_exceeded")
            .string("stage", stage)
            .render(),
        ServeError::Failed { panics } => JsonObject::new()
            .boolean("ok", false)
            .string("error", "failed")
            .number("panics", *panics as f64)
            .string("detail", "key poisoned: simulation panicked repeatedly")
            .render(),
        ServeError::Internal(detail) => JsonObject::new()
            .boolean("ok", false)
            .string("error", "internal")
            .string("detail", detail)
            .render(),
    }
}

/// Response to a line that did not parse into any [`Op`].
pub fn malformed_response(detail: &str) -> String {
    JsonObject::new()
        .boolean("ok", false)
        .string("error", "malformed")
        .string("detail", detail)
        .render()
}

/// Occupancy figures the responses report alongside the registry:
/// clock-free server state sampled at dispatch time, plus the uptime the
/// caller measured (the protocol layer itself never reads a clock —
/// PVS003 confines that to `server.rs`).
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerVitals {
    /// Whole seconds since the server started.
    pub uptime_s: u64,
    /// In-memory cache entries.
    pub cached_cells: usize,
    /// Distinct simulations in flight right now.
    pub inflight: usize,
}

/// Stats dump, schema [`pvs_core::schema::SNAPSHOT_V1`]: every counter,
/// gauge, and histogram summary in the registry snapshot (alphabetical —
/// the snapshot is already sorted) plus the server vitals. `delta` tags
/// the `mode` member so a poller can tell which flavor it got.
pub fn stats_response(snapshot: &Snapshot, vitals: ServerVitals, delta: bool) -> String {
    let members = |entries: &[(String, u64)]| {
        entries
            .iter()
            .map(|(name, value)| format!("\"{}\":{}", escape(name), value))
            .collect::<Vec<_>>()
            .join(",")
    };
    let hists = snapshot
        .hists
        .iter()
        .map(|(name, h)| {
            let s = h.summary();
            format!(
                "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
                escape(name),
                s.count,
                s.sum,
                s.min,
                s.max,
                s.p50,
                s.p90,
                s.p99
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"ok\":true,\"schema\":\"{}\",\"mode\":\"{}\",\"uptime_s\":{},\"cached_cells\":{},\"inflight\":{},\"counters\":{{{}}},\"gauges\":{{{}}},\"hists\":{{{}}}}}",
        pvs_core::schema::SNAPSHOT_V1,
        if delta { "delta" } else { "cumulative" },
        vitals.uptime_s,
        vitals.cached_cells,
        vitals.inflight,
        members(&snapshot.counters),
        members(&snapshot.gauges),
        hists
    )
}

/// Health probe: liveness plus the vitals, without walking the registry.
pub fn health_response(vitals: ServerVitals) -> String {
    format!(
        "{{\"ok\":true,\"healthy\":true,\"schema\":\"{}\",\"uptime_s\":{},\"cached_cells\":{},\"inflight\":{}}}",
        pvs_core::schema::SNAPSHOT_V1,
        vitals.uptime_s,
        vitals.cached_cells,
        vitals.inflight
    )
}

/// Liveness ack.
pub fn pong_response() -> String {
    "{\"ok\":true,\"pong\":true}".to_string()
}

/// Shutdown ack (sent before the server drains).
pub fn shutdown_response() -> String {
    "{\"ok\":true,\"shutdown\":true}".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::RequestError;

    #[test]
    fn cell_lines_parse_into_requests() {
        let op = parse_line(
            r#"{"op":"cell","app":"LBMHD","config":"8192x8192","machine":"ES","procs":64}"#,
        )
        .unwrap();
        assert_eq!(
            op,
            Op::Cell {
                request: Request::cell("LBMHD", "8192x8192", "ES", 64),
                deadline_ms: None
            }
        );
    }

    #[test]
    fn deadline_budget_parses_without_touching_the_request() {
        let line = r#"{"op":"cell","app":"LBMHD","config":"8192x8192","machine":"ES","procs":64,"deadline_ms":250}"#;
        match parse_line(line).unwrap() {
            Op::Cell { request, deadline_ms } => {
                assert_eq!(deadline_ms, Some(250));
                // The deadline must not perturb the content address.
                assert_eq!(request.key_hash(), Request::cell("LBMHD", "8192x8192", "ES", 64).key_hash());
            }
            other => panic!("{other:?}"),
        }
        assert!(parse_line(
            r#"{"op":"cell","app":"LBMHD","config":"8192x8192","machine":"ES","procs":64,"deadline_ms":-3}"#
        )
        .unwrap_err()
        .contains("deadline_ms"));
        assert!(parse_line(
            r#"{"op":"cell","app":"LBMHD","config":"8192x8192","machine":"ES","procs":64,"deadline_ms":1.5}"#
        )
        .unwrap_err()
        .contains("1.5"));
    }

    #[test]
    fn fault_fields_parse_with_defaulted_events() {
        let op = parse_line(
            r#"{"op":"cell","app":"GTC","config":"10 part/cell","machine":"X1","procs":64,"fault_seed":7}"#,
        )
        .unwrap();
        match op {
            Op::Cell { request: r, .. } => assert_eq!(
                r.faults,
                Some(FaultSpec { seed: 7, events: DEFAULT_FAULT_EVENTS })
            ),
            other => panic!("{other:?}"),
        }
        let op = parse_line(
            r#"{"op":"cell","app":"GTC","config":"10 part/cell","machine":"X1","procs":64,"fault_seed":7,"fault_events":9}"#,
        )
        .unwrap();
        match op {
            Op::Cell { request: r, .. } => {
                assert_eq!(r.faults, Some(FaultSpec { seed: 7, events: 9 }))
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn control_ops_parse() {
        assert_eq!(parse_line(r#"{"op":"stats"}"#).unwrap(), Op::Stats { delta: false });
        assert_eq!(
            parse_line(r#"{"op":"stats","mode":"cumulative"}"#).unwrap(),
            Op::Stats { delta: false }
        );
        assert_eq!(
            parse_line(r#"{"op":"stats","mode":"delta"}"#).unwrap(),
            Op::Stats { delta: true }
        );
        assert!(parse_line(r#"{"op":"stats","mode":"weekly"}"#)
            .unwrap_err()
            .contains("weekly"));
        assert_eq!(parse_line(r#"{"op":"health"}"#).unwrap(), Op::Health);
        assert_eq!(parse_line(r#"{"op":"ping"}"#).unwrap(), Op::Ping);
        assert_eq!(parse_line(r#"{"op":"shutdown"}"#).unwrap(), Op::Shutdown);
    }

    #[test]
    fn malformed_lines_produce_field_naming_errors() {
        assert!(parse_line("not json").is_err());
        assert!(parse_line(r#"{"op":"teleport"}"#).unwrap_err().contains("teleport"));
        assert!(parse_line(r#"{"app":"LBMHD"}"#).unwrap_err().contains("\"op\""));
        assert!(parse_line(r#"{"op":"cell","app":"LBMHD"}"#)
            .unwrap_err()
            .contains("procs"));
        assert!(parse_line(
            r#"{"op":"cell","app":"LBMHD","config":"x","machine":"ES","procs":2.5}"#
        )
        .unwrap_err()
        .contains("2.5"));
        assert!(parse_line(
            r#"{"op":"cell","app":"LBMHD","config":"x","machine":"ES","procs":4,"fault_events":2}"#
        )
        .unwrap_err()
        .contains("fault_seed"));
    }

    #[test]
    fn cell_response_embeds_the_body_verbatim_and_last() {
        let resp = CellResponse {
            key: "00000000000000ab".to_string(),
            body: "{\"time_s\":1.5}".into(),
            source: crate::store::CellSource::Memory,
        };
        let line = cell_response(&resp);
        assert_eq!(
            line,
            "{\"ok\":true,\"key\":\"00000000000000ab\",\"source\":\"memory\",\"cell\":{\"time_s\":1.5}}"
        );
        // The byte-extraction contract: strip prefix up to "cell": and
        // the final brace to recover the body exactly.
        let cell = line
            .split_once("\"cell\":")
            .map(|(_, rest)| &rest[..rest.len() - 1])
            .unwrap();
        assert_eq!(cell, &*resp.body);
        // Round-trips through the parser.
        assert!(parse(&line).unwrap().get("cell").is_some());
    }

    #[test]
    fn error_responses_are_parseable_and_tagged() {
        let bad = error_response(&ServeError::BadRequest(RequestError::UnknownApp(
            "LINPACK".to_string(),
        )));
        let doc = parse(&bad).unwrap();
        assert_eq!(doc.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(doc.str("error"), Some("bad_request"));
        assert!(doc.str("detail").unwrap().contains("LINPACK"));

        let over = error_response(&ServeError::Overloaded {
            pending: 3,
            max: 3,
            retry_after_ms: 80,
        });
        let doc = parse(&over).unwrap();
        assert_eq!(doc.str("error"), Some("overloaded"));
        assert_eq!(doc.num("pending"), Some(3.0));
        assert_eq!(doc.num("retry_after_ms"), Some(80.0));

        let dl = error_response(&ServeError::DeadlineExceeded { stage: "admission" });
        let doc = parse(&dl).unwrap();
        assert_eq!(doc.str("error"), Some("deadline_exceeded"));
        assert_eq!(doc.str("stage"), Some("admission"));

        let failed = error_response(&ServeError::Failed { panics: 3 });
        let doc = parse(&failed).unwrap();
        assert_eq!(doc.str("error"), Some("failed"));
        assert_eq!(doc.num("panics"), Some(3.0));

        let doc = parse(&malformed_response("unknown op \"x\"")).unwrap();
        assert_eq!(doc.str("error"), Some("malformed"));
    }

    #[test]
    fn stats_response_carries_the_snapshot() {
        let registry = pvs_obs::Registry::new();
        use pvs_obs::Recorder;
        registry.add("serve.cache.hits", 5);
        registry.gauge_set("serve.queue.depth", 2);
        registry.record_n("serve.hist.busy_us", 40, 3);
        registry.record("serve.hist.busy_us", 2_000);
        let vitals = ServerVitals { uptime_s: 12, cached_cells: 7, inflight: 1 };
        let line = stats_response(&registry.snapshot(), vitals, false);
        let doc = parse(&line).unwrap();
        assert_eq!(doc.str("schema"), Some(pvs_core::schema::SNAPSHOT_V1));
        assert_eq!(doc.str("mode"), Some("cumulative"));
        assert_eq!(doc.num("uptime_s"), Some(12.0));
        assert_eq!(doc.num("cached_cells"), Some(7.0));
        assert_eq!(doc.num("inflight"), Some(1.0));
        assert_eq!(doc.get("counters").unwrap().num("serve.cache.hits"), Some(5.0));
        assert_eq!(doc.get("gauges").unwrap().num("serve.queue.depth"), Some(2.0));
        let hist = doc.get("hists").unwrap().get("serve.hist.busy_us").unwrap();
        assert_eq!(hist.num("count"), Some(4.0));
        assert_eq!(hist.num("min"), Some(40.0));
        assert_eq!(hist.num("p50"), Some(40.0));
        // 2000 sits above the exact range: p99 is its bucket lower bound.
        let p99 = hist.num("p99").unwrap();
        assert!(p99 > 1900.0 && p99 <= 2000.0, "p99 = {p99}");

        let delta_line = stats_response(&registry.snapshot(), vitals, true);
        assert_eq!(parse(&delta_line).unwrap().str("mode"), Some("delta"));
    }

    #[test]
    fn health_response_reports_vitals() {
        let line = health_response(ServerVitals { uptime_s: 3, cached_cells: 2, inflight: 0 });
        let doc = parse(&line).unwrap();
        assert_eq!(doc.get("healthy").unwrap().as_bool(), Some(true));
        assert_eq!(doc.str("schema"), Some(pvs_core::schema::SNAPSHOT_V1));
        assert_eq!(doc.num("uptime_s"), Some(3.0));
        assert_eq!(doc.num("inflight"), Some(0.0));
    }
}
