//! # pvs-serve — a deterministic sweep-serving layer
//!
//! Long-running server that answers `(app, machine, procs, config,
//! faults?) → profile cell` questions over newline-delimited JSON on
//! TCP, std-only like the rest of the workspace (PVS001).
//!
//! The design leans entirely on the workspace's determinism invariant:
//! every simulation cell is a pure function of its request, byte-
//! identical at any thread count. That makes responses
//! *content-addressable* — a request canonicalizes to a stable key
//! ([`workload`]), the key addresses a sharded cache with an on-disk
//! spill ([`cache`]), and concurrent misses on the same key coalesce
//! onto a single simulation ([`store`]). Admission control bounds how
//! many distinct simulations may be in flight; excess misses are
//! answered `overloaded` rather than queued without bound.
//!
//! Module map:
//!
//! * [`workload`] — request vocabulary, validation, canonical keys;
//! * [`cache`] — sharded in-memory cache with atomic disk spill;
//! * [`store`] — single-flight batching, admission control, `serve.*`
//!   observability counters;
//! * [`proto`] — the newline-delimited JSON wire protocol;
//! * [`server`] — the TCP edge (the only wall-clock-bearing file; every
//!   other module is clock-free so model output stays pure).
//!
//! The `serve` and `serve_load` binaries in `pvs-bench` wrap this crate
//! with CLI plumbing and a seeded load generator.

pub mod cache;
pub mod proto;
pub mod server;
pub mod store;
pub mod workload;

pub use cache::{DiskRead, ShardedCache, SpillScan};
pub use server::{Server, ServerOptions};
pub use store::{
    BudgetProbe, CellResponse, CellSource, CellStore, PanicSpec, ServeError, StoreOptions,
};
pub use workload::{FaultSpec, Request, RequestError};
