//! The TCP edge: accept loop, connection threads, and the *only* place
//! in the serving layer allowed to read a wall clock.
//!
//! This file is the one path-scoped exemption from the workspace's
//! PVS003 lint (wall-clock sources are otherwise confined to
//! `pvs-bench`): a server genuinely needs host time — to notice it has
//! been idle long enough to exit, and to meter how long each request
//! held a connection thread (`serve.host.busy_us`). Everything those
//! clocks feed is *operational* (lifecycle and load metrics), never
//! model output: the store, cache, and protocol modules are clock-free,
//! so a served cell remains a pure function of its key.
//!
//! Shape: one nonblocking accept loop on a background thread, one
//! thread per connection reading newline-delimited requests. Sockets
//! carry a short read timeout so connection threads poll the shutdown
//! flag instead of blocking forever on a silent client; a partial line
//! accumulated before such a timeout is kept and resumed, never
//! discarded. Two caps bound a hostile client: request lines longer
//! than `MAX_LINE_BYTES` close the connection, and connects past
//! `ServerOptions::max_connections` live threads are shed at accept.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pvs_obs::Recorder;

use crate::proto;
use crate::store::{CellStore, StoreOptions};

/// How often idle loops wake to poll flags.
const POLL_INTERVAL: Duration = Duration::from_millis(5);

/// Socket read timeout: bounds how long a connection thread can ignore
/// the shutdown flag.
const READ_TIMEOUT: Duration = Duration::from_millis(50);

/// Hard bound on one request line. A real request is a few hundred
/// bytes; a client past this cap is broken or hostile and its
/// connection is closed (`serve.errors.oversized`).
const MAX_LINE_BYTES: usize = 64 * 1024;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Bind address; use port `0` for an ephemeral port (tests).
    pub addr: String,
    /// Store knobs (threads, shards, admission cap, spill dir).
    pub store: StoreOptions,
    /// Exit after this long with no connections or requests
    /// (`None` = run until `shutdown`).
    pub idle_timeout: Option<Duration>,
    /// Cap on live connection threads; connects past it are accepted
    /// and immediately closed (`serve.net.rejected`).
    pub max_connections: usize,
}

impl Default for ServerOptions {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            store: StoreOptions::default(),
            idle_timeout: None,
            max_connections: 256,
        }
    }
}

/// A running server. Dropping it requests shutdown and joins the accept
/// loop.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    store: Arc<CellStore>,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind and start serving on a background thread. Returns as soon
    /// as the listener is live — `addr()` is immediately connectable.
    pub fn start(options: ServerOptions) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&options.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let store = Arc::new(CellStore::new(options.store));
        let shutdown = Arc::new(AtomicBool::new(false));
        // Birth instant for `uptime_s` in stats/health responses. Host
        // time, so it stays here: the protocol layer receives the
        // already-computed seconds and remains clock-free.
        let started = Instant::now();
        // LOCK ORDER: 60 — idle-timeout timestamp; touched only as a
        // statement temporary from the accept loop and handlers, never
        // nested with (or under) any other lock.
        let last_activity = Arc::new(Mutex::new(Instant::now()));

        let accept_store = Arc::clone(&store);
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_thread = std::thread::spawn(move || {
            accept_loop(
                listener,
                accept_store,
                accept_shutdown,
                last_activity,
                options.idle_timeout,
                options.max_connections.max(1),
                started,
            )
        });

        Ok(Server {
            addr,
            store,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The serving core (for in-process callers and tests).
    pub fn store(&self) -> &Arc<CellStore> {
        &self.store
    }

    /// Request shutdown without waiting.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Block until the accept loop exits (via `shutdown`, a client's
    /// `{"op":"shutdown"}`, or the idle timeout).
    pub fn wait(&mut self) {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
        self.wait();
    }
}

fn touch(last_activity: &Mutex<Instant>) {
    // INFALLIBLE: holders only store an Instant — no code runs under
    // the lock.
    *last_activity.lock().expect("activity clock poisoned") = Instant::now();
}

fn accept_loop(
    listener: TcpListener,
    store: Arc<CellStore>,
    shutdown: Arc<AtomicBool>,
    last_activity: Arc<Mutex<Instant>>,
    idle_timeout: Option<Duration>,
    max_connections: usize,
    server_started: Instant,
) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                touch(&last_activity);
                connections.retain(|h| !h.is_finished());
                if connections.len() >= max_connections {
                    store.registry().add("serve.net.rejected", 1);
                    drop(stream);
                    continue;
                }
                store.registry().add("serve.net.connections", 1);
                let store = Arc::clone(&store);
                let shutdown = Arc::clone(&shutdown);
                let last_activity = Arc::clone(&last_activity);
                connections.push(std::thread::spawn(move || {
                    serve_connection(stream, store, shutdown, last_activity, server_started)
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if let Some(limit) = idle_timeout {
                    // INFALLIBLE: see `touch`.
                    let idle = last_activity.lock().expect("activity clock poisoned").elapsed();
                    if idle >= limit {
                        shutdown.store(true, Ordering::SeqCst);
                        break;
                    }
                }
                connections.retain(|h| !h.is_finished());
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => break,
        }
    }
    shutdown.store(true, Ordering::SeqCst);
    for handle in connections {
        let _ = handle.join();
    }
}

/// What one bounded line read produced.
enum LineRead {
    /// A newline-terminated request (or the EOF-terminated tail) is in
    /// the buffer.
    Complete,
    /// The stream closed with nothing buffered.
    Closed,
    /// The read timed out mid-line; the partial bytes stay buffered and
    /// the next call resumes them.
    Stalled,
    /// The accumulated line exceeded `MAX_LINE_BYTES`.
    Oversized,
}

/// Read one newline-terminated request into `line`, resuming any
/// partial line left by an earlier read timeout. `BufRead::read_line`
/// cannot be used here: on `WouldBlock`/`TimedOut` it has already
/// appended the bytes it consumed, so a caller that clears the buffer
/// each iteration silently drops the first half of any request whose
/// client stalls mid-line for longer than `READ_TIMEOUT`.
fn read_request_line(reader: &mut impl BufRead, line: &mut Vec<u8>) -> std::io::Result<LineRead> {
    loop {
        let buf = match reader.fill_buf() {
            Ok(buf) => buf,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Ok(LineRead::Stalled);
            }
            Err(e) => return Err(e),
        };
        if buf.is_empty() {
            // EOF: an unterminated tail still dispatches, matching
            // `read_line`'s end-of-stream semantics.
            return Ok(if line.is_empty() {
                LineRead::Closed
            } else {
                LineRead::Complete
            });
        }
        let (take, complete) = match buf.iter().position(|&b| b == b'\n') {
            Some(i) => (i + 1, true),
            None => (buf.len(), false),
        };
        line.extend_from_slice(&buf[..take]);
        reader.consume(take);
        if line.len() > MAX_LINE_BYTES {
            return Ok(LineRead::Oversized);
        }
        if complete {
            return Ok(LineRead::Complete);
        }
    }
}

fn serve_connection(
    stream: TcpStream,
    store: Arc<CellStore>,
    shutdown: Arc<AtomicBool>,
    last_activity: Arc<Mutex<Instant>>,
    server_started: Instant,
) {
    if stream.set_read_timeout(Some(READ_TIMEOUT)).is_err() {
        return;
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line: Vec<u8> = Vec::new();
    loop {
        match read_request_line(&mut reader, &mut line) {
            Ok(LineRead::Closed) => return,
            Ok(LineRead::Stalled) => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Ok(LineRead::Oversized) => {
                store.registry().add("serve.errors.oversized", 1);
                return;
            }
            Ok(LineRead::Complete) => {
                // Invalid UTF-8 becomes replacement characters and falls
                // through to a malformed-request response rather than a
                // silent close.
                let text = String::from_utf8_lossy(&line);
                let trimmed = text.trim();
                if trimmed.is_empty() {
                    line.clear();
                    continue;
                }
                touch(&last_activity);
                let started = Instant::now();
                let (response, stop) =
                    dispatch(&store, trimmed, server_started.elapsed().as_secs());
                let busy_us = started.elapsed().as_micros() as u64;
                store.registry().add("serve.host.busy_us", busy_us);
                store.registry().record("serve.hist.busy_us", busy_us);
                // A simulation can outlast idle_timeout; mark the server
                // live again when dispatch completes so the idle check
                // measures true idleness, not time spent computing.
                touch(&last_activity);
                if writer
                    .write_all(response.as_bytes())
                    .and_then(|()| writer.write_all(b"\n"))
                    .and_then(|()| writer.flush())
                    .is_err()
                {
                    return;
                }
                if stop {
                    shutdown.store(true, Ordering::SeqCst);
                    return;
                }
                line.clear();
            }
            Err(_) => return,
        }
    }
}

/// Route one request line; returns the response and whether the server
/// should stop. Clock-free — time metering stays in the caller, which
/// also hands in the pre-computed uptime the telemetry ops report.
fn dispatch(store: &Arc<CellStore>, line: &str, uptime_s: u64) -> (String, bool) {
    store.registry().add("serve.net.lines", 1);
    let vitals = || proto::ServerVitals {
        uptime_s,
        cached_cells: store.cached_cells(),
        inflight: store.inflight(),
    };
    match proto::parse_line(line) {
        Err(detail) => {
            store.registry().add("serve.errors.malformed", 1);
            (proto::malformed_response(&detail), false)
        }
        Ok(proto::Op::Ping) => (proto::pong_response(), false),
        Ok(proto::Op::Stats { delta }) => (
            proto::stats_response(&store.stats_snapshot(delta), vitals(), delta),
            false,
        ),
        Ok(proto::Op::Health) => (proto::health_response(vitals()), false),
        Ok(proto::Op::Shutdown) => (proto::shutdown_response(), true),
        Ok(proto::Op::Cell { request, deadline_ms }) => {
            // Turn the wire deadline into a clock-free remaining-budget
            // probe. The `Instant` lives here — the store (and
            // everything below it) only ever sees remaining
            // `Duration`s, so PVS003's clock confinement holds.
            let budget: Option<crate::store::BudgetProbe> = deadline_ms.map(|ms| {
                let start = Instant::now();
                let total = Duration::from_millis(ms);
                let probe: crate::store::BudgetProbe =
                    Arc::new(move || total.saturating_sub(start.elapsed()));
                probe
            });
            match store.get_with_budget(&request, budget) {
                Ok(resp) => (proto::cell_response(&resp), false),
                Err(err) => (proto::error_response(&err), false),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;
    use std::io::Read;

    /// Scripted reader: each step yields bytes or a simulated read
    /// timeout (`None`); an exhausted script reads as EOF.
    struct Script(VecDeque<Option<Vec<u8>>>);

    impl Read for Script {
        fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
            match self.0.pop_front() {
                Some(Some(bytes)) => {
                    out[..bytes.len()].copy_from_slice(&bytes);
                    Ok(bytes.len())
                }
                Some(None) => Err(std::io::ErrorKind::WouldBlock.into()),
                None => Ok(0),
            }
        }
    }

    fn reader(steps: Vec<Option<&str>>) -> BufReader<Script> {
        BufReader::new(Script(
            steps
                .into_iter()
                .map(|s| s.map(|s| s.as_bytes().to_vec()))
                .collect(),
        ))
    }

    #[test]
    fn partial_line_survives_a_read_timeout() {
        let mut r = reader(vec![Some("{\"op\":"), None, Some("\"ping\"}\n")]);
        let mut line = Vec::new();
        assert!(matches!(
            read_request_line(&mut r, &mut line).unwrap(),
            LineRead::Stalled
        ));
        assert_eq!(line, b"{\"op\":");
        assert!(matches!(
            read_request_line(&mut r, &mut line).unwrap(),
            LineRead::Complete
        ));
        assert_eq!(line, b"{\"op\":\"ping\"}\n");
    }

    #[test]
    fn eof_terminated_tail_completes_then_stream_reads_closed() {
        let mut r = reader(vec![Some("{\"op\":\"ping\"}")]);
        let mut line = Vec::new();
        assert!(matches!(
            read_request_line(&mut r, &mut line).unwrap(),
            LineRead::Complete
        ));
        assert_eq!(line, b"{\"op\":\"ping\"}");
        line.clear();
        assert!(matches!(
            read_request_line(&mut r, &mut line).unwrap(),
            LineRead::Closed
        ));
    }

    #[test]
    fn newline_free_stream_is_rejected_at_the_length_cap() {
        let chunk = "x".repeat(4096);
        let steps: Vec<Option<&str>> = (0..17).map(|_| Some(chunk.as_str())).collect();
        let mut r = reader(steps);
        let mut line = Vec::new();
        assert!(matches!(
            read_request_line(&mut r, &mut line).unwrap(),
            LineRead::Oversized
        ));
        assert!(line.len() <= MAX_LINE_BYTES + 4096);
    }
}
