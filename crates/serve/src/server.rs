//! The TCP edge: accept loop, connection threads, and the *only* place
//! in the serving layer allowed to read a wall clock.
//!
//! This file is the one path-scoped exemption from the workspace's
//! PVS003 lint (wall-clock sources are otherwise confined to
//! `pvs-bench`): a server genuinely needs host time — to notice it has
//! been idle long enough to exit, and to meter how long each request
//! held a connection thread (`serve.host.busy_us`). Everything those
//! clocks feed is *operational* (lifecycle and load metrics), never
//! model output: the store, cache, and protocol modules are clock-free,
//! so a served cell remains a pure function of its key.
//!
//! Shape: one nonblocking accept loop on a background thread, one
//! thread per connection reading newline-delimited requests. Sockets
//! carry a short read timeout so connection threads poll the shutdown
//! flag instead of blocking forever on a silent client.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pvs_obs::Recorder;

use crate::proto;
use crate::store::{CellStore, StoreOptions};

/// How often idle loops wake to poll flags.
const POLL_INTERVAL: Duration = Duration::from_millis(5);

/// Socket read timeout: bounds how long a connection thread can ignore
/// the shutdown flag.
const READ_TIMEOUT: Duration = Duration::from_millis(50);

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Bind address; use port `0` for an ephemeral port (tests).
    pub addr: String,
    /// Store knobs (threads, shards, admission cap, spill dir).
    pub store: StoreOptions,
    /// Exit after this long with no connections or requests
    /// (`None` = run until `shutdown`).
    pub idle_timeout: Option<Duration>,
}

impl Default for ServerOptions {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            store: StoreOptions::default(),
            idle_timeout: None,
        }
    }
}

/// A running server. Dropping it requests shutdown and joins the accept
/// loop.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    store: Arc<CellStore>,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind and start serving on a background thread. Returns as soon
    /// as the listener is live — `addr()` is immediately connectable.
    pub fn start(options: ServerOptions) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&options.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let store = Arc::new(CellStore::new(options.store));
        let shutdown = Arc::new(AtomicBool::new(false));
        // LOCK ORDER: 60 — idle-timeout timestamp; touched only as a
        // statement temporary from the accept loop and handlers, never
        // nested with (or under) any other lock.
        let last_activity = Arc::new(Mutex::new(Instant::now()));

        let accept_store = Arc::clone(&store);
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_thread = std::thread::spawn(move || {
            accept_loop(
                listener,
                accept_store,
                accept_shutdown,
                last_activity,
                options.idle_timeout,
            )
        });

        Ok(Server {
            addr,
            store,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The serving core (for in-process callers and tests).
    pub fn store(&self) -> &Arc<CellStore> {
        &self.store
    }

    /// Request shutdown without waiting.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Block until the accept loop exits (via `shutdown`, a client's
    /// `{"op":"shutdown"}`, or the idle timeout).
    pub fn wait(&mut self) {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
        self.wait();
    }
}

fn touch(last_activity: &Mutex<Instant>) {
    // INFALLIBLE: holders only store an Instant — no code runs under
    // the lock.
    *last_activity.lock().expect("activity clock poisoned") = Instant::now();
}

fn accept_loop(
    listener: TcpListener,
    store: Arc<CellStore>,
    shutdown: Arc<AtomicBool>,
    last_activity: Arc<Mutex<Instant>>,
    idle_timeout: Option<Duration>,
) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                touch(&last_activity);
                store.registry().add("serve.net.connections", 1);
                let store = Arc::clone(&store);
                let shutdown = Arc::clone(&shutdown);
                let last_activity = Arc::clone(&last_activity);
                connections.push(std::thread::spawn(move || {
                    serve_connection(stream, store, shutdown, last_activity)
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if let Some(limit) = idle_timeout {
                    // INFALLIBLE: see `touch`.
                    let idle = last_activity.lock().expect("activity clock poisoned").elapsed();
                    if idle >= limit {
                        shutdown.store(true, Ordering::SeqCst);
                        break;
                    }
                }
                connections.retain(|h| !h.is_finished());
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => break,
        }
    }
    shutdown.store(true, Ordering::SeqCst);
    for handle in connections {
        let _ = handle.join();
    }
}

fn serve_connection(
    stream: TcpStream,
    store: Arc<CellStore>,
    shutdown: Arc<AtomicBool>,
    last_activity: Arc<Mutex<Instant>>,
) {
    if stream.set_read_timeout(Some(READ_TIMEOUT)).is_err() {
        return;
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return, // client closed
            Ok(_) => {
                let trimmed = line.trim();
                if trimmed.is_empty() {
                    continue;
                }
                touch(&last_activity);
                let started = Instant::now();
                let (response, stop) = dispatch(&store, trimmed);
                store
                    .registry()
                    .add("serve.host.busy_us", started.elapsed().as_micros() as u64);
                if writer
                    .write_all(response.as_bytes())
                    .and_then(|()| writer.write_all(b"\n"))
                    .and_then(|()| writer.flush())
                    .is_err()
                {
                    return;
                }
                if stop {
                    shutdown.store(true, Ordering::SeqCst);
                    return;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Route one request line; returns the response and whether the server
/// should stop. Clock-free — time metering stays in the caller.
fn dispatch(store: &Arc<CellStore>, line: &str) -> (String, bool) {
    store.registry().add("serve.net.lines", 1);
    match proto::parse_line(line) {
        Err(detail) => {
            store.registry().add("serve.errors.malformed", 1);
            (proto::malformed_response(&detail), false)
        }
        Ok(proto::Op::Ping) => (proto::pong_response(), false),
        Ok(proto::Op::Stats) => (
            proto::stats_response(&store.registry().snapshot(), store.cached_cells()),
            false,
        ),
        Ok(proto::Op::Shutdown) => (proto::shutdown_response(), true),
        Ok(proto::Op::Cell(request)) => match store.get(&request) {
            Ok(resp) => (proto::cell_response(&resp), false),
            Err(err) => (proto::error_response(&err), false),
        },
    }
}
