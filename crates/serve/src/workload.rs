//! Request model: what a client may ask for, strict validation, and the
//! canonical key that makes responses content-addressable.
//!
//! A request names a sweep cell — `(app, config, machine, procs)` plus an
//! optional seeded fault plan — and every field is validated against a
//! closed vocabulary before any work happens. Validation is what makes
//! the cache safe: only requests that resolve to a well-defined
//! simulation are ever keyed, so a cache entry can always be regenerated
//! from its key alone.
//!
//! The canonical key is a `field=value` byte string over the *normalized*
//! request (fault defaults applied, no optional-field ambiguity), hashed
//! with [`pvs_core::hash::fnv1a_hex`]. Two requests that mean the same
//! cell always canonicalize to the same bytes, so N clients asking the
//! same question share one cache line and one simulation.

use pvs_cactus::perf::{CactusVariant, CactusWorkload};
use pvs_core::machine::Machine;
use pvs_core::phase::Phase;
use pvs_core::{platforms, Adversity};
use pvs_fault::FaultPlan;
use pvs_gtc::perf::{GtcVariant, GtcWorkload};
use pvs_lbmhd::perf::LbmhdWorkload;
use pvs_paratec::perf::ParatecWorkload;

/// The applications the serving layer answers for, with their legal
/// problem-size labels (the paper's Table 3–6 configurations).
pub const APP_CONFIGS: [(&str, [&str; 2]); 4] = [
    ("LBMHD", ["4096x4096", "8192x8192"]),
    ("PARATEC", ["432 atom", "686 atom"]),
    ("CACTUS", ["80x80x80", "250x64x64"]),
    ("GTC", ["10 part/cell", "100 part/cell"]),
];

/// Largest processor count a request may ask for (the paper's largest
/// published runs stop at 1024; 4096 leaves headroom for scaling
/// questions without letting a client request an absurd simulation).
pub const MAX_PROCS: usize = 4096;

/// Number of fault events a seeded plan injects when the request does
/// not say (matches the chaos harness's light-damage scenarios).
pub const DEFAULT_FAULT_EVENTS: usize = 4;

/// Simulated-time horizon over which random fault plans scatter their
/// events (1 simulated second — longer than any cell of the grid).
const FAULT_HORIZON_PS: u64 = 1_000_000_000_000;

/// A seeded fault plan attached to a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Plan seed; every downstream random decision derives from it.
    pub seed: u64,
    /// Number of injected events.
    pub events: usize,
}

/// One validated-on-construction cell request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Application name (`LBMHD`, `PARATEC`, `CACTUS`, `GTC`).
    pub app: String,
    /// Problem-size label exactly as the paper's tables spell it.
    pub config: String,
    /// Machine name (`Power3`, `Power4`, `Altix`, `ES`, `X1`).
    pub machine: String,
    /// Processor count.
    pub procs: usize,
    /// Optional seeded fault plan (engine-level adversity).
    pub faults: Option<FaultSpec>,
}

/// Why a request cannot be served. Every variant is a client error: the
/// server returns it as a `bad_request` response and computes nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestError {
    /// Application name not in the study.
    UnknownApp(String),
    /// Config label not published for this application.
    UnknownConfig {
        /// The (valid) application.
        app: String,
        /// The unrecognized problem-size label.
        config: String,
    },
    /// Machine name not in the study.
    UnknownMachine(String),
    /// Processor count outside `1..=MAX_PROCS`.
    BadProcs(usize),
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::UnknownApp(app) => {
                write!(f, "unknown app {app:?} (expected LBMHD, PARATEC, CACTUS, or GTC)")
            }
            RequestError::UnknownConfig { app, config } => {
                write!(f, "unknown config {config:?} for {app}")
            }
            RequestError::UnknownMachine(m) => {
                write!(f, "unknown machine {m:?} (expected Power3, Power4, Altix, ES, or X1)")
            }
            RequestError::BadProcs(p) => {
                write!(f, "procs {p} out of range (expected 1..={MAX_PROCS})")
            }
        }
    }
}

/// A request resolved into everything the engine needs: validation has
/// already happened, so running this cell cannot fail.
#[derive(Debug, Clone)]
pub struct ResolvedCell {
    /// The machine model.
    pub machine: Machine,
    /// The application's phase stream for this cell.
    pub phases: Vec<Phase>,
    /// Processor count.
    pub procs: usize,
    /// Engine-level damage compiled from the fault plan (`None` when the
    /// request is healthy).
    pub adversity: Option<Adversity>,
}

impl Request {
    /// A healthy (fault-free) cell request.
    pub fn cell(app: &str, config: &str, machine: &str, procs: usize) -> Self {
        Self {
            app: app.to_string(),
            config: config.to_string(),
            machine: machine.to_string(),
            procs,
            faults: None,
        }
    }

    /// The canonical byte string this request hashes under. Stable
    /// across processes and releases: `field=value` pairs joined by `|`,
    /// fault defaults already applied.
    pub fn canonical_key(&self) -> String {
        let faults = match self.faults {
            None => "none".to_string(),
            Some(FaultSpec { seed, events }) => format!("{seed}:{events}"),
        };
        format!(
            "app={}|config={}|machine={}|procs={}|faults={faults}",
            self.app, self.config, self.machine, self.procs
        )
    }

    /// Content address: FNV-1a 64 of [`Request::canonical_key`], as 16
    /// hex digits. Cache shards, spill filenames, and response `key`
    /// fields all use this form.
    pub fn key_hash(&self) -> String {
        pvs_core::hash::fnv1a_hex(self.canonical_key().as_bytes())
    }

    /// Validate every field and build the cell the engine will run.
    pub fn resolve(&self) -> Result<ResolvedCell, RequestError> {
        if self.procs < 1 || self.procs > MAX_PROCS {
            return Err(RequestError::BadProcs(self.procs));
        }
        let machine = platforms::by_name(&self.machine)
            .ok_or_else(|| RequestError::UnknownMachine(self.machine.clone()))?;
        let configs = APP_CONFIGS
            .iter()
            .find(|(app, _)| *app == self.app)
            .map(|(_, configs)| configs)
            .ok_or_else(|| RequestError::UnknownApp(self.app.clone()))?;
        if !configs.contains(&self.config.as_str()) {
            return Err(RequestError::UnknownConfig {
                app: self.app.clone(),
                config: self.config.clone(),
            });
        }
        let phases = match self.app.as_str() {
            "LBMHD" => {
                let grid = if self.config == "4096x4096" { 4096 } else { 8192 };
                LbmhdWorkload::new(grid, self.procs).phases()
            }
            "PARATEC" => {
                if self.config == "432 atom" {
                    ParatecWorkload::si432(self.procs).phases()
                } else {
                    ParatecWorkload::si686(self.procs).phases()
                }
            }
            "CACTUS" => {
                let w = if self.config == "80x80x80" {
                    CactusWorkload::small(self.procs)
                } else {
                    CactusWorkload::large(self.procs)
                };
                w.phases(CactusVariant::for_machine(&self.machine))
            }
            // The config check above admits only the four apps.
            _ => GtcWorkload::new(
                if self.config == "10 part/cell" { 10 } else { 100 },
                self.procs,
            )
            .phases(GtcVariant::for_machine(&self.machine)),
        };
        let adversity = self.faults.map(|f| {
            let mut adversity =
                FaultPlan::random(f.seed, FAULT_HORIZON_PS, f.events, self.procs, 16)
                    .compile_all()
                    .adversity;
            // Hard link failures are only reroutable on the 2D torus
            // (the X1); the network builder rejects them on crossbars
            // and fat-trees, whose routes are unique. Downgrade each to
            // a severe derate of the same link there, so one seeded
            // fault request means the same *severity* on every machine.
            if !matches!(machine.topology, pvs_netsim::TopologyKind::Torus2D) {
                let mut net = std::mem::take(&mut adversity.net);
                for link in std::mem::take(&mut net.failed_links) {
                    net = net.degrade_link(link, 0.25);
                }
                adversity.net = net;
            }
            adversity
        });
        Ok(ResolvedCell {
            machine,
            phases,
            procs: self.procs,
            adversity,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_key_is_stable_and_injective_over_fields() {
        let r = Request::cell("LBMHD", "8192x8192", "ES", 64);
        assert_eq!(
            r.canonical_key(),
            "app=LBMHD|config=8192x8192|machine=ES|procs=64|faults=none"
        );
        let mut faulty = r.clone();
        faulty.faults = Some(FaultSpec { seed: 7, events: 4 });
        assert_eq!(
            faulty.canonical_key(),
            "app=LBMHD|config=8192x8192|machine=ES|procs=64|faults=7:4"
        );
        assert_ne!(r.key_hash(), faulty.key_hash());
        assert_ne!(
            Request::cell("LBMHD", "8192x8192", "ES", 64).key_hash(),
            Request::cell("LBMHD", "8192x8192", "ES", 65).key_hash()
        );
    }

    #[test]
    fn key_hash_is_process_independent() {
        // Pinned digest: must never change across builds, or every spill
        // directory in the field silently invalidates.
        assert_eq!(
            Request::cell("LBMHD", "8192x8192", "ES", 64).key_hash(),
            pvs_core::hash::fnv1a_hex(
                b"app=LBMHD|config=8192x8192|machine=ES|procs=64|faults=none"
            )
        );
    }

    #[test]
    fn every_published_cell_resolves() {
        for (app, configs) in APP_CONFIGS {
            for config in configs {
                for machine in ["Power3", "Power4", "Altix", "ES", "X1"] {
                    let r = Request::cell(app, config, machine, 64);
                    let cell = r.resolve().unwrap_or_else(|e| panic!("{app}/{config}/{machine}: {e}"));
                    assert!(!cell.phases.is_empty(), "{app} has phases");
                    assert!(cell.adversity.is_none());
                }
            }
        }
    }

    #[test]
    fn invalid_fields_are_rejected_with_specific_errors() {
        assert!(matches!(
            Request::cell("LINPACK", "8192x8192", "ES", 64).resolve(),
            Err(RequestError::UnknownApp(_))
        ));
        assert!(matches!(
            Request::cell("LBMHD", "432 atom", "ES", 64).resolve(),
            Err(RequestError::UnknownConfig { .. })
        ));
        assert!(matches!(
            Request::cell("LBMHD", "8192x8192", "BlueGene", 64).resolve(),
            Err(RequestError::UnknownMachine(_))
        ));
        assert!(matches!(
            Request::cell("LBMHD", "8192x8192", "ES", 0).resolve(),
            Err(RequestError::BadProcs(0))
        ));
        assert!(matches!(
            Request::cell("LBMHD", "8192x8192", "ES", MAX_PROCS + 1).resolve(),
            Err(RequestError::BadProcs(_))
        ));
    }

    #[test]
    fn faulted_requests_compile_adversity() {
        let mut r = Request::cell("GTC", "100 part/cell", "X1", 64);
        r.faults = Some(FaultSpec { seed: 42, events: 6 });
        let cell = r.resolve().unwrap();
        assert!(cell.adversity.is_some());
        // Same seed, same damage: resolve twice and compare.
        let again = r.resolve().unwrap();
        assert_eq!(
            format!("{:?}", cell.adversity),
            format!("{:?}", again.adversity)
        );
    }
}
