//! Content-addressed response cache: sharded in-memory map with a
//! checksummed on-disk spill.
//!
//! Keys are the 16-hex-digit content addresses of
//! [`crate::workload::Request::key_hash`]; values are fully rendered
//! response bodies. Shard selection hashes the key with the same stable
//! FNV-1a the addresses use, so a key always lands on the same shard in
//! every process. Storage is `BTreeMap` (PVS005: no unordered iteration
//! anywhere near rendered output) and each shard takes its own lock, so
//! concurrent hits on different shards never contend.
//!
//! The spill directory holds one `<key>.cell` file per entry in the
//! [`pvs_core::schema::SPILL_CELL_V1`] format: a one-line header
//! carrying the schema id, the body length in bytes, and an FNV-1a
//! checksum of the body, followed by the raw body. Writes go through the
//! workspace's atomic-write convention (content to a sibling
//! `*.tmp.<pid>`, then rename), and *reads verify before serving*: a
//! truncated, bit-flipped, or otherwise damaged entry is moved to
//! `<dir>/quarantine/` and reported as [`DiskRead::Corrupt`] — the cache
//! never serves a byte it cannot prove was the byte it wrote. A
//! warm-starting server runs [`ShardedCache::verify_spill`] over the
//! whole directory so torn artifacts from a killed writer are
//! quarantined before the first request arrives.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Default shard count: enough to make cross-request lock contention
/// negligible at the connection counts the load generator drives.
pub const DEFAULT_SHARDS: usize = 16;

/// What a disk probe found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiskRead {
    /// A verified entry (now promoted to memory).
    Hit(Arc<str>),
    /// No spill entry for this key.
    Miss,
    /// An entry existed but failed verification; it has been moved to
    /// the quarantine directory and the key must be recomputed.
    Corrupt,
}

/// Result of a warm-start spill scan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillScan {
    /// Entries that passed header + checksum verification.
    pub verified: u64,
    /// Entries (or torn temp files) moved to quarantine.
    pub quarantined: u64,
}

/// Sharded `key → rendered response` store with optional disk spill.
#[derive(Debug)]
pub struct ShardedCache {
    // LOCK ORDER: 20 — taken under the flight map (tier 10) on the
    // request path; shard holders never take another lock (at most one
    // shard guard is ever live).
    shards: Vec<Mutex<BTreeMap<String, Arc<str>>>>,
    spill_dir: Option<PathBuf>,
}

impl ShardedCache {
    /// Cache with `shards` shards (at least one) and, when `spill_dir`
    /// is set, a disk spill under that directory (created on first
    /// insert).
    pub fn new(shards: usize, spill_dir: Option<PathBuf>) -> Self {
        Self {
            shards: (0..shards.max(1)).map(|_| Mutex::new(BTreeMap::new())).collect(),
            spill_dir,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Total entries across shards (memory only).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| self.lock_shard(s).len()).sum()
    }

    /// Whether the in-memory cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock_shard<'a>(
        &self,
        shard: &'a Mutex<BTreeMap<String, Arc<str>>>,
    ) -> std::sync::MutexGuard<'a, BTreeMap<String, Arc<str>>> {
        // INFALLIBLE: shard holders only touch the map — no user code
        // runs under the lock, so poisoning is unreachable.
        shard.lock().expect("cache shard poisoned")
    }

    fn shard_of(&self, key: &str) -> &Mutex<BTreeMap<String, Arc<str>>> {
        let idx = pvs_core::hash::fnv1a(key.as_bytes()) as usize % self.shards.len();
        &self.shards[idx]
    }

    fn spill_path(&self, key: &str) -> Option<PathBuf> {
        self.spill_dir.as_ref().map(|d| d.join(format!("{key}.cell")))
    }

    /// Memory lookup only.
    pub fn get_memory(&self, key: &str) -> Option<Arc<str>> {
        self.lock_shard(self.shard_of(key)).get(key).cloned()
    }

    /// Disk lookup: the entry is verified against its header before
    /// anything else; a verified hit is promoted into memory so the next
    /// request is a memory hit, and a damaged entry is quarantined.
    pub fn get_disk(&self, key: &str) -> DiskRead {
        let Some(path) = self.spill_path(key) else {
            return DiskRead::Miss;
        };
        let raw = match std::fs::read(&path) {
            Ok(raw) => raw,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return DiskRead::Miss,
            Err(_) => {
                // Unreadable is indistinguishable from damaged: get the
                // entry out of the serving path.
                self.quarantine(&path);
                return DiskRead::Corrupt;
            }
        };
        match decode_cell(&raw) {
            Ok(body) => {
                let body: Arc<str> = body.into();
                self.lock_shard(self.shard_of(key)).insert(key.to_string(), Arc::clone(&body));
                DiskRead::Hit(body)
            }
            Err(_) => {
                self.quarantine(&path);
                DiskRead::Corrupt
            }
        }
    }

    /// Insert into memory and, when spilling is on, persist to disk.
    /// Returns `Err` only for spill I/O failures — the memory insert has
    /// already happened, so serving continues degraded rather than not
    /// at all.
    pub fn insert(&self, key: &str, body: Arc<str>) -> std::io::Result<()> {
        self.lock_shard(self.shard_of(key)).insert(key.to_string(), Arc::clone(&body));
        match self.spill_path(key) {
            None => Ok(()),
            Some(path) => write_atomic(&path, &encode_cell(&body)),
        }
    }

    /// Move a damaged spill file into `<dir>/quarantine/` for post-mortem
    /// inspection. Best-effort, never panics: if the move fails the file
    /// is deleted instead, so a bad entry can never be served twice.
    fn quarantine(&self, path: &Path) {
        let Some(dir) = self.spill_dir.as_ref() else {
            return;
        };
        let qdir = dir.join("quarantine");
        let moved = std::fs::create_dir_all(&qdir).is_ok()
            && std::fs::rename(path, qdir.join(path.file_name().unwrap_or_default())).is_ok();
        if !moved {
            let _ = std::fs::remove_file(path);
        }
    }

    /// Warm-start integrity scan: verify every spill entry, quarantine
    /// anything damaged (including `*.tmp.*` leftovers from a writer
    /// killed mid-spill). Entries are checked in sorted path order;
    /// verified bodies are *not* loaded into memory — promotion stays
    /// lazy via [`ShardedCache::get_disk`].
    pub fn verify_spill(&self) -> SpillScan {
        let mut scan = SpillScan::default();
        let Some(dir) = self.spill_dir.as_ref() else {
            return scan;
        };
        let Ok(entries) = std::fs::read_dir(dir) else {
            return scan; // no directory yet: nothing spilled, nothing to verify
        };
        let mut paths: Vec<PathBuf> = entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.is_file())
            .collect();
        paths.sort();
        for path in paths {
            let name = path.file_name().unwrap_or_default().to_string_lossy().into_owned();
            if name.contains(".tmp.") {
                // A torn write: the writer died between `write` and
                // `rename`. The real entry (if any) is intact; the
                // fragment goes to quarantine.
                self.quarantine(&path);
                scan.quarantined += 1;
                continue;
            }
            if !name.ends_with(".cell") {
                continue; // not ours (legacy or foreign file); never served, never touched
            }
            let intact = std::fs::read(&path).is_ok_and(|raw| decode_cell(&raw).is_ok());
            if intact {
                scan.verified += 1;
            } else {
                self.quarantine(&path);
                scan.quarantined += 1;
            }
        }
        scan
    }
}

/// Render a spill entry: the versioned header line (schema id, body
/// length in bytes, FNV-1a checksum of the body), then the raw body.
pub fn encode_cell(body: &str) -> String {
    format!(
        "{} {} {:016x}\n{}",
        pvs_core::schema::SPILL_CELL_V1,
        body.len(),
        pvs_core::hash::fnv1a(body.as_bytes()),
        body
    )
}

/// Verify and strip the spill header. Every failure mode — missing or
/// malformed header, wrong schema, short (truncated) or long body,
/// checksum mismatch, invalid UTF-8 — is a one-line error; the caller
/// quarantines on any of them.
pub fn decode_cell(raw: &[u8]) -> Result<String, String> {
    let text = std::str::from_utf8(raw).map_err(|e| format!("not UTF-8: {e}"))?;
    let (header, body) = text.split_once('\n').ok_or("missing spill header line")?;
    let mut fields = header.split(' ');
    let (schema, len, sum) = match (fields.next(), fields.next(), fields.next(), fields.next()) {
        (Some(s), Some(l), Some(c), None) => (s, l, c),
        _ => return Err(format!("malformed spill header {header:?}")),
    };
    if schema != pvs_core::schema::SPILL_CELL_V1 {
        return Err(format!("unknown spill schema {schema:?}"));
    }
    let len: usize = len.parse().map_err(|e| format!("bad spill length {len:?}: {e}"))?;
    let sum = u64::from_str_radix(sum, 16).map_err(|e| format!("bad spill checksum: {e}"))?;
    if body.len() != len {
        return Err(format!("spill body is {} bytes, header says {len}", body.len()));
    }
    if pvs_core::hash::fnv1a(body.as_bytes()) != sum {
        return Err("spill checksum mismatch".to_string());
    }
    Ok(body.to_string())
}

/// Atomic file write, same convention as `pvs_bench::cli::write_atomic`
/// (duplicated here because the dependency points the other way: the
/// bench binaries link against this crate). Content lands in a sibling
/// `*.tmp.<pid>` and is renamed into place; on failure the temp file is
/// removed and any pre-existing target survives untouched.
pub fn write_atomic(path: &Path, contents: &str) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(format!(".tmp.{}", std::process::id()));
    let tmp = path.with_file_name(name);
    let result = std::fs::write(&tmp, contents).and_then(|()| std::fs::rename(&tmp, path));
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("pvs_serve_cache_{}_{name}", std::process::id()))
    }

    fn disk_hit(c: &ShardedCache, key: &str) -> Arc<str> {
        match c.get_disk(key) {
            DiskRead::Hit(body) => body,
            other => panic!("expected hit, got {other:?}"),
        }
    }

    #[test]
    fn memory_roundtrip_and_shard_stability() {
        let c = ShardedCache::new(4, None);
        assert!(c.is_empty());
        assert!(c.get_memory("0123456789abcdef").is_none());
        c.insert("0123456789abcdef", "body-a".into()).unwrap();
        c.insert("fedcba9876543210", "body-b".into()).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(&*c.get_memory("0123456789abcdef").unwrap(), "body-a");
        assert_eq!(&*c.get_memory("fedcba9876543210").unwrap(), "body-b");
        // Re-insert replaces.
        c.insert("0123456789abcdef", "body-a2".into()).unwrap();
        assert_eq!(&*c.get_memory("0123456789abcdef").unwrap(), "body-a2");
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn disk_spill_roundtrips_and_promotes() {
        let dir = scratch("spill");
        let _ = std::fs::remove_dir_all(&dir);
        let warm = ShardedCache::new(2, Some(dir.clone()));
        warm.insert("00000000000000aa", "spilled body".into()).unwrap();
        assert!(dir.join("00000000000000aa.cell").exists());

        // A cold cache (fresh process restart) finds the entry on disk
        // and promotes it into memory.
        let cold = ShardedCache::new(2, Some(dir.clone()));
        assert!(cold.get_memory("00000000000000aa").is_none());
        assert_eq!(&*disk_hit(&cold, "00000000000000aa"), "spilled body");
        assert_eq!(&*cold.get_memory("00000000000000aa").unwrap(), "spilled body");
        assert_eq!(cold.get_disk("00000000000000bb"), DiskRead::Miss);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn spill_entries_carry_header_and_decode_rejects_damage() {
        let body = "{\"time_s\":1.5}";
        let encoded = encode_cell(body);
        assert!(encoded.starts_with(pvs_core::schema::SPILL_CELL_V1));
        assert_eq!(decode_cell(encoded.as_bytes()).unwrap(), body);

        // Every strict prefix (a torn write) is rejected.
        for cut in 0..encoded.len() {
            assert!(
                decode_cell(encoded[..cut].as_bytes()).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
        // Any single-byte flip in the body is caught by the checksum.
        for i in encoded.find('\n').unwrap() + 1..encoded.len() {
            let mut bytes = encoded.as_bytes().to_vec();
            bytes[i] ^= 0x01;
            assert!(decode_cell(&bytes).is_err(), "flip at byte {i} decoded");
        }
        // A wrong schema line is rejected even with a valid body.
        let other = format!("pvs-serve/spill-cell-v9 {} {:016x}\n{body}", body.len(), 0u64);
        assert!(decode_cell(other.as_bytes()).unwrap_err().contains("schema"));
    }

    #[test]
    fn torn_write_is_quarantined_and_restart_serves_nothing_bad() {
        let dir = scratch("torn");
        let _ = std::fs::remove_dir_all(&dir);
        let warm = ShardedCache::new(2, Some(dir.clone()));
        warm.insert("00000000000000aa", "good body".into()).unwrap();
        warm.insert("00000000000000bb", "other body".into()).unwrap();

        // Kill-the-writer-mid-spill simulation: truncate one entry to a
        // prefix of itself (a non-atomic torn write) and leave a partial
        // temp file (the atomic writer's artifact when killed between
        // write and rename).
        let torn = dir.join("00000000000000aa.cell");
        let full = std::fs::read(&torn).unwrap();
        std::fs::write(&torn, &full[..full.len() / 2]).unwrap();
        std::fs::write(dir.join("00000000000000cc.cell.tmp.999"), b"partial").unwrap();

        let cold = ShardedCache::new(2, Some(dir.clone()));
        let scan = cold.verify_spill();
        assert_eq!(scan, SpillScan { verified: 1, quarantined: 2 }, "{scan:?}");
        // The torn entry reads as corrupt-before-scan too: a second
        // cold cache (no warm-start scan) still refuses to serve it.
        assert_eq!(cold.get_disk("00000000000000aa"), DiskRead::Miss, "quarantined");
        assert_eq!(&*disk_hit(&cold, "00000000000000bb"), "other body");
        // Quarantine holds both artifacts.
        let q: Vec<_> = std::fs::read_dir(dir.join("quarantine")).unwrap().flatten().collect();
        assert_eq!(q.len(), 2, "{q:?}");
        // A rescan is idempotent: quarantined files never come back.
        assert_eq!(cold.verify_spill(), SpillScan { verified: 1, quarantined: 0 });
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flipped_entry_is_never_served() {
        let dir = scratch("flip");
        let _ = std::fs::remove_dir_all(&dir);
        let warm = ShardedCache::new(1, Some(dir.clone()));
        warm.insert("00000000000000aa", "precious bytes".into()).unwrap();
        let path = dir.join("00000000000000aa.cell");
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x20; // flip one bit inside the body
        std::fs::write(&path, &bytes).unwrap();

        let cold = ShardedCache::new(1, Some(dir.clone()));
        assert_eq!(cold.get_disk("00000000000000aa"), DiskRead::Corrupt);
        assert!(!path.exists(), "corrupt entry must leave the serving path");
        assert!(dir.join("quarantine").join("00000000000000aa.cell").exists());
        // After quarantine the key is a plain miss, ready to recompute.
        assert_eq!(cold.get_disk("00000000000000aa"), DiskRead::Miss);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn no_temp_files_survive_inserts() {
        let dir = scratch("tmpclean");
        let _ = std::fs::remove_dir_all(&dir);
        let c = ShardedCache::new(1, Some(dir.clone()));
        for i in 0..8 {
            c.insert(&format!("{i:016x}"), format!("body {i}").into()).unwrap();
        }
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.path().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn single_shard_degenerate_case_works() {
        let c = ShardedCache::new(0, None); // clamped to 1
        assert_eq!(c.shards(), 1);
        c.insert("00000000000000cc", "x".into()).unwrap();
        assert_eq!(&*c.get_memory("00000000000000cc").unwrap(), "x");
    }
}
