//! Content-addressed response cache: sharded in-memory map with an
//! optional on-disk spill.
//!
//! Keys are the 16-hex-digit content addresses of
//! [`crate::workload::Request::key_hash`]; values are fully rendered
//! response bodies. Shard selection hashes the key with the same stable
//! FNV-1a the addresses use, so a key always lands on the same shard in
//! every process. Storage is `BTreeMap` (PVS005: no unordered iteration
//! anywhere near rendered output) and each shard takes its own lock, so
//! concurrent hits on different shards never contend.
//!
//! The spill directory holds one `<key>.json` file per entry, written
//! via the workspace's atomic-write convention (content to a sibling
//! `*.tmp.<pid>`, then rename): a crashed server never leaves a
//! truncated entry where a good one was expected, and a restarted server
//! warm-starts from whatever the previous one computed.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Default shard count: enough to make cross-request lock contention
/// negligible at the connection counts the load generator drives.
pub const DEFAULT_SHARDS: usize = 16;

/// Sharded `key → rendered response` store with optional disk spill.
#[derive(Debug)]
pub struct ShardedCache {
    // LOCK ORDER: 20 — taken under the flight map (tier 10) on the
    // request path; shard holders never take another lock (at most one
    // shard guard is ever live).
    shards: Vec<Mutex<BTreeMap<String, Arc<str>>>>,
    spill_dir: Option<PathBuf>,
}

impl ShardedCache {
    /// Cache with `shards` shards (at least one) and, when `spill_dir`
    /// is set, a disk spill under that directory (created on first
    /// insert).
    pub fn new(shards: usize, spill_dir: Option<PathBuf>) -> Self {
        Self {
            shards: (0..shards.max(1)).map(|_| Mutex::new(BTreeMap::new())).collect(),
            spill_dir,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Total entries across shards (memory only).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| self.lock_shard(s).len()).sum()
    }

    /// Whether the in-memory cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock_shard<'a>(
        &self,
        shard: &'a Mutex<BTreeMap<String, Arc<str>>>,
    ) -> std::sync::MutexGuard<'a, BTreeMap<String, Arc<str>>> {
        // INFALLIBLE: shard holders only touch the map — no user code
        // runs under the lock, so poisoning is unreachable.
        shard.lock().expect("cache shard poisoned")
    }

    fn shard_of(&self, key: &str) -> &Mutex<BTreeMap<String, Arc<str>>> {
        let idx = pvs_core::hash::fnv1a(key.as_bytes()) as usize % self.shards.len();
        &self.shards[idx]
    }

    fn spill_path(&self, key: &str) -> Option<PathBuf> {
        self.spill_dir.as_ref().map(|d| d.join(format!("{key}.json")))
    }

    /// Memory lookup only.
    pub fn get_memory(&self, key: &str) -> Option<Arc<str>> {
        self.lock_shard(self.shard_of(key)).get(key).cloned()
    }

    /// Disk lookup: on a spill hit the entry is promoted into memory so
    /// the next request is a memory hit.
    pub fn get_disk(&self, key: &str) -> Option<Arc<str>> {
        let path = self.spill_path(key)?;
        let body: Arc<str> = std::fs::read_to_string(path).ok()?.into();
        self.lock_shard(self.shard_of(key)).insert(key.to_string(), Arc::clone(&body));
        Some(body)
    }

    /// Insert into memory and, when spilling is on, persist to disk.
    /// Returns `Err` only for spill I/O failures — the memory insert has
    /// already happened, so serving continues degraded rather than not
    /// at all.
    pub fn insert(&self, key: &str, body: Arc<str>) -> std::io::Result<()> {
        self.lock_shard(self.shard_of(key)).insert(key.to_string(), Arc::clone(&body));
        match self.spill_path(key) {
            None => Ok(()),
            Some(path) => write_atomic(&path, &body),
        }
    }
}

/// Atomic file write, same convention as `pvs_bench::cli::write_atomic`
/// (duplicated here because the dependency points the other way: the
/// bench binaries link against this crate). Content lands in a sibling
/// `*.tmp.<pid>` and is renamed into place; on failure the temp file is
/// removed and any pre-existing target survives untouched.
pub fn write_atomic(path: &Path, contents: &str) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(format!(".tmp.{}", std::process::id()));
    let tmp = path.with_file_name(name);
    let result = std::fs::write(&tmp, contents).and_then(|()| std::fs::rename(&tmp, path));
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("pvs_serve_cache_{}_{name}", std::process::id()))
    }

    #[test]
    fn memory_roundtrip_and_shard_stability() {
        let c = ShardedCache::new(4, None);
        assert!(c.is_empty());
        assert!(c.get_memory("0123456789abcdef").is_none());
        c.insert("0123456789abcdef", "body-a".into()).unwrap();
        c.insert("fedcba9876543210", "body-b".into()).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(&*c.get_memory("0123456789abcdef").unwrap(), "body-a");
        assert_eq!(&*c.get_memory("fedcba9876543210").unwrap(), "body-b");
        // Re-insert replaces.
        c.insert("0123456789abcdef", "body-a2".into()).unwrap();
        assert_eq!(&*c.get_memory("0123456789abcdef").unwrap(), "body-a2");
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn disk_spill_roundtrips_and_promotes() {
        let dir = scratch("spill");
        let _ = std::fs::remove_dir_all(&dir);
        let warm = ShardedCache::new(2, Some(dir.clone()));
        warm.insert("00000000000000aa", "spilled body".into()).unwrap();
        assert!(dir.join("00000000000000aa.json").exists());

        // A cold cache (fresh process restart) finds the entry on disk
        // and promotes it into memory.
        let cold = ShardedCache::new(2, Some(dir.clone()));
        assert!(cold.get_memory("00000000000000aa").is_none());
        assert_eq!(&*cold.get_disk("00000000000000aa").unwrap(), "spilled body");
        assert_eq!(&*cold.get_memory("00000000000000aa").unwrap(), "spilled body");
        assert!(cold.get_disk("00000000000000bb").is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn no_temp_files_survive_inserts() {
        let dir = scratch("tmpclean");
        let _ = std::fs::remove_dir_all(&dir);
        let c = ShardedCache::new(1, Some(dir.clone()));
        for i in 0..8 {
            c.insert(&format!("{i:016x}"), format!("body {i}").into()).unwrap();
        }
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.path().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn single_shard_degenerate_case_works() {
        let c = ShardedCache::new(0, None); // clamped to 1
        assert_eq!(c.shards(), 1);
        c.insert("00000000000000cc", "x".into()).unwrap();
        assert_eq!(&*c.get_memory("00000000000000cc").unwrap(), "x");
    }
}
