//! The [`CellStore`]: cache, single-flight batching, admission control,
//! deadline propagation, and supervised recovery behind one `get` call —
//! the clock-free heart of the serving layer.
//!
//! Request flow:
//!
//! 1. **Validate** — malformed requests are rejected before touching any
//!    shared state.
//! 2. **Memory, then disk** — a hit returns the cached bytes untouched.
//!    Disk entries are checksum-verified before serving; a damaged entry
//!    is quarantined ([`crate::cache`]) and recomputed, never served.
//! 3. **Supervisor check** — a key that has panicked the simulation
//!    [`StoreOptions::max_key_panics`] times is *poisoned*: it is served
//!    as a structured [`ServeError::Failed`] instead of re-running a
//!    crashing input forever.
//! 4. **Deadline** — a request carrying a budget
//!    ([`BudgetProbe`]) is checked at admission, while waiting on a
//!    flight, and at simulation dispatch; an exhausted budget returns
//!    [`ServeError::DeadlineExceeded`] naming the stage. Cache hits are
//!    probed *before* the budget, so a warm key always serves.
//! 5. **Single-flight** — concurrent misses on the same key coalesce
//!    onto one in-flight simulation: the first caller becomes the leader
//!    and submits the cell to the shared [`pvs_core::ThreadPool`];
//!    followers wait on the leader's flight and receive the same `Arc`'d
//!    bytes. N identical in-flight requests cost exactly one simulation.
//!    If the leader's simulation panics (or its deadline expires before
//!    dispatch), followers are *re-driven*: they loop back and elect a
//!    new leader rather than being stranded on a dead flight.
//! 6. **Admission control** — distinct in-flight simulations are capped
//!    at `max_pending`; a miss arriving at the cap is answered
//!    `overloaded` immediately — with a deterministic `retry_after_ms`
//!    hint derived from the queue depth — instead of growing an
//!    unbounded backlog. Cache hits (and followers of existing flights)
//!    are never rejected: the cap bounds *new work*, not traffic.
//!
//! Because a cell is a pure function of its key (the workspace's
//! determinism invariant), serving a cached body and recomputing it are
//! observably identical — byte-for-byte. The store records every
//! decision into a [`pvs_obs::Registry`] under `serve.*` names. This
//! module holds no clock: deadlines arrive as externally supplied
//! remaining-budget probes (the TCP edge builds them from its wall
//! clock; tests use deterministic countdowns).

use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use pvs_core::engine::Engine;
use pvs_core::ThreadPool;
use pvs_obs::{Recorder, Registry, Snapshot};
use pvs_report::json::perf_report;

use crate::cache::{DiskRead, ShardedCache, DEFAULT_SHARDS};
use crate::workload::{Request, RequestError};

/// Remaining-deadline probe: returns how much budget the request has
/// left (`Duration::ZERO` = expired). The store itself never reads a
/// clock; callers that have one (the TCP edge) close over it, and tests
/// supply deterministic countdowns.
pub type BudgetProbe = Arc<dyn Fn() -> Duration + Send + Sync>;

/// How often a budgeted waiter re-checks its probe while parked on a
/// flight. Requests without a deadline block without polling.
const WAIT_POLL: Duration = Duration::from_millis(5);

/// Re-drive attempts before a follower gives up on a key whose leaders
/// keep dying. Generous: each attempt either succeeds, poisons the key
/// (→ structured `failed`), or burns one of `max_key_panics`, so the
/// loop converges long before this backstop.
const MAX_REDRIVES: u32 = 8;

/// Deterministic panic-injection knob for resilience harnesses: the
/// simulation panics on keys containing `key_substring` until that key
/// has panicked `times` times. `times = 1` exercises follower re-drive
/// and recovery; `times = u32::MAX` exercises poison-pill retirement.
#[derive(Debug, Clone)]
pub struct PanicSpec {
    /// Substring of the 16-hex content address to target.
    pub key_substring: String,
    /// How many panics to inject before the key computes normally.
    pub times: u32,
}

/// Knobs for one store.
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Worker threads for the simulation pool.
    pub threads: usize,
    /// Cache shard count.
    pub shards: usize,
    /// Maximum distinct in-flight simulations before misses are
    /// rejected `overloaded`. `0` rejects every miss (useful in tests
    /// and as a drain mode); hits always serve.
    pub max_pending: usize,
    /// On-disk spill directory (`None` = memory only).
    pub spill_dir: Option<PathBuf>,
    /// Panics on the same key before the supervisor poisons it.
    pub max_key_panics: u32,
    /// Deterministic fault injection (harness use only).
    pub panic_inject: Option<PanicSpec>,
}

impl Default for StoreOptions {
    fn default() -> Self {
        Self {
            threads: pvs_core::pool::default_threads(),
            shards: DEFAULT_SHARDS,
            max_pending: 64,
            spill_dir: None,
            max_key_panics: 3,
            panic_inject: None,
        }
    }
}

/// Where a served body came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellSource {
    /// In-memory cache hit.
    Memory,
    /// Disk-spill hit (now promoted to memory).
    Disk,
    /// This request led the simulation.
    Computed,
    /// This request coalesced onto another request's simulation.
    Batched,
}

impl CellSource {
    /// Wire spelling (the response `source` field).
    pub fn as_str(self) -> &'static str {
        match self {
            CellSource::Memory => "memory",
            CellSource::Disk => "disk",
            CellSource::Computed => "computed",
            CellSource::Batched => "batched",
        }
    }
}

/// A successfully served cell.
#[derive(Debug, Clone)]
pub struct CellResponse {
    /// Content address (16 hex digits).
    pub key: String,
    /// The rendered model report — byte-identical to
    /// `pvs_report::json::perf_report` over a direct engine run.
    pub body: Arc<str>,
    /// How the store satisfied the request.
    pub source: CellSource,
}

/// Why a request was not served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The request failed validation.
    BadRequest(RequestError),
    /// Admission control: too many distinct simulations in flight.
    Overloaded {
        /// Distinct in-flight simulations at rejection time.
        pending: usize,
        /// The configured cap.
        max: usize,
        /// Deterministic backoff hint: how long the client should wait
        /// before retrying, derived from the queue depth.
        retry_after_ms: u64,
    },
    /// The request's deadline budget ran out before a body was ready.
    DeadlineExceeded {
        /// Which stage observed the expiry: `"admission"`, `"wait"`, or
        /// `"dispatch"`.
        stage: &'static str,
    },
    /// The key is poisoned: its simulation panicked `panics` times and
    /// the supervisor retired it rather than re-running a crashing
    /// input forever.
    Failed {
        /// Panic count at retirement.
        panics: u32,
    },
    /// The simulation panicked (a bug, not a client error); the flight
    /// is failed so followers are not stranded.
    Internal(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::BadRequest(e) => write!(f, "bad request: {e}"),
            ServeError::Overloaded { pending, max, retry_after_ms } => {
                write!(
                    f,
                    "overloaded: {pending} simulations in flight (max {max}), retry in {retry_after_ms} ms"
                )
            }
            ServeError::DeadlineExceeded { stage } => {
                write!(f, "deadline exceeded at {stage}")
            }
            ServeError::Failed { panics } => {
                write!(f, "key poisoned after {panics} simulation panics")
            }
            ServeError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

/// Deterministic backoff hint for a rejection observed at `pending`
/// in-flight simulations: deeper queue, longer hint, capped at 2 s.
fn retry_after_ms(pending: usize) -> u64 {
    (20 * (pending as u64 + 1)).min(2_000)
}

/// How an in-flight simulation failed to produce a body.
#[derive(Debug, Clone, PartialEq, Eq)]
enum FlightFail {
    /// The simulation panicked.
    Panicked(String),
    /// The supervisor had already poisoned the key (after this many
    /// panics) when the job reached the front of the pool queue.
    Poisoned(u32),
    /// The leader's deadline expired before the simulation dispatched,
    /// so no work was done.
    Abandoned,
}

/// One in-flight simulation that any number of requests may wait on.
#[derive(Debug, Default)]
struct Flight {
    // LOCK ORDER: 15 — leaf under the flight map: `fulfill`/`wait` take
    // it with no other serve lock held, and flight-map holders never
    // reach into a slot.
    slot: Mutex<Option<Result<Arc<str>, FlightFail>>>,
    done: Condvar,
}

impl Flight {
    fn fulfill(&self, result: Result<Arc<str>, FlightFail>) {
        // INFALLIBLE: slot holders only move a value — no user code
        // runs under the lock.
        *self.slot.lock().expect("flight slot poisoned") = Some(result);
        self.done.notify_all();
    }

    fn wait(&self) -> Result<Arc<str>, FlightFail> {
        // INFALLIBLE: see `fulfill`.
        let mut slot = self.slot.lock().expect("flight slot poisoned");
        loop {
            match &*slot {
                Some(result) => return result.clone(),
                // INFALLIBLE: waiting repoisons only on a panicked holder.
                None => slot = self.done.wait(slot).expect("flight wait"),
            }
        }
    }

    /// Wait with a deadline: `None` means the probe expired before the
    /// flight produced a result. The result is checked *before* the
    /// probe on every pass, so a fulfilled flight always wins a race
    /// against an expiring budget.
    fn wait_budgeted(&self, probe: &BudgetProbe) -> Option<Result<Arc<str>, FlightFail>> {
        // INFALLIBLE: see `fulfill`.
        let mut slot = self.slot.lock().expect("flight slot poisoned");
        loop {
            if let Some(result) = &*slot {
                return Some(result.clone());
            }
            if probe().is_zero() {
                return None;
            }
            // INFALLIBLE: waiting repoisons only on a panicked holder.
            slot = self.done.wait_timeout(slot, WAIT_POLL).expect("flight wait").0;
        }
    }
}

/// Panic bookkeeping for poison-pill detection.
#[derive(Debug, Default)]
struct SupervisorState {
    /// Panics observed per key.
    panics: BTreeMap<String, u32>,
    /// Keys retired after reaching `max_key_panics`.
    failed: BTreeSet<String>,
}

/// The serving core. Share it across connection handlers with an `Arc`.
pub struct CellStore {
    cache: ShardedCache,
    pool: ThreadPool,
    // LOCK ORDER: 10 — outermost serve lock: `get` consults the cache
    // shards (tier 20) and the registry (tier 30) under it, so it must
    // sit below both in the order.
    flights: Mutex<BTreeMap<String, Arc<Flight>>>,
    max_pending: usize,
    max_key_panics: u32,
    panic_inject: Option<PanicSpec>,
    // LOCK ORDER: 12 — supervisor panic ledger. Always taken standalone
    // (never while holding the flight map or a slot); holders only
    // update the two maps before touching the registry (tier 30).
    supervisor: Mutex<SupervisorState>,
    registry: Arc<Registry>,
    // LOCK ORDER: 35 — stats delta baseline. Taken only in
    // `stats_snapshot`, strictly after the registry snapshot (tier 30)
    // has been materialized and released; nothing is acquired under it.
    stats_baseline: Mutex<Snapshot>,
}

impl std::fmt::Debug for CellStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CellStore")
            .field("max_pending", &self.max_pending)
            .field("cached_cells", &self.cache.len())
            .finish_non_exhaustive()
    }
}

impl CellStore {
    /// Build a store from options. When a spill directory is configured
    /// this runs the warm-start integrity scan: every on-disk entry is
    /// checksum-verified, damaged or torn files are quarantined, and the
    /// outcome lands in `serve.store.verified` / `serve.store.quarantined`
    /// before the first request can arrive.
    pub fn new(options: StoreOptions) -> Self {
        let cache = ShardedCache::new(options.shards, options.spill_dir);
        let registry = Arc::new(Registry::new());
        let scan = cache.verify_spill();
        if scan.verified > 0 {
            registry.add("serve.store.verified", scan.verified);
        }
        if scan.quarantined > 0 {
            registry.add("serve.store.quarantined", scan.quarantined);
        }
        Self {
            cache,
            pool: ThreadPool::new(options.threads),
            flights: Mutex::new(BTreeMap::new()),
            max_pending: options.max_pending,
            max_key_panics: options.max_key_panics.max(1),
            panic_inject: options.panic_inject,
            supervisor: Mutex::new(SupervisorState::default()),
            registry,
            stats_baseline: Mutex::new(Snapshot::default()),
        }
    }

    /// The store's observability registry (`serve.*` counters/gauges).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// In-memory cache entries.
    pub fn cached_cells(&self) -> usize {
        self.cache.len()
    }

    /// Distinct simulations in flight right now.
    pub fn inflight(&self) -> usize {
        self.lock_flights().len()
    }

    /// Registry snapshot for a `stats` response. Cumulative mode copies
    /// the registry; delta mode reports the change since the previous
    /// delta request and advances the stored baseline, so consecutive
    /// delta snapshots tile the timeline without gaps or overlaps.
    pub fn stats_snapshot(&self, delta: bool) -> Snapshot {
        let now = self.registry.snapshot();
        if !delta {
            return now;
        }
        // Swap the stored baseline under the lock, but difference the
        // snapshots *outside* it: `delta_since` walks snapshot lookups
        // whose names the lock-order lint resolves against the (locking)
        // registry methods, and the baseline tier (35) sits above the
        // registry's (30).
        let prev = {
            // INFALLIBLE: baseline holders only swap a snapshot value.
            let mut baseline = self.stats_baseline.lock().expect("stats baseline poisoned");
            std::mem::replace(&mut *baseline, now.clone())
        };
        now.delta_since(&prev)
    }

    fn lock_flights(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Arc<Flight>>> {
        // INFALLIBLE: flight-map holders only update the map and gauges.
        self.flights.lock().expect("flight map poisoned")
    }

    fn lock_supervisor(&self) -> std::sync::MutexGuard<'_, SupervisorState> {
        // INFALLIBLE: supervisor holders only update the panic ledger.
        self.supervisor.lock().expect("supervisor poisoned")
    }

    /// Panics recorded so far for `key`.
    fn panics_so_far(&self, key: &str) -> u32 {
        self.lock_supervisor().panics.get(key).copied().unwrap_or(0)
    }

    /// If `key` is retired, its panic count at retirement.
    fn failed_panics(&self, key: &str) -> Option<u32> {
        let sup = self.lock_supervisor();
        sup.failed.contains(key).then(|| sup.panics.get(key).copied().unwrap_or(0))
    }

    /// Record one panic on `key`; retire the key once the count reaches
    /// `max_key_panics`. Returns the new count.
    fn note_panic(&self, key: &str) -> u32 {
        let poisoned;
        let count;
        {
            let mut sup = self.lock_supervisor();
            let entry = sup.panics.entry(key.to_string()).or_insert(0);
            *entry += 1;
            count = *entry;
            poisoned = count >= self.max_key_panics && sup.failed.insert(key.to_string());
        }
        if poisoned {
            self.registry.add("serve.supervisor.poisoned", 1);
        }
        count
    }

    /// Serve one request with no deadline. Blocks the calling thread
    /// until the body is available (or the request is rejected);
    /// concurrency comes from calling this from many connection threads
    /// at once.
    pub fn get(self: &Arc<Self>, request: &Request) -> Result<CellResponse, ServeError> {
        self.get_with_budget(request, None)
    }

    /// Serve one request, optionally bounded by a deadline budget. The
    /// probe is consulted at admission, while waiting on a flight, and
    /// at simulation dispatch; cache hits are served before the budget
    /// is ever consulted (a warm key costs nothing, so expiring it
    /// helps no one).
    pub fn get_with_budget(
        self: &Arc<Self>,
        request: &Request,
        budget: Option<BudgetProbe>,
    ) -> Result<CellResponse, ServeError> {
        self.registry.add("serve.requests", 1);
        if budget.is_some() {
            self.registry.add("serve.deadline.requests", 1);
        }
        let resolved = match request.resolve() {
            Ok(r) => r,
            Err(e) => {
                self.registry.add("serve.errors.bad_request", 1);
                return Err(ServeError::BadRequest(e));
            }
        };
        let key = request.key_hash();

        if let Some(body) = self.cache.get_memory(&key) {
            self.registry.add("serve.cache.hits", 1);
            return Ok(CellResponse { key, body, source: CellSource::Memory });
        }
        match self.cache.get_disk(&key) {
            DiskRead::Hit(body) => {
                self.registry.add("serve.cache.disk_hits", 1);
                return Ok(CellResponse { key, body, source: CellSource::Disk });
            }
            DiskRead::Corrupt => {
                // The entry was quarantined; fall through and recompute.
                self.registry.add("serve.store.corrupt", 1);
            }
            DiskRead::Miss => {}
        }

        // Miss: single-flight with supervised re-drive. Each pass either
        // returns, or (for a follower orphaned by a dead leader) loops
        // to elect a new one.
        let mut dead_flight: Option<Arc<Flight>> = None;
        for attempt in 0..=MAX_REDRIVES {
            if attempt > 0 {
                self.registry.add("serve.supervisor.redrives", 1);
            }
            if let Some(panics) = self.failed_panics(&key) {
                self.registry.add("serve.supervisor.failed_served", 1);
                return Err(ServeError::Failed { panics });
            }
            if let Some(probe) = &budget {
                if probe().is_zero() {
                    self.registry.add("serve.deadline.rejected", 1);
                    return Err(ServeError::DeadlineExceeded { stage: "admission" });
                }
            }

            let (flight, leader) = {
                let mut flights = self.lock_flights();
                // Double-check under the flight lock: a flight that
                // completed between the cache probe above and this lock
                // has already populated the cache, and must not be
                // recomputed.
                if let Some(body) = self.cache.get_memory(&key) {
                    self.registry.add("serve.cache.hits", 1);
                    return Ok(CellResponse { key, body, source: CellSource::Memory });
                }
                // A re-driving follower may observe the flight it just
                // watched die still in the map (the job removes it after
                // fulfilling); joining it again would spin. Evict it —
                // idempotent with the job's own cleanup.
                if let Some(dead) = &dead_flight {
                    if flights.get(&key).is_some_and(|f| Arc::ptr_eq(f, dead)) {
                        flights.remove(&key);
                    }
                }
                match flights.get(&key) {
                    Some(flight) => (Arc::clone(flight), false),
                    None => {
                        if flights.len() >= self.max_pending {
                            let pending = flights.len();
                            self.registry.add("serve.queue.rejected", 1);
                            return Err(ServeError::Overloaded {
                                pending,
                                max: self.max_pending,
                                retry_after_ms: retry_after_ms(pending),
                            });
                        }
                        let flight = Arc::new(Flight::default());
                        flights.insert(key.clone(), Arc::clone(&flight));
                        self.registry.gauge_set("serve.queue.depth", flights.len() as u64);
                        self.registry.gauge_max("serve.queue.peak_depth", flights.len() as u64);
                        (flight, true)
                    }
                }
            };

            if leader {
                self.registry.add("serve.cache.misses", 1);
                let store = Arc::clone(self);
                let flight_for_job = Arc::clone(&flight);
                let job_key = key.clone();
                let job_budget = budget.clone();
                let resolved = resolved.clone();
                self.pool.spawn(move || {
                    store.run_flight(job_key, resolved, flight_for_job, job_budget);
                });
            } else {
                self.registry.add("serve.cache.batched_misses", 1);
            }

            let outcome = match &budget {
                None => flight.wait(),
                Some(probe) => match flight.wait_budgeted(probe) {
                    Some(outcome) => outcome,
                    None => {
                        self.registry.add("serve.deadline.expired_wait", 1);
                        return Err(ServeError::DeadlineExceeded { stage: "wait" });
                    }
                },
            };
            match outcome {
                Ok(body) => {
                    return Ok(CellResponse {
                        key,
                        body,
                        source: if leader { CellSource::Computed } else { CellSource::Batched },
                    })
                }
                Err(FlightFail::Poisoned(panics)) => {
                    self.registry.add("serve.supervisor.failed_served", 1);
                    return Err(ServeError::Failed { panics });
                }
                Err(FlightFail::Panicked(msg)) if leader => {
                    // The leader's own simulation died; that is this
                    // request's definitive answer. Followers re-drive.
                    return Err(ServeError::Internal(msg));
                }
                Err(FlightFail::Abandoned) if leader => {
                    return Err(ServeError::DeadlineExceeded { stage: "dispatch" });
                }
                Err(FlightFail::Panicked(_) | FlightFail::Abandoned) => {
                    dead_flight = Some(flight);
                }
            }
        }
        self.registry.add("serve.errors.internal", 1);
        Err(ServeError::Internal(format!("gave up on {key} after {MAX_REDRIVES} re-drives")))
    }

    /// The pool-side half of a flight: run the simulation under
    /// `catch_unwind`, record the outcome, fulfill the flight, and
    /// retire it from the map. Ordering matters for determinism: the
    /// supervisor ledger is updated *before* waiters wake (so a
    /// re-driving follower always observes the panic that orphaned it),
    /// and the flight leaves the map last.
    fn run_flight(
        self: &Arc<Self>,
        key: String,
        resolved: crate::workload::ResolvedCell,
        flight: Arc<Flight>,
        budget: Option<BudgetProbe>,
    ) {
        let result = if let Some(panics) = self.failed_panics(&key) {
            // Poisoned while this job sat in the pool queue: answer
            // structurally, run nothing.
            Err(FlightFail::Poisoned(panics))
        } else if budget.as_ref().is_some_and(|probe| probe().is_zero()) {
            // The leader's budget died in the queue; don't burn a
            // simulation nobody is willing to wait for. Followers with
            // live budgets re-drive.
            self.registry.add("serve.deadline.abandoned", 1);
            Err(FlightFail::Abandoned)
        } else {
            let store = Arc::clone(self);
            let job_key = key.clone();
            let computed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                store.registry.add("serve.sim.runs", 1);
                if let Some(spec) = &store.panic_inject {
                    if job_key.contains(&spec.key_substring)
                        && store.panics_so_far(&job_key) < spec.times
                    {
                        panic!("injected panic for key {job_key}");
                    }
                }
                let mut engine = Engine::new(resolved.machine);
                if let Some(adversity) = resolved.adversity {
                    engine = engine.with_adversity(adversity);
                }
                let report = engine.run(&resolved.phases, resolved.procs);
                let body: Arc<str> = perf_report(&report).into();
                if store.cache.insert(&job_key, Arc::clone(&body)).is_err() {
                    store.registry.add("serve.spill.errors", 1);
                }
                body
            }));
            match computed {
                Ok(body) => Ok(body),
                Err(_) => {
                    self.registry.add("serve.sim.panics", 1);
                    self.registry.add("serve.errors.internal", 1);
                    let count = self.note_panic(&key);
                    Err(FlightFail::Panicked(format!(
                        "simulation panicked ({count} panic{} on this key)",
                        if count == 1 { "" } else { "s" }
                    )))
                }
            }
        };
        flight.fulfill(result);
        let mut flights = self.lock_flights();
        flights.remove(&key);
        self.registry.gauge_set("serve.queue.depth", flights.len() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvs_core::engine::{run_sweep, SweepJob};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn store(options: StoreOptions) -> Arc<CellStore> {
        Arc::new(CellStore::new(options))
    }

    /// The panic hook is process-global; tests that silence it while
    /// injecting panics serialize here so a concurrent test's restore
    /// can't interleave with another's install.
    static HOOK_GUARD: Mutex<()> = Mutex::new(());

    fn with_silent_panics<T>(f: impl FnOnce() -> T) -> T {
        let _guard = HOOK_GUARD.lock().unwrap_or_else(|e| e.into_inner());
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // keep injected panics off stderr
        let out = f();
        std::panic::set_hook(hook);
        out
    }

    fn lbmhd() -> Request {
        Request::cell("LBMHD", "8192x8192", "ES", 64)
    }

    /// Deterministic budget: reports `calls` nonzero probes, then zero
    /// forever. No wall clock involved.
    fn countdown(calls: u64) -> BudgetProbe {
        let left = AtomicU64::new(calls);
        Arc::new(move || {
            if left.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1)).is_ok() {
                Duration::from_millis(1)
            } else {
                Duration::ZERO
            }
        })
    }

    #[test]
    fn miss_then_hit_serves_identical_bytes() {
        let s = store(StoreOptions { threads: 2, ..Default::default() });
        let first = s.get(&lbmhd()).unwrap();
        assert_eq!(first.source, CellSource::Computed);
        let second = s.get(&lbmhd()).unwrap();
        assert_eq!(second.source, CellSource::Memory);
        assert_eq!(first.body, second.body);
        assert_eq!(s.registry().counter("serve.sim.runs"), 1);
        assert_eq!(s.registry().counter("serve.cache.hits"), 1);
    }

    #[test]
    fn served_body_matches_direct_run_sweep_byte_for_byte() {
        let s = store(StoreOptions { threads: 2, ..Default::default() });
        let req = Request::cell("CACTUS", "250x64x64", "X1", 64);
        let served = s.get(&req).unwrap();
        let resolved = req.resolve().unwrap();
        let direct = run_sweep(vec![SweepJob {
            machine: resolved.machine,
            phases: resolved.phases,
            procs: resolved.procs,
        }]);
        assert_eq!(*served.body, perf_report(&direct[0]));
    }

    #[test]
    fn concurrent_identical_requests_cost_one_simulation() {
        let s = store(StoreOptions { threads: 4, ..Default::default() });
        let n = 8;
        let bodies: Vec<Arc<str>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n)
                .map(|_| {
                    let s = Arc::clone(&s);
                    scope.spawn(move || s.get(&lbmhd()).unwrap().body)
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(bodies.windows(2).all(|w| w[0] == w[1]));
        let snap = s.registry().snapshot();
        assert_eq!(snap.counter("serve.sim.runs"), Some(1), "{snap:?}");
        assert_eq!(snap.counter("serve.cache.misses"), Some(1));
        // Every non-leader either batched onto the flight or arrived
        // after completion and hit the cache.
        let batched = snap.counter("serve.cache.batched_misses").unwrap_or(0);
        let hits = snap.counter("serve.cache.hits").unwrap_or(0);
        assert_eq!(batched + hits, n - 1, "{snap:?}");
    }

    #[test]
    fn zero_max_pending_rejects_misses_but_serves_hits() {
        let warm = store(StoreOptions { threads: 2, ..Default::default() });
        let body = warm.get(&lbmhd()).unwrap().body;

        let s = store(StoreOptions { threads: 2, max_pending: 0, ..Default::default() });
        match s.get(&lbmhd()) {
            Err(ServeError::Overloaded { pending: 0, max: 0, retry_after_ms: 20 }) => {}
            other => panic!("expected overload, got {other:?}"),
        }
        assert_eq!(s.registry().counter("serve.queue.rejected"), 1);
        assert_eq!(s.registry().counter("serve.sim.runs"), 0);

        // Pre-seed the cache through the spill-free insert path and
        // confirm hits still serve at max_pending = 0.
        s.cache.insert(&lbmhd().key_hash(), Arc::clone(&body)).unwrap();
        let hit = s.get(&lbmhd()).unwrap();
        assert_eq!(hit.source, CellSource::Memory);
        assert_eq!(hit.body, body);
    }

    #[test]
    fn delta_snapshots_tile_the_timeline() {
        let s = store(StoreOptions { threads: 2, ..Default::default() });
        assert_eq!(s.inflight(), 0);
        s.get(&lbmhd()).unwrap();
        let d1 = s.stats_snapshot(true);
        assert_eq!(d1.counter("serve.sim.runs"), Some(1));
        // An immediate second delta covers an empty period.
        let d2 = s.stats_snapshot(true);
        assert_eq!(d2.counter("serve.sim.runs"), Some(0));
        s.get(&lbmhd()).unwrap();
        let d3 = s.stats_snapshot(true);
        assert_eq!(d3.counter("serve.cache.hits"), Some(1));
        assert_eq!(d3.counter("serve.sim.runs"), Some(0));
        // Cumulative mode never consults or moves the baseline. (No
        // `inflight() == 0` assert here: the leader's flight-map cleanup
        // runs on the pool thread after the body is delivered, so it may
        // still be pending when `get` returns.)
        assert_eq!(s.stats_snapshot(false).counter("serve.sim.runs"), Some(1));
    }

    #[test]
    fn bad_requests_never_touch_the_cache_or_pool() {
        let s = store(StoreOptions { threads: 1, ..Default::default() });
        let err = s.get(&Request::cell("LINPACK", "x", "ES", 64)).unwrap_err();
        assert!(matches!(err, ServeError::BadRequest(_)));
        assert_eq!(s.registry().counter("serve.errors.bad_request"), 1);
        assert_eq!(s.registry().counter("serve.sim.runs"), 0);
        assert_eq!(s.cached_cells(), 0);
    }

    #[test]
    fn disk_spill_survives_a_store_restart() {
        let dir = std::env::temp_dir().join(format!("pvs_serve_store_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = || StoreOptions {
            threads: 2,
            spill_dir: Some(dir.clone()),
            ..Default::default()
        };
        let first = store(opts());
        let body = first.get(&lbmhd()).unwrap().body;
        drop(first);

        let second = store(opts());
        assert_eq!(second.registry().counter("serve.store.verified"), 1);
        assert_eq!(second.registry().counter("serve.store.quarantined"), 0);
        let served = second.get(&lbmhd()).unwrap();
        assert_eq!(served.source, CellSource::Disk);
        assert_eq!(served.body, body);
        assert_eq!(second.registry().counter("serve.sim.runs"), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_spill_entry_is_quarantined_and_recomputed_identically() {
        let dir = std::env::temp_dir().join(format!("pvs_serve_corrupt_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = || StoreOptions {
            threads: 2,
            spill_dir: Some(dir.clone()),
            ..Default::default()
        };
        let first = store(opts());
        let body = first.get(&lbmhd()).unwrap().body;
        drop(first);

        // Flip a bit in the spilled body.
        let path = dir.join(format!("{}.cell", lbmhd().key_hash()));
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x04;
        std::fs::write(&path, &bytes).unwrap();

        // Warm start quarantines it...
        let second = store(opts());
        assert_eq!(second.registry().counter("serve.store.quarantined"), 1);
        assert_eq!(second.registry().counter("serve.store.verified"), 0);
        // ...and the recomputed body is byte-identical to the original.
        let served = second.get(&lbmhd()).unwrap();
        assert_eq!(served.source, CellSource::Computed);
        assert_eq!(served.body, body);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn runtime_corruption_is_detected_and_never_served() {
        let dir = std::env::temp_dir().join(format!("pvs_serve_runtime_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = || StoreOptions {
            threads: 2,
            spill_dir: Some(dir.clone()),
            ..Default::default()
        };
        let first = store(opts());
        let body = first.get(&lbmhd()).unwrap().body;

        // Corrupt the entry *after* this store's warm-start scan, and
        // evict it from memory by using a fresh store built before the
        // corruption is visible on disk... simplest honest setup: a new
        // store whose scan we bypass by corrupting afterwards.
        let second = store(opts());
        let path = dir.join(format!("{}.cell", lbmhd().key_hash()));
        std::fs::write(&path, b"garbage, not a spill cell").unwrap();

        let served = second.get(&lbmhd()).unwrap();
        assert_eq!(second.registry().counter("serve.store.corrupt"), 1);
        assert_eq!(served.source, CellSource::Computed);
        assert_eq!(served.body, body, "recompute must be byte-identical");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn expired_budget_is_rejected_at_admission_but_hits_still_serve() {
        let s = store(StoreOptions { threads: 2, ..Default::default() });
        let err = s.get_with_budget(&lbmhd(), Some(countdown(0))).unwrap_err();
        assert_eq!(err, ServeError::DeadlineExceeded { stage: "admission" });
        assert_eq!(s.registry().counter("serve.deadline.requests"), 1);
        assert_eq!(s.registry().counter("serve.deadline.rejected"), 1);
        assert_eq!(s.registry().counter("serve.sim.runs"), 0);

        // Warm the key without a deadline, then prove a zero budget
        // still serves the hit: cache probes precede the budget check.
        s.get(&lbmhd()).unwrap();
        let hit = s.get_with_budget(&lbmhd(), Some(countdown(0))).unwrap();
        assert_eq!(hit.source, CellSource::Memory);
        assert_eq!(s.registry().counter("serve.deadline.rejected"), 1);
    }

    #[test]
    fn budget_expiring_in_the_queue_abandons_the_simulation() {
        let s = store(StoreOptions { threads: 2, ..Default::default() });
        // One nonzero probe (admission), zero ever after: the job's
        // dispatch check must abandon without running the engine.
        let err = s.get_with_budget(&lbmhd(), Some(countdown(1))).unwrap_err();
        assert!(matches!(err, ServeError::DeadlineExceeded { .. }), "{err:?}");
        // The caller may return (via its own expired wait) before the
        // pool job observes the dead budget; the flight leaves the map
        // only after the job runs, so drain it before asserting.
        while s.inflight() != 0 {
            std::thread::yield_now();
        }
        assert_eq!(s.registry().counter("serve.deadline.abandoned"), 1);
        assert_eq!(s.registry().counter("serve.sim.runs"), 0);
        // The abandoned flight leaves no residue: the next undeadlined
        // request computes normally.
        assert!(s.get(&lbmhd()).is_ok());
        assert_eq!(s.registry().counter("serve.sim.runs"), 1);
    }

    #[test]
    fn budget_expiring_while_waiting_on_a_stranger_flight_is_structured() {
        let s = store(StoreOptions { threads: 1, ..Default::default() });
        // Park a never-completing flight on the key, then join it with a
        // finite budget: the waiter must time out structurally.
        let key = lbmhd().key_hash();
        s.lock_flights().insert(key, Arc::new(Flight::default()));
        let err = s.get_with_budget(&lbmhd(), Some(countdown(3))).unwrap_err();
        assert_eq!(err, ServeError::DeadlineExceeded { stage: "wait" });
        assert_eq!(s.registry().counter("serve.deadline.expired_wait"), 1);
        assert_eq!(s.registry().counter("serve.cache.batched_misses"), 1);
    }

    #[test]
    fn panicking_key_is_poisoned_after_max_key_panics() {
        let key = lbmhd().key_hash();
        let s = store(StoreOptions {
            threads: 1,
            max_key_panics: 2,
            panic_inject: Some(PanicSpec { key_substring: key.clone(), times: u32::MAX }),
            ..Default::default()
        });
        let (first, second) = with_silent_panics(|| {
            (s.get(&lbmhd()).unwrap_err(), s.get(&lbmhd()).unwrap_err())
        });
        assert!(matches!(first, ServeError::Internal(_)), "{first:?}");
        assert!(matches!(second, ServeError::Internal(_)), "{second:?}");
        // The key is now retired: served structurally, no more sim runs.
        let third = s.get(&lbmhd()).unwrap_err();
        assert_eq!(third, ServeError::Failed { panics: 2 });
        let snap = s.registry().snapshot();
        assert_eq!(snap.counter("serve.sim.panics"), Some(2), "{snap:?}");
        assert_eq!(snap.counter("serve.supervisor.poisoned"), Some(1));
        assert_eq!(snap.counter("serve.supervisor.failed_served"), Some(1));
        // Other keys are untouched by the poisoning.
        assert!(s.get(&Request::cell("GTC", "100 part/cell", "ES", 64)).is_ok());
    }

    #[test]
    fn followers_redrive_past_a_panicked_leader_and_recover() {
        let key = lbmhd().key_hash();
        let s = store(StoreOptions {
            threads: 4,
            // Exactly one injected panic, then the key computes fine.
            panic_inject: Some(PanicSpec { key_substring: key, times: 1 }),
            ..Default::default()
        });
        let results: Vec<Result<CellResponse, ServeError>> = with_silent_panics(|| {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..4)
                    .map(|_| {
                        let s = Arc::clone(&s);
                        scope.spawn(move || s.get(&lbmhd()))
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            })
        });
        // Exactly one caller led the panicking flight and got the
        // structured internal error; everyone else recovered (re-drive
        // or arrived after the recomputed body hit the cache).
        let failed = results.iter().filter(|r| r.is_err()).count();
        assert_eq!(failed, 1, "{results:?}");
        let direct = {
            let resolved = lbmhd().resolve().unwrap();
            perf_report(
                &run_sweep(vec![SweepJob {
                    machine: resolved.machine,
                    phases: resolved.phases,
                    procs: resolved.procs,
                }])[0],
            )
        };
        for r in results.iter().flatten() {
            assert_eq!(*r.body, direct, "recovered bodies must be byte-identical");
        }
        assert_eq!(s.registry().counter("serve.sim.panics"), 1);
        assert_eq!(s.registry().counter("serve.supervisor.poisoned"), 0);
        // And the store is fully healthy afterwards.
        assert_eq!(s.get(&lbmhd()).unwrap().source, CellSource::Memory);
    }

    #[test]
    fn faulted_and_healthy_cells_are_distinct_entries() {
        let s = store(StoreOptions { threads: 2, ..Default::default() });
        let healthy = s.get(&lbmhd()).unwrap();
        let mut faulty_req = lbmhd();
        faulty_req.faults = Some(crate::workload::FaultSpec { seed: 3, events: 8 });
        let faulty = s.get(&faulty_req).unwrap();
        assert_ne!(healthy.key, faulty.key);
        assert_eq!(s.registry().counter("serve.sim.runs"), 2);
        // Damage must actually change the model output.
        assert_ne!(healthy.body, faulty.body);
        // And the faulty cell is itself deterministic.
        assert_eq!(s.get(&faulty_req).unwrap().body, faulty.body);
    }

    #[test]
    fn retry_hint_grows_with_queue_depth_and_caps() {
        assert_eq!(retry_after_ms(0), 20);
        assert_eq!(retry_after_ms(9), 200);
        assert_eq!(retry_after_ms(10_000), 2_000);
    }
}
