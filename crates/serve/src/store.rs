//! The [`CellStore`]: cache, single-flight batching, and admission
//! control behind one `get` call — the clock-free heart of the serving
//! layer.
//!
//! Request flow:
//!
//! 1. **Validate** — malformed requests are rejected before touching any
//!    shared state.
//! 2. **Memory, then disk** — a hit returns the cached bytes untouched.
//! 3. **Single-flight** — concurrent misses on the same key coalesce
//!    onto one in-flight simulation: the first caller becomes the leader
//!    and submits the cell to the shared [`pvs_core::ThreadPool`];
//!    followers wait on the leader's flight and receive the same `Arc`'d
//!    bytes. N identical in-flight requests cost exactly one simulation.
//! 4. **Admission control** — distinct in-flight simulations are capped
//!    at `max_pending`; a miss arriving at the cap is answered
//!    `overloaded` immediately instead of growing an unbounded backlog.
//!    Cache hits (and followers of existing flights) are never rejected:
//!    the cap bounds *new work*, not traffic.
//!
//! Because a cell is a pure function of its key (the workspace's
//! determinism invariant), serving a cached body and recomputing it are
//! observably identical — byte-for-byte. The store records every
//! decision into a [`pvs_obs::Registry`] under `serve.*` names.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};

use pvs_core::engine::Engine;
use pvs_core::ThreadPool;
use pvs_obs::{Recorder, Registry, Snapshot};
use pvs_report::json::perf_report;

use crate::cache::{ShardedCache, DEFAULT_SHARDS};
use crate::workload::{Request, RequestError};

/// Knobs for one store.
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Worker threads for the simulation pool.
    pub threads: usize,
    /// Cache shard count.
    pub shards: usize,
    /// Maximum distinct in-flight simulations before misses are
    /// rejected `overloaded`. `0` rejects every miss (useful in tests
    /// and as a drain mode); hits always serve.
    pub max_pending: usize,
    /// On-disk spill directory (`None` = memory only).
    pub spill_dir: Option<PathBuf>,
}

impl Default for StoreOptions {
    fn default() -> Self {
        Self {
            threads: pvs_core::pool::default_threads(),
            shards: DEFAULT_SHARDS,
            max_pending: 64,
            spill_dir: None,
        }
    }
}

/// Where a served body came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellSource {
    /// In-memory cache hit.
    Memory,
    /// Disk-spill hit (now promoted to memory).
    Disk,
    /// This request led the simulation.
    Computed,
    /// This request coalesced onto another request's simulation.
    Batched,
}

impl CellSource {
    /// Wire spelling (the response `source` field).
    pub fn as_str(self) -> &'static str {
        match self {
            CellSource::Memory => "memory",
            CellSource::Disk => "disk",
            CellSource::Computed => "computed",
            CellSource::Batched => "batched",
        }
    }
}

/// A successfully served cell.
#[derive(Debug, Clone)]
pub struct CellResponse {
    /// Content address (16 hex digits).
    pub key: String,
    /// The rendered model report — byte-identical to
    /// `pvs_report::json::perf_report` over a direct engine run.
    pub body: Arc<str>,
    /// How the store satisfied the request.
    pub source: CellSource,
}

/// Why a request was not served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The request failed validation.
    BadRequest(RequestError),
    /// Admission control: too many distinct simulations in flight.
    Overloaded {
        /// Distinct in-flight simulations at rejection time.
        pending: usize,
        /// The configured cap.
        max: usize,
    },
    /// The simulation panicked (a bug, not a client error); the flight
    /// is failed so followers are not stranded.
    Internal(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::BadRequest(e) => write!(f, "bad request: {e}"),
            ServeError::Overloaded { pending, max } => {
                write!(f, "overloaded: {pending} simulations in flight (max {max})")
            }
            ServeError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

/// One in-flight simulation that any number of requests may wait on.
#[derive(Debug, Default)]
struct Flight {
    // LOCK ORDER: 15 — leaf under the flight map: `fulfill`/`wait` take
    // it with no other serve lock held, and flight-map holders never
    // reach into a slot.
    slot: Mutex<Option<Result<Arc<str>, String>>>,
    done: Condvar,
}

impl Flight {
    fn fulfill(&self, result: Result<Arc<str>, String>) {
        // INFALLIBLE: slot holders only move a value — no user code
        // runs under the lock.
        *self.slot.lock().expect("flight slot poisoned") = Some(result);
        self.done.notify_all();
    }

    fn wait(&self) -> Result<Arc<str>, String> {
        // INFALLIBLE: see `fulfill`.
        let mut slot = self.slot.lock().expect("flight slot poisoned");
        loop {
            match &*slot {
                Some(result) => return result.clone(),
                // INFALLIBLE: waiting repoisons only on a panicked holder.
                None => slot = self.done.wait(slot).expect("flight wait"),
            }
        }
    }
}

/// The serving core. Share it across connection handlers with an `Arc`.
pub struct CellStore {
    cache: ShardedCache,
    pool: ThreadPool,
    // LOCK ORDER: 10 — outermost serve lock: `get` consults the cache
    // shards (tier 20) and the registry (tier 30) under it, so it must
    // sit below both in the order.
    flights: Mutex<BTreeMap<String, Arc<Flight>>>,
    max_pending: usize,
    registry: Arc<Registry>,
    // LOCK ORDER: 35 — stats delta baseline. Taken only in
    // `stats_snapshot`, strictly after the registry snapshot (tier 30)
    // has been materialized and released; nothing is acquired under it.
    stats_baseline: Mutex<Snapshot>,
}

impl std::fmt::Debug for CellStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CellStore")
            .field("max_pending", &self.max_pending)
            .field("cached_cells", &self.cache.len())
            .finish_non_exhaustive()
    }
}

impl CellStore {
    /// Build a store from options.
    pub fn new(options: StoreOptions) -> Self {
        Self {
            cache: ShardedCache::new(options.shards, options.spill_dir),
            pool: ThreadPool::new(options.threads),
            flights: Mutex::new(BTreeMap::new()),
            max_pending: options.max_pending,
            registry: Arc::new(Registry::new()),
            stats_baseline: Mutex::new(Snapshot::default()),
        }
    }

    /// The store's observability registry (`serve.*` counters/gauges).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// In-memory cache entries.
    pub fn cached_cells(&self) -> usize {
        self.cache.len()
    }

    /// Distinct simulations in flight right now.
    pub fn inflight(&self) -> usize {
        self.lock_flights().len()
    }

    /// Registry snapshot for a `stats` response. Cumulative mode copies
    /// the registry; delta mode reports the change since the previous
    /// delta request and advances the stored baseline, so consecutive
    /// delta snapshots tile the timeline without gaps or overlaps.
    pub fn stats_snapshot(&self, delta: bool) -> Snapshot {
        let now = self.registry.snapshot();
        if !delta {
            return now;
        }
        // Swap the stored baseline under the lock, but difference the
        // snapshots *outside* it: `delta_since` walks snapshot lookups
        // whose names the lock-order lint resolves against the (locking)
        // registry methods, and the baseline tier (35) sits above the
        // registry's (30).
        let prev = {
            // INFALLIBLE: baseline holders only swap a snapshot value.
            let mut baseline = self.stats_baseline.lock().expect("stats baseline poisoned");
            std::mem::replace(&mut *baseline, now.clone())
        };
        now.delta_since(&prev)
    }

    fn lock_flights(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Arc<Flight>>> {
        // INFALLIBLE: flight-map holders only update the map and gauges.
        self.flights.lock().expect("flight map poisoned")
    }

    /// Serve one request. Blocks the calling thread until the body is
    /// available (or the request is rejected); concurrency comes from
    /// calling this from many connection threads at once.
    pub fn get(self: &Arc<Self>, request: &Request) -> Result<CellResponse, ServeError> {
        self.registry.add("serve.requests", 1);
        let resolved = match request.resolve() {
            Ok(r) => r,
            Err(e) => {
                self.registry.add("serve.errors.bad_request", 1);
                return Err(ServeError::BadRequest(e));
            }
        };
        let key = request.key_hash();

        if let Some(body) = self.cache.get_memory(&key) {
            self.registry.add("serve.cache.hits", 1);
            return Ok(CellResponse { key, body, source: CellSource::Memory });
        }
        if let Some(body) = self.cache.get_disk(&key) {
            self.registry.add("serve.cache.disk_hits", 1);
            return Ok(CellResponse { key, body, source: CellSource::Disk });
        }

        // Miss. Join an existing flight, or lead a new one.
        let (flight, leader) = {
            let mut flights = self.lock_flights();
            // Double-check under the flight lock: a flight that completed
            // between the cache probe above and this lock has already
            // populated the cache, and must not be recomputed.
            if let Some(body) = self.cache.get_memory(&key) {
                self.registry.add("serve.cache.hits", 1);
                return Ok(CellResponse { key, body, source: CellSource::Memory });
            }
            match flights.get(&key) {
                Some(flight) => (Arc::clone(flight), false),
                None => {
                    if flights.len() >= self.max_pending {
                        let pending = flights.len();
                        self.registry.add("serve.queue.rejected", 1);
                        return Err(ServeError::Overloaded { pending, max: self.max_pending });
                    }
                    let flight = Arc::new(Flight::default());
                    flights.insert(key.clone(), Arc::clone(&flight));
                    self.registry.gauge_set("serve.queue.depth", flights.len() as u64);
                    self.registry.gauge_max("serve.queue.peak_depth", flights.len() as u64);
                    (flight, true)
                }
            }
        };

        if leader {
            self.registry.add("serve.cache.misses", 1);
            let store = Arc::clone(self);
            let flight_for_job = Arc::clone(&flight);
            let job_key = key.clone();
            self.pool.spawn(move || {
                let computed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    store.registry.add("serve.sim.runs", 1);
                    let mut engine = Engine::new(resolved.machine);
                    if let Some(adversity) = resolved.adversity {
                        engine = engine.with_adversity(adversity);
                    }
                    let report = engine.run(&resolved.phases, resolved.procs);
                    let body: Arc<str> = perf_report(&report).into();
                    if store.cache.insert(&job_key, Arc::clone(&body)).is_err() {
                        store.registry.add("serve.spill.errors", 1);
                    }
                    body
                }));
                let result = computed.map_err(|_| "simulation panicked".to_string());
                if result.is_err() {
                    store.registry.add("serve.errors.internal", 1);
                }
                flight_for_job.fulfill(result);
                let mut flights = store.lock_flights();
                flights.remove(&job_key);
                store.registry.gauge_set("serve.queue.depth", flights.len() as u64);
            });
        } else {
            self.registry.add("serve.cache.batched_misses", 1);
        }

        match flight.wait() {
            Ok(body) => Ok(CellResponse {
                key,
                body,
                source: if leader { CellSource::Computed } else { CellSource::Batched },
            }),
            Err(msg) => Err(ServeError::Internal(msg)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvs_core::engine::{run_sweep, SweepJob};

    fn store(options: StoreOptions) -> Arc<CellStore> {
        Arc::new(CellStore::new(options))
    }

    fn lbmhd() -> Request {
        Request::cell("LBMHD", "8192x8192", "ES", 64)
    }

    #[test]
    fn miss_then_hit_serves_identical_bytes() {
        let s = store(StoreOptions { threads: 2, ..Default::default() });
        let first = s.get(&lbmhd()).unwrap();
        assert_eq!(first.source, CellSource::Computed);
        let second = s.get(&lbmhd()).unwrap();
        assert_eq!(second.source, CellSource::Memory);
        assert_eq!(first.body, second.body);
        assert_eq!(s.registry().counter("serve.sim.runs"), 1);
        assert_eq!(s.registry().counter("serve.cache.hits"), 1);
    }

    #[test]
    fn served_body_matches_direct_run_sweep_byte_for_byte() {
        let s = store(StoreOptions { threads: 2, ..Default::default() });
        let req = Request::cell("CACTUS", "250x64x64", "X1", 64);
        let served = s.get(&req).unwrap();
        let resolved = req.resolve().unwrap();
        let direct = run_sweep(vec![SweepJob {
            machine: resolved.machine,
            phases: resolved.phases,
            procs: resolved.procs,
        }]);
        assert_eq!(*served.body, perf_report(&direct[0]));
    }

    #[test]
    fn concurrent_identical_requests_cost_one_simulation() {
        let s = store(StoreOptions { threads: 4, ..Default::default() });
        let n = 8;
        let bodies: Vec<Arc<str>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n)
                .map(|_| {
                    let s = Arc::clone(&s);
                    scope.spawn(move || s.get(&lbmhd()).unwrap().body)
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(bodies.windows(2).all(|w| w[0] == w[1]));
        let snap = s.registry().snapshot();
        assert_eq!(snap.counter("serve.sim.runs"), Some(1), "{snap:?}");
        assert_eq!(snap.counter("serve.cache.misses"), Some(1));
        // Every non-leader either batched onto the flight or arrived
        // after completion and hit the cache.
        let batched = snap.counter("serve.cache.batched_misses").unwrap_or(0);
        let hits = snap.counter("serve.cache.hits").unwrap_or(0);
        assert_eq!(batched + hits, n - 1, "{snap:?}");
    }

    #[test]
    fn zero_max_pending_rejects_misses_but_serves_hits() {
        let warm = store(StoreOptions { threads: 2, ..Default::default() });
        let body = warm.get(&lbmhd()).unwrap().body;

        let s = store(StoreOptions { threads: 2, max_pending: 0, ..Default::default() });
        match s.get(&lbmhd()) {
            Err(ServeError::Overloaded { pending: 0, max: 0 }) => {}
            other => panic!("expected overload, got {other:?}"),
        }
        assert_eq!(s.registry().counter("serve.queue.rejected"), 1);
        assert_eq!(s.registry().counter("serve.sim.runs"), 0);

        // Pre-seed the cache through the spill-free insert path and
        // confirm hits still serve at max_pending = 0.
        s.cache.insert(&lbmhd().key_hash(), Arc::clone(&body)).unwrap();
        let hit = s.get(&lbmhd()).unwrap();
        assert_eq!(hit.source, CellSource::Memory);
        assert_eq!(hit.body, body);
    }

    #[test]
    fn delta_snapshots_tile_the_timeline() {
        let s = store(StoreOptions { threads: 2, ..Default::default() });
        assert_eq!(s.inflight(), 0);
        s.get(&lbmhd()).unwrap();
        let d1 = s.stats_snapshot(true);
        assert_eq!(d1.counter("serve.sim.runs"), Some(1));
        // An immediate second delta covers an empty period.
        let d2 = s.stats_snapshot(true);
        assert_eq!(d2.counter("serve.sim.runs"), Some(0));
        s.get(&lbmhd()).unwrap();
        let d3 = s.stats_snapshot(true);
        assert_eq!(d3.counter("serve.cache.hits"), Some(1));
        assert_eq!(d3.counter("serve.sim.runs"), Some(0));
        // Cumulative mode never consults or moves the baseline. (No
        // `inflight() == 0` assert here: the leader's flight-map cleanup
        // runs on the pool thread after the body is delivered, so it may
        // still be pending when `get` returns.)
        assert_eq!(s.stats_snapshot(false).counter("serve.sim.runs"), Some(1));
    }

    #[test]
    fn bad_requests_never_touch_the_cache_or_pool() {
        let s = store(StoreOptions { threads: 1, ..Default::default() });
        let err = s.get(&Request::cell("LINPACK", "x", "ES", 64)).unwrap_err();
        assert!(matches!(err, ServeError::BadRequest(_)));
        assert_eq!(s.registry().counter("serve.errors.bad_request"), 1);
        assert_eq!(s.registry().counter("serve.sim.runs"), 0);
        assert_eq!(s.cached_cells(), 0);
    }

    #[test]
    fn disk_spill_survives_a_store_restart() {
        let dir = std::env::temp_dir().join(format!("pvs_serve_store_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = || StoreOptions {
            threads: 2,
            spill_dir: Some(dir.clone()),
            ..Default::default()
        };
        let first = store(opts());
        let body = first.get(&lbmhd()).unwrap().body;
        drop(first);

        let second = store(opts());
        let served = second.get(&lbmhd()).unwrap();
        assert_eq!(served.source, CellSource::Disk);
        assert_eq!(served.body, body);
        assert_eq!(second.registry().counter("serve.sim.runs"), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn faulted_and_healthy_cells_are_distinct_entries() {
        let s = store(StoreOptions { threads: 2, ..Default::default() });
        let healthy = s.get(&lbmhd()).unwrap();
        let mut faulty_req = lbmhd();
        faulty_req.faults = Some(crate::workload::FaultSpec { seed: 3, events: 8 });
        let faulty = s.get(&faulty_req).unwrap();
        assert_ne!(healthy.key, faulty.key);
        assert_eq!(s.registry().counter("serve.sim.runs"), 2);
        // Damage must actually change the model output.
        assert_ne!(healthy.body, faulty.body);
        // And the faulty cell is itself deterministic.
        assert_eq!(s.get(&faulty_req).unwrap().body, faulty.body);
    }
}
