//! End-to-end serving-layer tests: the invariants the server promises
//! hold over real sockets, not just in-process calls.
//!
//! The load-bearing ones:
//! * a served cell's model metrics are byte-identical to a direct
//!   `run_sweep` + `perf_report` rendering, at any store thread count,
//!   cache hit or miss;
//! * N concurrent identical requests cost exactly one simulation
//!   (proved by the server's own `serve.*` counters);
//! * admission control rejects misses deterministically while hits
//!   still serve;
//! * a restarted server warm-starts from its disk spill.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use pvs_core::engine::{run_sweep_threads, SweepJob};
use pvs_report::json::perf_report;
use pvs_serve::store::StoreOptions;
use pvs_serve::{CellSource, CellStore, Request, Server, ServerOptions};

fn direct_body(request: &Request) -> String {
    let cell = request.resolve().expect("test request resolves");
    let reports = run_sweep_threads(
        vec![SweepJob {
            machine: cell.machine,
            phases: cell.phases,
            procs: cell.procs,
        }],
        1,
    );
    perf_report(&reports[0])
}

/// One request/response exchange on an existing connection.
fn roundtrip(stream: &mut TcpStream, line: &str) -> String {
    stream.write_all(format!("{line}\n").as_bytes()).unwrap();
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    response.trim_end().to_string()
}

fn connect(server: &Server) -> TcpStream {
    let stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream
}

/// Extract the verbatim cell payload from a `{"ok":true,...,"cell":{…}}`
/// line — the protocol puts `cell` last precisely to allow this.
fn cell_bytes(response: &str) -> &str {
    let (_, rest) = response
        .split_once("\"cell\":")
        .unwrap_or_else(|| panic!("no cell member in {response}"));
    &rest[..rest.len() - 1]
}

#[test]
fn served_bytes_match_direct_computation_at_any_thread_count() {
    let request = Request::cell("PARATEC", "686 atom", "ES", 256);
    let expected = direct_body(&request);
    for threads in [1, 8] {
        let store = Arc::new(CellStore::new(StoreOptions {
            threads,
            ..Default::default()
        }));
        let miss = store.get(&request).unwrap();
        assert_eq!(miss.source, CellSource::Computed);
        assert_eq!(*miss.body, expected, "threads={threads} (miss)");
        let hit = store.get(&request).unwrap();
        assert_eq!(hit.source, CellSource::Memory);
        assert_eq!(*hit.body, expected, "threads={threads} (hit)");
    }
}

#[test]
fn tcp_roundtrip_serves_the_exact_model_bytes() {
    let server = Server::start(ServerOptions::default()).unwrap();
    let mut stream = connect(&server);

    assert_eq!(
        roundtrip(&mut stream, r#"{"op":"ping"}"#),
        r#"{"ok":true,"pong":true}"#
    );

    let request = Request::cell("GTC", "100 part/cell", "X1", 64);
    let line = r#"{"op":"cell","app":"GTC","config":"100 part/cell","machine":"X1","procs":64}"#;
    let first = roundtrip(&mut stream, line);
    assert!(first.contains("\"source\":\"computed\""), "{first}");
    assert_eq!(cell_bytes(&first), direct_body(&request));

    // Second ask on the same connection: a memory hit, same bytes.
    let second = roundtrip(&mut stream, line);
    assert!(second.contains("\"source\":\"memory\""), "{second}");
    assert_eq!(cell_bytes(&second), cell_bytes(&first));

    // Stats reflect what just happened.
    let stats = roundtrip(&mut stream, r#"{"op":"stats"}"#);
    assert!(stats.contains("\"serve.cache.hits\":1"), "{stats}");
    assert!(stats.contains("\"serve.cache.misses\":1"), "{stats}");
    assert!(stats.contains("\"cached_cells\":1"), "{stats}");
}

#[test]
fn telemetry_snapshots_carry_schema_mode_and_deltas_that_tile() {
    let server = Server::start(ServerOptions::default()).unwrap();
    let mut stream = connect(&server);

    let health = roundtrip(&mut stream, r#"{"op":"health"}"#);
    assert!(health.contains("\"healthy\":true"), "{health}");
    assert!(health.contains("\"schema\":\"pvs-obs/snapshot-v1\""), "{health}");
    assert!(health.contains("\"inflight\":0"), "{health}");

    let line = r#"{"op":"cell","app":"LBMHD","config":"8192x8192","machine":"ES","procs":64}"#;
    roundtrip(&mut stream, line);

    let d1 = roundtrip(&mut stream, r#"{"op":"stats","mode":"delta"}"#);
    assert!(d1.contains("\"schema\":\"pvs-obs/snapshot-v1\""), "{d1}");
    assert!(d1.contains("\"mode\":\"delta\""), "{d1}");
    assert!(d1.contains("\"serve.sim.runs\":1"), "{d1}");
    // The requests before this one are in the busy-time histogram.
    assert!(d1.contains("\"serve.hist.busy_us\":{\"count\":"), "{d1}");

    // An immediate second delta covers an empty period: the run counter
    // reads zero, while the cumulative view still shows the total.
    let d2 = roundtrip(&mut stream, r#"{"op":"stats","mode":"delta"}"#);
    assert!(d2.contains("\"serve.sim.runs\":0"), "{d2}");
    let total = roundtrip(&mut stream, r#"{"op":"stats"}"#);
    assert!(total.contains("\"mode\":\"cumulative\""), "{total}");
    assert!(total.contains("\"serve.sim.runs\":1"), "{total}");
}

#[test]
fn malformed_and_invalid_requests_get_tagged_errors() {
    let server = Server::start(ServerOptions::default()).unwrap();
    let mut stream = connect(&server);

    let garbled = roundtrip(&mut stream, "this is not json");
    assert!(garbled.contains("\"error\":\"malformed\""), "{garbled}");

    let unknown = roundtrip(
        &mut stream,
        r#"{"op":"cell","app":"LINPACK","config":"x","machine":"ES","procs":4}"#,
    );
    assert!(unknown.contains("\"error\":\"bad_request\""), "{unknown}");
    assert!(unknown.contains("LINPACK"), "{unknown}");

    // The connection survives errors: a good request still works.
    let ok = roundtrip(
        &mut stream,
        r#"{"op":"cell","app":"LBMHD","config":"4096x4096","machine":"Power3","procs":16}"#,
    );
    assert!(ok.starts_with("{\"ok\":true"), "{ok}");
}

#[test]
fn concurrent_tcp_clients_on_one_cell_cost_one_simulation() {
    let server = Server::start(ServerOptions::default()).unwrap();
    let addr = server.addr();
    let n = 6;
    let line = r#"{"op":"cell","app":"CACTUS","config":"250x64x64","machine":"ES","procs":64}"#;

    let bodies: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .map(|_| {
                scope.spawn(move || {
                    let mut stream = TcpStream::connect(addr).unwrap();
                    stream
                        .set_read_timeout(Some(Duration::from_secs(30)))
                        .unwrap();
                    roundtrip(&mut stream, line)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let first_cell = cell_bytes(&bodies[0]).to_string();
    for body in &bodies {
        assert!(body.starts_with("{\"ok\":true"), "{body}");
        assert_eq!(cell_bytes(body), first_cell);
    }

    let snap = server.store().registry().snapshot();
    assert_eq!(snap.counter("serve.sim.runs"), Some(1), "{snap:?}");
    assert_eq!(snap.counter("serve.cache.misses"), Some(1), "{snap:?}");
    let batched = snap.counter("serve.cache.batched_misses").unwrap_or(0);
    let hits = snap.counter("serve.cache.hits").unwrap_or(0);
    assert_eq!(batched + hits, n - 1, "{snap:?}");
}

#[test]
fn overloaded_server_rejects_misses_but_keeps_serving_hits() {
    // Warm a normal server, note the cell bytes, then restart with
    // max_pending = 0 over the same spill dir: the warmed cell still
    // serves (from disk) while any new cell is rejected.
    let dir = std::env::temp_dir().join(format!("pvs_serve_e2e_admission_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = |max_pending| ServerOptions {
        store: StoreOptions {
            max_pending,
            spill_dir: Some(dir.clone()),
            ..Default::default()
        },
        ..Default::default()
    };
    let warm_line = r#"{"op":"cell","app":"LBMHD","config":"8192x8192","machine":"Altix","procs":64}"#;
    let warmed = {
        let server = Server::start(opts(64)).unwrap();
        roundtrip(&mut connect(&server), warm_line)
    };

    let server = Server::start(opts(0)).unwrap();
    let mut stream = connect(&server);
    let rejected = roundtrip(
        &mut stream,
        r#"{"op":"cell","app":"LBMHD","config":"4096x4096","machine":"Altix","procs":64}"#,
    );
    assert!(rejected.contains("\"error\":\"overloaded\""), "{rejected}");
    let served = roundtrip(&mut stream, warm_line);
    assert!(served.contains("\"source\":\"disk\""), "{served}");
    assert_eq!(cell_bytes(&served), cell_bytes(&warmed));
    assert_eq!(
        server.store().registry().counter("serve.queue.rejected"),
        1
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn shutdown_op_drains_the_server() {
    let mut server = Server::start(ServerOptions::default()).unwrap();
    let mut stream = connect(&server);
    assert_eq!(
        roundtrip(&mut stream, r#"{"op":"shutdown"}"#),
        r#"{"ok":true,"shutdown":true}"#
    );
    // wait() returns because the client's shutdown stopped the accept
    // loop — no explicit server.shutdown() here.
    server.wait();
}

#[test]
fn idle_server_times_out_and_exits() {
    let mut server = Server::start(ServerOptions {
        idle_timeout: Some(Duration::from_millis(100)),
        ..Default::default()
    })
    .unwrap();
    server.wait();
}

#[test]
fn request_stalled_mid_line_survives_the_read_timeout() {
    // A client that pauses mid-line for longer than the server's 50ms
    // socket read timeout must not lose the bytes it already sent: the
    // server keeps the partial line and resumes it.
    let server = Server::start(ServerOptions::default()).unwrap();
    let mut stream = connect(&server);
    let (head, tail) = r#"{"op":"ping"}"#.split_at(6);
    stream.write_all(head.as_bytes()).unwrap();
    stream.flush().unwrap();
    std::thread::sleep(Duration::from_millis(200));
    stream.write_all(tail.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    assert_eq!(response.trim_end(), r#"{"ok":true,"pong":true}"#);
}

#[test]
fn oversized_request_line_closes_the_connection() {
    let server = Server::start(ServerOptions::default()).unwrap();
    let mut stream = connect(&server);
    // Well past the 64 KiB line cap, no newline anywhere. The server
    // may reset mid-write, so write errors are expected and ignored.
    let _ = stream.write_all(&vec![b'x'; 128 * 1024]);
    let _ = stream.flush();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut response = String::new();
    // Clean close (0 bytes) or reset — never a response line.
    match reader.read_line(&mut response) {
        Ok(n) => assert_eq!(n, 0, "unexpected response: {response}"),
        Err(_) => {}
    }
    assert_eq!(
        server.store().registry().counter("serve.errors.oversized"),
        1
    );
}

#[test]
fn connection_cap_sheds_excess_clients_but_keeps_existing_ones() {
    let server = Server::start(ServerOptions {
        max_connections: 1,
        ..Default::default()
    })
    .unwrap();
    let mut first = connect(&server);
    assert!(roundtrip(&mut first, r#"{"op":"ping"}"#).contains("pong"));

    // `first` still holds the one slot: the second connect is accepted
    // and immediately closed without a response.
    let second = connect(&server);
    let mut reader = BufReader::new(second.try_clone().unwrap());
    let mut response = String::new();
    match reader.read_line(&mut response) {
        Ok(n) => assert_eq!(n, 0, "unexpected response: {response}"),
        Err(_) => {}
    }
    assert_eq!(server.store().registry().counter("serve.net.rejected"), 1);

    // The surviving connection is unaffected.
    assert!(roundtrip(&mut first, r#"{"op":"ping"}"#).contains("pong"));
}
