//! Deterministic malformed-frame fuzz of the wire protocol.
//!
//! Not a coverage-guided fuzzer: a *seeded grid* of hostile inputs —
//! every prefix truncation of every valid request line, a seeded spray
//! of bit-flips, oversized frames, and field permutations — pinned to
//! one invariant: the parser answers a structured error or a clean
//! close, and **never panics**. The grid is a pure function of its
//! seed, so a regression reproduces with the same line, same byte,
//! same flipped bit.
//!
//! Two layers:
//! * in-process: `parse_line` over the whole grid, with the resulting
//!   classification fingerprint proved identical when the grid is
//!   evaluated serially and sharded across 8 threads (the PVS_THREADS
//!   1-vs-8 identity check, applied to the protocol layer);
//! * over TCP: the malformed subset of the grid against a live server
//!   — every line gets a `{"ok":false,...}` response or a clean close,
//!   and the server keeps serving correct bytes afterwards.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use pvs_core::{fnv1a, SplitMix64};
use pvs_serve::proto::{parse_line, Op};
use pvs_serve::{Request, Server, ServerOptions};

const FUZZ_SEED: u64 = 0x5EED_F00D;
const FLIPS_PER_LINE: usize = 96;

/// The valid request corpus the mutations start from: every op shape,
/// with and without the optional budget and fault fields.
fn corpus() -> Vec<String> {
    vec![
        r#"{"op":"cell","app":"LBMHD","config":"8192x8192","machine":"ES","procs":64}"#.into(),
        r#"{"op":"cell","app":"GTC","config":"10 part/cell","machine":"X1","procs":64,"fault_seed":7,"fault_events":9}"#.into(),
        r#"{"op":"cell","app":"PARATEC","config":"432 atom","machine":"Altix","procs":128,"deadline_ms":250}"#.into(),
        r#"{"op":"cell","app":"CACTUS","config":"80x80x80","machine":"Power3","procs":16,"deadline_ms":0}"#.into(),
        r#"{"op":"stats"}"#.into(),
        r#"{"op":"stats","mode":"delta"}"#.into(),
        r#"{"op":"health"}"#.into(),
        r#"{"op":"ping"}"#.into(),
        r#"{"op":"shutdown"}"#.into(),
    ]
}

/// The full seeded mutation grid: truncations, bit-flips, and a few
/// hand-picked hostile shapes. Byte vectors, because bit-flips step
/// outside UTF-8 on purpose.
fn mutation_grid() -> Vec<Vec<u8>> {
    let mut grid = Vec::new();
    for line in corpus() {
        let bytes = line.as_bytes();
        // Every prefix truncation, including the empty line.
        for end in 0..bytes.len() {
            grid.push(bytes[..end].to_vec());
        }
        // Seeded bit-flip spray: position and bit are pure functions of
        // (seed, line, flip index).
        let mut rng = SplitMix64::new(FUZZ_SEED ^ fnv1a(bytes));
        for _ in 0..FLIPS_PER_LINE {
            let pos = (rng.next_u64() as usize) % bytes.len();
            let bit = (rng.next_u64() % 8) as u8;
            let mut mutant = bytes.to_vec();
            mutant[pos] ^= 1 << bit;
            grid.push(mutant);
        }
    }
    // Hostile shapes the grid would only hit by luck.
    grid.push(vec![]);
    grid.push(b"null".to_vec());
    grid.push(b"[1,2,3]".to_vec());
    grid.push(b"{}".to_vec());
    grid.push(b"{\"op\":42}".to_vec());
    grid.push(b"{\"op\":\"cell\",\"procs\":\"many\"}".to_vec());
    grid.push(b"\"op\":\"ping\"".to_vec());
    grid.push(vec![b'{'; 512]);
    grid.push(vec![0xFF, 0xFE, 0x00, 0x7B]);
    // An oversized-but-syntactically-valid line: the parser itself must
    // survive it even though the transport would shed it first.
    let mut huge = String::from(r#"{"op":"cell","app":""#);
    huge.push_str(&"A".repeat(128 * 1024));
    huge.push_str(r#"","config":"x","machine":"ES","procs":4}"#);
    grid.push(huge.into_bytes());
    grid
}

/// Classify one frame. `catch_unwind` turns a parser panic into a
/// distinguished tag the assertions reject.
fn classify(frame: &[u8]) -> &'static str {
    let text = match std::str::from_utf8(frame) {
        Ok(text) => text,
        // The transport never hands the parser invalid UTF-8 (read_line
        // fails first); classified, not skipped, so the fingerprint
        // still covers these frames.
        Err(_) => return "non-utf8",
    };
    let owned = text.to_string();
    match std::panic::catch_unwind(move || parse_line(&owned)) {
        Err(_) => "panic",
        Ok(Err(_)) => "err",
        Ok(Ok(Op::Cell { .. })) => "cell",
        Ok(Ok(Op::Stats { delta: false })) => "stats",
        Ok(Ok(Op::Stats { delta: true })) => "stats-delta",
        Ok(Ok(Op::Health)) => "health",
        Ok(Ok(Op::Ping)) => "ping",
        Ok(Ok(Op::Shutdown)) => "shutdown",
    }
}

/// Classify the whole grid across `threads` workers (stride-sharded)
/// and fold the tags, in grid order, into one FNV-1a fingerprint.
fn grid_fingerprint(threads: usize) -> u64 {
    let grid = mutation_grid();
    let mut tags: Vec<(usize, &'static str)> = std::thread::scope(|scope| {
        let grid = &grid;
        let handles: Vec<_> = (0..threads)
            .map(|worker| {
                scope.spawn(move || {
                    grid.iter()
                        .enumerate()
                        .skip(worker)
                        .step_by(threads)
                        .map(|(i, frame)| (i, classify(frame)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
    });
    tags.sort_unstable_by_key(|&(i, _)| i);
    assert!(
        tags.iter().all(|&(_, tag)| tag != "panic"),
        "parser panicked inside the grid"
    );
    let joined: String = tags
        .iter()
        .map(|&(_, tag)| tag)
        .collect::<Vec<_>>()
        .join(",");
    fnv1a(joined.as_bytes())
}

#[test]
fn seeded_mutation_grid_never_panics_and_fingerprints_identically_across_threads() {
    let serial = grid_fingerprint(1);
    let parallel = grid_fingerprint(8);
    assert_eq!(
        serial, parallel,
        "classification fingerprint diverges between 1 and 8 threads"
    );
    // And the grid itself is a pure function of the seed: a second
    // serial pass reproduces the fingerprint bit-for-bit.
    assert_eq!(serial, grid_fingerprint(1));
}

#[test]
fn field_permutations_parse_to_the_same_op() {
    // Member order must never matter: every permutation of a cell
    // request's fields parses to the identical Op (same content
    // address, same deadline).
    let fields = [
        ("\"op\":\"cell\"", ()),
        ("\"app\":\"GTC\"", ()),
        ("\"config\":\"10 part/cell\"", ()),
        ("\"machine\":\"X1\"", ()),
        ("\"procs\":64", ()),
        ("\"deadline_ms\":125", ()),
        ("\"fault_seed\":7", ()),
    ];
    let baseline = parse_line(&format!(
        "{{{}}}",
        fields.iter().map(|(f, _)| *f).collect::<Vec<_>>().join(",")
    ))
    .unwrap();
    match &baseline {
        Op::Cell { request, deadline_ms } => {
            assert_eq!(request.app, "GTC");
            assert_eq!(*deadline_ms, Some(125));
        }
        other => panic!("baseline parsed as {other:?}"),
    }

    // A seeded walk over permutations (7! = 5040 is cheap, but the
    // seeded shuffle also exercises *repeated* draws of the same
    // order — the parser must be stateless).
    let mut rng = SplitMix64::new(FUZZ_SEED);
    for _ in 0..512 {
        let mut order: Vec<&str> = fields.iter().map(|(f, _)| *f).collect();
        // Fisher–Yates with seeded draws.
        for i in (1..order.len()).rev() {
            let j = (rng.next_u64() as usize) % (i + 1);
            order.swap(i, j);
        }
        let line = format!("{{{}}}", order.join(","));
        let op = parse_line(&line)
            .unwrap_or_else(|e| panic!("permutation {line} failed to parse: {e}"));
        assert_eq!(op, baseline, "permutation changed the parse: {line}");
    }
}

/// One request/response exchange; `None` means the server closed the
/// connection without answering (the clean-close arm of the contract).
fn exchange(addr: std::net::SocketAddr, frame: &[u8]) -> Option<String> {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    // Write errors mean the server already shed us — that is the clean
    // close; reads then confirm it.
    let _ = stream.write_all(frame);
    let _ = stream.write_all(b"\n");
    let _ = stream.flush();
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    match reader.read_line(&mut response) {
        Ok(0) | Err(_) => None,
        Ok(_) => Some(response.trim_end().to_string()),
    }
}

#[test]
fn hostile_frames_over_tcp_get_structured_errors_or_clean_closes() {
    let server = Server::start(ServerOptions::default()).unwrap();
    let addr = server.addr();

    // The malformed subset of the grid, thinned so the test stays fast
    // over real sockets. Frames that still parse as valid ops are
    // excluded: a lucky bit-flip that produces a well-formed cell (or a
    // shutdown!) is not a malformed-frame case.
    let hostile: Vec<Vec<u8>> = mutation_grid()
        .into_iter()
        .enumerate()
        .filter(|(i, frame)| {
            // Whitespace-only frames are not malformed: the server
            // skips blank lines without answering (proved separately
            // below), so a one-shot exchange would just time out.
            let blank = String::from_utf8_lossy(frame).trim().is_empty();
            i % 17 == 0 && !blank && matches!(classify(frame), "err" | "non-utf8")
        })
        .map(|(_, frame)| frame)
        .collect();
    assert!(hostile.len() >= 20, "grid thinned too far: {}", hostile.len());

    for frame in &hostile {
        // Frames with interior newlines are really two frames; the
        // first response (or close) is still bound by the contract.
        match exchange(addr, frame) {
            None => {}
            Some(response) => assert!(
                response.starts_with("{\"ok\":false"),
                "hostile frame {:?} got a non-error response: {response}",
                String::from_utf8_lossy(frame)
            ),
        }
    }

    // The oversized transport case: well past the 64 KiB line cap.
    assert_eq!(exchange(addr, &vec![b'z'; 128 * 1024]), None);
    assert!(server.store().registry().counter("serve.errors.oversized") >= 1);

    // Blank lines are keep-alives, not errors: the server skips them
    // silently and answers the next real request on the connection.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        stream.write_all(b"\n   \n{\"op\":\"ping\"}\n").unwrap();
        stream.flush().unwrap();
        let mut reader = BufReader::new(stream);
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        assert_eq!(response.trim_end(), r#"{"ok":true,"pong":true}"#);
    }

    // After the whole barrage the server still serves exact bytes.
    let good =
        exchange(addr, br#"{"op":"cell","app":"LBMHD","config":"4096x4096","machine":"ES","procs":16}"#)
            .expect("server must survive the fuzz grid");
    assert!(good.starts_with("{\"ok\":true"), "{good}");
    let request = Request::cell("LBMHD", "4096x4096", "ES", 16);
    let direct = {
        use pvs_core::engine::{run_sweep_threads, SweepJob};
        let cell = request.resolve().unwrap();
        let reports = run_sweep_threads(
            vec![SweepJob { machine: cell.machine, phases: cell.phases, procs: cell.procs }],
            1,
        );
        pvs_report::json::perf_report(&reports[0])
    };
    let (_, rest) = good.split_once("\"cell\":").unwrap();
    assert_eq!(&rest[..rest.len() - 1], direct);
}
