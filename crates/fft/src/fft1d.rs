//! Radix-2 iterative Cooley–Tukey FFT with precomputed twiddle plans.
//!
//! Power-of-two lengths only — the study's grids (4096², 8192², 80³, FFT
//! meshes for 432/686-atom cells) are chosen accordingly here. The inverse
//! transform applies the conventional `1/N` normalization so
//! `ifft(fft(x)) == x`.

use pvs_linalg::complex::Complex64;

/// A reusable FFT plan for a fixed power-of-two length.
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    /// Bit-reversal permutation.
    rev: Vec<u32>,
    /// Forward twiddles per butterfly stage, concatenated.
    twiddles: Vec<Complex64>,
}

impl FftPlan {
    /// Build a plan for length `n` (must be a power of two ≥ 1).
    pub fn new(n: usize) -> Self {
        assert!(
            n.is_power_of_two(),
            "FFT length must be a power of two, got {n}"
        );
        let bits = n.trailing_zeros();
        let rev: Vec<u32> = if n == 1 {
            vec![0]
        } else {
            (0..n as u32)
                .map(|i| i.reverse_bits() >> (32 - bits))
                .collect()
        };
        // Twiddles: for each stage with half-size `m`, factors e^{-2πik/(2m)}.
        let mut twiddles = Vec::new();
        let mut m = 1;
        while m < n {
            for k in 0..m {
                twiddles.push(Complex64::cis(-std::f64::consts::PI * k as f64 / m as f64));
            }
            m *= 2;
        }
        Self { n, rev, twiddles }
    }

    /// The planned length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the plan is for the trivial length-1 transform.
    pub fn is_empty(&self) -> bool {
        self.n <= 1
    }

    fn transform(&self, data: &mut [Complex64], inverse: bool) {
        let n = self.n;
        assert_eq!(data.len(), n);
        if n <= 1 {
            return;
        }
        // Bit-reversal permutation.
        for i in 0..n {
            let j = self.rev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
        // Butterflies.
        let mut m = 1;
        let mut toff = 0;
        while m < n {
            for start in (0..n).step_by(2 * m) {
                for k in 0..m {
                    let w = if inverse {
                        self.twiddles[toff + k].conj()
                    } else {
                        self.twiddles[toff + k]
                    };
                    let a = data[start + k];
                    let b = data[start + k + m] * w;
                    data[start + k] = a + b;
                    data[start + k + m] = a - b;
                }
            }
            toff += m;
            m *= 2;
        }
        if inverse {
            let inv = 1.0 / n as f64;
            for x in data {
                *x = x.scale(inv);
            }
        }
    }

    /// In-place forward transform.
    pub fn forward(&self, data: &mut [Complex64]) {
        self.transform(data, false);
    }

    /// In-place inverse transform (normalized by `1/N`).
    pub fn inverse(&self, data: &mut [Complex64]) {
        self.transform(data, true);
    }
}

/// One-shot forward FFT.
pub fn fft(data: &mut [Complex64]) {
    FftPlan::new(data.len()).forward(data);
}

/// One-shot inverse FFT.
pub fn ifft(data: &mut [Complex64]) {
    FftPlan::new(data.len()).inverse(data);
}

#[cfg(test)]
pub(crate) fn dft_naive(data: &[Complex64], inverse: bool) -> Vec<Complex64> {
    let n = data.len();
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut out = vec![Complex64::ZERO; n];
    for (k, o) in out.iter_mut().enumerate() {
        for (j, &x) in data.iter().enumerate() {
            let ang = sign * 2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
            *o += x * Complex64::cis(ang);
        }
        if inverse {
            *o = o.scale(1.0 / n as f64);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signal(n: usize, seed: u64) -> Vec<Complex64> {
        (0..n)
            .map(|i| {
                let h = (i as u64 + seed).wrapping_mul(0x9E3779B97F4A7C15);
                Complex64::new(
                    ((h >> 16) % 2000) as f64 / 1000.0 - 1.0,
                    ((h >> 40) % 2000) as f64 / 1000.0 - 1.0,
                )
            })
            .collect()
    }

    #[test]
    fn matches_naive_dft() {
        for n in [1usize, 2, 4, 8, 64, 256] {
            let x = signal(n, 3);
            let expect = dft_naive(&x, false);
            let mut got = x.clone();
            fft(&mut got);
            for (g, e) in got.iter().zip(&expect) {
                assert!((*g - *e).abs() < 1e-9 * n as f64, "n={n}");
            }
        }
    }

    #[test]
    fn roundtrip_identity() {
        let x = signal(128, 9);
        let mut y = x.clone();
        fft(&mut y);
        ifft(&mut y);
        for (a, b) in x.iter().zip(&y) {
            assert!((*a - *b).abs() < 1e-10);
        }
    }

    #[test]
    fn impulse_transforms_to_constant() {
        let mut x = vec![Complex64::ZERO; 16];
        x[0] = Complex64::ONE;
        fft(&mut x);
        for v in &x {
            assert!((*v - Complex64::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn single_tone_has_single_bin() {
        let n = 64;
        let k0 = 5;
        let mut x: Vec<Complex64> = (0..n)
            .map(|i| Complex64::cis(2.0 * std::f64::consts::PI * (k0 * i) as f64 / n as f64))
            .collect();
        fft(&mut x);
        for (k, v) in x.iter().enumerate() {
            let expect = if k == k0 { n as f64 } else { 0.0 };
            assert!((v.abs() - expect).abs() < 1e-9, "bin {k}");
        }
    }

    #[test]
    fn parseval() {
        let x = signal(256, 21);
        let time_energy: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let mut y = x;
        fft(&mut y);
        let freq_energy: f64 = y.iter().map(|z| z.norm_sqr()).sum::<f64>() / 256.0;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-12);
    }

    #[test]
    #[should_panic]
    fn rejects_non_power_of_two() {
        FftPlan::new(12);
    }

    #[test]
    fn roundtrip_every_power_of_two() {
        // Former proptest property, swept deterministically: every plan
        // size up to 256 with two distinct signals each.
        for log_n in 0u32..9 {
            let n = 1usize << log_n;
            for seed in [3u64, 517] {
                let x = signal(n, seed);
                let mut y = x.clone();
                let plan = FftPlan::new(n);
                plan.forward(&mut y);
                plan.inverse(&mut y);
                for (a, b) in x.iter().zip(&y) {
                    assert!((*a - *b).abs() < 1e-9, "n={n} seed={seed}");
                }
            }
        }
    }

    #[test]
    fn linearity() {
        let n = 64;
        for seed in [1u64, 99, 876] {
            for alpha in [-2.0f64, -0.5, 0.0, 0.75, 1.9] {
                let x = signal(n, seed);
                let y = signal(n, seed ^ 0xFFFF);
                let combo: Vec<Complex64> =
                    x.iter().zip(&y).map(|(a, b)| a.scale(alpha) + *b).collect();
                let mut fx = x.clone();
                let mut fy = y.clone();
                let mut fc = combo;
                fft(&mut fx);
                fft(&mut fy);
                fft(&mut fc);
                for i in 0..n {
                    let expect = fx[i].scale(alpha) + fy[i];
                    assert!((fc[i] - expect).abs() < 1e-8, "seed={seed} alpha={alpha}");
                }
            }
        }
    }
}
