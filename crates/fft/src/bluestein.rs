//! Arbitrary-length FFT via Bluestein's chirp-z algorithm.
//!
//! Production plane-wave codes pick FFT grids with small prime factors
//! (the real 432-atom PARATEC mesh is not a power of two); this module
//! removes the power-of-two restriction by expressing a length-`n` DFT as
//! a convolution, evaluated with two power-of-two FFTs of length
//! `M ≥ 2n − 1`:
//!
//! ```text
//! X_k = b*_k · Σ_j (a_j b_j) · b*_{k−j},   a_j = x_j e^{−iπj²/n},  b_j = e^{+iπj²/n}
//! ```

use crate::fft1d::FftPlan;
use pvs_linalg::complex::Complex64;

/// A reusable Bluestein plan for any length `n ≥ 1`.
#[derive(Debug, Clone)]
pub struct BluesteinPlan {
    n: usize,
    m: usize,
    plan: FftPlan,
    /// Chirp `b_j = e^{iπ j²/n}` for `j < n`.
    chirp: Vec<Complex64>,
    /// Forward FFT of the zero-padded, wrapped chirp kernel.
    kernel_hat: Vec<Complex64>,
}

impl BluesteinPlan {
    /// Build a plan.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1);
        let m = (2 * n - 1).next_power_of_two();
        let plan = FftPlan::new(m);
        // j² mod 2n keeps the chirp argument exact for large j.
        let chirp: Vec<Complex64> = (0..n)
            .map(|j| {
                let jj = (j * j) % (2 * n);
                Complex64::cis(std::f64::consts::PI * jj as f64 / n as f64)
            })
            .collect();
        // Convolution kernel c_j = b_j for j in (−n, n), wrapped into [0, M).
        let mut kernel = vec![Complex64::ZERO; m];
        for (j, &c) in chirp.iter().enumerate() {
            kernel[j] = c;
            if j != 0 {
                kernel[m - j] = c;
            }
        }
        let mut kernel_hat = kernel;
        plan.forward(&mut kernel_hat);
        Self {
            n,
            m,
            plan,
            chirp,
            kernel_hat,
        }
    }

    /// Planned length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the planned length is trivial.
    pub fn is_empty(&self) -> bool {
        self.n <= 1
    }

    fn transform(&self, data: &mut [Complex64], inverse: bool) {
        let n = self.n;
        assert_eq!(data.len(), n);
        if n == 1 {
            return;
        }
        // Conjugating input and output turns the forward transform into
        // the inverse (up to 1/n).
        if inverse {
            for x in data.iter_mut() {
                *x = x.conj();
            }
        }
        // a_j = x_j · b*_j, zero-padded to M.
        let mut a = vec![Complex64::ZERO; self.m];
        for j in 0..n {
            a[j] = data[j] * self.chirp[j].conj();
        }
        // Convolve with the chirp kernel via the power-of-two FFT.
        self.plan.forward(&mut a);
        for (av, kv) in a.iter_mut().zip(&self.kernel_hat) {
            *av *= *kv;
        }
        self.plan.inverse(&mut a);
        // X_k = b*_k · conv_k.
        for k in 0..n {
            data[k] = a[k] * self.chirp[k].conj();
        }
        if inverse {
            let inv = 1.0 / n as f64;
            for x in data.iter_mut() {
                *x = x.conj().scale(inv);
            }
        }
    }

    /// Forward DFT of arbitrary length, in place.
    pub fn forward(&self, data: &mut [Complex64]) {
        self.transform(data, false);
    }

    /// Inverse DFT (normalized by `1/n`), in place.
    pub fn inverse(&self, data: &mut [Complex64]) {
        self.transform(data, true);
    }
}

/// One-shot arbitrary-length forward DFT.
pub fn fft_any(data: &mut [Complex64]) {
    BluesteinPlan::new(data.len()).forward(data);
}

/// One-shot arbitrary-length inverse DFT.
pub fn ifft_any(data: &mut [Complex64]) {
    BluesteinPlan::new(data.len()).inverse(data);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft1d::{dft_naive, fft};

    fn signal(n: usize, seed: u64) -> Vec<Complex64> {
        (0..n)
            .map(|i| {
                let h = (i as u64 + seed * 977).wrapping_mul(0x9E3779B97F4A7C15);
                Complex64::new(
                    ((h >> 16) % 2000) as f64 / 1000.0 - 1.0,
                    ((h >> 40) % 2000) as f64 / 1000.0 - 1.0,
                )
            })
            .collect()
    }

    #[test]
    fn matches_naive_dft_for_awkward_lengths() {
        for n in [1usize, 2, 3, 5, 7, 12, 45, 100, 243] {
            let x = signal(n, 3);
            let expect = dft_naive(&x, false);
            let mut got = x;
            fft_any(&mut got);
            for (g, e) in got.iter().zip(&expect) {
                assert!((*g - *e).abs() < 1e-8 * n as f64, "n={n}");
            }
        }
    }

    #[test]
    fn matches_radix2_on_powers_of_two() {
        let n = 64;
        let x = signal(n, 7);
        let mut a = x.clone();
        let mut b = x;
        fft(&mut a);
        fft_any(&mut b);
        for (p, q) in a.iter().zip(&b) {
            assert!((*p - *q).abs() < 1e-9);
        }
    }

    #[test]
    fn roundtrip_awkward_lengths() {
        for n in [3usize, 17, 60, 125] {
            let x = signal(n, 11);
            let plan = BluesteinPlan::new(n);
            let mut y = x.clone();
            plan.forward(&mut y);
            plan.inverse(&mut y);
            for (a, b) in x.iter().zip(&y) {
                assert!((*a - *b).abs() < 1e-9, "n={n}");
            }
        }
    }

    #[test]
    fn single_tone_detected_at_odd_length() {
        let n = 15;
        let k0 = 4;
        let mut x: Vec<Complex64> = (0..n)
            .map(|j| Complex64::cis(2.0 * std::f64::consts::PI * (k0 * j) as f64 / n as f64))
            .collect();
        fft_any(&mut x);
        for (k, v) in x.iter().enumerate() {
            let expect = if k == k0 { n as f64 } else { 0.0 };
            assert!((v.abs() - expect).abs() < 1e-8, "bin {k}: {}", v.abs());
        }
    }

    #[test]
    fn parseval_any_length() {
        // Former proptest property over arbitrary lengths, now a fixed
        // sweep covering primes, prime powers, highly composite and
        // power-of-two lengths.
        for n in [1usize, 2, 3, 5, 7, 11, 16, 27, 31, 45, 60, 97, 125, 128, 150, 199] {
            for seed in [0u64, 137] {
                let x = signal(n, seed);
                let time: f64 = x.iter().map(|z| z.norm_sqr()).sum();
                let mut y = x;
                fft_any(&mut y);
                let freq: f64 = y.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
                assert!(
                    (time - freq).abs() < 1e-6 * time.max(1.0),
                    "n={n}: {time} vs {freq}"
                );
            }
        }
    }
}
