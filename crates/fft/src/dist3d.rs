//! Serial and distributed 3D FFTs.
//!
//! The serial transform applies 1D FFTs along X, then Y, then Z, using the
//! simultaneous-FFT kernel for the strided Y and Z passes (the exact
//! structure of PARATEC's rewritten 3D FFT). The distributed transform
//! slab-decomposes the cube over Z, performs per-plane 2D FFTs locally,
//! transposes to a Y-slab decomposition with an all-to-all exchange on the
//! `pvs-mpisim` runtime, and finishes with the Z-direction FFTs — "taking
//! 1D FFTs along the Z, Y, and X directions with parallel data transposes
//! between each set of 1D FFTs" (§4.2).

use crate::fft1d::FftPlan;
use crate::multi::MultiFft;
use pvs_linalg::complex::Complex64;
use pvs_mpisim::comm::Comm;

/// Index of `(ix, iy, iz)` in the canonical layout (x fastest).
#[inline]
pub fn idx3(ix: usize, iy: usize, iz: usize, n: usize) -> usize {
    (iz * n + iy) * n + ix
}

fn fft3d_serial_impl(data: &mut [Complex64], n: usize, inverse: bool) {
    assert_eq!(data.len(), n * n * n);
    let plan = FftPlan::new(n);
    let multi_plane = MultiFft::new(n, n);
    let multi_cube = MultiFft::new(n, n * n);

    // X direction: contiguous rows.
    for row in data.chunks_exact_mut(n) {
        if inverse {
            plan.inverse(row);
        } else {
            plan.forward(row);
        }
    }
    // Y direction: within each z-plane the layout [iy][ix] is exactly the
    // transform-major layout of n simultaneous length-n FFTs (the
    // transforms are indexed by ix).
    for plane in data.chunks_exact_mut(n * n) {
        if inverse {
            multi_plane.inverse(plane);
        } else {
            multi_plane.forward(plane);
        }
    }
    // Z direction: the whole cube is transform-major over n² transforms.
    if inverse {
        multi_cube.inverse(data);
    } else {
        multi_cube.forward(data);
    }
}

/// In-place serial forward 3D FFT on an `n³` cube (x-fastest layout).
pub fn fft3d_serial(data: &mut [Complex64], n: usize) {
    fft3d_serial_impl(data, n, false);
}

/// In-place serial inverse 3D FFT.
pub fn ifft3d_serial(data: &mut [Complex64], n: usize) {
    fft3d_serial_impl(data, n, true);
}

/// A distributed 3D FFT over `p` ranks (must divide `n`).
///
/// Input: each rank owns `n/p` consecutive Z planes in the canonical
/// layout. Output of [`DistFft3::forward`]: each rank owns `n/p`
/// consecutive Y planes, laid out `[ly][iz][ix]` (x fastest). The
/// [`DistFft3::backward`] method inverts the whole pipeline back to
/// Z-slab layout.
#[derive(Debug, Clone, Copy)]
pub struct DistFft3 {
    n: usize,
}

impl DistFft3 {
    /// Plan a distributed transform of size `n³`.
    pub fn new(n: usize) -> Self {
        assert!(n.is_power_of_two());
        Self { n }
    }

    /// Grid edge length.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Local Z planes per rank for `p` ranks.
    pub fn planes_per_rank(&self, p: usize) -> usize {
        assert!(self.n.is_multiple_of(p), "ranks must divide n");
        self.n / p
    }

    /// Forward transform: Z-slab input → Y-slab output (`[ly][iz][ix]`).
    pub fn forward(&self, comm: &mut Comm, mut local: Vec<Complex64>) -> Vec<Complex64> {
        let n = self.n;
        let p = comm.size();
        let planes = self.planes_per_rank(p);
        assert_eq!(local.len(), planes * n * n);

        let plan = FftPlan::new(n);
        let multi_plane = MultiFft::new(n, n);

        // X then Y FFTs on each owned z-plane.
        for row in local.chunks_exact_mut(n) {
            plan.forward(row);
        }
        for plane in local.chunks_exact_mut(n * n) {
            multi_plane.forward(plane);
        }

        // Transpose Z-slabs → Y-slabs.
        let local = self.transpose_z_to_y(comm, &local);

        // Z FFTs: each owned y-plane `[iz][ix]` is transform-major over n
        // simultaneous transforms.
        let mut local = local;
        for plane in local.chunks_exact_mut(n * n) {
            multi_plane.forward(plane);
        }
        local
    }

    /// Inverse transform: Y-slab input (`[ly][iz][ix]`) → Z-slab output.
    pub fn backward(&self, comm: &mut Comm, mut local: Vec<Complex64>) -> Vec<Complex64> {
        let n = self.n;
        let p = comm.size();
        let planes = self.planes_per_rank(p);
        assert_eq!(local.len(), planes * n * n);

        let plan = FftPlan::new(n);
        let multi_plane = MultiFft::new(n, n);

        // Inverse Z FFTs in y-slab layout.
        for plane in local.chunks_exact_mut(n * n) {
            multi_plane.inverse(plane);
        }
        // Transpose back to z-slabs.
        let mut local = self.transpose_y_to_z(comm, &local);
        // Inverse Y then X FFTs.
        for plane in local.chunks_exact_mut(n * n) {
            multi_plane.inverse(plane);
        }
        for row in local.chunks_exact_mut(n) {
            plan.inverse(row);
        }
        local
    }

    /// Exchange so that rank q ends up owning y-planes
    /// `[q*planes, (q+1)*planes)` in layout `[ly][iz][ix]`.
    fn transpose_z_to_y(&self, comm: &mut Comm, local: &[Complex64]) -> Vec<Complex64> {
        let n = self.n;
        let p = comm.size();
        let planes = n / p;
        // Build per-destination buffers: to rank q send, for each owned lz
        // and each ly in q's slab, the x-row. Frame order: [lz][ly][ix].
        let mut sends: Vec<Vec<f64>> = vec![Vec::with_capacity(planes * planes * n * 2); p];
        for (q, buf) in sends.iter_mut().enumerate() {
            for lz in 0..planes {
                for ly in 0..planes {
                    let iy = q * planes + ly;
                    let base = (lz * n + iy) * n;
                    for ix in 0..n {
                        let z = local[base + ix];
                        buf.push(z.re);
                        buf.push(z.im);
                    }
                }
            }
        }
        let recvs = comm.alltoallv(sends);
        // Received from rank s: [lz_s][ly][ix] where iz = s*planes + lz_s.
        let mut out = vec![Complex64::ZERO; planes * n * n];
        for (s, buf) in recvs.iter().enumerate() {
            let mut k = 0;
            for lz in 0..planes {
                let iz = s * planes + lz;
                for ly in 0..planes {
                    let base = (ly * n + iz) * n;
                    for ix in 0..n {
                        out[base + ix] = Complex64::new(buf[k], buf[k + 1]);
                        k += 2;
                    }
                }
            }
        }
        out
    }

    /// Inverse of [`Self::transpose_z_to_y`].
    fn transpose_y_to_z(&self, comm: &mut Comm, local: &[Complex64]) -> Vec<Complex64> {
        let n = self.n;
        let p = comm.size();
        let planes = n / p;
        // To rank q: for each lz in q's z-slab and each owned ly, the x-row.
        // Frame order must match what transpose_z_to_y's receiver expects
        // from *its* send order: [lz][ly][ix] relative to the destination.
        let mut sends: Vec<Vec<f64>> = vec![Vec::with_capacity(planes * planes * n * 2); p];
        for (q, buf) in sends.iter_mut().enumerate() {
            for lz in 0..planes {
                let iz = q * planes + lz;
                for ly in 0..planes {
                    let base = (ly * n + iz) * n;
                    for ix in 0..n {
                        let z = local[base + ix];
                        buf.push(z.re);
                        buf.push(z.im);
                    }
                }
            }
        }
        let recvs = comm.alltoallv(sends);
        let mut out = vec![Complex64::ZERO; planes * n * n];
        for (s, buf) in recvs.iter().enumerate() {
            let mut k = 0;
            for lz in 0..planes {
                for ly in 0..planes {
                    let iy = s * planes + ly;
                    let base = (lz * n + iy) * n;
                    for ix in 0..n {
                        out[base + ix] = Complex64::new(buf[k], buf[k + 1]);
                        k += 2;
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvs_mpisim::run;

    fn cube(n: usize, seed: u64) -> Vec<Complex64> {
        (0..n * n * n)
            .map(|i| {
                let h = (i as u64 + seed).wrapping_mul(0x9E3779B97F4A7C15);
                Complex64::new(
                    ((h >> 16) % 2000) as f64 / 1000.0 - 1.0,
                    ((h >> 40) % 2000) as f64 / 1000.0 - 1.0,
                )
            })
            .collect()
    }

    #[test]
    fn serial_roundtrip() {
        let n = 8;
        let orig = cube(n, 5);
        let mut data = orig.clone();
        fft3d_serial(&mut data, n);
        ifft3d_serial(&mut data, n);
        for (a, b) in orig.iter().zip(&data) {
            assert!((*a - *b).abs() < 1e-10);
        }
    }

    #[test]
    fn serial_plane_wave_is_delta() {
        // e^{2πi (k·r)/n} transforms to a single spike at k.
        let n = 8;
        let k = (2usize, 3usize, 1usize);
        let mut data = vec![Complex64::ZERO; n * n * n];
        for iz in 0..n {
            for iy in 0..n {
                for ix in 0..n {
                    let phase =
                        2.0 * std::f64::consts::PI * (k.0 * ix + k.1 * iy + k.2 * iz) as f64
                            / n as f64;
                    data[idx3(ix, iy, iz, n)] = Complex64::cis(phase);
                }
            }
        }
        fft3d_serial(&mut data, n);
        for iz in 0..n {
            for iy in 0..n {
                for ix in 0..n {
                    let expect = if (ix, iy, iz) == k {
                        (n * n * n) as f64
                    } else {
                        0.0
                    };
                    let got = data[idx3(ix, iy, iz, n)].abs();
                    assert!((got - expect).abs() < 1e-8, "({ix},{iy},{iz}): {got}");
                }
            }
        }
    }

    #[test]
    fn distributed_matches_serial() {
        let n = 8;
        let p = 4;
        let full = cube(n, 77);
        let mut expect = full.clone();
        fft3d_serial(&mut expect, n);

        let results = run(p, |mut comm| {
            let rank = comm.rank();
            let planes = n / p;
            let local = full[rank * planes * n * n..(rank + 1) * planes * n * n].to_vec();
            DistFft3::new(n).forward(&mut comm, local)
        });

        // Output layout: rank q owns y-planes [q*planes, ...), [ly][iz][ix].
        let planes = n / p;
        for (q, local) in results.iter().enumerate() {
            for ly in 0..planes {
                let iy = q * planes + ly;
                for iz in 0..n {
                    for ix in 0..n {
                        let got = local[(ly * n + iz) * n + ix];
                        let want = expect[idx3(ix, iy, iz, n)];
                        assert!(
                            (got - want).abs() < 1e-8,
                            "rank {q} ({ix},{iy},{iz}): {got:?} vs {want:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn distributed_roundtrip() {
        let n = 8;
        let p = 2;
        let full = cube(n, 99);
        let results = run(p, |mut comm| {
            let rank = comm.rank();
            let planes = n / p;
            let local = full[rank * planes * n * n..(rank + 1) * planes * n * n].to_vec();
            let f = DistFft3::new(n);
            let freq = f.forward(&mut comm, local);
            f.backward(&mut comm, freq)
        });
        let planes = n / p;
        for (q, local) in results.iter().enumerate() {
            let expect = &full[q * planes * n * n..(q + 1) * planes * n * n];
            for (a, b) in local.iter().zip(expect) {
                assert!((*a - *b).abs() < 1e-10, "rank {q}");
            }
        }
    }

    #[test]
    fn single_rank_distributed_equals_serial() {
        let n = 4;
        let full = cube(n, 3);
        let mut expect = full.clone();
        fft3d_serial(&mut expect, n);
        let results = run(1, |mut comm| {
            DistFft3::new(n).forward(&mut comm, full.clone())
        });
        // p=1: y-slab layout [iy][iz][ix] vs canonical [iz][iy][ix].
        for iy in 0..n {
            for iz in 0..n {
                for ix in 0..n {
                    let got = results[0][(iy * n + iz) * n + ix];
                    let want = expect[idx3(ix, iy, iz, n)];
                    assert!((got - want).abs() < 1e-9);
                }
            }
        }
    }
}
