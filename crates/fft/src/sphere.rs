//! The PARATEC G-sphere and its column load balancer (paper Fig. 4a).
//!
//! In Fourier space a wavefunction is a sphere of plane-wave coefficients:
//! all grid points `G` with kinetic energy `|G|² ≤ E_cut`. The sphere is
//! organized into *columns* — fixed `(gx, gy)`, all admissible `gz` — and
//! columns are distributed over processors by the paper's greedy rule:
//! order columns by descending length, then repeatedly give the next column
//! to the processor currently holding the fewest points.
//!
//! Communicating only these non-zero columns (instead of the full `n³`
//! grid) is what makes the specialized 3D FFT's transposes affordable;
//! [`sphere_fill_fraction`] quantifies the saving.

/// One column of the G-sphere.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GColumn {
    /// Signed x frequency.
    pub gx: i32,
    /// Signed y frequency.
    pub gy: i32,
    /// Number of admissible `gz` points in this column.
    pub len: usize,
}

/// Signed frequency of FFT index `i` on an `n`-point grid.
fn freq(i: usize, n: usize) -> i32 {
    if i <= n / 2 {
        i as i32
    } else {
        i as i32 - n as i32
    }
}

/// Enumerate the non-empty columns of the sphere `|G|² ≤ g2_max` on an
/// `n³` FFT grid.
pub fn gsphere_columns(n: usize, g2_max: f64) -> Vec<GColumn> {
    let mut cols = Vec::new();
    for ix in 0..n {
        let fx = freq(ix, n);
        for iy in 0..n {
            let fy = freq(iy, n);
            let rho2 = (fx * fx + fy * fy) as f64;
            if rho2 > g2_max {
                continue;
            }
            let len = (0..n)
                .filter(|&iz| {
                    let fz = freq(iz, n);
                    rho2 + (fz * fz) as f64 <= g2_max
                })
                .count();
            if len > 0 {
                cols.push(GColumn {
                    gx: fx,
                    gy: fy,
                    len,
                });
            }
        }
    }
    cols
}

/// The paper's greedy column balancer: returns `assignment[c] = processor`
/// for each column, assigning columns in descending length order to the
/// processor with the fewest points so far.
pub fn balance_columns(cols: &[GColumn], p: usize) -> Vec<usize> {
    assert!(p >= 1);
    let mut order: Vec<usize> = (0..cols.len()).collect();
    order.sort_by(|&a, &b| cols[b].len.cmp(&cols[a].len).then(a.cmp(&b)));
    let mut load = vec![0usize; p];
    let mut assignment = vec![0usize; cols.len()];
    for c in order {
        let proc = (0..p).min_by_key(|&q| load[q]).expect("p >= 1");
        assignment[c] = proc;
        load[proc] += cols[c].len;
    }
    assignment
}

/// Per-processor point totals for an assignment.
pub fn proc_loads(cols: &[GColumn], assignment: &[usize], p: usize) -> Vec<usize> {
    let mut load = vec![0usize; p];
    for (c, &q) in assignment.iter().enumerate() {
        load[q] += cols[c].len;
    }
    load
}

/// Fraction of the full `n³` grid occupied by the sphere — the
/// communication-volume ratio of sphere-only vs full-grid transposes.
pub fn sphere_fill_fraction(n: usize, g2_max: f64) -> f64 {
    let points: usize = gsphere_columns(n, g2_max).iter().map(|c| c.len).sum();
    points as f64 / (n * n * n) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freq_convention() {
        assert_eq!(freq(0, 8), 0);
        assert_eq!(freq(4, 8), 4);
        assert_eq!(freq(5, 8), -3);
        assert_eq!(freq(7, 8), -1);
    }

    #[test]
    fn tiny_sphere_is_single_column() {
        let cols = gsphere_columns(8, 0.5);
        assert_eq!(cols.len(), 1);
        assert_eq!(
            cols[0],
            GColumn {
                gx: 0,
                gy: 0,
                len: 1
            }
        );
    }

    #[test]
    fn sphere_point_count_is_plausible() {
        // For g2_max = r², points ≈ (4/3)πr³ when the sphere fits the grid.
        let n = 32;
        let r = 6.0f64;
        let points: usize = gsphere_columns(n, r * r).iter().map(|c| c.len).sum();
        let analytic = 4.0 / 3.0 * std::f64::consts::PI * r.powi(3);
        let ratio = points as f64 / analytic;
        assert!(
            (0.8..1.25).contains(&ratio),
            "count {points} vs analytic {analytic}"
        );
    }

    #[test]
    fn sphere_is_inversion_symmetric() {
        // For every column (gx, gy) there is a (-gx, -gy) of equal length.
        let cols = gsphere_columns(16, 25.0);
        for c in &cols {
            let partner = cols
                .iter()
                .find(|d| d.gx == -c.gx && d.gy == -c.gy)
                .unwrap_or_else(|| panic!("no partner for ({}, {})", c.gx, c.gy));
            assert_eq!(partner.len, c.len);
        }
    }

    #[test]
    fn balance_is_near_perfect() {
        let cols = gsphere_columns(32, 60.0);
        for p in [2, 3, 7, 16] {
            let asg = balance_columns(&cols, p);
            let loads = proc_loads(&cols, &asg, p);
            let max = *loads.iter().max().expect("nonempty");
            let min = *loads.iter().min().expect("nonempty");
            let longest = cols.iter().map(|c| c.len).max().expect("nonempty");
            assert!(
                max - min <= longest,
                "p={p}: imbalance {} exceeds longest column {longest}",
                max - min
            );
        }
    }

    #[test]
    fn sphere_fill_fraction_well_below_one() {
        // The paper's saving: the sphere occupies a small fraction of the
        // cube, so transposing only non-zero columns cuts communication.
        let frac = sphere_fill_fraction(32, 64.0);
        assert!(frac < 0.30, "fill fraction {frac}");
        assert!(frac > 0.005);
    }

    #[test]
    fn all_columns_assigned_to_valid_procs() {
        // Former proptest property, now exhaustive over the whole range
        // it sampled from.
        let cols = gsphere_columns(16, 20.0);
        let total: usize = cols.iter().map(|c| c.len).sum();
        for p in 1usize..20 {
            let asg = balance_columns(&cols, p);
            assert_eq!(asg.len(), cols.len(), "p={p}");
            assert!(asg.iter().all(|&q| q < p), "p={p}");
            // Conservation: loads sum to total points.
            assert_eq!(proc_loads(&cols, &asg, p).iter().sum::<usize>(), total);
        }
    }
}
