//! # pvs-fft — Fourier transform substrate
//!
//! PARATEC transforms electron wavefunctions between Fourier space (a
//! sphere of plane-wave coefficients) and real space (a 3D grid) with
//! specialized parallel 3D FFTs; §4.1 of the paper describes the two
//! porting details this crate reproduces:
//!
//! * vendor 1D FFTs ran poorly on the ES/X1, so the 3D FFT was rewritten
//!   over **simultaneous (multiple) 1D FFTs** that vectorize *across*
//!   transforms — [`multi`] implements exactly that layout and [`fft1d`]
//!   the underlying radix-2 kernels;
//! * global transposes dominate at scale, so only the **non-zero sphere
//!   columns** are communicated — [`sphere`] builds the G-sphere, applies
//!   the paper's greedy column load balancer (Fig. 4a), and reports the
//!   communication-volume saving; [`dist3d`] runs the distributed 3D FFT
//!   (1D FFTs along Z, Y, X with all-to-all transposes between) on the
//!   `pvs-mpisim` runtime;
//! * production meshes are rarely powers of two: [`bluestein`] provides
//!   arbitrary-length transforms via the chirp-z convolution.
//!
//! ## Example
//!
//! ```
//! use pvs_fft::{fft, ifft};
//! use pvs_linalg::Complex64;
//!
//! let orig: Vec<Complex64> =
//!     (0..64).map(|i| Complex64::new((i as f64 * 0.3).sin(), 0.0)).collect();
//! let mut data = orig.clone();
//! fft(&mut data);
//! ifft(&mut data);
//! for (a, b) in orig.iter().zip(&data) {
//!     assert!((*a - *b).abs() < 1e-10);
//! }
//! ```

pub mod bluestein;
pub mod dist3d;
pub mod fft1d;
pub mod multi;
pub mod sphere;

pub use bluestein::{fft_any, ifft_any, BluesteinPlan};
pub use dist3d::{fft3d_serial, ifft3d_serial, DistFft3};
pub use fft1d::{fft, ifft, FftPlan};
pub use multi::{fft_multi, ifft_multi, MultiFft};
pub use sphere::{balance_columns, gsphere_columns, GColumn};
