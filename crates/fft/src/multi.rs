//! Simultaneous (multiple) 1D FFTs — the vector-port transformation.
//!
//! §4.1 of the paper: the vendor 1D FFT ran at a low fraction of peak on
//! the ES and X1, so PARATEC's 3D FFT was rewritten to call *simultaneous*
//! 1D FFTs "which allow effective vectorization across many 1D FFTs".
//!
//! The data layout here makes that explicit: `count` transforms of length
//! `n` are stored transform-major — element `j` of transform `t` lives at
//! `data[j * count + t]` — so the innermost loop of every butterfly runs
//! over *transforms* with unit stride. On a vector machine that loop is the
//! vectorized one (AVL = `count`, independent of `n`); here it is the loop
//! LLVM auto-vectorizes.

use crate::fft1d::FftPlan;
use pvs_linalg::complex::Complex64;

/// A plan for `count` simultaneous transforms of length `n`.
#[derive(Debug, Clone)]
pub struct MultiFft {
    plan: FftPlan,
    count: usize,
}

impl MultiFft {
    /// Build a simultaneous-FFT plan.
    pub fn new(n: usize, count: usize) -> Self {
        assert!(count >= 1);
        Self {
            plan: FftPlan::new(n),
            count,
        }
    }

    /// Transform length.
    pub fn n(&self) -> usize {
        self.plan.len()
    }

    /// Number of simultaneous transforms.
    pub fn count(&self) -> usize {
        self.count
    }

    fn transform(&self, data: &mut [Complex64], inverse: bool) {
        let n = self.plan.len();
        let count = self.count;
        assert_eq!(data.len(), n * count);
        if n <= 1 {
            return;
        }
        // Bit-reversal permutation, swapping whole transform rows.
        for i in 0..n {
            let j = bit_reverse(i, n);
            if i < j {
                for t in 0..count {
                    data.swap(i * count + t, j * count + t);
                }
            }
        }
        // Butterflies; the loop over `t` (transforms) is innermost and
        // unit-stride: this is the axis a vector compiler strip-mines.
        let mut m = 1;
        while m < n {
            for start in (0..n).step_by(2 * m) {
                for k in 0..m {
                    let ang = -std::f64::consts::PI * k as f64 / m as f64;
                    let w = if inverse {
                        Complex64::cis(-ang)
                    } else {
                        Complex64::cis(ang)
                    };
                    let (ia, ib) = ((start + k) * count, (start + k + m) * count);
                    for t in 0..count {
                        let a = data[ia + t];
                        let b = data[ib + t] * w;
                        data[ia + t] = a + b;
                        data[ib + t] = a - b;
                    }
                }
            }
            m *= 2;
        }
        if inverse {
            let inv = 1.0 / n as f64;
            for x in data {
                *x = x.scale(inv);
            }
        }
    }

    /// Forward-transform all `count` signals in place (transform-major
    /// layout).
    pub fn forward(&self, data: &mut [Complex64]) {
        self.transform(data, false);
    }

    /// Inverse-transform all signals in place.
    pub fn inverse(&self, data: &mut [Complex64]) {
        self.transform(data, true);
    }
}

fn bit_reverse(i: usize, n: usize) -> usize {
    let bits = n.trailing_zeros();
    (i as u32).reverse_bits() as usize >> (32 - bits)
}

/// Forward-transform `count` signals of length `n` stored transform-major.
pub fn fft_multi(data: &mut [Complex64], n: usize, count: usize) {
    MultiFft::new(n, count).forward(data);
}

/// Inverse-transform `count` signals of length `n` stored transform-major.
pub fn ifft_multi(data: &mut [Complex64], n: usize, count: usize) {
    MultiFft::new(n, count).inverse(data);
}

/// Convert `count` separate signals into the transform-major layout.
pub fn interleave(signals: &[Vec<Complex64>]) -> Vec<Complex64> {
    let count = signals.len();
    let n = signals[0].len();
    let mut out = vec![Complex64::ZERO; n * count];
    for (t, s) in signals.iter().enumerate() {
        assert_eq!(s.len(), n);
        for (j, &v) in s.iter().enumerate() {
            out[j * count + t] = v;
        }
    }
    out
}

/// Convert transform-major data back into separate signals.
pub fn deinterleave(data: &[Complex64], n: usize, count: usize) -> Vec<Vec<Complex64>> {
    assert_eq!(data.len(), n * count);
    (0..count)
        .map(|t| (0..n).map(|j| data[j * count + t]).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft1d::fft;

    fn signal(n: usize, seed: u64) -> Vec<Complex64> {
        (0..n)
            .map(|i| {
                let h = (i as u64 + seed * 7919).wrapping_mul(0x9E3779B97F4A7C15);
                Complex64::new(
                    ((h >> 16) % 2000) as f64 / 1000.0 - 1.0,
                    ((h >> 40) % 2000) as f64 / 1000.0 - 1.0,
                )
            })
            .collect()
    }

    #[test]
    fn multi_matches_repeated_single() {
        let n = 64;
        let count = 10;
        let signals: Vec<Vec<Complex64>> = (0..count as u64).map(|s| signal(n, s)).collect();
        let mut packed = interleave(&signals);
        fft_multi(&mut packed, n, count);
        let unpacked = deinterleave(&packed, n, count);
        for (t, s) in signals.iter().enumerate() {
            let mut expect = s.clone();
            fft(&mut expect);
            for (g, e) in unpacked[t].iter().zip(&expect) {
                assert!((*g - *e).abs() < 1e-9, "transform {t}");
            }
        }
    }

    #[test]
    fn multi_roundtrip() {
        let n = 128;
        let count = 7;
        let signals: Vec<Vec<Complex64>> = (0..count as u64).map(|s| signal(n, s + 50)).collect();
        let mut packed = interleave(&signals);
        let plan = MultiFft::new(n, count);
        plan.forward(&mut packed);
        plan.inverse(&mut packed);
        let back = deinterleave(&packed, n, count);
        for (orig, got) in signals.iter().zip(&back) {
            for (a, b) in orig.iter().zip(got) {
                assert!((*a - *b).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn interleave_roundtrip() {
        let signals: Vec<Vec<Complex64>> = (0..3u64).map(|s| signal(8, s)).collect();
        let packed = interleave(&signals);
        assert_eq!(deinterleave(&packed, 8, 3), signals);
    }

    #[test]
    fn single_transform_degenerates_to_fft() {
        let n = 32;
        let s = signal(n, 1);
        let mut packed = interleave(std::slice::from_ref(&s));
        fft_multi(&mut packed, n, 1);
        let mut expect = s;
        fft(&mut expect);
        for (g, e) in packed.iter().zip(&expect) {
            assert!((*g - *e).abs() < 1e-10);
        }
    }

    #[test]
    fn length_one_transforms_are_identity() {
        let mut data = vec![Complex64::new(2.0, 3.0); 5];
        fft_multi(&mut data, 1, 5);
        assert!(data.iter().all(|&z| z == Complex64::new(2.0, 3.0)));
    }
}
