//! The all-band eigensolver: blocked Rayleigh–Ritz iteration with
//! preconditioned residual expansion.
//!
//! PARATEC's all-band conjugate gradient keeps every electron wavefunction
//! converging simultaneously, spending its time in BLAS3 subspace algebra
//! and FFTs. This solver has the same profile: each sweep costs one
//! `H`-application per band (FFTs), two tall GEMMs and a small Hermitian
//! eigensolve (BLAS3 / LAPACK analogues from `pvs-linalg`), and a
//! Gram–Schmidt orthonormalization.

use crate::hamiltonian::Hamiltonian;
use pvs_linalg::blas1::znrm2;
use pvs_linalg::complex::Complex64;
use pvs_linalg::eig::eigh;
use pvs_linalg::gemm::{zgemm, zgemm_ctrans_a};
use pvs_linalg::matrix::ZMatrix;
use pvs_linalg::orth::gram_schmidt_robust;

/// Solver controls.
#[derive(Debug, Clone, Copy)]
pub struct SolveOptions {
    /// Bands (eigenpairs) to converge.
    pub nbands: usize,
    /// Maximum Rayleigh–Ritz sweeps.
    pub max_sweeps: usize,
    /// Convergence threshold on the max residual norm.
    pub tol: f64,
}

impl SolveOptions {
    /// Sensible defaults for `nbands`.
    pub fn new(nbands: usize) -> Self {
        Self {
            nbands,
            max_sweeps: 60,
            tol: 1e-7,
        }
    }
}

/// Result of a solve.
#[derive(Debug, Clone)]
pub struct SolveResult {
    /// Eigenvalues, ascending.
    pub eigenvalues: Vec<f64>,
    /// Eigenvectors as columns (sphere coefficients).
    pub eigenvectors: ZMatrix,
    /// Sweeps used.
    pub sweeps: usize,
    /// Final max residual norm.
    pub residual: f64,
}

/// Rayleigh–Ritz within the span of `x`'s columns: returns rotated bands
/// and their Ritz values, ascending.
fn rayleigh_ritz(h: &Hamiltonian, x: &ZMatrix) -> (ZMatrix, ZMatrix, Vec<f64>) {
    let hx = h.apply_block(x);
    let m = x.cols();
    let mut hsub = ZMatrix::zeros(m, m);
    zgemm_ctrans_a(x, &hx, &mut hsub);
    let (vals, vecs) = eigh(&hsub);
    let mut xr = ZMatrix::zeros(x.rows(), m);
    let mut hxr = ZMatrix::zeros(x.rows(), m);
    zgemm(Complex64::ONE, x, &vecs, Complex64::ZERO, &mut xr);
    zgemm(Complex64::ONE, &hx, &vecs, Complex64::ZERO, &mut hxr);
    (xr, hxr, vals)
}

/// Find the lowest `opts.nbands` eigenpairs of `h`.
///
/// Each sweep: Rayleigh–Ritz on the current block, form preconditioned
/// residuals `K(Hx − θx)` with the Teter kinetic preconditioner, expand
/// the block, re-orthonormalize, Rayleigh–Ritz again, and keep the lowest
/// `nbands` Ritz vectors.
pub fn solve_lowest(h: &Hamiltonian, opts: SolveOptions) -> SolveResult {
    let npw = h.basis.npw();
    let nb = opts.nbands;
    assert!(
        nb >= 1 && 2 * nb <= npw,
        "need 2*nbands <= npw for the expansion"
    );

    // Initial guess: lowest-kinetic-energy plane waves (basis is sorted).
    let mut x = ZMatrix::zeros(npw, nb);
    for j in 0..nb {
        x[(j, j)] = Complex64::ONE;
    }

    let mut sweeps = 0;
    let mut residual = f64::INFINITY;
    let mut vals = vec![0.0; nb];

    while sweeps < opts.max_sweeps {
        sweeps += 1;
        let (xr, hxr, ritz) = rayleigh_ritz(h, &x);
        vals.copy_from_slice(&ritz[..nb]);

        // Residuals R_j = Hx_j − θ_j x_j with Teter-style preconditioning
        // 1 / (1 + |G|²/(2 E_kin_band)).
        let mut expanded = ZMatrix::zeros(npw, 2 * nb);
        residual = 0.0f64;
        for j in 0..nb {
            let theta = ritz[j];
            let ekin: f64 = x
                .col(j)
                .iter()
                .zip(&h.basis.kinetic)
                .map(|(c, &k)| c.norm_sqr() * k)
                .sum::<f64>()
                .max(0.1);
            let mut r = vec![Complex64::ZERO; npw];
            for i in 0..npw {
                r[i] = hxr[(i, j)] - xr[(i, j)].scale(theta);
            }
            residual = residual.max(znrm2(&r));
            for i in 0..npw {
                let precond = 1.0 / (1.0 + h.basis.kinetic[i] / ekin);
                expanded[(i, j + nb)] = r[i].scale(precond);
            }
            for i in 0..npw {
                expanded[(i, j)] = xr[(i, j)];
            }
        }
        if residual <= opts.tol {
            x = xr;
            break;
        }

        // Orthonormalize the expanded block; converged/degenerate residuals
        // can make columns dependent, so use the dependence-tolerant form.
        sanitize_columns(&mut expanded);
        gram_schmidt_robust(&mut expanded);
        let (xe, _, _) = rayleigh_ritz(h, &expanded);
        // Keep the lowest nb Ritz vectors.
        let mut next = ZMatrix::zeros(npw, nb);
        for j in 0..nb {
            next.col_mut(j).copy_from_slice(xe.col(j));
        }
        x = next;
    }

    SolveResult {
        eigenvalues: vals,
        eigenvectors: x,
        sweeps,
        residual,
    }
}

/// Replace near-zero columns with unit vectors so Gram–Schmidt cannot
/// panic on converged (zero-residual) bands.
fn sanitize_columns(m: &mut ZMatrix) {
    let rows = m.rows();
    for j in 0..m.cols() {
        if znrm2(m.col(j)) < 1e-12 {
            let col = m.col_mut(j);
            col.iter_mut().for_each(|c| *c = Complex64::ZERO);
            col[j % rows] = Complex64::ONE;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basis::PwBasis;
    use pvs_linalg::orth::orthonormality_error;

    #[test]
    fn free_electron_spectrum_is_analytic() {
        let basis = PwBasis::new(8, 1.5);
        let kinetic = basis.kinetic.clone();
        let h = Hamiltonian::free(basis);
        let r = solve_lowest(&h, SolveOptions::new(5));
        for (j, &val) in r.eigenvalues.iter().enumerate() {
            assert!(
                (val - kinetic[j]).abs() < 1e-6,
                "band {j}: {val} vs analytic {}",
                kinetic[j]
            );
        }
    }

    #[test]
    fn matches_dense_diagonalization() {
        let basis = PwBasis::new(8, 1.0);
        let h = Hamiltonian::with_atoms(basis, &[(0.5, 0.5, 0.5)], -1.5, 1.3);
        let dense = h.dense();
        let (dense_vals, _) = pvs_linalg::eig::eigh(&dense);
        let r = solve_lowest(&h, SolveOptions::new(4));
        for j in 0..4 {
            assert!(
                (r.eigenvalues[j] - dense_vals[j]).abs() < 1e-5,
                "band {j}: iterative {} vs dense {}",
                r.eigenvalues[j],
                dense_vals[j]
            );
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let basis = PwBasis::new(8, 1.0);
        let h = Hamiltonian::with_atoms(basis, &[(0.3, 0.4, 0.6)], -1.0, 1.5);
        let r = solve_lowest(&h, SolveOptions::new(3));
        assert!(orthonormality_error(&r.eigenvectors) < 1e-6);
    }

    #[test]
    fn two_wells_bind_the_ground_state() {
        // Two attractive wells bind the (bonding) ground state well below
        // the delocalized band edge; the coarse 8-point box is too small
        // to resolve a clean antibonding partner, so only the ground
        // state's localization is asserted.
        let basis = PwBasis::new(8, 1.5);
        let h = Hamiltonian::with_atoms(basis, &[(0.25, 0.5, 0.5), (0.75, 0.5, 0.5)], -5.0, 1.2);
        // In a periodic box the delocalized band edge sits near the mean
        // potential; localized (bound) states lie below it.
        let v_mean: f64 = h.v_local.iter().sum::<f64>() / h.v_local.len() as f64;
        let r = solve_lowest(&h, SolveOptions::new(4));
        assert!(
            r.eigenvalues[0] < v_mean,
            "bonding bound: {} vs V̄ {v_mean}",
            r.eigenvalues[0]
        );
        for w in r.eigenvalues.windows(2) {
            assert!(w[0] <= w[1] + 1e-10, "ascending Ritz values");
        }
    }

    #[test]
    fn deeper_well_binds_more() {
        let basis = PwBasis::new(8, 1.0);
        let shallow = Hamiltonian::with_atoms(basis.clone(), &[(0.5, 0.5, 0.5)], -1.0, 1.2);
        let deep = Hamiltonian::with_atoms(basis, &[(0.5, 0.5, 0.5)], -2.0, 1.2);
        let e_shallow = solve_lowest(&shallow, SolveOptions::new(1)).eigenvalues[0];
        let e_deep = solve_lowest(&deep, SolveOptions::new(1)).eigenvalues[0];
        assert!(e_deep < e_shallow);
    }
}
