//! The parallel data layouts of the paper's Fig. 4.
//!
//! Fourier space: the wavefunction sphere is organized into columns of
//! fixed `(gx, gy)` and distributed with the greedy balancer ("the
//! load-balancing algorithm first orders the columns in descending order,
//! and then distributes them among the processors such that the
//! next-available column is assigned to the processor containing the
//! fewest points", §4.2). Real space: each processor holds a contiguous
//! block of x-y planes.

use pvs_fft::sphere::{balance_columns, gsphere_columns, proc_loads, GColumn};

/// The Fourier-space layout: columns and their processor assignment.
#[derive(Debug, Clone)]
pub struct FourierLayout {
    /// Sphere columns.
    pub columns: Vec<GColumn>,
    /// `assignment[c]` = owning processor of column `c`.
    pub assignment: Vec<usize>,
    /// Processor count.
    pub procs: usize,
}

impl FourierLayout {
    /// Build the layout for an `n³` grid, cutoff `g2_max`, `procs`
    /// processors.
    pub fn new(n: usize, g2_max: f64, procs: usize) -> Self {
        let columns = gsphere_columns(n, g2_max);
        let assignment = balance_columns(&columns, procs);
        Self {
            columns,
            assignment,
            procs,
        }
    }

    /// Points per processor.
    pub fn loads(&self) -> Vec<usize> {
        proc_loads(&self.columns, &self.assignment, self.procs)
    }

    /// Load imbalance: `max/mean − 1`.
    pub fn imbalance(&self) -> f64 {
        let loads = self.loads();
        let max = *loads.iter().max().expect("procs >= 1") as f64;
        let mean = loads.iter().sum::<usize>() as f64 / loads.len() as f64;
        if mean == 0.0 {
            0.0
        } else {
            max / mean - 1.0
        }
    }

    /// Columns owned by processor `q` (Fig. 4a's colour groups).
    pub fn columns_of(&self, q: usize) -> Vec<GColumn> {
        self.columns
            .iter()
            .zip(&self.assignment)
            .filter(|&(_, &a)| a == q)
            .map(|(c, _)| *c)
            .collect()
    }
}

/// The real-space layout: contiguous z-plane slabs (Fig. 4b).
#[derive(Debug, Clone, Copy)]
pub struct RealLayout {
    /// Grid edge.
    pub n: usize,
    /// Processors.
    pub procs: usize,
}

impl RealLayout {
    /// Planes owned by processor `q` as a `(start, count)` range.
    pub fn planes_of(&self, q: usize) -> (usize, usize) {
        let base = self.n / self.procs;
        let extra = self.n % self.procs;
        let count = base + usize::from(q < extra);
        let start = q * base + q.min(extra);
        (start, count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_processor_fig4_example_is_balanced() {
        // The paper's Fig. 4a shows a three-processor decomposition with
        // roughly equal point counts.
        let layout = FourierLayout::new(16, 20.0, 3);
        assert!(
            layout.imbalance() < 0.05,
            "imbalance {}",
            layout.imbalance()
        );
        let owned: usize = (0..3).map(|q| layout.columns_of(q).len()).sum();
        assert_eq!(owned, layout.columns.len());
    }

    #[test]
    fn imbalance_stays_small_even_for_many_procs() {
        let layout = FourierLayout::new(32, 60.0, 32);
        assert!(
            layout.imbalance() < 0.10,
            "imbalance {}",
            layout.imbalance()
        );
    }

    #[test]
    fn real_layout_covers_all_planes() {
        let layout = RealLayout { n: 10, procs: 3 };
        let mut total = 0;
        let mut next = 0;
        for q in 0..3 {
            let (start, count) = layout.planes_of(q);
            assert_eq!(start, next, "contiguous");
            next = start + count;
            total += count;
        }
        assert_eq!(total, 10);
    }

    #[test]
    fn real_layout_even_when_divisible() {
        let layout = RealLayout { n: 8, procs: 4 };
        for q in 0..4 {
            assert_eq!(layout.planes_of(q).1, 2);
        }
    }
}
