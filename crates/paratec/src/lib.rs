//! # pvs-paratec — the material-science application
//!
//! A from-scratch stand-in for PARATEC: ab-initio total-energy
//! calculations with a plane-wave basis and pseudopotentials, solving the
//! Kohn–Sham equations with an all-band conjugate-gradient-style solver
//! (§4 of the paper).
//!
//! **Substitution note** (see DESIGN.md): the full self-consistent DFT
//! machinery (exchange-correlation, nonlocal pseudopotentials, forces) is
//! replaced by the fixed-potential eigenproblem that consumes PARATEC's
//! cycles: find the lowest `nbands` eigenstates of
//! `H = −½∇² + V_loc(r)` in a plane-wave basis, where the kinetic term is
//! diagonal in Fourier space and the local (pseudo)potential is applied in
//! real space through 3D FFTs — "part of the calculation is carried out in
//! real space and the remainder in Fourier space using parallel 3D FFTs to
//! transform the wavefunctions". The computational profile matches the
//! paper's: BLAS3 subspace algebra (~30%), FFTs (~30%), hand-coded
//! loops over the sphere (remainder).
//!
//! * [`basis`]: the G-sphere plane-wave basis for an energy cutoff;
//! * [`hamiltonian`]: kinetic + FFT-applied local potential, with a
//!   Gaussian-well empirical pseudopotential for silicon-like atoms;
//! * [`solver`]: blocked Rayleigh–Ritz eigensolver (orthonormalization +
//!   subspace diagonalization on `pvs-linalg`, preconditioned residual
//!   expansion) — the all-band update;
//! * [`density`]: real-space charge density (the paper's Fig. 3 data);
//! * [`layout`]: the Fourier/real-space parallel data layouts of Fig. 4;
//! * [`perf`]: the Table 4 workload (432 / 686 silicon atoms).
//!
//! ## Example
//!
//! ```
//! use pvs_paratec::basis::PwBasis;
//! use pvs_paratec::hamiltonian::Hamiltonian;
//! use pvs_paratec::solver::{solve_lowest, SolveOptions};
//!
//! // Free electrons: the lowest band energies are the plane-wave kinetic
//! // energies, exactly.
//! let basis = PwBasis::new(8, 1.0);
//! let expected = basis.kinetic[..3].to_vec();
//! let r = solve_lowest(&Hamiltonian::free(basis), SolveOptions::new(3));
//! for (got, want) in r.eigenvalues.iter().zip(&expected) {
//!     assert!((got - want).abs() < 1e-6);
//! }
//! ```

// Index loops mirror the Fortran-style kernels they reproduce (band/coefficient index loops).
#![allow(clippy::needless_range_loop)]

pub mod basis;
pub mod density;
pub mod hamiltonian;
pub mod layout;
pub mod perf;
pub mod scale;
pub mod solver;

pub use basis::PwBasis;
pub use hamiltonian::Hamiltonian;
pub use solver::{solve_lowest, SolveOptions, SolveResult};
