//! The plane-wave basis: all G-vectors with kinetic energy below a cutoff.

/// Signed frequency of FFT index `i` on an `n`-point grid.
fn freq(i: usize, n: usize) -> i32 {
    if i <= n / 2 {
        i as i32
    } else {
        i as i32 - n as i32
    }
}

/// A plane-wave basis on an `n³` FFT grid: the sphere
/// `½|G|² ≤ E_cut` (atomic-like units with unit cell spacing `2π/n`).
#[derive(Debug, Clone)]
pub struct PwBasis {
    /// FFT grid edge.
    pub n: usize,
    /// Cutoff in `½|G|²` units.
    pub ecut: f64,
    /// Grid indices `(ix, iy, iz)` of each basis plane wave.
    pub g_index: Vec<(usize, usize, usize)>,
    /// Kinetic energy `½|G|²` of each plane wave (units of `(2π/n)² = 1`
    /// per frequency step squared over 2).
    pub kinetic: Vec<f64>,
}

impl PwBasis {
    /// Build the basis. Plane waves are ordered by ascending kinetic
    /// energy (ties broken by grid index), so truncations are physical.
    pub fn new(n: usize, ecut: f64) -> Self {
        assert!(n.is_power_of_two(), "FFT grid must be a power of two");
        let mut items: Vec<((usize, usize, usize), f64)> = Vec::new();
        for iz in 0..n {
            let fz = freq(iz, n) as f64;
            for iy in 0..n {
                let fy = freq(iy, n) as f64;
                for ix in 0..n {
                    let fx = freq(ix, n) as f64;
                    let ke = 0.5 * (fx * fx + fy * fy + fz * fz);
                    if ke <= ecut {
                        items.push(((ix, iy, iz), ke));
                    }
                }
            }
        }
        items.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite").then(a.0.cmp(&b.0)));
        Self {
            n,
            ecut,
            g_index: items.iter().map(|&(g, _)| g).collect(),
            kinetic: items.iter().map(|&(_, k)| k).collect(),
        }
    }

    /// Number of plane waves.
    pub fn npw(&self) -> usize {
        self.g_index.len()
    }

    /// Flat grid index of basis element `i` (x fastest).
    pub fn grid_offset(&self, i: usize) -> usize {
        let (ix, iy, iz) = self.g_index[i];
        (iz * self.n + iy) * self.n + ix
    }

    /// Total grid points.
    pub fn grid_len(&self) -> usize {
        self.n * self.n * self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_point_first() {
        let b = PwBasis::new(8, 2.0);
        assert_eq!(b.g_index[0], (0, 0, 0));
        assert_eq!(b.kinetic[0], 0.0);
    }

    #[test]
    fn kinetic_is_sorted() {
        let b = PwBasis::new(8, 4.0);
        for w in b.kinetic.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn cutoff_respected_and_count_plausible() {
        let b = PwBasis::new(16, 8.0);
        assert!(b.kinetic.iter().all(|&k| k <= 8.0));
        // Sphere volume estimate: (4/3)π r³ with r = sqrt(2·8) = 4.
        let analytic = 4.0 / 3.0 * std::f64::consts::PI * 4.0f64.powi(3);
        let ratio = b.npw() as f64 / analytic;
        assert!((0.8..1.3).contains(&ratio), "npw {} vs {analytic}", b.npw());
    }

    #[test]
    fn tiny_cutoff_is_gamma_only() {
        let b = PwBasis::new(8, 0.25);
        assert_eq!(b.npw(), 1);
    }

    #[test]
    fn inversion_symmetry() {
        // For every G in the sphere, −G is in the sphere.
        let b = PwBasis::new(8, 3.0);
        let set: std::collections::HashSet<_> = b.g_index.iter().cloned().collect();
        for &(ix, iy, iz) in &b.g_index {
            let neg = ((8 - ix) % 8, (8 - iy) % 8, (8 - iz) % 8);
            assert!(set.contains(&neg), "missing -G for ({ix},{iy},{iz})");
        }
    }

    #[test]
    fn grid_offsets_unique() {
        let b = PwBasis::new(8, 4.0);
        let mut offsets: Vec<usize> = (0..b.npw()).map(|i| b.grid_offset(i)).collect();
        offsets.sort_unstable();
        offsets.dedup();
        assert_eq!(offsets.len(), b.npw());
    }
}
