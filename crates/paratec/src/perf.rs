//! The Table 4 workload: PARATEC's phase stream for the performance
//! engine.
//!
//! The paper benchmarks 3 CG steps of 432- and 686-atom bulk silicon at a
//! 25 Ry cutoff. Profile (§4.1): ~30% vendor BLAS3, ~30% 1D FFTs, the
//! remainder hand-coded F90; the flop totals below are derived from the
//! all-band algorithm in [`crate::solver`] (subspace GEMMs of shape
//! `npw × nbands²`, two 3D FFTs per band per step) with the hand-coded
//! share set to reproduce that measured profile.

use pvs_core::phase::{CommPattern, Phase, VectorizationInfo};
use pvs_memsim::bandwidth::AccessPattern;

/// One Table 4 configuration.
#[derive(Debug, Clone, Copy)]
pub struct ParatecWorkload {
    /// Atom count (432 or 686).
    pub atoms: usize,
    /// Plane waves per band.
    pub npw: usize,
    /// Bands (electron states).
    pub nbands: usize,
    /// FFT grid edge.
    pub fft_n: usize,
    /// Processors.
    pub procs: usize,
    /// CG steps (3 in the paper's benchmark).
    pub cg_steps: usize,
}

impl ParatecWorkload {
    /// The 432-atom silicon bulk system.
    pub fn si432(procs: usize) -> Self {
        Self {
            atoms: 432,
            npw: 120_000,
            nbands: 864,
            fft_n: 128,
            procs,
            cg_steps: 3,
        }
    }

    /// The 686-atom silicon bulk system.
    pub fn si686(procs: usize) -> Self {
        Self {
            atoms: 686,
            npw: 190_000,
            nbands: 1372,
            fft_n: 128,
            procs,
            cg_steps: 3,
        }
    }

    /// BLAS3 flops per processor per CG step: three `npw × nbands²`
    /// complex GEMM-equivalents (projection, subspace application,
    /// rotation), 8 flops per complex multiply-add.
    pub fn blas3_flops_per_proc(&self) -> f64 {
        24.0 * self.npw as f64 * (self.nbands as f64).powi(2) / self.procs as f64
    }

    /// Total flops per processor per CG step, using the paper's ~30/30/40
    /// BLAS3/FFT/hand-coded profile.
    pub fn total_flops_per_proc(&self) -> f64 {
        self.blas3_flops_per_proc() / 0.35
    }

    /// Local sphere coefficients per processor.
    pub fn local_rows(&self) -> usize {
        (self.npw / self.procs).max(1)
    }

    /// The phase stream (machine-independent; the X1's inability to
    /// multistream the hand-coded segments is a property of that phase's
    /// `VectorizationInfo`, applied identically everywhere and only
    /// *costly* on an MSP).
    pub fn phases(&self) -> Vec<Phase> {
        let total = self.total_flops_per_proc();
        let rows = self.local_rows();
        let steps = self.cg_steps;
        let mut phases = Vec::new();

        let mk = |name: &'static str,
                  share: f64,
                  flops_per_iter: f64,
                  bytes_per_flop: f64,
                  ws: usize,
                  vec: VectorizationInfo,
                  pattern: AccessPattern| {
            let flops = total * share;
            let outer = (flops / (flops_per_iter * rows as f64)).ceil().max(1.0) as usize;
            Phase::loop_nest(name, rows, outer * steps)
                .flops_per_iter(flops_per_iter)
                .bytes_per_iter(flops_per_iter * bytes_per_flop)
                .pattern(pattern)
                .working_set(ws)
                .vector(vec)
        };

        // Vendor BLAS3: cache-blocked, compute-bound everywhere.
        phases.push(mk(
            "blas3",
            0.35,
            16.0,
            0.15,
            384 << 10,
            VectorizationInfo::full(),
            AccessPattern::UnitStride,
        ));

        // Simultaneous 1D FFTs (the rewritten 3D FFT): moderate intensity,
        // slightly non-MADD mix.
        let mut fft_vec = VectorizationInfo::full();
        fft_vec.vector_op_overhead = 1.2;
        fft_vec.ilp_efficiency = 0.7;
        phases.push(mk(
            "fft_1d_multi",
            0.30,
            10.0,
            1.0,
            1 << 20,
            fft_vec,
            AccessPattern::Strided {
                stride_elems: 2,
                elem_bytes: 16,
            },
        ));

        // Hand-coded F90 over the sphere: vectorizable but the X1 compiler
        // does not multistream it ("unvectorized code segments tend not to
        // multistream across the X1's SSPs", §4.2) — one SSP does the work.
        let mut hand_vec = VectorizationInfo::vector_only();
        hand_vec.vector_op_overhead = 1.3;
        hand_vec.ilp_efficiency = 0.6;
        hand_vec.gather_fraction = 0.05;
        phases.push(mk(
            "handcoded_f90",
            0.35,
            8.0,
            0.6,
            2 << 20,
            hand_vec,
            AccessPattern::UnitStride,
        ));

        // The 3D FFT's global transposes: each band crosses between
        // Fourier and real space twice per CG step; only the non-zero
        // sphere columns are communicated (§4.2). At very high processor
        // counts the transform aggregates several bands per exchange
        // (memory permitting) to amortize the per-message overhead.
        let band_block = (self.procs / 256).max(1) as u64;
        let sphere_bytes = self.npw as u64 * 16 * band_block;
        let bytes_per_pair = (sphere_bytes / (self.procs * self.procs) as u64).max(64);
        phases.push(
            Phase::comm(
                "fft_transpose",
                CommPattern::AllToAll {
                    ranks: self.procs,
                    bytes_per_pair,
                },
            )
            .repetitions(2 * self.nbands * steps / band_block as usize),
        );

        phases
    }
}

/// The kernels this crate registers with the static-analysis layer: the
/// Table 4 loop phases of the 432-atom system. The phase stream is
/// machine-independent (§4.2's multistreaming failure is carried by the
/// hand-coded phase's `VectorizationInfo`), so the same stream is
/// registered for both vector machines.
pub fn kernel_descriptors() -> Vec<pvs_core::kernel::KernelDescriptor> {
    use pvs_core::kernel::{descriptors_from_phases, MachineKind};
    let w = ParatecWorkload::si432(64);
    let mut out = Vec::new();
    for machine in [MachineKind::Es, MachineKind::X1Msp] {
        out.extend(descriptors_from_phases(
            "paratec",
            "crates/paratec/src/perf.rs",
            machine,
            &w.phases(),
        ));
    }
    out
}

/// Table 4 processor counts per system.
pub fn table4_configs() -> Vec<(usize, usize)> {
    let mut rows = Vec::new();
    for p in [32, 64, 128, 256, 512, 1024] {
        rows.push((432, p));
    }
    for p in [64, 128, 256, 512, 1024] {
        rows.push((686, p));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvs_core::engine::Engine;
    use pvs_core::platforms;
    use pvs_core::report::PerfReport;

    fn run(machine: pvs_core::machine::Machine, w: &ParatecWorkload) -> PerfReport {
        Engine::new(machine).run(&w.phases(), w.procs)
    }

    #[test]
    fn registered_kernels_static_dynamic_agree() {
        for d in kernel_descriptors() {
            let s = d.static_prediction();
            let m = d.dynamic_metrics();
            if s.avl > 0.0 {
                assert!(
                    (m.avl() - s.avl).abs() / s.avl < 0.05,
                    "{}: static AVL {} vs dynamic {}",
                    d.kernel,
                    s.avl,
                    m.avl()
                );
            }
            assert!((m.vor() - s.vor).abs() < 0.05, "{}", d.kernel);
        }
    }

    #[test]
    fn high_fractions_of_peak_everywhere() {
        // "PARATEC runs at a high percentage of peak on both superscalar
        // and vector-based architectures".
        let w = ParatecWorkload::si432(32);
        for m in platforms::all() {
            let name = m.name;
            let r = run(m, &w);
            let floor = if name == "X1" { 10.0 } else { 25.0 };
            assert!(r.pct_peak > floor, "{name}: {}%", r.pct_peak);
        }
    }

    #[test]
    fn power3_sustains_most_of_its_peak() {
        // Paper: 63% at P=32.
        let r = run(platforms::power3(), &ParatecWorkload::si432(32));
        assert!((40.0..75.0).contains(&r.pct_peak), "Power3 {}%", r.pct_peak);
    }

    #[test]
    fn es_beats_x1_decisively() {
        // Paper: ES 4.76 vs X1 3.04 at P=32, and the gap widens with P.
        let w = ParatecWorkload::si432(64);
        let es = run(platforms::earth_simulator(), &w);
        let x1 = run(platforms::x1(), &w);
        assert!(
            es.gflops_per_p > 1.2 * x1.gflops_per_p,
            "ES {} vs X1 {}",
            es.gflops_per_p,
            x1.gflops_per_p
        );
        assert!(es.pct_peak > 2.0 * x1.pct_peak);
    }

    #[test]
    fn x1_handcoded_segments_dominate() {
        // The hand-coded F90 runs on one SSP: it must dominate X1 time.
        let r = run(platforms::x1(), &ParatecWorkload::si432(64));
        assert!(
            r.phase_fraction("handcoded_f90") > 0.4,
            "X1 hand-coded fraction {}",
            r.phase_fraction("handcoded_f90")
        );
        let es = run(platforms::earth_simulator(), &ParatecWorkload::si432(64));
        assert!(es.phase_fraction("handcoded_f90") < r.phase_fraction("handcoded_f90"));
    }

    #[test]
    fn scaling_declines_with_processor_count() {
        // Fixed-size problem: communication and shorter vectors erode
        // per-processor performance (ES: 4.76 at P=32 -> 2.08 at P=1024).
        let es = platforms::earth_simulator();
        let lo = run(es.clone(), &ParatecWorkload::si432(32));
        let hi = run(es, &ParatecWorkload::si432(1024));
        assert!(
            hi.gflops_per_p < 0.75 * lo.gflops_per_p,
            "{} -> {}",
            lo.gflops_per_p,
            hi.gflops_per_p
        );
    }

    #[test]
    fn x1_scales_worse_than_es() {
        // Paper: at P=256 on 686 atoms the ES holds a ~3.5x advantage (its
        // crossbar vs the X1 torus under all-to-all transposes).
        let es = platforms::earth_simulator();
        let x1 = platforms::x1();
        let es_drop = run(es.clone(), &ParatecWorkload::si686(64)).gflops_per_p
            / run(es, &ParatecWorkload::si686(256)).gflops_per_p;
        let x1_drop = run(x1.clone(), &ParatecWorkload::si686(64)).gflops_per_p
            / run(x1, &ParatecWorkload::si686(256)).gflops_per_p;
        assert!(x1_drop > es_drop, "X1 drop {x1_drop} vs ES drop {es_drop}");
    }

    #[test]
    fn larger_system_sustains_higher_efficiency() {
        // Paper: 686 atoms at P=64 runs at 66% on the ES vs 58% for 432.
        let es = platforms::earth_simulator();
        let small = run(es.clone(), &ParatecWorkload::si432(64));
        let large = run(es, &ParatecWorkload::si686(64));
        assert!(
            large.pct_peak >= 0.95 * small.pct_peak,
            "686: {}%, 432: {}%",
            large.pct_peak,
            small.pct_peak
        );
    }

    #[test]
    fn altix_is_best_superscalar() {
        // Paper: Altix 3.71 > Power4 2.02 > Power3 0.95 at P=32.
        let w = ParatecWorkload::si432(32);
        let p3 = run(platforms::power3(), &w).gflops_per_p;
        let p4 = run(platforms::power4(), &w).gflops_per_p;
        let altix = run(platforms::altix(), &w).gflops_per_p;
        assert!(
            altix > p4 && p4 > p3,
            "Altix {altix}, Power4 {p4}, Power3 {p3}"
        );
    }

    #[test]
    fn avl_reasonable_and_declining_with_p() {
        let es = platforms::earth_simulator();
        let lo = run(es.clone(), &ParatecWorkload::si432(32));
        let hi = run(es, &ParatecWorkload::si432(1024));
        assert!(
            lo.avl().expect("vector") > 100.0,
            "AVL {}",
            lo.avl().unwrap()
        );
        assert!(hi.avl().expect("vector") < lo.avl().expect("vector"));
    }
}
