//! Weak-scaling communication kernel for PARATEC on both mpisim runtimes.
//!
//! PARATEC's 3D FFTs transpose the wavefunction grid between
//! G-space slabs and real-space planes: every rank exchanges a distinct
//! block with every other rank (§5 of the paper — the all-to-all is
//! what makes PARATEC the most communication-bound of the four codes).
//! The kernel is one personalized all-to-all followed by an allgather
//! of per-rank norms and the energy allreduce — the fixed schedule is a
//! [`ScriptProgram`], identical to the v1 closure's op sequence.

use pvs_mpisim::event::{EventSim, Op, Reply, ScriptProgram, SimStats};
use pvs_mpisim::CommStats;

/// The block rank `rank` ships to rank `dst` in the transpose
/// (variable-length, as slab decompositions are never perfectly even).
fn block(rank: usize, dst: usize, size: usize) -> Vec<f64> {
    let len = (rank + dst) % 3 + 1;
    (0..len)
        .map(|i| {
            let base = ((rank * size + dst) * 31 + i * 7) as f64 * 1e-3;
            if i == 0 {
                base + [1e16, 1.0, -1e16][(rank + dst) % 3]
            } else {
                base
            }
        })
        .collect()
}

/// Per-rank wavefunction norm contribution (data-independent).
fn norm_contrib(rank: usize) -> f64 {
    1.0 + (rank % 7) as f64 * 0.375
}

/// Fold transpose rows, gathered norms, and the reduced energy into the
/// kernel output `[row_checksum, norm_checksum, energy]`.
fn fold_output(rows: &[Vec<f64>], norms: &[Vec<f64>], energy: &[f64]) -> Vec<f64> {
    let row_sum = rows.iter().fold(0.0, |acc, r| {
        r.iter()
            .enumerate()
            .fold(acc, |a, (i, x)| a + x * (i % 3 + 1) as f64)
    });
    let norm_sum = norms
        .iter()
        .fold(0.0, |acc, n| n.iter().fold(acc, |a, x| a + x));
    let mut out = vec![row_sum, norm_sum];
    out.extend_from_slice(energy);
    out
}

fn schedule(rank: usize, size: usize) -> Vec<Op> {
    vec![
        Op::Alltoallv {
            sends: (0..size).map(|d| block(rank, d, size)).collect(),
        },
        Op::Allgather {
            data: vec![norm_contrib(rank)],
        },
        Op::AllreduceSum {
            data: vec![norm_contrib(rank) * 0.5, rank as f64],
        },
    ]
}

/// Run the kernel on the thread-backed runtime.
pub fn run_scale_v1(p: usize) -> Vec<(Vec<f64>, CommStats)> {
    pvs_mpisim::run(p, |mut comm| {
        let rank = comm.rank();
        let size = comm.size();
        let rows = comm.alltoallv((0..size).map(|d| block(rank, d, size)).collect());
        let norms = comm.allgather(&[norm_contrib(rank)]);
        let energy = comm.allreduce_sum(&[norm_contrib(rank) * 0.5, rank as f64]);
        (fold_output(&rows, &norms, &energy), comm.stats())
    })
}

/// Run the kernel on the event-driven runtime.
pub fn run_scale_v2(p: usize, threads: usize) -> (Vec<(Vec<f64>, CommStats)>, SimStats) {
    let report = EventSim::new(p)
        .threads(threads)
        .run(|rank, size| ScriptProgram::new(schedule(rank, size)));
    let sim = report.sim;
    let per_rank = report
        .outcomes
        .into_iter()
        .zip(report.comm_stats)
        .map(|(o, stats)| {
            let replies = o.value().expect("healthy run");
            let (mut rows, mut norms, mut energy) = (Vec::new(), Vec::new(), Vec::new());
            for reply in replies {
                match reply {
                    Reply::Alltoall(r) => rows = r.clone(),
                    Reply::Gathered(n) => norms = n.clone(),
                    Reply::Reduced(Ok(e)) => energy = e.clone(),
                    other => unreachable!("not in the PARATEC schedule: {other:?}"),
                }
            }
            (fold_output(&rows, &norms, &energy), stats.expect("healthy rank"))
        })
        .collect();
    (per_rank, sim)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v2_transpose_kernel_matches_v1_bitwise() {
        for p in [1usize, 2, 4, 16] {
            let v1 = run_scale_v1(p);
            let (v2, sim) = run_scale_v2(p, 2);
            assert_eq!(sim.ranks as usize, p);
            for (rank, ((a, sa), (b, sb))) in v1.iter().zip(&v2).enumerate() {
                assert_eq!(
                    a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    b.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    "p={p} rank={rank}"
                );
                assert_eq!(sa, sb, "traffic p={p} rank={rank}");
            }
        }
    }

    #[test]
    fn energy_is_identical_on_every_rank() {
        let (v2, _) = run_scale_v2(8, 2);
        let first = &v2[0].0;
        // row checksums differ per rank (each keeps its own slab), but
        // the gathered-norm sum and reduced energy are global.
        for (v, _) in &v2 {
            assert_eq!(v[1].to_bits(), first[1].to_bits());
            assert_eq!(v[2].to_bits(), first[2].to_bits());
            assert_eq!(v[3].to_bits(), first[3].to_bits());
        }
    }
}
