//! Real-space charge density (the quantity visualized in the paper's
//! Fig. 3).

use crate::basis::PwBasis;
use pvs_fft::dist3d::ifft3d_serial;
use pvs_linalg::complex::Complex64;
use pvs_linalg::matrix::ZMatrix;

/// Total charge density `ρ(r) = Σ_bands occ |ψ_b(r)|²` on the FFT grid,
/// with uniform occupation `occ` per band.
pub fn charge_density(basis: &PwBasis, bands: &ZMatrix, occ: f64) -> Vec<f64> {
    assert_eq!(bands.rows(), basis.npw());
    let n = basis.n;
    let n3 = basis.grid_len();
    let mut rho = vec![0.0; n3];
    let mut grid = vec![Complex64::ZERO; n3];
    for b in 0..bands.cols() {
        grid.iter_mut().for_each(|g| *g = Complex64::ZERO);
        for (i, &c) in bands.col(b).iter().enumerate() {
            grid[basis.grid_offset(i)] = c;
        }
        ifft3d_serial(&mut grid, n);
        // The inverse FFT carries a 1/N³ factor, so |ψ(r)|² comes out
        // scaled by 1/N⁶ relative to Σ_G |c_G|² = 1; restoring N⁶ makes a
        // normalized band integrate (grid mean) to exactly 1.
        let scale = occ * (n3 as f64) * (n3 as f64);
        for (r, g) in rho.iter_mut().zip(&grid) {
            *r += scale * g.norm_sqr();
        }
    }
    rho
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hamiltonian::Hamiltonian;
    use crate::solver::{solve_lowest, SolveOptions};

    #[test]
    fn density_integrates_to_electron_count() {
        let basis = PwBasis::new(8, 1.0);
        let h = Hamiltonian::with_atoms(basis, &[(0.5, 0.5, 0.5)], -1.5, 1.2);
        let r = solve_lowest(&h, SolveOptions::new(3));
        let occ = 2.0;
        let rho = charge_density(&h.basis, &r.eigenvectors, occ);
        let total: f64 = rho.iter().sum::<f64>() / h.basis.grid_len() as f64;
        assert!(
            (total - occ * 3.0).abs() < 1e-6,
            "density integrates to {total}, want {}",
            occ * 3.0
        );
    }

    #[test]
    fn density_is_nonnegative_and_peaks_at_the_atom() {
        let basis = PwBasis::new(8, 1.5);
        let h = Hamiltonian::with_atoms(basis, &[(0.5, 0.5, 0.5)], -3.0, 1.0);
        let r = solve_lowest(&h, SolveOptions::new(1));
        let rho = charge_density(&h.basis, &r.eigenvectors, 2.0);
        assert!(rho.iter().all(|&v| v >= -1e-10));
        // Peak at the grid point nearest the atom (4,4,4).
        let n = 8;
        let peak_idx = rho
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("nonempty")
            .0;
        let (pz, rest) = (peak_idx / (n * n), peak_idx % (n * n));
        let (py, px) = (rest / n, rest % n);
        for c in [px, py, pz] {
            assert!((3..=5).contains(&c), "peak at ({px},{py},{pz})");
        }
    }

    #[test]
    fn gamma_only_state_is_uniform() {
        let basis = PwBasis::new(8, 0.25); // Gamma point only
        let mut bands = ZMatrix::zeros(1, 1);
        bands[(0, 0)] = Complex64::ONE;
        let rho = charge_density(&basis, &bands, 1.0);
        for &v in &rho {
            assert!((v - 1.0).abs() < 1e-10, "uniform density, got {v}");
        }
    }
}
