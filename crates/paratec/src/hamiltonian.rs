//! The plane-wave Hamiltonian: diagonal kinetic term plus an FFT-applied
//! local potential.

use crate::basis::PwBasis;
use pvs_fft::dist3d::{fft3d_serial, ifft3d_serial};
use pvs_linalg::complex::Complex64;
use pvs_linalg::matrix::ZMatrix;

/// `H = −½∇² + V_loc(r)` in the plane-wave basis.
#[derive(Debug, Clone)]
pub struct Hamiltonian {
    /// The basis.
    pub basis: PwBasis,
    /// Real-space local potential on the FFT grid.
    pub v_local: Vec<f64>,
}

impl Hamiltonian {
    /// Build with an explicit real-space potential.
    pub fn new(basis: PwBasis, v_local: Vec<f64>) -> Self {
        assert_eq!(v_local.len(), basis.grid_len());
        Self { basis, v_local }
    }

    /// Free-electron Hamiltonian (zero potential) — analytic eigenvalues.
    pub fn free(basis: PwBasis) -> Self {
        let n3 = basis.grid_len();
        Self::new(basis, vec![0.0; n3])
    }

    /// Empirical local pseudopotential: Gaussian attractive wells of depth
    /// `v0 < 0` and width `sigma` (grid units) centred on `atoms`
    /// (fractional coordinates in `[0,1)³`), periodically wrapped.
    pub fn with_atoms(basis: PwBasis, atoms: &[(f64, f64, f64)], v0: f64, sigma: f64) -> Self {
        let n = basis.n;
        let mut v = vec![0.0; basis.grid_len()];
        for (ax, ay, az) in atoms {
            let (cx, cy, cz) = (ax * n as f64, ay * n as f64, az * n as f64);
            for iz in 0..n {
                let dz = periodic_dist(iz as f64, cz, n as f64);
                for iy in 0..n {
                    let dy = periodic_dist(iy as f64, cy, n as f64);
                    for ix in 0..n {
                        let dx = periodic_dist(ix as f64, cx, n as f64);
                        let r2 = dx * dx + dy * dy + dz * dz;
                        v[(iz * n + iy) * n + ix] += v0 * (-r2 / (2.0 * sigma * sigma)).exp();
                    }
                }
            }
        }
        Self::new(basis, v)
    }

    /// Apply `H` to a single wavefunction (sphere coefficients).
    pub fn apply(&self, psi: &[Complex64]) -> Vec<Complex64> {
        let npw = self.basis.npw();
        assert_eq!(psi.len(), npw);
        let n = self.basis.n;
        // Kinetic part (diagonal in G).
        let mut out: Vec<Complex64> = psi
            .iter()
            .zip(&self.basis.kinetic)
            .map(|(c, &k)| c.scale(k))
            .collect();
        // Potential part: sphere -> grid -> real space -> multiply -> back.
        let mut grid = vec![Complex64::ZERO; self.basis.grid_len()];
        for (i, &c) in psi.iter().enumerate() {
            grid[self.basis.grid_offset(i)] = c;
        }
        ifft3d_serial(&mut grid, n);
        for (g, &v) in grid.iter_mut().zip(&self.v_local) {
            *g = g.scale(v);
        }
        fft3d_serial(&mut grid, n);
        for (i, o) in out.iter_mut().enumerate() {
            *o += grid[self.basis.grid_offset(i)];
        }
        out
    }

    /// Apply `H` to every column of a band matrix.
    pub fn apply_block(&self, x: &ZMatrix) -> ZMatrix {
        assert_eq!(x.rows(), self.basis.npw());
        let mut out = ZMatrix::zeros(x.rows(), x.cols());
        for j in 0..x.cols() {
            let hx = self.apply(x.col(j));
            out.col_mut(j).copy_from_slice(&hx);
        }
        out
    }

    /// Dense matrix representation (tests only — O(npw²) FFT applications).
    pub fn dense(&self) -> ZMatrix {
        let npw = self.basis.npw();
        let mut h = ZMatrix::zeros(npw, npw);
        for j in 0..npw {
            let mut e = vec![Complex64::ZERO; npw];
            e[j] = Complex64::ONE;
            let col = self.apply(&e);
            h.col_mut(j).copy_from_slice(&col);
        }
        h
    }
}

fn periodic_dist(a: f64, b: f64, n: f64) -> f64 {
    let d = (a - b).rem_euclid(n);
    d.min(n - d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvs_linalg::blas1::zdotc;

    fn small_free() -> Hamiltonian {
        Hamiltonian::free(PwBasis::new(8, 1.5))
    }

    #[test]
    fn free_hamiltonian_is_diagonal_kinetic() {
        let h = small_free();
        let npw = h.basis.npw();
        for j in [0, 1, npw - 1] {
            let mut e = vec![Complex64::ZERO; npw];
            e[j] = Complex64::ONE;
            let he = h.apply(&e);
            for (i, v) in he.iter().enumerate() {
                let expect = if i == j { h.basis.kinetic[j] } else { 0.0 };
                assert!(
                    (v.re - expect).abs() < 1e-10 && v.im.abs() < 1e-10,
                    "({i},{j})"
                );
            }
        }
    }

    #[test]
    fn hamiltonian_is_hermitian() {
        let basis = PwBasis::new(8, 1.5);
        let h = Hamiltonian::with_atoms(basis, &[(0.25, 0.5, 0.5), (0.75, 0.5, 0.5)], -2.0, 1.5);
        let npw = h.basis.npw();
        // Random-ish test vectors.
        let mk = |seed: u64| -> Vec<Complex64> {
            (0..npw)
                .map(|i| {
                    let t = (i as u64 + seed).wrapping_mul(0x9E3779B97F4A7C15);
                    Complex64::new(
                        ((t >> 16) % 1000) as f64 / 500.0 - 1.0,
                        ((t >> 40) % 1000) as f64 / 500.0 - 1.0,
                    )
                })
                .collect()
        };
        let a = mk(1);
        let b = mk(2);
        let ha = h.apply(&a);
        let hb = h.apply(&b);
        let lhs = zdotc(&a, &hb);
        let rhs = zdotc(&ha, &b);
        assert!(
            (lhs - rhs).abs() < 1e-8,
            "<a|Hb> = <Ha|b>: {lhs:?} vs {rhs:?}"
        );
    }

    #[test]
    fn uniform_potential_shifts_spectrum() {
        let basis = PwBasis::new(8, 1.0);
        let npw = basis.npw();
        let shift = 0.7;
        let h = Hamiltonian::new(basis, vec![shift; 8 * 8 * 8]);
        let mut e = vec![Complex64::ZERO; npw];
        e[0] = Complex64::ONE; // Gamma point, kinetic 0
        let he = h.apply(&e);
        assert!((he[0].re - shift).abs() < 1e-10);
        for v in &he[1..] {
            assert!(v.abs() < 1e-10);
        }
    }

    #[test]
    fn attractive_well_lowers_ground_state_energy() {
        let basis = PwBasis::new(8, 1.5);
        let h = Hamiltonian::with_atoms(basis, &[(0.5, 0.5, 0.5)], -1.0, 1.2);
        let npw = h.basis.npw();
        // Rayleigh quotient of the Gamma plane wave must go below zero
        // kinetic energy.
        let mut e = vec![Complex64::ZERO; npw];
        e[0] = Complex64::ONE;
        let he = h.apply(&e);
        assert!(he[0].re < 0.0, "attractive well: {}", he[0].re);
    }

    #[test]
    fn apply_block_matches_apply() {
        let h = small_free();
        let npw = h.basis.npw();
        let x = ZMatrix::from_fn(npw, 3, |i, j| {
            Complex64::new((i + j) as f64, i as f64 * 0.1)
        });
        let hx = h.apply_block(&x);
        for j in 0..3 {
            let col = h.apply(x.col(j));
            for i in 0..npw {
                assert!((hx[(i, j)] - col[i]).abs() < 1e-12);
            }
        }
    }
}
