//! PVS012 fixture: `unwrap`/`expect` on Results in simulator library
//! code. Every Result-producing chain below must be flagged; the
//! justified and Option cases must not.

fn locked_len(shared: &std::sync::Mutex<Vec<f64>>) -> usize {
    let q = shared.lock().unwrap();
    q.len()
}

fn fire_and_forget(tx: &std::sync::mpsc::Sender<f64>) {
    tx.send(1.0).expect("receiver alive");
}

fn chained_receive(rx: &std::sync::mpsc::Receiver<f64>) -> f64 {
    rx
        .recv()
        .expect("senders alive")
}

fn reap(handle: std::thread::JoinHandle<u64>) -> u64 {
    handle.join().unwrap()
}

fn justified(shared: &std::sync::Mutex<u64>) -> u64 {
    // INFALLIBLE: poisoning requires a panicked holder, and worker
    // panics already abort the run before this lock is retaken.
    *shared.lock().expect("state lock")
}

fn options_are_out_of_scope(v: &[f64]) -> f64 {
    *v.first().expect("nonempty")
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        let (tx, rx) = std::sync::mpsc::channel();
        tx.send(1).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
    }
}
