use std::time::Instant;

pub fn elapsed_ms() -> u128 {
    let start = Instant::now();
    start.elapsed().as_millis()
}

pub fn stamp() -> std::time::SystemTime {
    std::time::SystemTime::now()
}

pub mod hidden {
    pub use std::time::*;
}
