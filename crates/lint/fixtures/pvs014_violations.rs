//! PVS014 violation fixture: counter-registry breaches on both sides.
//
// DOCUMENTED: fixture.documented.total

struct Registry;

impl Registry {
    fn add(&self, _name: &str, _value: u64) {}
    fn gauge_set(&self, _name: &str, _value: u64) {}
    fn record(&self, _name: &str, _value: u64) {}
    fn counter(&self, _name: &str) -> u64 {
        0
    }
    fn gauge(&self, _name: &str) -> u64 {
        0
    }
    fn hist(&self, _name: &str) -> u64 {
        0
    }
}

fn emit(r: &Registry) {
    r.add("fixture.documented.total", 1);
    r.add("fixture.undocumented.count", 1);
    r.gauge_set("fixture.orphan.depth", 2);
    r.record("fixture.hist.undocumented_us", 3);
}

fn read(r: &Registry) {
    // Matched by the write above — fine.
    let _ = r.counter("fixture.documented.total");
    // Nothing anywhere emits these three: silent zeros forever.
    let _ = r.counter("fixture.never.emitted");
    let _ = r.gauge("fixture.gauge.missing");
    let _ = r.hist("fixture.hist.never_recorded");
}
