use std::collections::HashMap;

pub fn render(table: &[(u32, f64)]) -> Vec<String> {
    let mut index = HashMap::new();
    for (k, v) in table {
        index.insert(*k, *v);
    }
    let mut rows = Vec::new();
    for (k, v) in index.iter() {
        rows.push(format!("{k}: {v}"));
    }
    for k in index.keys() {
        rows.push(format!("{k}"));
    }
    rows
}
