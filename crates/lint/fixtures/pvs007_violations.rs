#![allow(dead_code)]
#![allow(unused, clippy::all)]

#[expect(unused_variables)]
pub fn f(x: u32) {}
