// PVS011 fixture: malformed counter-name literals at recorder write
// sites. Each line below forks the counter namespace in a different way.

fn flush(r: &dyn Recorder) {
    r.add("flops", 1);
    r.add("Engine.Phases", 2);
    r.gauge_set("queueDepth", 3);
    r.gauge_max("netsim.link.Peak", 4);
    let mut entries: Vec<(&str, u64)> = Vec::new();
    entries.push(("engine..cycles", 5));
    r.add_many(&[("ok.name", 1), ("bad name", 2)]);
    r.add_many(&entries);
    r.record("histBusy", 7);
    r.record_n("serve.hist.Busy", 7, 2);
    r.record_many(&[("bench.hist.ok_us", 1, 1), ("benchHist", 2, 1)]);
}
