pub fn read_raw(p: *const u8) -> u8 {
    unsafe { *p }
}

pub unsafe fn no_docs() {}
