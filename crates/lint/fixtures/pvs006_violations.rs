use std::collections::HashMap;
use std::sync::mpsc::Receiver;

pub fn total(rx: &Receiver<f64>) -> f64 {
    let mut sum = 0.0;
    while let Ok(x) = rx.try_recv() {
        sum += x;
    }
    sum
}

pub fn weighted() -> f64 {
    let mut weights = HashMap::new();
    weights.insert(1u32, 0.5);
    let mut acc = 0.0;
    for (_k, v) in weights.iter() {
        acc += v;
    }
    acc
}
