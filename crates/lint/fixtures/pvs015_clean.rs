//! PVS015 clean fixture: canonical ids referenced through the const
//! registry; test regions may spell literals to pin the on-disk bytes.

fn current_schema() -> &'static str {
    pvs_core::schema::PROFILE_V2
}

fn is_known(schema: &str) -> bool {
    schema == pvs_core::schema::PROFILE_V1 || schema == current_schema()
}

fn checkpoint_header() -> String {
    format!("{}\nmachine ES\n", pvs_core::schema::RUN_CHECKPOINT_V1)
}

#[cfg(test)]
mod tests {
    #[test]
    fn pins_the_exact_wire_bytes() {
        // Tests are exempt: pinning the literal here is the point.
        assert_eq!(super::current_schema(), "pvs-bench/profile-v2");
    }
}
