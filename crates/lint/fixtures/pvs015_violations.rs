//! PVS015 violation fixture: canonical schema ids spelled as literals
//! outside the `pvs_core::schema` registry.

const LOCAL_COPY: &str = "pvs-bench/profile-v2";

fn is_known(schema: &str) -> bool {
    schema == "pvs-bench/profile-v1" || schema == LOCAL_COPY
}

fn checkpoint_header() -> String {
    format!("{}\nmachine ES\n", "pvs-core/checkpoint-v1")
}
