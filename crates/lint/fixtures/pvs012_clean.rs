//! PVS012 clean fixture: Result errors handled, justified, or out of
//! scope — no findings.

fn handled(shared: &std::sync::Mutex<Vec<f64>>) -> usize {
    match shared.lock() {
        Ok(q) => q.len(),
        Err(poisoned) => poisoned.into_inner().len(),
    }
}

fn propagated(tx: &std::sync::mpsc::Sender<f64>) -> Result<(), String> {
    tx.send(1.0).map_err(|e| e.to_string())
}

fn justified(shared: &std::sync::Mutex<u64>) -> u64 {
    // INFALLIBLE: the only other holder never panics while locked.
    *shared.lock().expect("state lock")
}

fn option_unwrap_is_not_this_lint(v: &[f64]) -> f64 {
    *v.first().expect("nonempty")
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let (tx, rx) = std::sync::mpsc::channel();
        tx.send(1).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
    }
}
