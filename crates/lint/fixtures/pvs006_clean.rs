use std::sync::mpsc::Receiver;

pub fn total(rx: &Receiver<(usize, f64)>) -> f64 {
    let mut slots = vec![0.0; 8];
    while let Ok((i, x)) = rx.try_recv() {
        slots[i] = x;
    }
    slots.iter().sum()
}
