// What pvs-obs must never become: a recorder that consults host clocks.
// Span ticks are opaque caller-supplied values (the engine passes
// simulated picoseconds); the moment the observability layer reaches for
// Instant or SystemTime, counters stop being a pure function of the
// simulated inputs and PVS003 fires.

use std::time::Instant;

pub struct WallClockRecorder {
    started: Instant,
}

impl WallClockRecorder {
    pub fn begin_ticks(&self) -> u64 {
        self.started.elapsed().as_nanos() as u64
    }

    pub fn stamp() -> u64 {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0)
    }
}
