//! PVS013 violation fixture: one breach of each lock-discipline rule.

use std::sync::Mutex;

struct State {
    // LOCK ORDER: 10
    first: Mutex<u32>,
    // LOCK ORDER: 20
    second: Mutex<u32>,
    undeclared: Mutex<u32>,
}

fn forward(s: &State) {
    let first = s.first.lock().expect("first");
    let second = s.second.lock().expect("second");
    drop(second);
    drop(first);
}

fn backward(s: &State) {
    // Opposite nesting: a tier inversion, and together with `forward`
    // a two-lock acquisition cycle.
    let second = s.second.lock().expect("second");
    let first = s.first.lock().expect("first");
    drop(first);
    drop(second);
}

fn reentrant(s: &State) {
    let once = s.first.lock().expect("first");
    let twice = s.first.lock().expect("first again");
    drop(twice);
    drop(once);
}

fn held_across_send(s: &State, tx: &std::sync::mpsc::Sender<u32>) {
    let first = s.first.lock().expect("first");
    tx.send(1).ok();
    drop(first);
}
