#![allow(clippy::needless_range_loop)]

#[allow(clippy::too_many_arguments)]
pub fn f() {}

pub fn g(opt: Option<u32>) -> u32 {
    opt.expect("present")
}
