use std::collections::{BTreeMap, HashSet};

pub fn dedup_count(xs: &[u32]) -> usize {
    let seen: HashSet<u32> = xs.iter().copied().collect();
    seen.len()
}

pub fn render(map: &BTreeMap<u32, f64>) -> Vec<String> {
    map.iter().map(|(k, v)| format!("{k}: {v}")).collect()
}
