pub fn read_raw(p: *const u8) -> u8 {
    // SAFETY: caller guarantees `p` is valid for reads.
    unsafe { *p }
}

// SAFETY: no-op body; exists to exercise the comment window rule.
pub unsafe fn documented() {}
