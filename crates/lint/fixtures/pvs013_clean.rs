//! PVS013 clean fixture: declared tiers, monotone nesting, justified
//! holds, and early release via `drop`.

use std::sync::Mutex;

struct State {
    // LOCK ORDER: 10 — outermost; taken first on every path
    first: Mutex<u32>,
    // LOCK ORDER: 20 — only ever nested under `first`
    second: Mutex<u32>,
}

fn nested(s: &State) {
    let first = s.first.lock().expect("first");
    let second = s.second.lock().expect("second");
    drop(second);
    drop(first);
}

fn sequential(s: &State) {
    // Taking the higher tier alone, releasing, then the lower one is
    // fine — only *nesting* is ordered.
    let second = s.second.lock().expect("second");
    drop(second);
    let first = s.first.lock().expect("first");
    drop(first);
}

fn scoped(s: &State) {
    {
        let second = s.second.lock().expect("second");
        let _ = second;
    }
    let first = s.first.lock().expect("first");
    drop(first);
}

fn justified(s: &State, tx: &std::sync::mpsc::Sender<u32>) {
    let first = s.first.lock().expect("first");
    // LOCK OK: bounded notification channel drained by a dedicated
    // receiver thread — the send cannot block on the guarded state.
    tx.send(1).ok();
    drop(first);
}

fn temporary(s: &State) -> u32 {
    *s.first.lock().expect("first")
}
