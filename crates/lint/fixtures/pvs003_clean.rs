// A comment mentioning Instant::now() is fine; so is a string below.
use std::time::Duration;

pub fn pause() {
    std::thread::sleep(Duration::from_millis(1));
}

pub const NOTE: &str = "SystemTime belongs in pvs-bench";
