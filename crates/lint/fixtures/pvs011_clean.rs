// PVS011 clean fixture: well-formed dotted counter names, plus the
// dynamic-name forms the lint deliberately leaves alone.

fn flush(r: &dyn Recorder, i: usize, name: &str) {
    r.add("engine.loop.flops", 1);
    r.gauge_set("pool.queue.depth", 3);
    r.gauge_max("netsim.link.peak_bytes", 4);
    let mut entries: Vec<(&str, u64)> = Vec::new();
    entries.push(("engine.loop.cycles", 5));
    r.add_many(&[("vectorsim.strips", 1), ("memsim.bank.stall_cycles", 2)]);
    r.add(&format!("pool.worker.{i}.tasks"), 1);
    r.record("serve.hist.busy_us", 40);
    r.record_n("netsim.hist.msg_bytes", 64, 2);
    r.record_many(&[("memsim.hist.bank_queue_depth", 3, 1), ("mpisim.hist.batch_ranks", 8, 1)]);
    r.add(name, 1);
    // A plain tuple push is not a recorder write and carries no rules:
    labels.push(("Label", 1));
}
