//! PVS014 clean fixture: every read has a writer, every library write
//! has a documentation row, wildcards bridge formatted names.
//
// DOCUMENTED: fixture.clean.total
// DOCUMENTED: fixture.worker.*.tasks
// DOCUMENTED: fixture.hist.latency_us

struct Registry;

impl Registry {
    fn add(&self, _name: &str, _value: u64) {}
    fn record(&self, _name: &str, _value: u64) {}
    fn counter(&self, _name: &str) -> u64 {
        0
    }
    fn hist(&self, _name: &str) -> u64 {
        0
    }
}

fn emit(r: &Registry, i: usize) {
    r.add("fixture.clean.total", 1);
    r.add(&format!("fixture.worker.{i}.tasks"), 1);
    // Histogram records are registry writes like any other.
    r.record("fixture.hist.latency_us", 40);
}

fn read(r: &Registry) {
    let _ = r.counter("fixture.clean.total");
    // The wildcard emission above covers any concrete worker index.
    let _ = r.counter("fixture.worker.0.tasks");
    // Histogram reads are matched by the `record` write above.
    let _ = r.hist("fixture.hist.latency_us");
    // `test.`-prefixed names are scratch space, exempt on both sides.
    let _ = r.counter("test.scratch.value");
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_only_names_need_no_documentation() {
        let r = super::Registry;
        r.add("only.in.tests", 1);
        let _ = r.counter("only.in.tests");
    }
}
