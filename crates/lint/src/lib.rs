//! `pvs-lint`: in-tree static analysis for the PVS workspace.
//!
//! Three pass families share one diagnostic engine ([`diag`]):
//!
//! * **Invariant lints** keep the properties the rest of the test suite
//!   *assumes* true by construction: the offline std-only build
//!   ([`manifest`], PVS001/PVS002) and the determinism/safety source
//!   rules ([`source`], PVS003–PVS007) that make sweep output
//!   byte-identical and `unsafe` auditable.
//! * **Model lints** ([`model`], PVS008–PVS010) cross-check every
//!   registered kernel descriptor's static vectorization story against
//!   the dynamic pipeline model — the reproduction's analogue of
//!   comparing compiler listing files against hardware counters.
//! * **Cross-file lints** run in two passes: [`facts`] scans every file
//!   into a workspace fact base (lock acquisitions with guard liveness,
//!   Recorder counter names written and read, schema-version literals),
//!   then [`locks`] (PVS013, the lock-order graph) and [`names`]
//!   (PVS014 counter registry, PVS015 schema registry) join the facts
//!   across crate boundaries.
//!
//! The `pvs-lint` binary (`cargo run -p pvs-lint`) drives all families
//! over the whole workspace; `tests/lint_clean.rs` wires the same entry
//! point into tier-1. Run `pvs-lint --explain PVS00x` for the rationale
//! behind any code.

pub mod diag;
pub mod facts;
pub mod locks;
pub mod manifest;
pub mod model;
pub mod names;
pub mod scan;
pub mod source;

use std::fs;
use std::path::{Path, PathBuf};

use diag::{sort_diagnostics, Diagnostic, LintCode};
use source::SourceContext;

/// Everything one lint run produced.
#[derive(Debug)]
pub struct LintReport {
    /// All diagnostics, sorted by file, line, code, message.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of Rust source files scanned by the source passes.
    pub files_scanned: usize,
    /// Number of kernel descriptors cross-checked by the model passes.
    pub kernels_checked: usize,
}

impl LintReport {
    /// `(errors, warnings)` severity counts.
    pub fn counts(&self) -> (usize, usize) {
        diag::count(&self.diagnostics)
    }

    /// Render the machine-readable JSON report.
    pub fn to_json(&self) -> String {
        diag::report_json(&self.diagnostics, self.files_scanned, self.kernels_checked)
    }
}

/// Recursively collect `.rs` files under `dir`, sorted for
/// deterministic diagnostic order.
fn rust_files_under(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            rust_files_under(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// The Rust sources the source passes walk: every `crates/*/src` tree
/// plus the facade crate's own `src/`. Root `tests/` (host-facing
/// integration harnesses, legitimately timed) and fixture trees are
/// deliberately out of scope — the invariants lint *model and library*
/// code.
pub fn source_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        let mut members: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
        members.sort();
        for member in members {
            rust_files_under(&member.join("src"), &mut out);
        }
    }
    rust_files_under(&root.join("src"), &mut out);
    out
}

/// Test-tree sources (`crates/*/tests` plus the root `tests/`): out of
/// scope for the invariant passes, but their *name facts* still feed
/// PVS014 — a counter emitted only by a test satisfies a test's read of
/// it, and test consumption of library counters is checked too.
pub fn test_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        let mut members: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
        members.sort();
        for member in members {
            rust_files_under(&member.join("tests"), &mut out);
        }
    }
    rust_files_under(&root.join("tests"), &mut out);
    out
}

/// Crate name for a workspace-relative source path
/// (`crates/core/src/…` → `core`; the facade's `src/…` → `pvs`).
fn crate_of(rel: &Path) -> &str {
    let mut parts = rel.components();
    match parts.next().and_then(|c| c.as_os_str().to_str()) {
        Some("crates") => parts
            .next()
            .and_then(|c| c.as_os_str().to_str())
            .unwrap_or("pvs"),
        _ => "pvs",
    }
}

/// Build the workspace fact base (pass 1 of the cross-file lints):
/// library sources in full, test trees for name facts only.
pub fn workspace_facts(root: &Path) -> facts::WorkspaceFacts {
    let mut fact_files = Vec::new();
    for (paths, is_test) in [(source_files(root), false), (test_files(root), true)] {
        for path in paths {
            let rel = path.strip_prefix(root).unwrap_or(&path);
            let rel_str = rel.display().to_string();
            if let Ok(text) = fs::read_to_string(&path) {
                fact_files.push(facts::FileFacts::parse(
                    crate_of(rel),
                    &rel_str,
                    &text,
                    is_test,
                ));
            }
        }
    }
    facts::WorkspaceFacts::build(fact_files)
}

/// The canonical documented-counter table: README rows (backtick
/// tokens, `<placeholder>` segments normalized to `*`) plus any
/// `// DOCUMENTED:` directives in the scanned sources.
fn documented_counters(root: &Path, ws: &facts::WorkspaceFacts) -> std::collections::BTreeSet<String> {
    let mut documented =
        names::documented_names(&fs::read_to_string(root.join("README.md")).unwrap_or_default());
    documented.extend(ws.files.iter().flat_map(|f| f.documented.iter().cloned()));
    documented
}

/// Run every lint pass over the workspace at `root`.
pub fn lint_workspace(root: &Path) -> LintReport {
    let mut diagnostics = manifest::check_workspace_manifests(root);

    let files = source_files(root);
    for path in &files {
        let rel = path.strip_prefix(root).unwrap_or(path);
        let rel_str = rel.display().to_string();
        match fs::read_to_string(path) {
            Ok(text) => diagnostics.extend(source::check_source(
                SourceContext {
                    crate_name: crate_of(rel),
                    path: &rel_str,
                },
                &text,
            )),
            Err(err) => diagnostics.push(Diagnostic::new(
                LintCode::Pvs003,
                &rel_str,
                0,
                format!("cannot read source file: {err}"),
            )),
        }
    }

    let ws = workspace_facts(root);
    diagnostics.extend(locks::check(&ws));
    diagnostics.extend(names::check_counters(&ws, &documented_counters(root, &ws)));
    diagnostics.extend(names::check_schemas(&ws));

    let (model_diags, kernels_checked) = model::check_registered_kernels();
    diagnostics.extend(model_diags);
    sort_diagnostics(&mut diagnostics);
    LintReport {
        diagnostics,
        files_scanned: files.len(),
        kernels_checked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workspace_root() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root")
            .to_path_buf()
    }

    #[test]
    fn walker_sees_every_crate_and_skips_fixtures() {
        let root = workspace_root();
        let files = source_files(&root);
        assert!(files.len() > 50, "only {} files", files.len());
        for needle in [
            "crates/core/src/lib.rs",
            "crates/lint/src/lib.rs",
            "crates/vectorsim/src/descriptor.rs",
            "src/lib.rs",
        ] {
            assert!(
                files.iter().any(|p| p.ends_with(needle)),
                "walker missed {needle}"
            );
        }
        assert!(
            files.iter().all(|p| !p.to_string_lossy().contains("fixtures")),
            "fixtures must not be walked"
        );
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted, "walk order must be deterministic");
    }

    #[test]
    fn crate_names_resolve_from_paths() {
        assert_eq!(crate_of(Path::new("crates/bench/src/harness.rs")), "bench");
        assert_eq!(crate_of(Path::new("crates/core/src/engine.rs")), "core");
        assert_eq!(crate_of(Path::new("src/lib.rs")), "pvs");
    }

    #[test]
    fn serve_lock_order_graph_is_pinned() {
        // The real workspace's observed acquisition edges. Serve's
        // request path is the only place one workspace lock nests under
        // another: `CellStore::get` consults the cache shards and the
        // obs registry while holding the flight map. If this test
        // fails, the cross-crate locking structure changed — update the
        // `LOCK ORDER` tiers (and this list) deliberately.
        let ws = workspace_facts(&workspace_root());
        let graph = locks::lock_graph(&ws);
        assert_eq!(
            graph,
            vec![
                ("serve.flights".to_string(), "obs.inner".to_string()),
                ("serve.flights".to_string(), "serve.shards".to_string()),
            ],
            "observed lock-order graph changed"
        );
        let tiers: Vec<(String, Option<u32>)> = ws
            .locks
            .iter()
            .map(|l| (l.id.clone(), l.tier))
            .collect();
        assert!(
            ws.locks.len() >= 8 && tiers.iter().all(|(_, t)| t.is_some()),
            "every workspace Mutex must declare a LOCK ORDER tier: {tiers:?}"
        );
    }

    #[test]
    fn workspace_lints_clean_of_errors() {
        let report = lint_workspace(&workspace_root());
        let (errors, _warnings) = report.counts();
        let error_diags: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.severity == diag::Severity::Error)
            .map(|d| d.render())
            .collect();
        assert_eq!(errors, 0, "{error_diags:#?}");
        assert!(report.files_scanned > 50);
        assert!(report.kernels_checked >= 20);
    }
}
