//! Pass 1 of the cross-file lints: the workspace fact base.
//!
//! One scan per file (on top of [`crate::scan`]'s code/comment channels)
//! extracts the facts the cross-file passes join over:
//!
//! * **Lock facts** — every `Mutex` declaration (struct field or `let`
//!   binding) with its `// LOCK ORDER: <tier>` annotation; per-function
//!   acquisition sites with guard liveness (brace-scoped `let` guards,
//!   statement-temporary acquisitions); calls made while a guard is
//!   held; and blocking-hazard markers. [`WorkspaceFacts::build`]
//!   resolves calls through a name-based may-acquire map (with a
//!   stoplist of common std method names) into the cross-crate
//!   lock-order graph PVS013 checks.
//! * **Name facts** — every counter/gauge name literal written to a
//!   `Recorder` (single calls, `add_many` batches, `entries.push((..))`
//!   including multi-line continuations, `record_to` tuple arrays, and
//!   `format!` templates, which become `*`-wildcard patterns) and every
//!   name read back (`.counter("..")`, `.gauge("..")`), each tagged
//!   test/non-test. PVS014 joins the two sides.
//! * **Schema facts** — exact-literal occurrences of the canonical
//!   schema identifiers registered in `pvs_core::schema` (PVS015).
//!
//! Everything here is heuristic in the same spirit as the per-file
//! passes: false-positive lean, pinned by golden fixtures, with the real
//! serve/obs/pool lock graph pinned by unit tests.

use std::collections::{BTreeMap, BTreeSet};

use crate::scan::{has_word, scan_source, ScannedLine};

/// One declared `Mutex` (struct field or `let` binding).
#[derive(Debug, Clone)]
pub struct LockDecl {
    /// Stable id: `<crate>.<name>`.
    pub id: String,
    /// Field/binding name.
    pub name: String,
    /// Repo-relative file of the declaration.
    pub file: String,
    /// 1-based declaration line.
    pub line: usize,
    /// Declared `// LOCK ORDER:` tier, if any.
    pub tier: Option<u32>,
}

/// One observed acquisition-order edge: `acquired` was taken while a
/// guard on `holder` was live.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockEdge {
    /// Lock id held at the acquisition site.
    pub holder: String,
    /// Lock id acquired under it.
    pub acquired: String,
    /// First site that produced this edge.
    pub file: String,
    /// 1-based line of that site.
    pub line: usize,
}

/// A blocking operation reached while a guard was live.
#[derive(Debug, Clone)]
pub struct HazardSite {
    /// Lock ids held at the site.
    pub holders: Vec<String>,
    /// Human label of the hazard class.
    pub what: &'static str,
    /// Repo-relative file.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// A `// LOCK OK:` justification sits within the comment window.
    pub justified: bool,
}

/// One counter-name occurrence (emission or consumption). Emission
/// names built with `format!` carry `*` wildcard segments.
#[derive(Debug, Clone)]
pub struct NameFact {
    /// Dotted name (emissions may contain `*` segments).
    pub name: String,
    /// Repo-relative file.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// The site is in test code (`#[cfg(test)]` region or a test tree).
    pub in_test: bool,
}

/// An exact-literal occurrence of a canonical schema identifier.
#[derive(Debug, Clone)]
pub struct SchemaLit {
    /// The identifier (one of `pvs_core::schema::ALL`).
    pub id: String,
    /// Repo-relative file.
    pub file: String,
    /// 1-based line.
    pub line: usize,
}

/// One acquisition on a line.
#[derive(Debug, Clone)]
struct Acquire {
    lock_id: String,
    /// `let`-bound guard (lives to end of scope) vs statement temporary.
    scoped: bool,
    binding: Option<String>,
}

/// A live `let`-bound guard during the liveness scan.
struct Guard {
    lock_id: String,
    binding: Option<String>,
    depth: i64,
}

/// Everything pass 1 extracted from one file.
#[derive(Debug)]
pub struct FileFacts {
    /// Crate the file belongs to.
    pub crate_name: String,
    /// Repo-relative path.
    pub path: String,
    /// Scanned code/comment channels (reused by the per-file passes).
    pub lines: Vec<ScannedLine>,
    /// Raw source lines (for reading literal text back out).
    pub raw: Vec<String>,
    /// Lock declarations (empty for test-tree files).
    pub locks: Vec<LockDecl>,
    /// Counter names written to a Recorder.
    pub emitted: Vec<NameFact>,
    /// Counter names read back.
    pub consumed: Vec<NameFact>,
    /// `// DOCUMENTED: <name>` directives (fixtures document their own
    /// names; the real tree documents in the README).
    pub documented: Vec<String>,
    /// Canonical schema identifiers spelled as exact literals outside
    /// test regions.
    pub schema_lits: Vec<SchemaLit>,
    /// Per line: lock ids of `let`-bound guards live *entering* it.
    holders: Vec<Vec<String>>,
    /// Per line: acquisitions made on it.
    acquires: Vec<Vec<Acquire>>,
    /// Per line: callee identifiers (for may-acquire resolution).
    calls: Vec<Vec<String>>,
    /// Per line: blocking-hazard labels found on it.
    hazards: Vec<Vec<&'static str>>,
    /// Per line: a `// LOCK OK:` comment sits on it.
    lock_ok: Vec<bool>,
    /// Per line: index into `fn_names` of the innermost enclosing fn.
    fn_of_line: Vec<Option<usize>>,
    /// Function names in declaration order.
    fn_names: Vec<String>,
}

/// How many lines above a declaration/hazard the justifying comment may
/// sit (mirrors the `// SAFETY:` / `// INFALLIBLE:` windows).
const COMMENT_WINDOW: usize = 3;

/// Blocking operations a held guard must not cross. Condvar waits are
/// deliberately absent: waiting *releases* the guard.
const HAZARD_MARKERS: [(&str, &str); 18] = [
    (".spawn(", "pool/thread dispatch"),
    ("thread::spawn(", "thread spawn"),
    ("catch_unwind", "catch_unwind"),
    (".send(", "channel send"),
    (".recv()", "channel receive"),
    (".try_recv()", "channel receive"),
    (".recv_timeout(", "channel receive"),
    (".write_all(", "stream I/O"),
    (".read_line(", "stream I/O"),
    (".fill_buf(", "stream I/O"),
    (".read_to_string(", "stream I/O"),
    (".read_to_end(", "stream I/O"),
    (".flush()", "stream I/O"),
    ("std::fs::", "filesystem I/O"),
    ("File::open(", "filesystem I/O"),
    ("File::create(", "filesystem I/O"),
    ("TcpStream::connect(", "TCP connect"),
    ("write_atomic(", "filesystem I/O"),
];

/// Function names excluded from call resolution: common std container /
/// sync method names whose workspace homonyms would fabricate edges
/// (e.g. `inner.counters.insert(..)` under the registry guard must not
/// resolve to `ShardedCache::insert`). A callee filtered here can still
/// contribute edges through the direct-acquisition scan.
const CALL_STOPLIST: [&str; 36] = [
    "insert", "get", "get_mut", "remove", "len", "is_empty", "push", "push_back", "pop",
    "pop_front", "clone", "iter", "into_iter", "next", "wait", "send", "recv", "join", "lock",
    "drop", "take", "clear", "extend", "entry", "retain", "contains", "contains_key", "map",
    "filter", "collect", "new", "default", "from", "min", "max", "fmt",
];

impl FileFacts {
    /// Scan one file into its fact record. `is_test_file` marks whole
    /// files from test trees (`crates/*/tests`, root `tests/`): their
    /// name facts are collected as test-channel and their lock facts are
    /// skipped entirely.
    pub fn parse(crate_name: &str, path: &str, text: &str, is_test_file: bool) -> FileFacts {
        let lines = scan_source(text);
        let raw: Vec<String> = text.lines().map(str::to_string).collect();
        let n = lines.len();
        let test_cutoff = if is_test_file {
            0
        } else {
            lines
                .iter()
                .position(|l| l.code.contains("#[cfg(test)]"))
                .unwrap_or(n)
        };

        let mut ff = FileFacts {
            crate_name: crate_name.to_string(),
            path: path.to_string(),
            locks: Vec::new(),
            emitted: Vec::new(),
            consumed: Vec::new(),
            documented: Vec::new(),
            schema_lits: Vec::new(),
            holders: vec![Vec::new(); n],
            acquires: vec![Vec::new(); n],
            calls: vec![Vec::new(); n],
            hazards: vec![Vec::new(); n],
            lock_ok: vec![false; n],
            fn_of_line: vec![None; n],
            fn_names: Vec::new(),
            lines,
            raw,
        };
        if !is_test_file {
            ff.collect_locks(test_cutoff);
        }
        ff.scan_lock_usage(test_cutoff);
        ff.collect_names(test_cutoff);
        ff.collect_schema_literals(test_cutoff);
        ff
    }

    /// Pass A: `Mutex` declarations and their `LOCK ORDER` tiers.
    fn collect_locks(&mut self, cutoff: usize) {
        let mut depth: i64 = 0;
        // Open struct bodies: the depth their fields sit at.
        let mut struct_depths: Vec<i64> = Vec::new();
        for idx in 0..cutoff.min(self.lines.len()) {
            let code = self.lines[idx].code.clone();
            let entry = depth;
            depth += code.matches('{').count() as i64 - code.matches('}').count() as i64;
            struct_depths.retain(|&d| depth >= d);
            let in_struct_body = struct_depths.last().is_some_and(|&d| entry == d);
            if has_word(&code, "struct") && depth > entry {
                struct_depths.push(depth);
            }

            let decl_name = if in_struct_body || has_word(&code, "struct") {
                mutex_field_name(&code)
            } else {
                mutex_let_name(&code)
            };
            let Some(name) = decl_name else { continue };
            let tier = self.lock_order_tier(idx);
            self.locks.push(LockDecl {
                id: format!("{}.{}", self.crate_name, name),
                name,
                file: self.path.clone(),
                line: idx + 1,
                tier,
            });
        }
    }

    /// The `// LOCK ORDER: <tier>` annotation on the declaration line
    /// or on the comment-only lines directly above it (the upward walk
    /// stops at the first intervening code line, so one annotation
    /// cannot be claimed by two adjacent declarations).
    fn lock_order_tier(&self, idx: usize) -> Option<u32> {
        let start = idx.saturating_sub(COMMENT_WINDOW);
        for (off, l) in self.lines[start..=idx].iter().enumerate().rev() {
            if let Some(rest) = l.comment.split("LOCK ORDER:").nth(1) {
                let digits: String = rest
                    .trim_start()
                    .chars()
                    .take_while(char::is_ascii_digit)
                    .collect();
                return digits.parse().ok();
            }
            if start + off < idx && !l.code.trim().is_empty() {
                return None;
            }
        }
        None
    }

    /// Pass B: guard liveness, acquisitions, calls, hazards, fn spans.
    fn scan_lock_usage(&mut self, cutoff: usize) {
        let lock_names: Vec<(String, String)> = self
            .locks
            .iter()
            .map(|l| (l.name.clone(), l.id.clone()))
            .collect();
        let resolve = |ident: &str| -> Option<String> {
            lock_names
                .iter()
                .find(|(n, _)| n == ident || *n == format!("{ident}s"))
                .map(|(_, id)| id.clone())
        };

        let mut depth: i64 = 0;
        let mut guards: Vec<Guard> = Vec::new();
        // (fn index, body depth) stack + a signature seen but not yet
        // opened.
        let mut fn_stack: Vec<(usize, i64)> = Vec::new();
        let mut pending_fn: Option<usize> = None;

        for idx in 0..cutoff.min(self.lines.len()) {
            let code = self.lines[idx].code.clone();
            let entry = depth;
            depth += code.matches('{').count() as i64 - code.matches('}').count() as i64;

            // Function attribution.
            if let Some(name) = fn_decl_name(&code) {
                self.fn_names.push(name);
                pending_fn = Some(self.fn_names.len() - 1);
            }
            fn_stack.retain(|&(_, d)| depth >= d);
            self.fn_of_line[idx] = fn_stack.last().map(|&(f, _)| f);
            if let Some(f) = pending_fn {
                if depth > entry {
                    fn_stack.push((f, depth));
                    self.fn_of_line[idx] = Some(f);
                    pending_fn = None;
                } else if code.trim_end().ends_with(';') {
                    pending_fn = None; // trait method signature, no body
                }
            }

            // Holders entering the line.
            let mut held: Vec<String> = guards.iter().map(|g| g.lock_id.clone()).collect();
            held.dedup();
            self.holders[idx] = held;

            // Acquisitions.
            for acq in find_acquisitions(&code, &resolve) {
                if acq.scoped {
                    guards.push(Guard {
                        lock_id: acq.lock_id.clone(),
                        binding: acq.binding.clone(),
                        depth: entry,
                    });
                }
                self.acquires[idx].push(acq);
            }

            // Explicit `drop(ident)` releases a named guard early.
            let mut search = 0;
            while let Some(pos) = code[search..].find("drop(") {
                let at = search + pos;
                let arg: String = code[at + 5..]
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                guards.retain(|g| g.binding.as_deref() != Some(arg.as_str()));
                search = at + 5;
            }

            // Calls and hazards.
            self.calls[idx] = call_idents(&code);
            for (marker, what) in HAZARD_MARKERS {
                let hit = if marker.chars().all(|c| c.is_alphanumeric() || c == '_') {
                    has_word(&code, marker)
                } else {
                    code.contains(marker)
                };
                if hit {
                    self.hazards[idx].push(what);
                }
            }
            self.lock_ok[idx] = self.lines[idx].comment.contains("LOCK OK:");

            // Scope exits kill guards declared at deeper (or equal) depth.
            guards.retain(|g| depth >= g.depth);
        }
    }

    /// Name facts: emissions and consumptions (all lines — test regions
    /// included, tagged), plus `DOCUMENTED:` directives.
    fn collect_names(&mut self, cutoff: usize) {
        let mut in_add_many_span = false;
        for idx in 0..self.lines.len() {
            let code = self.lines[idx].code.clone();
            let raw = self.raw.get(idx).cloned().unwrap_or_default();
            let in_test = idx >= cutoff;

            // Consumption: `.counter("..")` / `.gauge("..")` /
            // `.hist("..")` — histogram reads join the same registry
            // namespace as counter and gauge reads.
            for marker in [".counter(\"", ".gauge(\"", ".hist(\""] {
                for name in literals_after_marker(&code, &raw, marker) {
                    if is_counter_name(&name, false) && name != "test" {
                        self.consumed.push(NameFact {
                            name,
                            file: self.path.clone(),
                            line: idx + 1,
                            in_test,
                        });
                    }
                }
            }

            // Emission: single-name Recorder writes (histogram records
            // included).
            for marker in [
                ".add(\"",
                ".gauge_set(\"",
                ".gauge_max(\"",
                ".record(\"",
                ".record_n(\"",
            ] {
                for name in literals_after_marker(&code, &raw, marker) {
                    if is_counter_name(&name, false) {
                        self.emitted.push(NameFact {
                            name,
                            file: self.path.clone(),
                            line: idx + 1,
                            in_test,
                        });
                    }
                }
            }

            // Emission: `format!` templates become wildcard patterns.
            for marker in [
                ".add(&format!(\"",
                ".gauge_set(&format!(\"",
                ".gauge_max(&format!(\"",
                ".record(&format!(\"",
                ".record_n(&format!(\"",
            ] {
                for template in literals_after_marker(&code, &raw, marker) {
                    if let Some(pattern) = template_to_pattern(&template) {
                        self.emitted.push(NameFact {
                            name: pattern,
                            file: self.path.clone(),
                            line: idx + 1,
                            in_test,
                        });
                    }
                }
            }

            // Emission: tuple batches. Context: `add_many(&[..])` and
            // `record_many(&[..])` spans, literal-headed `.push(("..`
            // tuples (and their multi-line continuation), and
            // `record_to` bodies (the tuple-array idiom).
            let prev_continues = idx > 0
                && self.lines[idx - 1].code.trim_end().ends_with("push((");
            let in_record_to = self.fn_of_line[idx]
                .is_some_and(|f| self.fn_names[f] == "record_to");
            if code.contains("add_many(&[") || code.contains("record_many(&[") {
                in_add_many_span = !code.contains("])");
            }
            let tuple_ctx = code.contains("add_many(&[(")
                || code.contains("record_many(&[(")
                || code.contains("entries.push((")
                || code.contains(".push((\"")
                || prev_continues
                || in_record_to
                || in_add_many_span;
            if in_add_many_span && code.contains("])") {
                in_add_many_span = false;
            }
            if tuple_ctx {
                let mut names = literals_after_marker(&code, &raw, "(\"");
                // A continuation line may *start* with the literal.
                if code.trim_start().starts_with('"') {
                    if let Some(col) = code.find('"') {
                        if let Some(name) = read_literal(&raw, col) {
                            names.push(name);
                        }
                    }
                }
                for name in names {
                    if is_counter_name(&name, false) {
                        self.emitted.push(NameFact {
                            name,
                            file: self.path.clone(),
                            line: idx + 1,
                            in_test,
                        });
                    }
                }
            }

            // Documentation directives (fixtures; harmless elsewhere).
            if let Some(rest) = self.lines[idx].comment.split("DOCUMENTED:").nth(1) {
                let name = rest.trim().trim_matches('`').to_string();
                if is_counter_name(&name, true) {
                    self.documented.push(name);
                }
            }
        }
    }

    /// Exact-literal occurrences of canonical schema ids outside test
    /// regions. The code channel blanks literal contents but keeps the
    /// delimiters, so `code[col] == '"'` proves the match starts a real
    /// string, and the closing quote right after it proves exactness.
    fn collect_schema_literals(&mut self, cutoff: usize) {
        for idx in 0..cutoff.min(self.lines.len()) {
            let raw = self.raw.get(idx).cloned().unwrap_or_default();
            let code = &self.lines[idx].code;
            for id in pvs_core::schema::ALL {
                let needle = format!("\"{id}\"");
                let mut search = 0;
                while let Some(pos) = raw[search..].find(&needle) {
                    let col = search + pos;
                    if code.as_bytes().get(col) == Some(&b'"') {
                        self.schema_lits.push(SchemaLit {
                            id: id.to_string(),
                            file: self.path.clone(),
                            line: idx + 1,
                        });
                    }
                    search = col + 1;
                }
            }
        }
    }
}

/// `name: Mutex<..>` / `name: Arc<Mutex<..>>` / `name: Vec<Mutex<..>>`
/// struct field (references are not declarations).
fn mutex_field_name(code: &str) -> Option<String> {
    let pos = code.find("Mutex<")?;
    if code[..pos].contains('&') {
        return None;
    }
    let colon = code[..pos].rfind(':')?;
    let name: String = code[..colon]
        .trim_end()
        .chars()
        .rev()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect::<String>()
        .chars()
        .rev()
        .collect();
    (!name.is_empty() && !name.chars().next().is_some_and(|c| c.is_ascii_digit()))
        .then_some(name)
}

/// `let name = ..Mutex::new(..)..` / `let name: Mutex<..> = ..` binding.
fn mutex_let_name(code: &str) -> Option<String> {
    if !has_word(code, "let") {
        return None;
    }
    let has_owned_type = code
        .find("Mutex<")
        .is_some_and(|p| !code[..p].contains('&'));
    if !code.contains("Mutex::new(") && !has_owned_type {
        return None;
    }
    let let_pos = code.find("let ")?;
    let rest = code[let_pos + 4..].trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    (!name.is_empty()).then_some(name)
}

/// `fn name` on this line (the declaration, not a call).
fn fn_decl_name(code: &str) -> Option<String> {
    let pos = find_fn_keyword(code)?;
    let name: String = code[pos + 3..]
        .trim_start()
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    (!name.is_empty()).then_some(name)
}

/// Position of a word-boundary `fn ` keyword.
fn find_fn_keyword(code: &str) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut start = 0;
    while let Some(pos) = code[start..].find("fn ") {
        let at = start + pos;
        let before_ok = at == 0 || {
            let b = bytes[at - 1];
            !b.is_ascii_alphanumeric() && b != b'_'
        };
        if before_ok {
            return Some(at);
        }
        start = at + 1;
    }
    None
}

/// Every `.lock()` / `.lock_<name>(..)` acquisition on the line,
/// resolved against the file's lock table.
fn find_acquisitions(code: &str, resolve: &dyn Fn(&str) -> Option<String>) -> Vec<Acquire> {
    let mut out = Vec::new();
    let is_let = code.trim_start().starts_with("let ");
    let binding = is_let.then(|| {
        let rest = code.trim_start()[4..].trim_start();
        let rest = rest.strip_prefix("mut ").unwrap_or(rest);
        rest.chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect::<String>()
    });

    // `.lock()` on a receiver: the lock is the receiver's last segment.
    let mut search = 0;
    while let Some(pos) = code[search..].find(".lock()") {
        let at = search + pos;
        search = at + 7;
        let recv: String = code[..at]
            .chars()
            .rev()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect::<String>()
            .chars()
            .rev()
            .collect();
        let Some(lock_id) = resolve(&recv) else { continue };
        let scoped = is_let && binds_receiver(code, at) && guard_chain_ends(code, at + 6);
        out.push(Acquire {
            lock_id,
            scoped,
            binding: binding.clone(),
        });
    }

    // `.lock_<name>(..)` helpers: the lock is named by the method.
    let mut search = 0;
    while let Some(pos) = code[search..].find(".lock_") {
        let at = search + pos;
        search = at + 6;
        let name: String = code[at + 6..]
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        let open = at + 6 + name.len();
        if name.is_empty() || code.as_bytes().get(open) != Some(&b'(') {
            continue;
        }
        let Some(lock_id) = resolve(&name) else { continue };
        let Some(close) = matching_paren(code, open) else { continue };
        let scoped = is_let && binds_receiver(code, at) && guard_chain_ends(code, close);
        out.push(Acquire {
            lock_id,
            scoped,
            binding: binding.clone(),
        });
    }
    out
}

/// The `let` binding takes the guard itself only when the acquisition
/// expression starts directly after `=` — a prefix like `*` or `&`
/// (`let v = *s.a.lock().unwrap();`) projects through the guard and
/// binds a copy, not the guard.
fn binds_receiver(code: &str, dot_at: usize) -> bool {
    let mut start = dot_at;
    let bytes = code.as_bytes();
    while start > 0 {
        let b = bytes[start - 1];
        if b.is_ascii_alphanumeric() || b == b'_' || b == b'.' {
            start -= 1;
        } else {
            break;
        }
    }
    code[..start].trim_end().ends_with('=')
}

/// After the call that returned a guard (closing paren at `close`), skip
/// chained `.expect(..)`/`.unwrap()` and decide whether the statement
/// ends there (a guard binding) or keeps projecting (a temporary, e.g.
/// `..lock().expect("..").peak_depth`).
fn guard_chain_ends(code: &str, close: usize) -> bool {
    let mut i = close + 1;
    loop {
        let rest = code[i.min(code.len())..].trim_start();
        if rest.is_empty() || rest.starts_with(';') {
            return true;
        }
        if let Some(tail) = rest.strip_prefix(".expect(").or_else(|| rest.strip_prefix(".unwrap("))
        {
            let open = code.len() - tail.len() - 1;
            match matching_paren(code, open) {
                Some(c) => i = c + 1,
                None => return true, // spills to the next line; treat as guard
            }
        } else {
            return false;
        }
    }
}

/// Index of the `)` matching the `(` at `open` (same line only).
fn matching_paren(code: &str, open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (i, c) in code.char_indices().skip(open) {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Identifiers called on this line (`ident(`), excluding `fn`
/// declarations and keywords.
fn call_idents(code: &str) -> Vec<String> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'(' {
            continue;
        }
        let mut start = i;
        while start > 0 {
            let p = bytes[start - 1];
            if p.is_ascii_alphanumeric() || p == b'_' {
                start -= 1;
            } else {
                break;
            }
        }
        if start == i {
            continue;
        }
        let ident = &code[start..i];
        if ident.chars().next().is_some_and(|c| c.is_ascii_digit()) {
            continue;
        }
        if matches!(ident, "if" | "while" | "for" | "match" | "loop" | "return" | "fn") {
            continue;
        }
        // Skip the name in `fn name(`.
        if code[..start].trim_end().ends_with("fn") {
            continue;
        }
        if !out.iter().any(|o| o == ident) {
            out.push(ident.to_string());
        }
    }
    out
}

/// String literals directly after each occurrence of `marker` (which
/// ends with the opening quote), read back from the raw line.
fn literals_after_marker(code: &str, raw: &str, marker: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut search = 0;
    while let Some(pos) = code[search..].find(marker) {
        let quote_col = search + pos + marker.len() - 1;
        search = quote_col + 1;
        if let Some(lit) = read_literal(raw, quote_col) {
            out.push(lit);
        }
    }
    out
}

/// The literal starting at the `"` at `quote_col` of the raw line.
fn read_literal(raw: &str, quote_col: usize) -> Option<String> {
    let rest = raw.get(quote_col + 1..)?;
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

/// `format!` template → wildcard pattern: every `{..}` hole becomes a
/// `*` segment. Returns `None` when the result is not a dotted name.
fn template_to_pattern(template: &str) -> Option<String> {
    let mut out = String::new();
    let mut rest = template;
    while let Some(open) = rest.find('{') {
        out.push_str(&rest[..open]);
        let close = rest[open..].find('}')?;
        out.push('*');
        rest = &rest[open + close + 1..];
    }
    out.push_str(rest);
    is_counter_name(&out, true).then_some(out)
}

/// Dotted counter-name grammar: >= 2 segments of `[a-z0-9_]+` (a lone
/// `*` per segment when `allow_wildcard`).
pub fn is_counter_name(name: &str, allow_wildcard: bool) -> bool {
    let mut segments = 0;
    for seg in name.split('.') {
        let wild = allow_wildcard && seg == "*";
        let plain = !seg.is_empty()
            && seg
                .bytes()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_');
        if !wild && !plain {
            return false;
        }
        segments += 1;
    }
    segments >= 2
}

/// The joined fact base the cross-file passes (PVS013/014/015) consume.
#[derive(Debug)]
pub struct WorkspaceFacts {
    /// Per-file facts, in walk order.
    pub files: Vec<FileFacts>,
    /// All lock declarations.
    pub locks: Vec<LockDecl>,
    /// Deduplicated acquisition-order edges (first site wins).
    pub edges: Vec<LockEdge>,
    /// Blocking hazards reached while holding a guard.
    pub hazard_sites: Vec<HazardSite>,
}

impl WorkspaceFacts {
    /// Join per-file facts: build the function may-acquire map, resolve
    /// calls made under guards, and materialize the lock-order graph.
    pub fn build(files: Vec<FileFacts>) -> WorkspaceFacts {
        let locks: Vec<LockDecl> = files.iter().flat_map(|f| f.locks.clone()).collect();

        // Function name -> locks it may acquire (direct), then the
        // transitive closure through calls. Names on the stoplist are
        // never map keys, so homonyms of std methods cannot resolve.
        let mut direct: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        let mut fn_calls: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for file in &files {
            for idx in 0..file.lines.len() {
                let Some(f) = file.fn_of_line[idx] else { continue };
                let name = &file.fn_names[f];
                if CALL_STOPLIST.contains(&name.as_str()) {
                    continue;
                }
                for acq in &file.acquires[idx] {
                    direct
                        .entry(name.clone())
                        .or_default()
                        .insert(acq.lock_id.clone());
                }
                for callee in &file.calls[idx] {
                    if !CALL_STOPLIST.contains(&callee.as_str()) && callee != name {
                        fn_calls
                            .entry(name.clone())
                            .or_default()
                            .insert(callee.clone());
                    }
                }
            }
        }
        let mut may_acquire = direct;
        loop {
            let mut changed = false;
            for (caller, callees) in &fn_calls {
                let mut gained: BTreeSet<String> = BTreeSet::new();
                for callee in callees {
                    if let Some(acqs) = may_acquire.get(callee) {
                        gained.extend(acqs.iter().cloned());
                    }
                }
                if gained.is_empty() {
                    continue;
                }
                let entry = may_acquire.entry(caller.clone()).or_default();
                let before = entry.len();
                entry.extend(gained);
                changed |= entry.len() > before;
            }
            if !changed {
                break;
            }
        }
        may_acquire.retain(|_, v| !v.is_empty());

        // Replay: edges and hazards under live guards.
        let mut edge_map: BTreeMap<(String, String), (String, usize)> = BTreeMap::new();
        let mut hazard_sites = Vec::new();
        for file in &files {
            for idx in 0..file.lines.len() {
                let holders = &file.holders[idx];
                if holders.is_empty() && file.acquires[idx].is_empty() {
                    continue;
                }
                for acq in &file.acquires[idx] {
                    for h in holders {
                        edge_map
                            .entry((h.clone(), acq.lock_id.clone()))
                            .or_insert_with(|| (file.path.clone(), idx + 1));
                    }
                }
                if !holders.is_empty() {
                    for callee in &file.calls[idx] {
                        let Some(acqs) = may_acquire.get(callee) else {
                            continue;
                        };
                        for l in acqs {
                            for h in holders {
                                edge_map
                                    .entry((h.clone(), l.clone()))
                                    .or_insert_with(|| (file.path.clone(), idx + 1));
                            }
                        }
                    }
                }
                let mut hazard_holders: Vec<String> = holders.clone();
                for acq in &file.acquires[idx] {
                    if !hazard_holders.contains(&acq.lock_id) {
                        hazard_holders.push(acq.lock_id.clone());
                    }
                }
                if !hazard_holders.is_empty() && !file.hazards[idx].is_empty() {
                    let window = idx.saturating_sub(COMMENT_WINDOW);
                    let justified = file.lock_ok[window..=idx].iter().any(|&j| j);
                    for what in &file.hazards[idx] {
                        hazard_sites.push(HazardSite {
                            holders: hazard_holders.clone(),
                            what,
                            file: file.path.clone(),
                            line: idx + 1,
                            justified,
                        });
                    }
                }
            }
        }
        let edges = edge_map
            .into_iter()
            .map(|((holder, acquired), (file, line))| LockEdge {
                holder,
                acquired,
                file,
                line,
            })
            .collect();

        WorkspaceFacts {
            files,
            locks,
            edges,
            hazard_sites,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> FileFacts {
        FileFacts::parse("fixture", "test.rs", src, false)
    }

    #[test]
    fn mutex_field_and_let_declarations_are_found_with_tiers() {
        let src = "struct S {\n\
                   // LOCK ORDER: 10 — outermost\n\
                   a: Mutex<u32>,\n\
                   b: Vec<Mutex<String>>,\n\
                   }\n\
                   fn f() {\n\
                   let c = Mutex::new(0); // LOCK ORDER: 20\n\
                   }\n";
        let ff = parse(src);
        let ids: Vec<(&str, Option<u32>)> =
            ff.locks.iter().map(|l| (l.id.as_str(), l.tier)).collect();
        assert_eq!(
            ids,
            vec![
                ("fixture.a", Some(10)),
                ("fixture.b", None),
                ("fixture.c", Some(20)),
            ]
        );
    }

    #[test]
    fn references_and_params_are_not_declarations() {
        let src = "fn f(m: &Mutex<u32>) {}\n\
                   fn g(shard: &'a Mutex<Vec<u8>>) {}\n\
                   fn h() -> std::sync::MutexGuard<'static, u32> { todo!() }\n";
        assert!(parse(src).locks.is_empty());
    }

    #[test]
    fn guard_liveness_produces_nesting_edges() {
        let src = "struct S {\n\
                   // LOCK ORDER: 10\n\
                   outer: Mutex<u32>,\n\
                   // LOCK ORDER: 20\n\
                   inner: Mutex<u32>,\n\
                   }\n\
                   fn f(s: &S) {\n\
                   let a = s.outer.lock().unwrap();\n\
                   let b = s.inner.lock().unwrap();\n\
                   }\n";
        let ws = WorkspaceFacts::build(vec![parse(src)]);
        assert_eq!(ws.edges.len(), 1);
        assert_eq!(ws.edges[0].holder, "fixture.outer");
        assert_eq!(ws.edges[0].acquired, "fixture.inner");
        assert_eq!(ws.edges[0].line, 9);
    }

    #[test]
    fn temporaries_and_closed_scopes_hold_nothing() {
        let src = "struct S {\n\
                   // LOCK ORDER: 10\n\
                   a: Mutex<u32>,\n\
                   // LOCK ORDER: 20\n\
                   b: Mutex<u32>,\n\
                   }\n\
                   fn f(s: &S) {\n\
                   let v = *s.a.lock().unwrap();\n\
                   let w = s.b.lock().unwrap();\n\
                   }\n\
                   fn g(s: &S) {\n\
                   {\n\
                   let a = s.a.lock().unwrap();\n\
                   }\n\
                   let b = s.b.lock().unwrap();\n\
                   }\n";
        // `v` is a temporary (deref projection) — no a->b edge from f;
        // g's block scope drops `a` before b is taken.
        let ws = WorkspaceFacts::build(vec![parse(src)]);
        assert!(ws.edges.is_empty(), "{:?}", ws.edges);
    }

    #[test]
    fn explicit_drop_releases_the_guard() {
        let src = "struct S {\n\
                   // LOCK ORDER: 10\n\
                   a: Mutex<u32>,\n\
                   // LOCK ORDER: 20\n\
                   b: Mutex<u32>,\n\
                   }\n\
                   fn f(s: &S) {\n\
                   let a = s.a.lock().unwrap();\n\
                   drop(a);\n\
                   let b = s.b.lock().unwrap();\n\
                   }\n";
        assert!(WorkspaceFacts::build(vec![parse(src)]).edges.is_empty());
    }

    #[test]
    fn calls_resolve_to_their_acquisitions_transitively() {
        let src = "struct S {\n\
                   // LOCK ORDER: 10\n\
                   a: Mutex<u32>,\n\
                   // LOCK ORDER: 20\n\
                   b: Mutex<u32>,\n\
                   }\n\
                   fn leaf(s: &S) {\n\
                   let b = s.b.lock().unwrap();\n\
                   }\n\
                   fn mid(s: &S) {\n\
                   leaf(s);\n\
                   }\n\
                   fn top(s: &S) {\n\
                   let a = s.a.lock().unwrap();\n\
                   mid(s);\n\
                   }\n";
        let ws = WorkspaceFacts::build(vec![parse(src)]);
        assert_eq!(ws.edges.len(), 1);
        assert_eq!(ws.edges[0].holder, "fixture.a");
        assert_eq!(ws.edges[0].acquired, "fixture.b");
    }

    #[test]
    fn stoplisted_names_never_resolve() {
        let src = "struct S {\n\
                   // LOCK ORDER: 10\n\
                   a: Mutex<u32>,\n\
                   }\n\
                   fn insert(s: &S) {\n\
                   let a = s.a.lock().unwrap();\n\
                   }\n\
                   fn caller(s: &S, map: &mut std::collections::BTreeMap<u32, u32>) {\n\
                   let a = s.a.lock().unwrap();\n\
                   map.insert(1, 2);\n\
                   }\n";
        // `map.insert` under the guard must not resolve to fn insert
        // (which would fabricate an a->a self-edge).
        assert!(WorkspaceFacts::build(vec![parse(src)]).edges.is_empty());
    }

    #[test]
    fn hazards_under_guards_are_recorded_and_justified() {
        let src = "struct S {\n\
                   // LOCK ORDER: 10\n\
                   a: Mutex<u32>,\n\
                   }\n\
                   fn f(s: &S, tx: &std::sync::mpsc::Sender<u32>) {\n\
                   let a = s.a.lock().unwrap();\n\
                   tx.send(1).ok();\n\
                   }\n\
                   fn g(s: &S, tx: &std::sync::mpsc::Sender<u32>) {\n\
                   let a = s.a.lock().unwrap();\n\
                   // LOCK OK: bounded channel with a dedicated drain\n\
                   tx.send(1).ok();\n\
                   }\n\
                   fn h(tx: &std::sync::mpsc::Sender<u32>) {\n\
                   tx.send(1).ok();\n\
                   }\n";
        let ws = WorkspaceFacts::build(vec![parse(src)]);
        assert_eq!(ws.hazard_sites.len(), 2, "{:?}", ws.hazard_sites);
        assert!(!ws.hazard_sites[0].justified);
        assert_eq!(ws.hazard_sites[0].line, 7);
        assert!(ws.hazard_sites[1].justified);
    }

    #[test]
    fn emission_and_consumption_idioms_are_collected() {
        let src = "fn lib(r: &dyn Recorder, entries: &mut Vec<(&str, u64)>) {\n\
                   r.add(\"serve.cache.hits\", 1);\n\
                   r.gauge_set(\"serve.queue.depth\", 2);\n\
                   entries.push((\"engine.loop.flops\", 3));\n\
                   entries.push((\n\
                   \"engine.loop.cycles\",\n\
                   4,\n\
                   ));\n\
                   r.add_many(&[(\"netsim.messages\", 5), (\"netsim.hops\", 6)]);\n\
                   r.add(&format!(\"pool.worker.{i}.tasks\"), 7);\n\
                   }\n\
                   fn record_to(r: &dyn Recorder) {\n\
                   for (name, value) in [(\"mpisim.fault.drops\", 1u64)] {\n\
                   r.add(name, value);\n\
                   }\n\
                   }\n\
                   fn reader(snap: &Snapshot) {\n\
                   snap.counter(\"serve.cache.hits\");\n\
                   snap.gauge(\"serve.queue.depth\");\n\
                   }\n";
        let ff = parse(src);
        let emitted: Vec<&str> = ff.emitted.iter().map(|n| n.name.as_str()).collect();
        for want in [
            "serve.cache.hits",
            "serve.queue.depth",
            "engine.loop.flops",
            "engine.loop.cycles",
            "netsim.messages",
            "netsim.hops",
            "pool.worker.*.tasks",
            "mpisim.fault.drops",
        ] {
            assert!(emitted.contains(&want), "missing {want}: {emitted:?}");
        }
        let consumed: Vec<&str> = ff.consumed.iter().map(|n| n.name.as_str()).collect();
        assert_eq!(consumed, vec!["serve.cache.hits", "serve.queue.depth"]);
    }

    #[test]
    fn test_regions_are_tagged() {
        let src = "fn lib(r: &Registry) { r.add(\"a.lib\", 1); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   fn t(r: &Registry) { r.add(\"a.test\", 1); }\n\
                   }\n";
        let ff = parse(src);
        assert!(!ff.emitted[0].in_test);
        assert!(ff.emitted[1].in_test);
    }

    #[test]
    fn schema_literals_exact_matches_only() {
        let src = "let a = \"pvs-bench/profile-v2\";\n\
                   let b = \"pvs-bench/profile-v2 with suffix\";\n\
                   let c = \"pvs-bench/profile-v99\";\n\
                   // a comment mentioning \"pvs-bench/profile-v2\"\n";
        let ff = parse(src);
        assert_eq!(ff.schema_lits.len(), 1, "{:?}", ff.schema_lits);
        assert_eq!(ff.schema_lits[0].line, 1);
        assert_eq!(ff.schema_lits[0].id, "pvs-bench/profile-v2");
    }

    #[test]
    fn wildcard_counter_grammar() {
        assert!(is_counter_name("pool.worker.*.tasks", true));
        assert!(!is_counter_name("pool.worker.*.tasks", false));
        assert!(is_counter_name("a.b", false));
        assert!(!is_counter_name("a", true));
        assert_eq!(
            template_to_pattern("chaos.{}.mpisim.{name}").as_deref(),
            Some("chaos.*.mpisim.*")
        );
        assert_eq!(template_to_pattern("not dotted {x}"), None);
    }
}
