//! Model lints (PVS008–PVS010): static kernel analysis cross-checked
//! against the dynamic vector-pipeline model.
//!
//! Every paper application registers its kernels as
//! [`KernelDescriptor`]s. The static side predicts computational
//! intensity, AVL, and VOR from strip-mining arithmetic alone — the
//! numbers a compiler listing file would show; the dynamic side runs the
//! same loop through `pvs-vectorsim`'s instruction-accounting model —
//! the numbers `ftrace`/`pat` hardware counters would show. The two
//! derivations are independent, so divergence means one of them (or the
//! descriptor) is wrong: PVS008 fires on AVL disagreement, PVS009 on
//! VOR disagreement. PVS010 is an advisory: a *vectorizable* kernel
//! whose predicted AVL sits below half the machine's vector length is
//! leaving the vector pipes mostly idle, the paper's recurring
//! short-inner-loop pathology (Cactus §5.2's small-`x` grids).

use pvs_core::kernel::KernelDescriptor;

use crate::diag::{Diagnostic, LintCode};

/// Maximum tolerated relative AVL gap between static prediction and
/// dynamic measurement (the acceptance criterion's 5%).
pub const AVL_TOLERANCE: f64 = 0.05;

/// Maximum tolerated absolute VOR gap (VOR is already in `[0, 1]`).
pub const VOR_TOLERANCE: f64 = 0.05;

/// Every registered kernel descriptor in the workspace: the vectorsim
/// calibration microkernels plus the four paper applications, in a
/// stable order.
pub fn collect_descriptors() -> Vec<KernelDescriptor> {
    let mut out = pvs_vectorsim::descriptor::reference_descriptors();
    out.extend(pvs_lbmhd::perf::kernel_descriptors());
    out.extend(pvs_gtc::perf::kernel_descriptors());
    out.extend(pvs_cactus::perf::kernel_descriptors());
    out.extend(pvs_paratec::perf::kernel_descriptors());
    out
}

fn relative_gap(dynamic: f64, predicted: f64) -> f64 {
    if predicted == 0.0 {
        dynamic.abs()
    } else {
        (dynamic - predicted).abs() / predicted.abs()
    }
}

/// Cross-check one descriptor; diagnostics are spanned to the file that
/// registered it.
pub fn check_descriptor(d: &KernelDescriptor) -> Vec<Diagnostic> {
    check_against(d, d.static_prediction())
}

/// The comparison core, with the static side injectable so tests can
/// exercise every divergence arm (a consistent registry never trips
/// PVS009: both derivations read the same `LoopClass`, so only a change
/// to one of them — the thing this lint guards — can split them).
pub fn check_against(
    d: &KernelDescriptor,
    s: pvs_core::kernel::StaticPrediction,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let m = d.dynamic_metrics();
    let label = format!("{}/{} on {}", d.app, d.kernel, d.machine.name());

    let avl_gap = relative_gap(m.avl(), s.avl);
    if avl_gap > AVL_TOLERANCE {
        out.push(Diagnostic::new(
            LintCode::Pvs008,
            d.source_hint,
            0,
            format!(
                "{label}: static AVL prediction {:.2} diverges from dynamic \
                 {:.2} ({:.1}% > {:.0}% tolerance) — descriptor or model is \
                 out of date",
                s.avl,
                m.avl(),
                avl_gap * 100.0,
                AVL_TOLERANCE * 100.0
            ),
        ));
    }

    let vor_gap = (m.vor() - s.vor).abs();
    if vor_gap > VOR_TOLERANCE {
        out.push(Diagnostic::new(
            LintCode::Pvs009,
            d.source_hint,
            0,
            format!(
                "{label}: static VOR prediction {:.3} diverges from dynamic \
                 {:.3} (gap {:.3} > {:.2}) — vectorization class is wrong",
                s.vor, m.vor(), vor_gap, VOR_TOLERANCE
            ),
        ));
    }

    let max_vl = d.machine.unit().max_vl as f64;
    if s.vor > 0.0 && s.avl > 0.0 && s.avl < max_vl / 2.0 {
        out.push(Diagnostic::new(
            LintCode::Pvs010,
            d.source_hint,
            0,
            format!(
                "{label}: predicted AVL {:.1} is under half the machine's \
                 vector length ({max_vl:.0}) — short inner loop leaves the \
                 vector pipes mostly idle",
                s.avl
            ),
        ));
    }
    out
}

/// Run the model lints over every registered descriptor.
pub fn check_registered_kernels() -> (Vec<Diagnostic>, usize) {
    let descriptors = collect_descriptors();
    let mut out = Vec::new();
    for d in &descriptors {
        out.extend(check_descriptor(d));
    }
    (out, descriptors.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvs_core::kernel::MachineKind;
    use pvs_vectorsim::exec::{LoopClass, VectorLoop};

    #[test]
    fn registry_covers_all_paper_apps_on_both_machines() {
        let ds = collect_descriptors();
        for app in ["vectorsim", "lbmhd", "gtc", "cactus", "paratec"] {
            for machine in [MachineKind::Es, MachineKind::X1Msp] {
                assert!(
                    ds.iter().any(|d| d.app == app && d.machine == machine),
                    "no {app} descriptor for {}",
                    machine.name()
                );
            }
        }
    }

    #[test]
    fn registered_kernels_have_no_error_findings() {
        let (diags, kernels) = check_registered_kernels();
        let errors: Vec<_> = diags
            .iter()
            .filter(|d| d.code != LintCode::Pvs010)
            .collect();
        assert!(kernels >= 20, "registry unexpectedly small: {kernels}");
        assert!(errors.is_empty(), "{errors:?}");
    }

    fn pathological() -> KernelDescriptor {
        // Tiny trip count + fractional vector-instruction count per
        // iteration: dynamic ceil-rounding departs from the closed form.
        KernelDescriptor {
            app: "fixture",
            kernel: "rounding_pathology".to_string(),
            machine: MachineKind::Es,
            source_hint: "crates/lint/src/model.rs",
            vloop: VectorLoop {
                trips: 3,
                outer_iters: 1,
                flops_per_iter: 3.0,
                bytes_per_iter: 8.0,
                gather_fraction: 0.0,
                live_vector_temps: 8,
                class: LoopClass::Vectorizable {
                    multistreamable: true,
                },
            },
        }
    }

    #[test]
    fn divergent_descriptor_trips_pvs008() {
        let diags = check_descriptor(&pathological());
        assert!(
            diags.iter().any(|d| d.code == LintCode::Pvs008),
            "{diags:?}"
        );
    }

    #[test]
    fn short_loop_trips_pvs010_as_warning_only() {
        let mut d = pathological();
        // Long enough per-iteration work that rounding stays exact, but
        // a short trip count: AVL 32 on a VL-256 machine.
        d.vloop.trips = 32;
        d.vloop.flops_per_iter = 64.0;
        let diags = check_descriptor(&d);
        assert!(diags.iter().any(|d| d.code == LintCode::Pvs010));
        assert!(diags.iter().all(|d| d.code == LintCode::Pvs010), "{diags:?}");
    }

    #[test]
    fn vor_divergence_trips_pvs009() {
        let mut d = pathological();
        d.vloop.trips = 4096;
        d.vloop.flops_per_iter = 64.0;
        // Inject a static side claiming a half-vectorized loop; the
        // dynamic run retires pure vector ops, so the gap is 0.5.
        let mut s = d.static_prediction();
        s.vor = 0.5;
        let diags = check_against(&d, s);
        assert!(
            diags.iter().any(|d| d.code == LintCode::Pvs009),
            "{diags:?}"
        );
    }

    #[test]
    fn consistent_scalar_descriptor_is_quiet() {
        let d = KernelDescriptor {
            app: "fixture",
            kernel: "consistent_scalar".to_string(),
            machine: MachineKind::X1Msp,
            source_hint: "crates/lint/src/model.rs",
            vloop: VectorLoop {
                trips: 1000,
                outer_iters: 1,
                flops_per_iter: 8.0,
                bytes_per_iter: 8.0,
                gather_fraction: 0.0,
                live_vector_temps: 4,
                class: LoopClass::Scalar,
            },
        };
        assert!(check_descriptor(&d).is_empty());
    }
}
