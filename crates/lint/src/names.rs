//! PVS014/PVS015 — the counter-name and schema-version registries.
//!
//! **PVS014** joins the emission and consumption sides of the
//! `pvs-obs` name-string contract across the whole workspace:
//!
//! * a name *consumed* (`.counter("..")` / `.gauge("..")`) that no
//!   Recorder write ever emits is an **error** — the reader will see a
//!   silent zero forever (the `serve.queue.peak` class of bug);
//! * a name *emitted* from library (non-test) code that the canonical
//!   documentation table does not list is a **warning** — undocumented
//!   telemetry bit-rots.
//!
//! `format!`-built names participate as `*` wildcard patterns
//! (`pool.worker.*.tasks`); documentation rows written with `<angle>`
//! placeholders normalize to the same wildcard form. Names under the
//! `test.` prefix are exempt on both sides.
//!
//! **PVS015** pins every canonical schema-version string (the
//! `pvs_core::schema` registry) to that one const module: an exact
//! literal spelling of a registered identifier anywhere else in
//! non-test code is an error, because the writer and readers can then
//! drift independently.

use crate::diag::{Diagnostic, LintCode};
use crate::facts::WorkspaceFacts;
use std::collections::BTreeSet;

/// The one file allowed to spell schema identifiers as literals.
const SCHEMA_HOME: &str = "crates/core/src/schema.rs";

/// PVS014: consumed-but-never-emitted (error) and
/// emitted-but-undocumented (warning). `documented` is the canonical
/// name table (README rows plus any `// DOCUMENTED:` directives),
/// already normalized to wildcard form.
pub fn check_counters(ws: &WorkspaceFacts, documented: &BTreeSet<String>) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    let emitted_literal: BTreeSet<&str> = ws
        .files
        .iter()
        .flat_map(|f| f.emitted.iter())
        .filter(|n| !n.name.contains('*'))
        .map(|n| n.name.as_str())
        .collect();
    let emitted_patterns: Vec<&str> = ws
        .files
        .iter()
        .flat_map(|f| f.emitted.iter())
        .filter(|n| n.name.contains('*'))
        .map(|n| n.name.as_str())
        .collect();

    // Consumed side: every read must have a possible writer.
    for fact in ws.files.iter().flat_map(|f| f.consumed.iter()) {
        if fact.name.starts_with("test.") {
            continue;
        }
        let matched = emitted_literal.contains(fact.name.as_str())
            || emitted_patterns.iter().any(|p| glob_match(p, &fact.name));
        if !matched {
            out.push(Diagnostic::new(
                LintCode::Pvs014,
                fact.file.clone(),
                fact.line,
                format!(
                    "counter `{}` is consumed but never emitted by any Recorder \
                     write in the workspace — the reader sees a silent zero",
                    fact.name
                ),
            ));
        }
    }

    // Emitted side: every library write must be documented. One report
    // per name, at its first site.
    let mut reported: BTreeSet<&str> = BTreeSet::new();
    for fact in ws.files.iter().flat_map(|f| f.emitted.iter()) {
        if fact.in_test || fact.name.starts_with("test.") || reported.contains(fact.name.as_str())
        {
            continue;
        }
        let documented_here = documented.contains(&fact.name)
            || documented.iter().any(|d| glob_match(d, &fact.name));
        if !documented_here {
            reported.insert(fact.name.as_str());
            out.push(Diagnostic::warning(
                LintCode::Pvs014,
                fact.file.clone(),
                fact.line,
                format!(
                    "counter `{}` is emitted but not documented in the canonical \
                     counter table — add a row describing it",
                    fact.name
                ),
            ));
        }
    }
    out
}

/// PVS015: canonical schema identifiers spelled outside the registry.
pub fn check_schemas(ws: &WorkspaceFacts) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for file in &ws.files {
        if file.path.ends_with(SCHEMA_HOME) {
            continue;
        }
        for lit in &file.schema_lits {
            out.push(Diagnostic::new(
                LintCode::Pvs015,
                lit.file.clone(),
                lit.line,
                format!(
                    "schema version `{}` spelled as a literal — reference the \
                     `pvs_core::schema` const so writers and readers cannot drift",
                    lit.id
                ),
            ));
        }
    }
    out
}

/// Segment-wise glob: `*` matches one or more dotted segments, every
/// other segment must match exactly. Both sides match iff either
/// contains wildcards covering the other ("pattern" may itself be a
/// concrete name, in which case this is equality).
pub fn glob_match(pattern: &str, name: &str) -> bool {
    fn rec(pat: &[&str], name: &[&str]) -> bool {
        match (pat.first(), name.first()) {
            (None, None) => true,
            (Some(&"*"), Some(_)) => {
                // `*` eats one segment, then either stays or advances.
                rec(pat, &name[1..]) || rec(&pat[1..], &name[1..])
            }
            (Some(&p), Some(&n)) if p == n => rec(&pat[1..], &name[1..]),
            _ => false,
        }
    }
    let pat: Vec<&str> = pattern.split('.').collect();
    let segs: Vec<&str> = name.split('.').collect();
    rec(&pat, &segs)
}

/// Extract the canonical counter-name table from documentation text:
/// every backtick-quoted token whose `.`-separated segments are all
/// `[a-z0-9_]+` or `<placeholder>` (normalized to `*`), with at least
/// two segments.
pub fn documented_names(doc_text: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for chunk in doc_text.split('`').skip(1).step_by(2) {
        let normalized: String = chunk
            .split('.')
            .map(|seg| {
                if seg.starts_with('<') && seg.ends_with('>') && seg.len() > 2 {
                    "*"
                } else {
                    seg
                }
            })
            .collect::<Vec<_>>()
            .join(".");
        if crate::facts::is_counter_name(&normalized, true) {
            out.insert(normalized);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facts::{FileFacts, WorkspaceFacts};

    fn ws(src: &str) -> WorkspaceFacts {
        WorkspaceFacts::build(vec![FileFacts::parse("fixture", "test.rs", src, false)])
    }

    #[test]
    fn glob_semantics() {
        assert!(glob_match("pool.worker.*.tasks", "pool.worker.3.tasks"));
        assert!(glob_match("chaos.*.mpisim.*", "chaos.drop_heavy.mpisim.drops"));
        assert!(glob_match("a.b", "a.b"));
        assert!(!glob_match("a.b", "a.b.c"));
        assert!(!glob_match("a.*.c", "a.c"));
        // a pattern matches a pattern with identical shape
        assert!(glob_match("pool.worker.*.tasks", "pool.worker.*.tasks"));
    }

    #[test]
    fn consumed_never_emitted_is_an_error() {
        let src = "fn lib(r: &Registry, snap: &Snapshot) {\n\
                   r.add(\"serve.hits\", 1);\n\
                   snap.counter(\"serve.hits\");\n\
                   snap.counter(\"serve.queue.peak\");\n\
                   snap.counter(\"test.only.name\");\n\
                   }\n";
        let d = check_counters(&ws(src), &documented_names("`serve.hits` `serve.queue.peak`"));
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("serve.queue.peak"));
        assert!(d[0].message.contains("never emitted"));
        assert_eq!(d[0].line, 4);
    }

    #[test]
    fn wildcard_emission_satisfies_concrete_consumption() {
        let src = "fn lib(r: &Registry, snap: &Snapshot, i: usize) {\n\
                   r.add(&format!(\"pool.worker.{i}.tasks\"), 1);\n\
                   snap.counter(\"pool.worker.0.tasks\");\n\
                   }\n";
        let docs = documented_names("`pool.worker.<i>.tasks`");
        assert!(check_counters(&ws(src), &docs).is_empty());
    }

    #[test]
    fn undocumented_emission_is_a_warning_once() {
        let src = "fn lib(r: &Registry) {\n\
                   r.add(\"serve.undocumented\", 1);\n\
                   r.add(\"serve.undocumented\", 2);\n\
                   }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   fn t(r: &Registry) { r.add(\"only.in.tests\", 1); }\n\
                   }\n";
        let d = check_counters(&ws(src), &BTreeSet::new());
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].severity, crate::diag::Severity::Warning);
        assert!(d[0].message.contains("serve.undocumented"));
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn schema_literal_outside_registry_is_an_error() {
        let src = "fn f() { let s = \"pvs-bench/profile-v2\"; }\n";
        let d = check_schemas(&ws(src));
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("pvs_core::schema"));
    }

    #[test]
    fn the_registry_file_itself_is_exempt() {
        let ff = FileFacts::parse(
            "pvs-core",
            "crates/core/src/schema.rs",
            "pub const PROFILE_V2: &str = \"pvs-bench/profile-v2\";\n",
            false,
        );
        assert!(check_schemas(&WorkspaceFacts::build(vec![ff])).is_empty());
    }

    #[test]
    fn documented_names_parses_tables_and_placeholders() {
        let docs = documented_names(
            "| `engine.phases` | phases |\n\
             | `pool.worker.<i>.tasks` | per-worker |\n\
             | `chaos.<scenario>.mpisim.<counter>` | fault stats |\n\
             not `a` single `segment` or `Capitalized.Name`\n",
        );
        assert!(docs.contains("engine.phases"));
        assert!(docs.contains("pool.worker.*.tasks"));
        assert!(docs.contains("chaos.*.mpisim.*"));
        assert_eq!(docs.len(), 3, "{docs:?}");
    }
}
