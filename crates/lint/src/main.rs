//! The `pvs-lint` driver: walk the workspace, run every pass, report.
//!
//! ```text
//! cargo run -p pvs-lint              # human-readable findings
//! cargo run -p pvs-lint -- --json    # machine-readable report
//! cargo run -p pvs-lint -- --codes PVS013,PVS014   # filter by code
//! cargo run -p pvs-lint -- --explain PVS003
//! cargo run -p pvs-lint -- --root /path/to/checkout
//! ```
//!
//! Exit status: 0 when the tree is clean (warnings allowed), 1 when any
//! error-severity finding fired, 2 on usage errors.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use pvs_lint::diag::LintCode;
use pvs_lint::lint_workspace;

/// Print a line to stdout, tolerating a closed pipe (`pvs-lint | head`
/// must not panic mid-report).
fn out_line(line: &str) {
    let _ = writeln!(std::io::stdout(), "{line}");
}

/// Walk up from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

fn usage() -> &'static str {
    "usage: pvs-lint [--json] [--root DIR] [--codes PVS0xx,PVS0yy] [--explain PVS00N]\n\
     \n\
     Walks every workspace manifest, Rust source file, and registered\n\
     kernel descriptor, and reports invariant violations. --codes keeps\n\
     only the listed codes (comma-separated). Exit 0 when clean\n\
     (warnings allowed), 1 on errors, 2 on usage errors.\n\
     \n\
     Lint codes:"
}

fn print_code_table() {
    for code in LintCode::all() {
        eprintln!("  {} ({}): {}", code.as_str(), code.severity(), code.summary());
    }
}

fn main() -> ExitCode {
    let mut json = false;
    let mut root_arg: Option<PathBuf> = None;
    let mut explain: Option<String> = None;
    let mut codes: Option<Vec<LintCode>> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--codes" => match args.next() {
                Some(list) => {
                    let mut wanted = Vec::new();
                    for name in list.split(',').filter(|s| !s.is_empty()) {
                        match LintCode::parse(name.trim()) {
                            Some(code) => wanted.push(code),
                            None => {
                                eprintln!("pvs-lint: unknown lint code `{name}`; known codes:");
                                print_code_table();
                                return ExitCode::from(2);
                            }
                        }
                    }
                    codes = Some(wanted);
                }
                None => {
                    eprintln!("pvs-lint: --codes needs a comma-separated list\n\n{}", usage());
                    print_code_table();
                    return ExitCode::from(2);
                }
            },
            "--root" => match args.next() {
                Some(dir) => root_arg = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("pvs-lint: --root needs a directory\n\n{}", usage());
                    print_code_table();
                    return ExitCode::from(2);
                }
            },
            "--explain" => match args.next() {
                Some(code) => explain = Some(code),
                None => {
                    eprintln!("pvs-lint: --explain needs a lint code\n\n{}", usage());
                    print_code_table();
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("{}", usage());
                print_code_table();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("pvs-lint: unknown argument `{other}`\n\n{}", usage());
                print_code_table();
                return ExitCode::from(2);
            }
        }
    }

    if let Some(code_name) = explain {
        return match LintCode::parse(&code_name) {
            Some(code) => {
                out_line(code.explain());
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("pvs-lint: unknown lint code `{code_name}`; known codes:");
                print_code_table();
                ExitCode::from(2)
            }
        };
    }

    let root = match root_arg {
        Some(dir) => dir,
        None => {
            let cwd = std::env::current_dir().expect("current dir");
            match find_workspace_root(&cwd) {
                Some(dir) => dir,
                None => {
                    eprintln!(
                        "pvs-lint: no workspace Cargo.toml found above {} — pass --root",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    let mut report = lint_workspace(&root);
    if let Some(wanted) = &codes {
        report.diagnostics.retain(|d| wanted.contains(&d.code));
    }
    let (errors, warnings) = report.counts();

    if json {
        out_line(&report.to_json());
    } else {
        for d in &report.diagnostics {
            out_line(&d.render());
        }
        out_line(&format!(
            "pvs-lint: {} file(s) scanned, {} kernel descriptor(s) cross-checked: \
             {errors} error(s), {warnings} warning(s)",
            report.files_scanned, report.kernels_checked
        ));
    }

    if errors > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
