//! The lightweight line tokenizer behind every source lint.
//!
//! Lints must not fire on evidence inside comments or string literals (a
//! doc comment *mentioning* `Instant` is fine; code *calling* it is not),
//! so the scanner classifies every character of a file before any pass
//! runs. It is a single forward scan tracking Rust's lexical states:
//! line comments, (nested) block comments, string literals with escapes,
//! raw strings with arbitrary `#` fences, byte strings, char literals,
//! and the char-literal/lifetime ambiguity. Output is one
//! [`ScannedLine`] per physical source line, holding the line's *code*
//! (comments removed, literal contents blanked to spaces, delimiters
//! kept) and its *comment text* (for the `// SAFETY:` convention check).
//!
//! This is deliberately not a full lexer: it never tokenizes identifiers
//! or parses syntax. Every lint that builds on it is a heuristic over
//! code text, tuned to this workspace's idiom, with fixture goldens
//! pinning the exact behaviour.

/// One physical source line, split into code and comment channels.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScannedLine {
    /// The line with comments stripped and string/char-literal contents
    /// blanked to spaces. Column positions are preserved.
    pub code: String,
    /// The text of any comment on the line (without the `//`/`/*`
    /// markers), concatenated if there are several.
    pub comment: String,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    /// Nesting depth (Rust block comments nest).
    BlockComment(u32),
    /// Inside `"…"`.
    Str,
    /// Inside `r##"…"##` with the given fence length.
    RawStr(usize),
    /// Inside `'…'`.
    CharLit,
}

/// Scan a whole source file into per-line code/comment channels.
pub fn scan_source(text: &str) -> Vec<ScannedLine> {
    let chars: Vec<char> = text.chars().collect();
    let mut lines = Vec::new();
    let mut cur = ScannedLine::default();
    let mut state = State::Code;
    let mut i = 0;

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            lines.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    cur.code.push(' ');
                    cur.code.push(' ');
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    cur.code.push(' ');
                    cur.code.push(' ');
                    i += 2;
                } else if c == '"' {
                    state = State::Str;
                    cur.code.push('"');
                    i += 1;
                } else if let Some(fence) = raw_string_fence(&chars, i) {
                    // `r"…"`, `r#"…"#`, `br##"…"##` — skip past the
                    // opening quote; fence is the number of `#`s.
                    let open_len = raw_string_open_len(&chars, i);
                    for _ in 0..open_len {
                        cur.code.push('"');
                    }
                    state = State::RawStr(fence);
                    i += open_len;
                } else if c == '\'' {
                    if is_char_literal(&chars, i) {
                        state = State::CharLit;
                        cur.code.push('\'');
                        i += 1;
                    } else {
                        // A lifetime: keep the tick as code and move on.
                        cur.code.push('\'');
                        i += 1;
                    }
                } else {
                    cur.code.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    state = if depth > 1 {
                        State::BlockComment(depth - 1)
                    } else {
                        State::Code
                    };
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    cur.code.push(' ');
                    if chars.get(i + 1).is_some_and(|&e| e != '\n') {
                        cur.code.push(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == '"' {
                    cur.code.push('"');
                    state = State::Code;
                    i += 1;
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
            State::RawStr(fence) => {
                if c == '"' && closes_raw_string(&chars, i, fence) {
                    for _ in 0..=fence {
                        cur.code.push('"');
                    }
                    state = State::Code;
                    i += 1 + fence;
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
            State::CharLit => {
                if c == '\\' {
                    cur.code.push(' ');
                    if chars.get(i + 1).is_some_and(|&e| e != '\n') {
                        cur.code.push(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == '\'' {
                    cur.code.push('\'');
                    state = State::Code;
                    i += 1;
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
        }
    }
    if !cur.code.is_empty() || !cur.comment.is_empty() || state != State::Code {
        lines.push(cur);
    }
    lines
}

/// Is the `'` at `chars[i]` the start of a char literal (vs a lifetime)?
fn is_char_literal(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        // `'\n'`, `'\''`, `'\u{..}'` — escapes are always char literals.
        Some('\\') => true,
        // `'x'` — exactly one char then a closing tick.
        Some(_) => chars.get(i + 2) == Some(&'\''),
        None => false,
    }
}

/// If `chars[i]` starts a raw-string literal (`r"`, `r#"`, `br#"`, …),
/// return the fence length (number of `#`s); `None` otherwise.
fn raw_string_fence(chars: &[char], i: usize) -> Option<usize> {
    // Must not be the tail of an identifier (e.g. the `r` of `var`).
    if i > 0 {
        let prev = chars[i - 1];
        if prev.is_alphanumeric() || prev == '_' {
            return None;
        }
    }
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut fence = 0;
    while chars.get(j) == Some(&'#') {
        fence += 1;
        j += 1;
    }
    (chars.get(j) == Some(&'"')).then_some(fence)
}

/// Length of the raw-string opener starting at `chars[i]` (through the
/// opening quote). Only valid when [`raw_string_fence`] matched.
fn raw_string_open_len(chars: &[char], i: usize) -> usize {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    j += 1; // the `r`
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    j + 1 - i // through the `"`
}

/// Does the `"` at `chars[i]` close a raw string with this fence length?
fn closes_raw_string(chars: &[char], i: usize, fence: usize) -> bool {
    (1..=fence).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Word-boundary search: does `code` contain `word` as a whole
/// identifier-ish token (neighbours are not `[A-Za-z0-9_]`)?
pub fn has_word(code: &str, word: &str) -> bool {
    let bytes = code.as_bytes();
    let mut start = 0;
    while let Some(pos) = code[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let end = at + word.len();
        let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        start = at + 1;
    }
    false
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> Vec<String> {
        scan_source(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn line_comments_are_stripped() {
        let lines = scan_source("let x = 1; // Instant::now() here\nlet y = 2;\n");
        assert!(!lines[0].code.contains("Instant"));
        assert!(lines[0].comment.contains("Instant::now()"));
        assert!(lines[0].code.contains("let x = 1;"));
        assert_eq!(lines[1].code, "let y = 2;");
    }

    #[test]
    fn string_contents_are_blanked() {
        let lines = code_of("let s = \"Instant::now()\"; call();\n");
        assert!(!lines[0].contains("Instant"));
        assert!(lines[0].contains("call();"));
        // Delimiters survive so token boundaries stay put.
        assert_eq!(lines[0].matches('"').count(), 2);
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let lines = code_of(r#"let s = "a\"Instant"; use_it();"#);
        assert!(!lines[0].contains("Instant"));
        assert!(lines[0].contains("use_it();"));
    }

    #[test]
    fn raw_strings_with_fences() {
        let src = "let s = r#\"unsafe HashMap \"# ; after();\n";
        let lines = code_of(src);
        assert!(!lines[0].contains("unsafe"));
        assert!(!lines[0].contains("HashMap"));
        assert!(lines[0].contains("after();"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let src = "a(); /* outer /* inner */ still comment */ b();\nc /* open\nunsafe here\n*/ d();\n";
        let lines = scan_source(src);
        assert!(lines[0].code.contains("a();"));
        assert!(lines[0].code.contains("b();"));
        assert!(!lines[0].code.contains("inner"));
        assert!(lines[1].code.contains('c'));
        assert!(!lines[2].code.contains("unsafe"));
        assert!(lines[2].comment.contains("unsafe"));
        assert!(lines[3].code.contains("d();"));
    }

    #[test]
    fn deeply_nested_block_comments_track_depth_across_lines() {
        // Depth must survive multiple open/close transitions spanning
        // lines: /* /* /* ... */ */ keeps commenting until the third
        // close.
        let src = "a(); /* one /* two /* three\n\
                   still /* four */ three again\n\
                   */ two */ one */ b();\n\
                   c();\n";
        let lines = scan_source(src);
        assert!(lines[0].code.contains("a();"));
        assert!(!lines[0].code.contains("three"));
        assert!(!lines[1].code.contains("still"), "{:?}", lines[1].code);
        assert!(lines[1].comment.contains("four"));
        assert!(!lines[2].code.contains("two"), "{:?}", lines[2].code);
        assert!(lines[2].code.contains("b();"), "{:?}", lines[2].code);
        assert!(lines[3].code.contains("c();"));
    }

    #[test]
    fn inner_doc_comments_are_comments() {
        // `//!` and `/*!` are doc comments: their text must land in the
        // comment channel, never the code channel — an `unsafe` word in
        // a crate-level doc must not trip PVS004.
        let src = "//! crate docs mention unsafe here\n\
                   /*! inner block doc\nwith unsafe too */ f();\n\
                   /// outer doc with unsafe\n\
                   g();\n";
        let lines = scan_source(src);
        assert!(lines[0].code.trim().is_empty(), "{:?}", lines[0].code);
        assert!(lines[0].comment.contains("unsafe"));
        assert!(!lines[1].code.contains("inner"), "{:?}", lines[1].code);
        assert!(!lines[2].code.contains("unsafe"), "{:?}", lines[2].code);
        assert!(lines[2].code.contains("f();"));
        assert!(lines[3].code.trim().is_empty());
        assert!(lines[4].code.contains("g();"));
    }

    #[test]
    fn line_comment_inside_block_comment_does_not_end_it() {
        // A `//` inside a block comment must not switch state; the
        // block close on the next line still applies.
        let src = "/* block // line-ish\nstill comment */ h();\n";
        let lines = scan_source(src);
        assert!(!lines[0].code.contains("line"));
        assert!(!lines[1].code.contains("still"));
        assert!(lines[1].code.contains("h();"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lines = code_of("fn f<'a>(x: &'a str) -> &'a str { x }\n");
        assert!(lines[0].contains("str"));
        // A real char literal is blanked:
        let lines = code_of("let c = 'x'; let esc = '\\n'; g();\n");
        assert!(!lines[0].contains('x'));
        assert!(lines[0].contains("g();"));
    }

    #[test]
    fn word_boundaries() {
        assert!(has_word("Instant::now()", "Instant"));
        assert!(!has_word("MyInstantThing", "Instant"));
        assert!(!has_word("Instantaneous", "Instant"));
        assert!(has_word("x.recv()", "recv"));
        assert!(has_word("unsafe {", "unsafe"));
    }

    #[test]
    fn last_line_without_newline_is_kept() {
        let lines = scan_source("let x = 1;");
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0].code, "let x = 1;");
    }

    #[test]
    fn column_positions_are_preserved() {
        let src = "let s = \"abc\"; unsafe {}\n";
        let lines = code_of(src);
        let col = src.find("unsafe").unwrap();
        assert_eq!(&lines[0][col..col + 6], "unsafe");
    }
}
