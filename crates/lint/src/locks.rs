//! PVS013 — lock discipline over the workspace fact base.
//!
//! Three rules, all driven by [`crate::facts::WorkspaceFacts`]:
//!
//! 1. **Declaration**: every `Mutex` field or binding must carry a
//!    `// LOCK ORDER: <tier>` annotation. The annotation is the
//!    contract reviewers check hand-written lock code against; an
//!    unannotated lock has no place in the order and cannot be
//!    validated.
//! 2. **Order**: while a guard is held, only locks with a *strictly
//!    higher* tier may be acquired (directly or through any function
//!    the held region calls, resolved transitively). Equal tiers are
//!    inversions too: two same-tier locks taken in both orders deadlock
//!    just as surely. Independently of tiers, any cycle in the observed
//!    acquisition graph is reported — this catches deadlocks even when
//!    annotations are missing.
//! 3. **Hazards**: a guard held across a blocking operation (pool or
//!    thread dispatch, `catch_unwind`, channel send/receive, stream or
//!    filesystem I/O) serializes unrelated work behind the lock and is
//!    an error unless a `// LOCK OK:` comment within three lines
//!    justifies it.

use crate::diag::{Diagnostic, LintCode};
use crate::facts::WorkspaceFacts;
use std::collections::{BTreeMap, BTreeSet};

/// Run the PVS013 rules over a built fact base.
pub fn check(ws: &WorkspaceFacts) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // Rule 1: every lock is declared into the order.
    for lock in &ws.locks {
        if lock.tier.is_none() {
            out.push(Diagnostic::new(
                LintCode::Pvs013,
                lock.file.clone(),
                lock.line,
                format!(
                    "Mutex `{}` has no `// LOCK ORDER: <tier>` annotation; every lock \
                     must declare its place in the acquisition order",
                    lock.name
                ),
            ));
        }
    }

    let tiers: BTreeMap<&str, u32> = ws
        .locks
        .iter()
        .filter_map(|l| l.tier.map(|t| (l.id.as_str(), t)))
        .collect();

    // Rule 2a: tier monotonicity on every observed edge.
    for edge in &ws.edges {
        if edge.holder == edge.acquired {
            out.push(Diagnostic::new(
                LintCode::Pvs013,
                edge.file.clone(),
                edge.line,
                format!(
                    "lock `{}` re-acquired while already held — std::sync::Mutex is \
                     not reentrant, this self-deadlocks",
                    edge.holder
                ),
            ));
            continue;
        }
        let (Some(&hold), Some(&acq)) =
            (tiers.get(edge.holder.as_str()), tiers.get(edge.acquired.as_str()))
        else {
            continue; // missing tiers already reported by rule 1
        };
        if acq <= hold {
            out.push(Diagnostic::new(
                LintCode::Pvs013,
                edge.file.clone(),
                edge.line,
                format!(
                    "lock order inversion: `{}` (tier {acq}) acquired while holding \
                     `{}` (tier {hold}); acquisition tiers must strictly increase",
                    edge.acquired, edge.holder
                ),
            ));
        }
    }

    // Rule 2b: cycles in the observed graph (tier-independent).
    for cycle in find_cycles(ws) {
        let next = &cycle[1 % cycle.len()];
        let (file, line) = ws
            .edges
            .iter()
            .find(|e| e.holder == cycle[0] && e.acquired == *next)
            .map(|e| (e.file.clone(), e.line))
            .unwrap_or_default();
        out.push(Diagnostic::new(
            LintCode::Pvs013,
            file,
            line,
            format!(
                "acquisition-order cycle: {} -> {} — concurrent callers taking these \
                 locks in opposite orders deadlock",
                cycle.join(" -> "),
                cycle[0]
            ),
        ));
    }

    // Rule 3: guards held across blocking hazards.
    for site in &ws.hazard_sites {
        if site.justified {
            continue;
        }
        out.push(Diagnostic::new(
            LintCode::Pvs013,
            site.file.clone(),
            site.line,
            format!(
                "guard on `{}` held across {} — release the lock first, or justify \
                 with a `// LOCK OK:` comment",
                site.holders.join("`, `"),
                site.what
            ),
        ));
    }
    out
}

/// Elementary cycles in the dedup edge graph, canonicalized (rotated to
/// start at the lexicographically smallest node) so each cycle is
/// reported once regardless of discovery order.
fn find_cycles(ws: &WorkspaceFacts) -> Vec<Vec<String>> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for e in &ws.edges {
        if e.holder != e.acquired {
            adj.entry(e.holder.as_str()).or_default().push(e.acquired.as_str());
        }
    }
    let mut seen: BTreeSet<Vec<String>> = BTreeSet::new();
    let starts: Vec<&str> = adj.keys().copied().collect();
    for start in starts {
        let mut path = vec![start];
        dfs(start, &adj, &mut path, &mut seen);
    }
    seen.into_iter().collect()
}

fn dfs<'a>(
    node: &'a str,
    adj: &BTreeMap<&'a str, Vec<&'a str>>,
    path: &mut Vec<&'a str>,
    seen: &mut BTreeSet<Vec<String>>,
) {
    let Some(nexts) = adj.get(node) else { return };
    for &next in nexts {
        if let Some(pos) = path.iter().position(|&n| n == next) {
            let cycle = &path[pos..];
            let min = cycle
                .iter()
                .enumerate()
                .min_by_key(|(_, n)| **n)
                .map(|(i, _)| i)
                .unwrap_or(0);
            let canon: Vec<String> = (0..cycle.len())
                .map(|i| cycle[(min + i) % cycle.len()].to_string())
                .collect();
            seen.insert(canon);
        } else if path.len() < 16 {
            path.push(next);
            dfs(next, adj, path, seen);
            path.pop();
        }
    }
}

/// The observed lock-order graph as sorted `holder -> acquired` pairs —
/// exposed so tests can pin the real workspace's graph.
pub fn lock_graph(ws: &WorkspaceFacts) -> Vec<(String, String)> {
    let mut pairs: Vec<(String, String)> = ws
        .edges
        .iter()
        .map(|e| (e.holder.clone(), e.acquired.clone()))
        .collect();
    pairs.sort();
    pairs.dedup();
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facts::{FileFacts, WorkspaceFacts};

    fn ws(src: &str) -> WorkspaceFacts {
        WorkspaceFacts::build(vec![FileFacts::parse("fixture", "test.rs", src, false)])
    }

    #[test]
    fn missing_tier_is_reported() {
        let d = check(&ws("struct S { a: Mutex<u32> }\n"));
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("LOCK ORDER"));
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn correct_nesting_is_clean() {
        let src = "struct S {\n\
                   // LOCK ORDER: 10\n\
                   a: Mutex<u32>,\n\
                   // LOCK ORDER: 20\n\
                   b: Mutex<u32>,\n\
                   }\n\
                   fn f(s: &S) {\n\
                   let a = s.a.lock().unwrap();\n\
                   let b = s.b.lock().unwrap();\n\
                   }\n";
        assert!(check(&ws(src)).is_empty());
    }

    #[test]
    fn inversion_and_cycle_are_reported() {
        let src = "struct S {\n\
                   // LOCK ORDER: 10\n\
                   a: Mutex<u32>,\n\
                   // LOCK ORDER: 20\n\
                   b: Mutex<u32>,\n\
                   }\n\
                   fn fwd(s: &S) {\n\
                   let a = s.a.lock().unwrap();\n\
                   let b = s.b.lock().unwrap();\n\
                   }\n\
                   fn rev(s: &S) {\n\
                   let b = s.b.lock().unwrap();\n\
                   let a = s.a.lock().unwrap();\n\
                   }\n";
        let d = check(&ws(src));
        let msgs: Vec<&str> = d.iter().map(|d| d.message.as_str()).collect();
        assert!(
            msgs.iter().any(|m| m.contains("inversion")),
            "{msgs:?}"
        );
        assert!(msgs.iter().any(|m| m.contains("cycle")), "{msgs:?}");
    }

    #[test]
    fn reentrant_acquisition_is_reported() {
        let src = "struct S {\n\
                   // LOCK ORDER: 10\n\
                   a: Mutex<u32>,\n\
                   }\n\
                   fn f(s: &S) {\n\
                   let g = s.a.lock().unwrap();\n\
                   let h = s.a.lock().unwrap();\n\
                   }\n";
        let d = check(&ws(src));
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("not reentrant"));
    }

    #[test]
    fn graph_is_sorted_and_deduped() {
        let src = "struct S {\n\
                   // LOCK ORDER: 10\n\
                   a: Mutex<u32>,\n\
                   // LOCK ORDER: 20\n\
                   b: Mutex<u32>,\n\
                   }\n\
                   fn f(s: &S) {\n\
                   let a = s.a.lock().unwrap();\n\
                   let b = s.b.lock().unwrap();\n\
                   }\n\
                   fn g(s: &S) {\n\
                   let a = s.a.lock().unwrap();\n\
                   let b = s.b.lock().unwrap();\n\
                   }\n";
        assert_eq!(
            lock_graph(&ws(src)),
            vec![("fixture.a".to_string(), "fixture.b".to_string())]
        );
    }
}
