//! The diagnostic engine: lint codes, severities, spans, and rendering.
//!
//! Every finding is a [`Diagnostic`]: a stable code (`PVS001..`), a
//! severity, a repo-relative `file:line` span, and a one-line message.
//! Output is deliberately boring and stable — sorted, plain text, one
//! finding per line — so goldens and CI greps stay byte-reproducible; a
//! machine-readable JSON form rides along for tooling.

use pvs_report::json::{array, JsonObject};
use std::fmt;

/// How bad a finding is. Only errors fail the build (nonzero driver exit,
/// tier-1 `lint_clean` test); warnings are advisories (e.g. the
/// short-vector kernel note PVS010).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory: printed, never fails the run.
    Warning,
    /// Invariant violation: nonzero exit, tier-1 failure.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// The stable lint-code namespace. Codes are never reused or renumbered;
/// retired lints keep their number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LintCode {
    /// External dependency declared in a workspace manifest.
    Pvs001,
    /// `Cargo.lock` resolves a package from a registry source.
    Pvs002,
    /// Wall-clock time source outside the bench harness.
    Pvs003,
    /// `unsafe` without an adjacent `// SAFETY:` comment.
    Pvs004,
    /// Iteration over an unordered hash container.
    Pvs005,
    /// Floating-point accumulation over an unordered source.
    Pvs006,
    /// Blanket lint-suppression escape hatch.
    Pvs007,
    /// Kernel descriptor: static AVL prediction diverges from the
    /// dynamic model.
    Pvs008,
    /// Kernel descriptor: static VOR prediction diverges from the
    /// dynamic model.
    Pvs009,
    /// Kernel descriptor: predicted AVL below half the hardware vector
    /// length (short-vector advisory).
    Pvs010,
    /// Recorder counter/gauge name literal is not lowercase
    /// `snake.dotted`.
    Pvs011,
    /// `unwrap()`/`expect()` on a `Result` in simulator library code.
    Pvs012,
    /// Lock discipline: undeclared `Mutex`, acquisition-order inversion
    /// or cycle, or a guard held across a blocking hazard.
    Pvs013,
    /// Counter registry: consumed-but-never-emitted recorder name
    /// (error) or emitted-but-undocumented name (warning).
    Pvs014,
    /// Schema registry: a canonical schema version string spelled as a
    /// literal outside `pvs_core::schema`.
    Pvs015,
}

impl LintCode {
    /// Every code, in numeric order.
    pub fn all() -> [LintCode; 15] {
        [
            LintCode::Pvs001,
            LintCode::Pvs002,
            LintCode::Pvs003,
            LintCode::Pvs004,
            LintCode::Pvs005,
            LintCode::Pvs006,
            LintCode::Pvs007,
            LintCode::Pvs008,
            LintCode::Pvs009,
            LintCode::Pvs010,
            LintCode::Pvs011,
            LintCode::Pvs012,
            LintCode::Pvs013,
            LintCode::Pvs014,
            LintCode::Pvs015,
        ]
    }

    /// The stable printed form ("PVS003").
    pub fn as_str(&self) -> &'static str {
        match self {
            LintCode::Pvs001 => "PVS001",
            LintCode::Pvs002 => "PVS002",
            LintCode::Pvs003 => "PVS003",
            LintCode::Pvs004 => "PVS004",
            LintCode::Pvs005 => "PVS005",
            LintCode::Pvs006 => "PVS006",
            LintCode::Pvs007 => "PVS007",
            LintCode::Pvs008 => "PVS008",
            LintCode::Pvs009 => "PVS009",
            LintCode::Pvs010 => "PVS010",
            LintCode::Pvs011 => "PVS011",
            LintCode::Pvs012 => "PVS012",
            LintCode::Pvs013 => "PVS013",
            LintCode::Pvs014 => "PVS014",
            LintCode::Pvs015 => "PVS015",
        }
    }

    /// Parse a user-supplied code name (case-insensitive).
    pub fn parse(s: &str) -> Option<LintCode> {
        let upper = s.to_ascii_uppercase();
        LintCode::all().into_iter().find(|c| c.as_str() == upper)
    }

    /// The default severity findings of this code carry.
    pub fn severity(&self) -> Severity {
        match self {
            LintCode::Pvs010 => Severity::Warning,
            _ => Severity::Error,
        }
    }

    /// One-line summary (the lint-code table row).
    pub fn summary(&self) -> &'static str {
        match self {
            LintCode::Pvs001 => "external dependency declared in a workspace manifest",
            LintCode::Pvs002 => "Cargo.lock resolves a package from a registry source",
            LintCode::Pvs003 => "wall-clock time source outside the exempt bench/serve-edge surface",
            LintCode::Pvs004 => "`unsafe` without an adjacent `// SAFETY:` comment",
            LintCode::Pvs005 => "iteration over an unordered hash container",
            LintCode::Pvs006 => "floating-point accumulation over an unordered source",
            LintCode::Pvs007 => "blanket lint-suppression escape hatch",
            LintCode::Pvs008 => "kernel static AVL prediction diverges from the dynamic model",
            LintCode::Pvs009 => "kernel static VOR prediction diverges from the dynamic model",
            LintCode::Pvs010 => "kernel predicted AVL below half the hardware vector length",
            LintCode::Pvs011 => "recorder counter name literal is not lowercase `snake.dotted`",
            LintCode::Pvs012 => "`unwrap()`/`expect()` on a Result in simulator library code",
            LintCode::Pvs013 => "lock discipline: undeclared Mutex, order inversion/cycle, or guard held across a blocking hazard",
            LintCode::Pvs014 => "counter registry: consumed-but-never-emitted (error) or emitted-but-undocumented (warning) recorder name",
            LintCode::Pvs015 => "schema registry: canonical version string spelled outside `pvs_core::schema`",
        }
    }

    /// The long-form `--explain` text: what the lint enforces and why the
    /// invariant exists in this repository.
    pub fn explain(&self) -> &'static str {
        match self {
            LintCode::Pvs001 => {
                "PVS001: external dependency declared in a workspace manifest.\n\
                 \n\
                 The workspace must build with no network and no registry cache,\n\
                 so every dependency (normal, dev, or build) has to be an in-tree\n\
                 `pvs-*` path crate. Cargo resolves *declared* dependencies into\n\
                 Cargo.lock even when they are never compiled, so the only safe\n\
                 state is \"not declared at all\". This lint parses every\n\
                 dependency section of every manifest and flags any entry that is\n\
                 not a `pvs-*` path dependency, and any `pvs-*` entry pinned by a\n\
                 registry version instead of a path."
            }
            LintCode::Pvs002 => {
                "PVS002: Cargo.lock resolves a package from a registry source.\n\
                 \n\
                 A `source =` line in Cargo.lock means some package would be\n\
                 fetched from a registry or git remote at build time, breaking the\n\
                 offline build. The lockfile must contain only the workspace's own\n\
                 `pvs`/`pvs-*` path packages."
            }
            LintCode::Pvs003 => {
                "PVS003: wall-clock time source outside the exempt surface.\n\
                 \n\
                 Every table, figure, and sweep in this repository must be\n\
                 byte-identical across runs and across worker counts. Reading\n\
                 wall-clock time (`std::time::Instant`, `std::time::SystemTime`)\n\
                 anywhere in model or application code would let nondeterminism\n\
                 leak into results. Host timing is allowed in exactly two\n\
                 places: `pvs-bench` (the harness measures the host, not the\n\
                 model) and `crates/serve/src/server.rs` (the serving layer's\n\
                 process edge: idle timeouts and service-time accounting). The\n\
                 rest of `pvs-serve` stays clock-free so cached responses are\n\
                 pure functions of the request."
            }
            LintCode::Pvs004 => {
                "PVS004: `unsafe` without an adjacent `// SAFETY:` comment.\n\
                 \n\
                 The workspace is currently 100% safe Rust. If an `unsafe` block\n\
                 or function ever becomes necessary (e.g. a vectorized hot loop),\n\
                 the invariant it relies on must be written down in a `// SAFETY:`\n\
                 comment on the same line or within the three lines above, the\n\
                 same convention the standard library uses."
            }
            LintCode::Pvs005 => {
                "PVS005: iteration over an unordered hash container.\n\
                 \n\
                 `HashMap`/`HashSet` iteration order is randomized per process.\n\
                 Any such iteration that feeds rendered tables, figures, or\n\
                 report output breaks byte-identical regeneration. Iterate a\n\
                 `BTreeMap`/`BTreeSet`, or sort the keys first. The lint tracks\n\
                 bindings declared with a hash type in each file and flags\n\
                 `for .. in`, `.iter()`, `.keys()`, `.values()`, `.drain()`, and\n\
                 `.into_iter()` over them."
            }
            LintCode::Pvs006 => {
                "PVS006: floating-point accumulation over an unordered source.\n\
                 \n\
                 Float addition is not associative: accumulating (`+=`) inside a\n\
                 loop whose iteration order is nondeterministic — a channel\n\
                 receive loop (`.recv()`, `.try_iter()`) or a hash-container\n\
                 walk — produces run-to-run different low bits, which the\n\
                 byte-identical sweep guarantee (tests/parallel_sweep.rs) will\n\
                 eventually catch far from the cause. Collect into a Vec in a\n\
                 deterministic order (e.g. indexed by worker id) and reduce\n\
                 serially, as `pvs_core::pool::ThreadPool::map` does."
            }
            LintCode::Pvs007 => {
                "PVS007: blanket lint-suppression escape hatch.\n\
                 \n\
                 `cargo build --release` is warning-clean and must stay that way\n\
                 honestly: a broad `#[allow(..)]`/`#[expect(..)]` of `warnings`,\n\
                 `unused`, `dead_code`, or `clippy::all`-style groups hides real\n\
                 defects wholesale. Narrow, named allows (e.g.\n\
                 `clippy::needless_range_loop` in index-heavy kernels) remain\n\
                 fine; whole-category suppression is not."
            }
            LintCode::Pvs008 => {
                "PVS008: kernel static AVL prediction diverges from the dynamic model.\n\
                 \n\
                 Every registered kernel descriptor carries enough static\n\
                 information to predict its average vector length from\n\
                 strip-mining arithmetic alone, the way the ES and X1 compiler\n\
                 listing files did. The dynamic pipeline model must agree within\n\
                 5% (the paper's listing-vs-hardware-counter cross-check). A\n\
                 divergence means a descriptor mis-declares its loop, or the\n\
                 static and dynamic derivations drifted apart."
            }
            LintCode::Pvs009 => {
                "PVS009: kernel static VOR prediction diverges from the dynamic model.\n\
                 \n\
                 A vectorizable descriptor predicts a vector operation ratio of\n\
                 1.0; a scalar one 0.0. The dynamic model's operation accounting\n\
                 must reproduce that within 5 percentage points. See PVS008 for\n\
                 the rationale."
            }
            LintCode::Pvs010 => {
                "PVS010: kernel predicted AVL below half the hardware vector length\n\
                 (warning).\n\
                 \n\
                 Short vector lengths cannot amortize instruction startup: the\n\
                 paper's Cactus discussion shows an 80-point x-dimension costing\n\
                 the ES most of its advantage (AVL ~80 of 256). This advisory\n\
                 marks registered kernels whose predicted AVL is under max_vl/2 so\n\
                 the workload shape (or the descriptor) gets a second look. It\n\
                 never fails the build."
            }
            LintCode::Pvs011 => {
                "PVS011: recorder counter name literal is not lowercase `snake.dotted`.\n\
                 \n\
                 Every counter and gauge name handed to the observability\n\
                 Recorder (`add`, `gauge_set`, `gauge_max`, `add_many`, the\n\
                 engine's `entries.push((..))` batch idiom) forms one shared\n\
                 namespace that analysis code (`pvs-analyze`), baselines\n\
                 (BENCH_sweep.json), and the regression sentinel all join on.\n\
                 A stray `QueueDepth` or single-word `flops` silently forks\n\
                 that namespace. Literal names must be lowercase dotted paths\n\
                 (`engine.loop.cycles`, `netsim.bisection_bytes`): at least\n\
                 two segments of `[a-z0-9_]+` separated by dots. Dynamically\n\
                 built names (`format!`) are not checked."
            }
            LintCode::Pvs012 => {
                "PVS012: `unwrap()`/`expect()` on a Result in simulator library code.\n\
                 \n\
                 The fault-injection layer (`pvs-fault`, `pvs_mpisim::fault`,\n\
                 `Adversity`) deliberately drives the simulators into degraded\n\
                 states, so an \"impossible\" error in simulator library code is\n\
                 now an input, not a bug — a stray `.unwrap()` turns a modelled\n\
                 fault into a process abort. In the simulator crates (core,\n\
                 memsim, netsim, vectorsim, mpisim, obs, fault), library code\n\
                 must handle Result errors or justify the infallibility with a\n\
                 `// INFALLIBLE:` comment on the same line or the three lines\n\
                 above. Test code (`#[cfg(test)]` modules, integration tests)\n\
                 and build scripts are exempt, and Option `unwrap`/`expect` is\n\
                 out of scope. The pass is heuristic: it fires only when the\n\
                 call chain ends in a known Result-producing call (`lock()`,\n\
                 `recv()`, `send(..)`, `join()`, `wait(..)`, `spawn(..)`,\n\
                 `parse()`, ...), so it cannot misfire on Option accessors."
            }
            LintCode::Pvs013 => {
                "PVS013: lock discipline across the workspace's Mutex population.\n\
                 \n\
                 The serving layer nests locks (serve's flight map holds its\n\
                 guard while touching a cache shard and the obs registry), so\n\
                 deadlock-freedom is now a whole-program property, not a\n\
                 per-file one. The lint's cross-file fact base records every\n\
                 `Mutex` declaration, tracks guard liveness through each\n\
                 function, and resolves calls made while a guard is held to\n\
                 the locks those callees may acquire. Four rules:\n\
                 \n\
                 * every `Mutex` field or binding must declare its place in\n\
                   the acquisition order with a `// LOCK ORDER: <tier>`\n\
                   comment (same line or the three lines above);\n\
                 * while holding a lock, only locks with a *strictly higher*\n\
                   tier may be acquired — an inversion is a lock-order cycle\n\
                   waiting for its second thread;\n\
                 * the observed acquisition graph must be acyclic;\n\
                 * a held guard must not cross a blocking hazard — pool\n\
                   dispatch (`spawn`), `catch_unwind`, a channel send/recv,\n\
                   or file/TCP I/O — unless a `// LOCK OK:` comment justifies\n\
                   it. Condvar waits are exempt: waiting releases the guard.\n\
                 \n\
                 The pass is heuristic (guard liveness is brace-scoped, call\n\
                 resolution is by name with common std method names excluded)\n\
                 and false-positive lean; the real serve/obs/pool graph is\n\
                 pinned by unit tests."
            }
            LintCode::Pvs014 => {
                "PVS014: the counter-name registry must stay closed.\n\
                 \n\
                 Recorder names (`serve.cache.hits`, `pool.tasks_executed`,\n\
                 ...) form one namespace that emitters (engine, pool, serve),\n\
                 consumers (pvs-analyze, the stats endpoint, tests), the\n\
                 committed baselines, and the README counter table all join\n\
                 on — and the join is stringly typed, so a renamed or\n\
                 misspelled name fails silently as a zero. The fact base\n\
                 collects every name literal written to a Recorder (including\n\
                 `add_many` batches, `entries.push((..))`, `record_to` tuple\n\
                 arrays, and `format!` templates, which match as wildcard\n\
                 patterns) and every name read back (`.counter(\"..\")`,\n\
                 `.gauge(\"..\")`). A name consumed by non-test code that no\n\
                 emitter can produce is an error; a name emitted by library\n\
                 code but absent from the README's counter table is a\n\
                 warning. Names under the `test.` prefix and single-segment\n\
                 names are out of scope."
            }
            LintCode::Pvs015 => {
                "PVS015: schema version strings come from `pvs_core::schema`.\n\
                 \n\
                 Every on-disk format in the workspace is versioned by a\n\
                 leading schema identifier (`pvs-bench/profile-v2`,\n\
                 `pvs-core/checkpoint-v1`, ...). Writer and reader must agree\n\
                 on the exact bytes, so each identifier has one canonical\n\
                 spelling: a const in `pvs_core::schema`. Any other file that\n\
                 spells a registered identifier as a string literal (exact\n\
                 match, outside `#[cfg(test)]` regions) is one silent\n\
                 version-bump away from writer/reader drift — reference the\n\
                 const instead. Prose mentions in comments and doc strings\n\
                 are fine; deliberately-unknown versions in tests\n\
                 (`profile-v99`) never match."
            }
        }
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Which lint fired.
    pub code: LintCode,
    /// Error or warning.
    pub severity: Severity,
    /// Repo-relative path of the offending file (or registry provenance
    /// for model lints).
    pub file: String,
    /// 1-based line number; 0 means the finding is file-scoped.
    pub line: usize,
    /// One-line description with the concrete evidence.
    pub message: String,
}

impl Diagnostic {
    /// Build a finding at the code's default severity.
    pub fn new(code: LintCode, file: impl Into<String>, line: usize, message: String) -> Self {
        Diagnostic {
            severity: code.severity(),
            code,
            file: file.into(),
            line,
            message,
        }
    }

    /// Build an advisory finding regardless of the code's default
    /// severity (PVS014's emitted-but-undocumented arm).
    pub fn warning(code: LintCode, file: impl Into<String>, line: usize, message: String) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            code,
            file: file.into(),
            line,
            message,
        }
    }

    /// Stable single-line rendering: `file:line: severity[CODE]: message`
    /// (the `:line` span is omitted for file-scoped findings).
    pub fn render(&self) -> String {
        if self.line == 0 {
            format!("{}: {}[{}]: {}", self.file, self.severity, self.code, self.message)
        } else {
            format!(
                "{}:{}: {}[{}]: {}",
                self.file, self.line, self.severity, self.code, self.message
            )
        }
    }

    /// Rendering without the file path — the golden-fixture form, so
    /// goldens do not embed absolute paths.
    pub fn render_spanless(&self) -> String {
        format!(
            "{}: {}[{}]: {}",
            self.line, self.severity, self.code, self.message
        )
    }

    /// Machine-readable JSON object.
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .string("code", self.code.as_str())
            .string("severity", &self.severity.to_string())
            .string("file", &self.file)
            .number("line", self.line as f64)
            .string("message", &self.message)
            .render()
    }
}

/// Sort diagnostics into the stable output order: file, then line, then
/// code, then message.
pub fn sort_diagnostics(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (&a.file, a.line, a.code, &a.message).cmp(&(&b.file, b.line, b.code, &b.message))
    });
}

/// Render a full report (diagnostics plus counters) as one JSON object.
pub fn report_json(diags: &[Diagnostic], files_scanned: usize, kernels_checked: usize) -> String {
    let (errors, warnings) = count(diags);
    JsonObject::new()
        .number("files_scanned", files_scanned as f64)
        .number("kernels_checked", kernels_checked as f64)
        .number("errors", errors as f64)
        .number("warnings", warnings as f64)
        .raw("diagnostics", array(diags.iter().map(|d| d.to_json())))
        .render()
}

/// Count `(errors, warnings)`.
pub fn count(diags: &[Diagnostic]) -> (usize, usize) {
    let errors = diags.iter().filter(|d| d.severity == Severity::Error).count();
    (errors, diags.len() - errors)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip_and_explain() {
        for code in LintCode::all() {
            assert_eq!(LintCode::parse(code.as_str()), Some(code));
            assert_eq!(LintCode::parse(&code.as_str().to_lowercase()), Some(code));
            assert!(code.explain().starts_with(code.as_str()));
            assert!(!code.summary().is_empty());
        }
        assert_eq!(LintCode::parse("PVS999"), None);
    }

    #[test]
    fn rendering_is_stable() {
        let d = Diagnostic::new(
            LintCode::Pvs003,
            "crates/x/src/a.rs",
            12,
            "found `Instant`".to_string(),
        );
        assert_eq!(
            d.render(),
            "crates/x/src/a.rs:12: error[PVS003]: found `Instant`"
        );
        assert_eq!(d.render_spanless(), "12: error[PVS003]: found `Instant`");
        let file_scoped = Diagnostic::new(LintCode::Pvs008, "reg", 0, "m".to_string());
        assert_eq!(file_scoped.render(), "reg: error[PVS008]: m");
    }

    #[test]
    fn sort_is_total_and_stable() {
        let mut ds = vec![
            Diagnostic::new(LintCode::Pvs005, "b.rs", 1, "x".into()),
            Diagnostic::new(LintCode::Pvs003, "a.rs", 9, "x".into()),
            Diagnostic::new(LintCode::Pvs003, "a.rs", 2, "x".into()),
        ];
        sort_diagnostics(&mut ds);
        assert_eq!(
            ds.iter().map(|d| (d.file.clone(), d.line)).collect::<Vec<_>>(),
            vec![("a.rs".into(), 2), ("a.rs".into(), 9), ("b.rs".into(), 1)]
        );
    }

    #[test]
    fn json_shape() {
        let ds = vec![Diagnostic::new(LintCode::Pvs001, "Cargo.toml", 3, "rand".into())];
        let json = report_json(&ds, 10, 4);
        assert!(json.contains("\"errors\":1"));
        assert!(json.contains("\"warnings\":0"));
        assert!(json.contains("\"code\":\"PVS001\""));
        assert!(json.contains("\"files_scanned\":10"));
    }

    #[test]
    fn only_pvs010_is_a_warning() {
        for code in LintCode::all() {
            let expect = if code == LintCode::Pvs010 {
                Severity::Warning
            } else {
                Severity::Error
            };
            assert_eq!(code.severity(), expect, "{code}");
        }
    }
}
