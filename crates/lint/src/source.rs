//! Invariant lints over scanned source files (PVS003–PVS007, PVS011,
//! PVS012).
//!
//! Each pass is a heuristic over the comment/string-stripped code channel
//! of [`crate::scan`], tuned to this workspace's idiom and pinned by the
//! golden fixtures in `fixtures/`. False-negative-averse, false-positive
//! lean: when a pass cannot decide statically it stays silent, because a
//! lint that cries wolf gets `allow`ed — and PVS007 exists precisely to
//! keep that from happening wholesale.

use crate::diag::{Diagnostic, LintCode};
use crate::scan::{has_word, scan_source, ScannedLine};

/// Where a source file came from, for pass gating and spans.
#[derive(Debug, Clone, Copy)]
pub struct SourceContext<'a> {
    /// Crate the file belongs to ("core", "bench", …; "pvs" for the
    /// facade crate's own `src/`).
    pub crate_name: &'a str,
    /// Repo-relative path used in diagnostics.
    pub path: &'a str,
}

/// Run every source pass over one file.
pub fn check_source(ctx: SourceContext<'_>, text: &str) -> Vec<Diagnostic> {
    let lines = scan_source(text);
    let mut out = Vec::new();
    pass_time_sources(&ctx, &lines, &mut out);
    pass_unsafe_safety(&ctx, &lines, &mut out);
    let hash_vars = collect_hash_bindings(&lines);
    pass_hash_iteration(&ctx, &lines, &hash_vars, &mut out);
    pass_unordered_accumulation(&ctx, &lines, &hash_vars, &mut out);
    pass_allow_escape_hatches(&ctx, &lines, &mut out);
    let raw_lines: Vec<&str> = text.lines().collect();
    pass_counter_names(&ctx, &raw_lines, &lines, &mut out);
    pass_result_unwraps(&ctx, &lines, &mut out);
    out
}

/// Where PVS003 permits host wall-clock access. The exemption is scoped
/// as tightly as the architecture allows:
///
/// * crate `bench` — the harness exists to time the host;
/// * `crates/serve/src/server.rs` — the serving layer's process edge,
///   where idle timeouts and service-time accounting are host concerns
///   by definition. The rest of `pvs-serve` (key canonicalization,
///   cache, single-flight batching) stays clock-free and enforced, so
///   cached responses remain pure functions of the request.
const WALL_CLOCK_EXEMPT_PATHS: [&str; 1] = ["crates/serve/src/server.rs"];

fn wall_clock_exempt(ctx: &SourceContext<'_>) -> bool {
    ctx.crate_name == "bench" || WALL_CLOCK_EXEMPT_PATHS.contains(&ctx.path)
}

/// PVS003: wall-clock time sources outside the exempt surface (see
/// [`WALL_CLOCK_EXEMPT_PATHS`]). The bench harness times the *host*;
/// everything else models machines and must be a pure function of its
/// inputs.
fn pass_time_sources(ctx: &SourceContext<'_>, lines: &[ScannedLine], out: &mut Vec<Diagnostic>) {
    if wall_clock_exempt(ctx) {
        return;
    }
    for (idx, line) in lines.iter().enumerate() {
        for token in ["Instant", "SystemTime"] {
            if has_word(&line.code, token) {
                out.push(Diagnostic::new(
                    LintCode::Pvs003,
                    ctx.path,
                    idx + 1,
                    format!(
                        "`{token}` used outside the wall-clock-exempt surface \
                         (pvs-bench, the serve server edge) — model and application \
                         code must be wall-clock free for byte-identical output"
                    ),
                ));
            }
        }
        // Whole-module or glob imports would hide `time::Instant` from
        // the word checks above. `std::time::Duration` (a pure value
        // type) stays legal everywhere.
        let hides_clock = line.code.contains("std::time::*")
            || line.code.contains("use std::time;")
            || line.code.contains("use core::time;");
        if hides_clock
            && !has_word(&line.code, "Instant")
            && !has_word(&line.code, "SystemTime")
        {
            out.push(Diagnostic::new(
                LintCode::Pvs003,
                ctx.path,
                idx + 1,
                "`std::time` imported wholesale outside the wall-clock-exempt \
                 surface — import the specific items needed (`Duration` is \
                 fine; clock types are not)"
                    .to_string(),
            ));
        }
    }
}

/// How many lines above an `unsafe` token a `// SAFETY:` comment may sit.
const SAFETY_COMMENT_WINDOW: usize = 3;

/// PVS004: every `unsafe` keyword needs a `SAFETY:` comment on the same
/// line or within the [`SAFETY_COMMENT_WINDOW`] lines above it.
fn pass_unsafe_safety(ctx: &SourceContext<'_>, lines: &[ScannedLine], out: &mut Vec<Diagnostic>) {
    for (idx, line) in lines.iter().enumerate() {
        if !has_word(&line.code, "unsafe") {
            continue;
        }
        let window_start = idx.saturating_sub(SAFETY_COMMENT_WINDOW);
        let documented = lines[window_start..=idx]
            .iter()
            .any(|l| l.comment.contains("SAFETY:"));
        if !documented {
            out.push(Diagnostic::new(
                LintCode::Pvs004,
                ctx.path,
                idx + 1,
                format!(
                    "`unsafe` without a `// SAFETY:` comment on the same line or \
                     the {SAFETY_COMMENT_WINDOW} lines above it"
                ),
            ));
        }
    }
}

/// Bindings declared with a hash-container type anywhere in the file:
/// `let [mut] name` on a line that mentions `HashMap`/`HashSet`.
fn collect_hash_bindings(lines: &[ScannedLine]) -> Vec<String> {
    let mut vars = Vec::new();
    for line in lines {
        let code = &line.code;
        if !has_word(code, "HashMap") && !has_word(code, "HashSet") {
            continue;
        }
        let Some(let_pos) = find_word(code, "let") else {
            continue;
        };
        let rest = code[let_pos + 3..].trim_start();
        let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
        let name: String = rest
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if !name.is_empty() && !vars.contains(&name) {
            vars.push(name);
        }
    }
    vars
}

/// Position of `word` in `code` at an identifier boundary.
fn find_word(code: &str, word: &str) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut start = 0;
    while let Some(pos) = code[start..].find(word) {
        let at = start + pos;
        let end = at + word.len();
        let before_ok = at == 0 || !bytes[at - 1].is_ascii_alphanumeric() && bytes[at - 1] != b'_';
        let after_ok = end >= bytes.len() || !bytes[end].is_ascii_alphanumeric() && bytes[end] != b'_';
        if before_ok && after_ok {
            return Some(at);
        }
        start = at + 1;
    }
    None
}

/// The iteration forms PVS005 flags on a hash-typed binding.
const ITERATION_METHODS: [&str; 7] = [
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".drain(",
    ".into_iter()",
];

/// Does this line iterate the named hash binding?
fn iterates_hash_var(code: &str, name: &str) -> bool {
    for method in ITERATION_METHODS {
        let needle = format!("{name}{method}");
        if code.contains(&needle) && word_before(code, &needle) {
            return true;
        }
    }
    // `for x in name {` / `for x in &name {` / `.. in name.method() ..`
    if let Some(in_pos) = find_word(code, "in") {
        let tail = code[in_pos + 2..].trim_start();
        let tail = tail.trim_start_matches(['&', '*']).trim_start_matches("mut ");
        let ident: String = tail
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if ident == name {
            return true;
        }
    }
    false
}

/// Is the needle's first identifier not a suffix of a longer identifier?
fn word_before(code: &str, needle: &str) -> bool {
    code.find(needle).is_some_and(|at| {
        at == 0 || {
            let b = code.as_bytes()[at - 1];
            !b.is_ascii_alphanumeric() && b != b'_'
        }
    })
}

/// PVS005: iteration over an unordered hash container. Hash iteration
/// order is randomized per process; anything it feeds — rendered tables,
/// figures, accumulated floats — loses byte-identical reproducibility.
fn pass_hash_iteration(
    ctx: &SourceContext<'_>,
    lines: &[ScannedLine],
    hash_vars: &[String],
    out: &mut Vec<Diagnostic>,
) {
    for (idx, line) in lines.iter().enumerate() {
        for name in hash_vars {
            if iterates_hash_var(&line.code, name) {
                out.push(Diagnostic::new(
                    LintCode::Pvs005,
                    ctx.path,
                    idx + 1,
                    format!(
                        "iteration over unordered hash container `{name}` — use a \
                         BTree container or sort first (hash order is \
                         per-process random)"
                    ),
                ));
                break;
            }
        }
    }
}

/// The unordered-source loop headers PVS006 tracks: channel receives and
/// hash-container walks.
fn is_unordered_loop_header(code: &str, hash_vars: &[String]) -> bool {
    let channel_source = [".recv()", ".try_recv()", ".try_iter()", ".recv_timeout("]
        .iter()
        .any(|m| code.contains(m));
    let for_loop = has_word(code, "for") && has_word(code, "in");
    let while_let = code.contains("while let");
    if (for_loop || while_let) && channel_source {
        return true;
    }
    for_loop && hash_vars.iter().any(|name| iterates_hash_var(code, name))
}

/// PVS006: floating-point accumulation inside a loop whose iteration
/// order is nondeterministic. Float addition is not associative, so the
/// sum's low bits differ run to run — exactly what the byte-identical
/// sweep guarantee forbids. Tracks brace depth to know when the loop
/// body ends.
fn pass_unordered_accumulation(
    ctx: &SourceContext<'_>,
    lines: &[ScannedLine],
    hash_vars: &[String],
    out: &mut Vec<Diagnostic>,
) {
    let mut depth: i64 = 0;
    let mut regions: Vec<i64> = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let code = &line.code;
        let header = is_unordered_loop_header(code, hash_vars);
        let entry_depth = depth;
        depth += code.matches('{').count() as i64 - code.matches('}').count() as i64;
        if header && depth > entry_depth {
            regions.push(entry_depth);
        } else if !regions.is_empty()
            && (code.contains("+=") || code.contains("-=") || code.contains("*="))
        {
            out.push(Diagnostic::new(
                LintCode::Pvs006,
                ctx.path,
                idx + 1,
                "compound accumulation inside an unordered-iteration loop — \
                 float reduction order is nondeterministic; collect in a \
                 deterministic order and reduce serially"
                    .to_string(),
            ));
        }
        regions.retain(|&entry| depth > entry);
    }
}

/// Lint categories too broad to `allow`/`expect`: suppressing one of
/// these hides whole defect classes rather than one named false positive.
const BANNED_SUPPRESSIONS: [&str; 10] = [
    "warnings",
    "unused",
    "dead_code",
    "unused_variables",
    "unused_imports",
    "unused_mut",
    "unreachable_code",
    "clippy::all",
    "clippy::correctness",
    "clippy::suspicious",
];

/// PVS007: blanket lint-suppression escape hatches. The workspace builds
/// warning-clean; broad `#[allow(..)]` categories would let that rot
/// silently. Narrow, named allows stay legal.
fn pass_allow_escape_hatches(
    ctx: &SourceContext<'_>,
    lines: &[ScannedLine],
    out: &mut Vec<Diagnostic>,
) {
    for (idx, line) in lines.iter().enumerate() {
        let code = &line.code;
        for marker in ["[allow(", "[expect("] {
            let Some(pos) = code.find(marker) else { continue };
            let open = pos + marker.len();
            let inner = match code[open..].find(')') {
                Some(close) => &code[open..open + close],
                None => &code[open..],
            };
            for item in inner.split(',') {
                let item = item.trim();
                if BANNED_SUPPRESSIONS.contains(&item) {
                    out.push(Diagnostic::new(
                        LintCode::Pvs007,
                        ctx.path,
                        idx + 1,
                        format!(
                            "blanket suppression `{item}` — the workspace must stay \
                             warning-clean without category-wide escape hatches \
                             (narrow, named lint allows are fine)"
                        ),
                    ));
                }
            }
        }
    }
}

/// Is `name` a lowercase dotted counter path: at least two
/// `[a-z0-9_]+` segments separated by single dots?
fn is_dotted_counter_name(name: &str) -> bool {
    let mut segments = 0;
    for seg in name.split('.') {
        if seg.is_empty()
            || !seg
                .bytes()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
        {
            return false;
        }
        segments += 1;
    }
    segments >= 2
}

/// The single-name Recorder write calls PVS011 checks when their first
/// argument is a string literal (histogram records included —
/// `*.hist.*` names join the same namespace as counters and gauges).
const RECORDER_WRITE_MARKERS: [&str; 5] =
    [".add(", ".gauge_set(", ".gauge_max(", ".record(", ".record_n("];

/// PVS011: counter/gauge name literals handed to the Recorder must be
/// lowercase `snake.dotted` paths — the names are joined across the
/// engine, the committed baseline, and the analysis layer, so a
/// malformed literal forks the namespace silently. The scanner blanks
/// string contents in the code channel but preserves column positions,
/// so the pass locates the opening quote in the code channel and reads
/// the literal text back out of the raw line. Non-literal names
/// (`format!`, variables) are not checked.
fn pass_counter_names(
    ctx: &SourceContext<'_>,
    raw_lines: &[&str],
    lines: &[ScannedLine],
    out: &mut Vec<Diagnostic>,
) {
    for (idx, line) in lines.iter().enumerate() {
        let code = &line.code;
        let Some(raw) = raw_lines.get(idx) else {
            continue;
        };
        let mut quote_cols: Vec<usize> = Vec::new();
        for marker in RECORDER_WRITE_MARKERS {
            let mut start = 0;
            while let Some(pos) = code[start..].find(marker) {
                let after_paren = start + pos + marker.len();
                let skipped = code[after_paren..]
                    .len()
                    .saturating_sub(code[after_paren..].trim_start().len());
                let quote_at = after_paren + skipped;
                if code[quote_at..].starts_with('"') {
                    quote_cols.push(quote_at);
                }
                start = after_paren;
            }
        }
        // Batch idioms: every `("`-opened tuple on the line names a
        // counter (`entries.push(("x", n))`, `add_many(&[("x", n), ..])`,
        // `record_many(&[("x", v, n), ..])`).
        if code.contains("add_many(&[(")
            || code.contains("record_many(&[(")
            || code.contains("entries.push((")
        {
            let mut start = 0;
            while let Some(pos) = code[start..].find("(\"") {
                quote_cols.push(start + pos + 1);
                start = start + pos + 2;
            }
        }
        quote_cols.sort_unstable();
        quote_cols.dedup();
        for qc in quote_cols {
            let Some(rest) = raw.get(qc + 1..) else {
                continue;
            };
            let Some(end) = rest.find('"') else { continue };
            let name = &rest[..end];
            if !is_dotted_counter_name(name) {
                out.push(Diagnostic::new(
                    LintCode::Pvs011,
                    ctx.path,
                    idx + 1,
                    format!(
                        "counter name literal {name:?} is not lowercase \
                         `snake.dotted` — recorder names must be two or more \
                         `[a-z0-9_]+` segments joined by dots"
                    ),
                ));
            }
        }
    }
}

/// The crates whose library code PVS012 covers: the simulators the
/// fault-injection layer drives into degraded states (plus "fixture",
/// the crate name the golden-fixture driver scans under). Application
/// and harness crates stay out of scope — their errors are programmer
/// bugs, not modelled faults.
const PVS012_CRATES: [&str; 8] = [
    "core", "memsim", "netsim", "vectorsim", "mpisim", "obs", "fault", "fixture",
];

/// Call suffixes that produce a `Result` in this std-only workspace.
/// PVS012 fires only when the `unwrap`/`expect` chain ends in one of
/// these, so Option accessors (`first()`, `get()`, `max_by()`, ...)
/// can never trip it.
const RESULT_MARKERS: [&str; 13] = [
    ".lock()",
    ".read()",
    ".write()",
    ".join()",
    ".wait(",
    ".recv()",
    ".try_recv()",
    ".recv_timeout(",
    ".send(",
    ".spawn(",
    ".parse()",
    ".parse::<",
    "from_utf8(",
];

/// How many lines above an `unwrap`/`expect` a `// INFALLIBLE:`
/// justification may sit (mirrors the PVS004 `// SAFETY:` window).
const INFALLIBLE_COMMENT_WINDOW: usize = 3;

/// PVS012: `unwrap()`/`expect()` on a Result in simulator library code.
/// The fault layer makes simulator errors *inputs*, so panicking on one
/// turns a modelled fault into a process abort. Test modules are exempt
/// (`#[cfg(test)]` to end of file — the workspace keeps tests last);
/// `// INFALLIBLE:` justifies a genuinely unreachable error path. The
/// chain may continue across lines: a line starting with `.` extends
/// the two lines above it.
fn pass_result_unwraps(ctx: &SourceContext<'_>, lines: &[ScannedLine], out: &mut Vec<Diagnostic>) {
    if !PVS012_CRATES.contains(&ctx.crate_name) {
        return;
    }
    let cutoff = lines
        .iter()
        .position(|l| l.code.contains("#[cfg(test)]"))
        .unwrap_or(lines.len());
    for (idx, line) in lines.iter().enumerate().take(cutoff) {
        let code = &line.code;
        if !code.contains(".unwrap()") && !code.contains(".expect(") {
            continue;
        }
        // The statement window: this line, plus — when the line is a
        // method-chain continuation — the lines back to the end of the
        // previous statement (a multi-line struct-literal argument keeps
        // `.send(..)` far above its `.expect(..)`), bounded to stay local.
        let mut window_start = idx;
        if code.trim_start().starts_with('.') {
            for back in 1..=8 {
                let Some(prev_idx) = idx.checked_sub(back) else {
                    break;
                };
                window_start = prev_idx;
                let prev = lines[prev_idx].code.trim();
                if prev.ends_with(';') || prev.ends_with('}') {
                    break;
                }
            }
        }
        let marker = lines[window_start..=idx]
            .iter()
            .find_map(|l| RESULT_MARKERS.iter().find(|m| l.code.contains(**m)));
        let Some(marker) = marker else {
            continue;
        };
        let justified = lines[idx.saturating_sub(INFALLIBLE_COMMENT_WINDOW)..=idx]
            .iter()
            .any(|l| l.comment.contains("INFALLIBLE:"));
        if !justified {
            out.push(Diagnostic::new(
                LintCode::Pvs012,
                ctx.path,
                idx + 1,
                format!(
                    "`unwrap`/`expect` on the Result of `{}` in simulator \
                     library code — handle the error (faults make it \
                     reachable) or justify with `// INFALLIBLE:`",
                    marker.trim_matches(|c: char| !c.is_ascii_alphanumeric() && c != '_'),
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(crate_name: &str, src: &str) -> Vec<Diagnostic> {
        check_source(
            SourceContext {
                crate_name,
                path: "test.rs",
            },
            src,
        )
    }

    fn codes(diags: &[Diagnostic]) -> Vec<(&'static str, usize)> {
        diags.iter().map(|d| (d.code.as_str(), d.line)).collect()
    }

    #[test]
    fn time_sources_flagged_outside_bench_only() {
        let src = "use std::time::Instant;\nlet t = Instant::now();\n";
        assert_eq!(
            codes(&check("core", src)),
            vec![("PVS003", 1), ("PVS003", 2)]
        );
        assert!(check("bench", src).is_empty());
    }

    #[test]
    fn serve_wall_clock_exemption_is_path_scoped() {
        let src = "use std::time::Instant;\nlet t = Instant::now();\n";
        let at = |path| {
            check_source(
                SourceContext {
                    crate_name: "serve",
                    path,
                },
                src,
            )
        };
        // Only the server edge may read the host clock...
        assert!(at("crates/serve/src/server.rs").is_empty());
        // ...the rest of the serve crate stays enforced clock-free.
        for path in [
            "crates/serve/src/lib.rs",
            "crates/serve/src/cache.rs",
            "crates/serve/src/workload.rs",
        ] {
            assert_eq!(
                codes(&at(path)),
                vec![("PVS003", 1), ("PVS003", 2)],
                "{path} must not be exempt"
            );
        }
    }

    #[test]
    fn time_in_comments_and_strings_is_fine() {
        let src = "// Instant::now() would be wrong here\nlet s = \"SystemTime\";\n";
        assert!(check("core", src).is_empty());
    }

    #[test]
    fn duration_is_legal_but_module_imports_are_not() {
        let src = "std::thread::sleep(std::time::Duration::from_millis(2));\n";
        assert!(check("core", src).is_empty());
        assert_eq!(codes(&check("core", "use std::time::*;\n")), vec![("PVS003", 1)]);
        assert_eq!(codes(&check("core", "use std::time;\n")), vec![("PVS003", 1)]);
    }

    #[test]
    fn unsafe_needs_safety_comment() {
        let bad = "fn f() {\n    unsafe { danger() }\n}\n";
        assert_eq!(codes(&check("core", bad)), vec![("PVS004", 2)]);
        let good = "fn f() {\n    // SAFETY: bounds checked above\n    unsafe { danger() }\n}\n";
        assert!(check("core", good).is_empty());
        let same_line = "unsafe { x() } // SAFETY: x is idempotent\n";
        assert!(check("core", same_line).is_empty());
    }

    #[test]
    fn hash_iteration_flagged() {
        let src = "let mut m = std::collections::HashMap::new();\n\
                   m.insert(1, 2.0);\n\
                   for (k, v) in m.iter() {\n\
                   }\n";
        let found = check("report", src);
        assert!(codes(&found).contains(&("PVS005", 3)), "{found:?}");
        let sorted = "let m = std::collections::BTreeMap::new();\nfor (k, v) in m.iter() {}\n";
        assert!(check("report", sorted).is_empty());
    }

    #[test]
    fn hash_len_without_iteration_is_fine() {
        let src = "let set: std::collections::HashSet<_> = xs.iter().collect();\n\
                   assert_eq!(set.len(), xs.len());\n";
        assert!(check("paratec", src).is_empty());
    }

    #[test]
    fn accumulation_over_channel_flagged() {
        let src = "let mut sum = 0.0;\n\
                   while let Ok(x) = rx.try_recv() {\n\
                       sum += x;\n\
                   }\n\
                   total(sum);\n";
        assert_eq!(codes(&check("core", src)), vec![("PVS006", 3)]);
    }

    #[test]
    fn accumulation_in_ordered_loop_is_fine() {
        let src = "let mut sum = 0.0;\nfor x in results.iter() {\n    sum += x;\n}\n";
        assert!(check("core", src).is_empty());
    }

    #[test]
    fn blanket_allow_flagged_narrow_allow_fine() {
        let src = "#![allow(dead_code)]\n#[allow(clippy::needless_range_loop)]\nfn f() {}\n";
        assert_eq!(codes(&check("gtc", src)), vec![("PVS007", 1)]);
        let expect = "#[expect(unused)]\nfn g() {}\n";
        assert_eq!(codes(&check("gtc", expect)), vec![("PVS007", 1)]);
    }

    #[test]
    fn method_expect_is_not_an_attribute() {
        let src = "let v = map.get(&k).expect(\"present\");\n";
        assert!(check("core", src).is_empty());
    }

    #[test]
    fn dotted_counter_name_grammar() {
        for ok in ["a.b", "engine.loop.cycles", "pool.worker.0.tasks", "net_sim.x9"] {
            assert!(is_dotted_counter_name(ok), "{ok}");
        }
        for bad in ["flops", "Engine.phases", "a..b", ".a", "a.", "a b.c", "net-sim.x", ""] {
            assert!(!is_dotted_counter_name(bad), "{bad}");
        }
    }

    #[test]
    fn malformed_recorder_names_flagged() {
        let src = "r.add(\"flops\", 1);\n\
                   r.gauge_set(\"queueDepth\", 2);\n\
                   r.gauge_max( \"Engine.Phases\", 3);\n\
                   entries.push((\"engine..cycles\", 4));\n\
                   r.add_many(&[(\"ok.name\", 1), (\"bad name\", 2)]);\n";
        assert_eq!(
            codes(&check("core", src)),
            vec![
                ("PVS011", 1),
                ("PVS011", 2),
                ("PVS011", 3),
                ("PVS011", 4),
                ("PVS011", 5),
            ]
        );
    }

    #[test]
    fn dotted_and_dynamic_recorder_names_are_fine() {
        let src = "r.add(\"engine.loop.flops\", 1);\n\
                   r.gauge_max(\"netsim.link.peak_bytes\", 2);\n\
                   entries.push((\"memsim.bank.stall_cycles\", 3));\n\
                   r.add_many(&[(\"vectorsim.strips\", 1), (\"pool.queue.depth\", 2)]);\n\
                   r.add(&format!(\"pool.worker.{i}.tasks\"), 1);\n\
                   r.add(name, 1);\n";
        assert!(check("core", src).is_empty());
    }

    #[test]
    fn result_unwraps_flagged_in_simulator_crates_only() {
        let src = "let q = shared.lock().unwrap();\n";
        assert_eq!(codes(&check("core", src)), vec![("PVS012", 1)]);
        assert_eq!(codes(&check("mpisim", src)), vec![("PVS012", 1)]);
        assert!(check("bench", src).is_empty());
        assert!(check("lbmhd", src).is_empty());
    }

    #[test]
    fn result_unwrap_chain_continuations_are_tracked() {
        let src = "self.senders[dst]\n\
                   .send(pkt)\n\
                   .expect(\"receiver alive\");\n";
        assert_eq!(codes(&check("mpisim", src)), vec![("PVS012", 3)]);
    }

    #[test]
    fn option_unwraps_are_out_of_scope() {
        let src = "let x = v.first().expect(\"nonempty\");\n\
                   let y = m.get(&k).unwrap();\n\
                   let (xd, yd) = self.torus_dims.expect(\"torus dims\");\n";
        assert!(check("netsim", src).is_empty());
    }

    #[test]
    fn infallible_comment_and_test_modules_are_exempt() {
        let justified = "// INFALLIBLE: poisoning needs a panicked holder\n\
                         let q = shared.lock().expect(\"pool lock\");\n";
        assert!(check("core", justified).is_empty());
        let in_tests = "fn lib() {}\n\
                        #[cfg(test)]\n\
                        mod tests {\n\
                            fn t() { tx.send(1).unwrap(); }\n\
                        }\n";
        assert!(check("core", in_tests).is_empty());
        let before_tests = "fn lib() { tx.send(1).unwrap(); }\n\
                            #[cfg(test)]\n\
                            mod tests {}\n";
        assert_eq!(codes(&check("core", before_tests)), vec![("PVS012", 1)]);
    }

    #[test]
    fn counter_names_in_comments_and_plain_pushes_ignored() {
        let src = "// r.add(\"BAD\", 1) would be wrong\n\
                   stack.push((\"Label\", 1));\n\
                   let v = other.add(2);\n";
        assert!(check("core", src).is_empty());
    }
}
