//! Manifest and lockfile lints (PVS001, PVS002).
//!
//! The workspace must build with no network and no registry cache, so
//! every dependency — normal, dev, or build — has to be an in-tree
//! `pvs-*` path crate. Cargo resolves *declared* dependencies into
//! Cargo.lock even when they are never compiled (dev-deps of untested
//! crates, optional deps), so the only safe state is "not declared at
//! all". These passes parse the manifests and lockfile by hand (no toml
//! crate, for exactly the reason being linted) and report the offending
//! line. `tests/no_external_deps.rs` is a thin driver over this module.

use std::fs;
use std::path::{Path, PathBuf};

use crate::diag::{Diagnostic, LintCode};

/// Section headers whose entries must all be `pvs-*` path dependencies.
fn is_dependency_section(header: &str) -> bool {
    matches!(
        header,
        "[dependencies]"
            | "[dev-dependencies]"
            | "[build-dependencies]"
            | "[workspace.dependencies]"
    ) || header.starts_with("[target.") && header.contains("dependencies")
}

/// PVS001 over one manifest's text. `path` is used only for spans.
pub fn check_manifest_text(path: &str, text: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut in_dep_section = false;
    for (lineno, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.starts_with('[') {
            in_dep_section = is_dependency_section(trimmed);
            continue;
        }
        if !in_dep_section || trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let name = trimmed
            .split(['=', '.'])
            .next()
            .unwrap_or("")
            .trim()
            .trim_matches('"');
        if !name.starts_with("pvs") {
            out.push(Diagnostic::new(
                LintCode::Pvs001,
                path,
                lineno + 1,
                format!(
                    "external dependency `{name}` declared — the workspace \
                     must stay std-only (offline build)"
                ),
            ));
            continue;
        }
        // A pvs-* dep must resolve by path (directly or via the
        // workspace table), never from a registry.
        if trimmed.contains("version") {
            out.push(Diagnostic::new(
                LintCode::Pvs001,
                path,
                lineno + 1,
                format!(
                    "`{name}` pinned by version — use a path dependency so \
                     no registry lookup is needed"
                ),
            ));
        }
    }
    out
}

/// PVS002 over the lockfile's text. `path` is used only for spans.
pub fn check_lockfile_text(path: &str, text: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut package: Option<String> = None;
    for (lineno, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed == "[[package]]" {
            package = None;
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix("name = ") {
            let name = rest.trim_matches('"');
            package = Some(name.to_string());
            if name != "pvs" && !name.starts_with("pvs-") {
                out.push(Diagnostic::new(
                    LintCode::Pvs002,
                    path,
                    lineno + 1,
                    format!("unexpected non-workspace package `{name}` in lockfile"),
                ));
            }
        }
        if trimmed.starts_with("source = ") {
            out.push(Diagnostic::new(
                LintCode::Pvs002,
                path,
                lineno + 1,
                format!(
                    "package `{}` resolves from an external source ({trimmed}) \
                     — the workspace must stay path-only",
                    package.as_deref().unwrap_or("<unknown>")
                ),
            ));
        }
    }
    out
}

/// Every manifest in the workspace: the root `Cargo.toml` plus one per
/// `crates/*` member, sorted for deterministic diagnostic order.
pub fn workspace_manifest_paths(root: &Path) -> Vec<PathBuf> {
    let mut out = vec![root.join("Cargo.toml")];
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        let mut members: Vec<PathBuf> = entries
            .flatten()
            .map(|e| e.path().join("Cargo.toml"))
            .filter(|p| p.is_file())
            .collect();
        members.sort();
        out.extend(members);
    }
    out
}

/// Run PVS001 over every workspace manifest and PVS002 over the
/// lockfile. Paths in diagnostics are relative to `root`.
pub fn check_workspace_manifests(root: &Path) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for path in workspace_manifest_paths(root) {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .display()
            .to_string();
        match fs::read_to_string(&path) {
            Ok(text) => out.extend(check_manifest_text(&rel, &text)),
            Err(err) => out.push(Diagnostic::new(
                LintCode::Pvs001,
                &rel,
                0,
                format!("cannot read manifest: {err}"),
            )),
        }
    }
    let lock = root.join("Cargo.lock");
    match fs::read_to_string(&lock) {
        Ok(text) => out.extend(check_lockfile_text("Cargo.lock", &text)),
        Err(err) => out.push(Diagnostic::new(
            LintCode::Pvs002,
            "Cargo.lock",
            0,
            format!("cannot read lockfile: {err}"),
        )),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_manifest_passes() {
        let text = "[package]\nname = \"pvs-core\"\n\n[dependencies]\n\
                    pvs-vectorsim.workspace = true\npvs-model = { path = \"../model\" }\n";
        assert!(check_manifest_text("Cargo.toml", &text.to_string()).is_empty());
    }

    #[test]
    fn external_dep_flagged_with_line() {
        let text = "[dependencies]\nserde = \"1\"\n";
        let diags = check_manifest_text("crates/x/Cargo.toml", text);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code.as_str(), "PVS001");
        assert_eq!(diags[0].line, 2);
        assert!(diags[0].message.contains("serde"));
    }

    #[test]
    fn version_pinned_pvs_dep_flagged() {
        let text = "[dev-dependencies]\npvs-core = { version = \"0.1\" }\n";
        let diags = check_manifest_text("Cargo.toml", text);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("version"));
    }

    #[test]
    fn non_dependency_sections_are_ignored() {
        let text = "[package]\nversion = \"0.1.0\"\n[features]\nextra = []\n";
        assert!(check_manifest_text("Cargo.toml", text).is_empty());
    }

    #[test]
    fn target_dependency_sections_are_checked() {
        let text = "[target.'cfg(unix)'.dependencies]\nlibc = \"0.2\"\n";
        let diags = check_manifest_text("Cargo.toml", text);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("libc"));
    }

    #[test]
    fn lockfile_registry_source_flagged() {
        let text = "[[package]]\nname = \"pvs-core\"\nversion = \"0.1.0\"\n\n\
                    [[package]]\nname = \"rand\"\nversion = \"0.8.5\"\n\
                    source = \"registry+https://github.com/rust-lang/crates.io-index\"\n";
        let diags = check_lockfile_text("Cargo.lock", text);
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().any(|d| d.message.contains("non-workspace package `rand`")));
        assert!(diags.iter().any(|d| d.message.contains("external source")));
        assert!(diags.iter().all(|d| d.code.as_str() == "PVS002"));
    }

    #[test]
    fn clean_lockfile_passes() {
        let text = "version = 3\n\n[[package]]\nname = \"pvs\"\nversion = \"0.1.0\"\n";
        assert!(check_lockfile_text("Cargo.lock", text).is_empty());
    }

    #[test]
    fn real_workspace_is_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root");
        let diags = check_workspace_manifests(root);
        assert!(diags.is_empty(), "{diags:?}");
        assert!(
            workspace_manifest_paths(root).len() >= 15,
            "expected the full workspace"
        );
    }
}
