//! Golden-file tests: every lint code has a clean fixture (must produce
//! no findings) and a multi-violation fixture whose exact findings —
//! code, severity, line, message — are pinned by a `.expected` golden.
//!
//! Regenerate goldens after an intentional behaviour change with
//! `PVS_LINT_BLESS=1 cargo test -p pvs-lint --test fixtures`.

use std::fs;
use std::path::{Path, PathBuf};

use pvs_lint::diag::{sort_diagnostics, Diagnostic};
use pvs_lint::facts::{FileFacts, WorkspaceFacts};
use pvs_lint::manifest::{check_lockfile_text, check_manifest_text};
use pvs_lint::source::{check_source, SourceContext};
use pvs_lint::{locks, names};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

/// Run the pass family a fixture's name/extension selects. The
/// cross-file codes (PVS013–PVS015) treat the fixture as a one-file
/// workspace; PVS014 fixtures document their names with `// DOCUMENTED:`
/// directives in place of the README table.
fn findings_for(name: &str) -> Vec<Diagnostic> {
    let text = fs::read_to_string(fixture_dir().join(name)).expect("fixture readable");
    let mut diags = if name.ends_with(".toml") {
        check_manifest_text(name, &text)
    } else if name.ends_with(".lock") {
        check_lockfile_text(name, &text)
    } else if name.starts_with("pvs013") || name.starts_with("pvs014") || name.starts_with("pvs015")
    {
        let ws = WorkspaceFacts::build(vec![FileFacts::parse("fixture", name, &text, false)]);
        if name.starts_with("pvs013") {
            locks::check(&ws)
        } else if name.starts_with("pvs014") {
            let docs = ws
                .files
                .iter()
                .flat_map(|f| f.documented.iter().cloned())
                .collect();
            names::check_counters(&ws, &docs)
        } else {
            names::check_schemas(&ws)
        }
    } else {
        check_source(
            SourceContext {
                crate_name: "fixture",
                path: name,
            },
            &text,
        )
    };
    sort_diagnostics(&mut diags);
    diags
}

fn rendered(name: &str) -> String {
    let lines: Vec<String> = findings_for(name).iter().map(|d| d.render_spanless()).collect();
    lines.join("\n")
}

fn assert_matches_golden(fixture: &str) {
    let actual = rendered(fixture);
    let golden_path = fixture_dir().join(format!(
        "{}.expected",
        fixture.rsplit_once('.').expect("extension").0
    ));
    if std::env::var_os("PVS_LINT_BLESS").is_some() {
        fs::write(&golden_path, format!("{actual}\n")).expect("write golden");
        return;
    }
    let golden = fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", golden_path.display()));
    assert_eq!(
        actual,
        golden.trim_end(),
        "{fixture} findings diverged from golden (PVS_LINT_BLESS=1 to regenerate)"
    );
}

const VIOLATION_FIXTURES: [&str; 12] = [
    "pvs001_violations.toml",
    "pvs002_violations.lock",
    "pvs003_violations.rs",
    "pvs004_violations.rs",
    "pvs005_violations.rs",
    "pvs006_violations.rs",
    "pvs007_violations.rs",
    "pvs011_violations.rs",
    "pvs012_violations.rs",
    "pvs013_violations.rs",
    "pvs014_violations.rs",
    "pvs015_violations.rs",
];

const CLEAN_FIXTURES: [&str; 12] = [
    "pvs001_clean.toml",
    "pvs002_clean.lock",
    "pvs003_clean.rs",
    "pvs004_clean.rs",
    "pvs005_clean.rs",
    "pvs006_clean.rs",
    "pvs007_clean.rs",
    "pvs011_clean.rs",
    "pvs012_clean.rs",
    "pvs013_clean.rs",
    "pvs014_clean.rs",
    "pvs015_clean.rs",
];

#[test]
fn violation_fixtures_match_goldens() {
    for fixture in VIOLATION_FIXTURES {
        assert_matches_golden(fixture);
    }
}

#[test]
fn violation_fixtures_each_trip_their_own_code() {
    for fixture in VIOLATION_FIXTURES {
        let code = fixture[..6].to_ascii_uppercase();
        let findings = findings_for(fixture);
        assert!(
            findings.iter().any(|d| d.code.as_str() == code),
            "{fixture} never tripped {code}: {findings:?}"
        );
        assert!(
            findings.iter().filter(|d| d.code.as_str() == code).count() >= 2,
            "{fixture} should be multi-violation for {code}"
        );
    }
}

/// PVS003 must hold for `pvs-obs` specifically: the observability layer
/// records opaque ticks and simulated quantities, so host clocks inside
/// it are exactly the bug the lint exists to catch — while the same text
/// inside `pvs-bench` (the one crate allowed to time the host) is legal.
#[test]
fn obs_crate_gets_no_wall_clock_exemption() {
    let text = fs::read_to_string(fixture_dir().join("pvs003_obs_violations.rs"))
        .expect("fixture readable");
    let as_obs = check_source(
        SourceContext {
            crate_name: "obs",
            path: "crates/obs/src/bad.rs",
        },
        &text,
    );
    let pvs003 = as_obs.iter().filter(|d| d.code.as_str() == "PVS003").count();
    assert!(
        pvs003 >= 2,
        "expected >=2 PVS003 findings in crate obs, got {pvs003}: {as_obs:?}"
    );
    let as_bench = check_source(
        SourceContext {
            crate_name: "bench",
            path: "crates/bench/src/ok.rs",
        },
        &text,
    );
    assert!(
        as_bench.iter().all(|d| d.code.as_str() != "PVS003"),
        "bench is the host-timing crate; PVS003 must not fire there: {as_bench:?}"
    );
}

#[test]
fn clean_fixtures_produce_no_findings() {
    for fixture in CLEAN_FIXTURES {
        let findings = findings_for(fixture);
        assert!(findings.is_empty(), "{fixture}: {findings:?}");
    }
}
