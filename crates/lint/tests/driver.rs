//! End-to-end tests of the `pvs-lint` binary: exit codes, JSON output,
//! and `--explain`, driven through `CARGO_BIN_EXE_pvs-lint` against both
//! the real workspace and a seeded-violation scratch workspace.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn lint_bin() -> &'static str {
    env!("CARGO_BIN_EXE_pvs-lint")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .to_path_buf()
}

fn run(args: &[&str]) -> Output {
    Command::new(lint_bin())
        .args(args)
        .output()
        .expect("pvs-lint runs")
}

/// A scratch workspace with one violation per pass family.
fn seeded_workspace() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pvs-lint-e2e-{}", std::process::id()));
    let src = dir.join("crates/badapp/src");
    fs::create_dir_all(&src).expect("scratch dirs");
    fs::write(
        dir.join("Cargo.toml"),
        "[workspace]\nmembers = [\"crates/*\"]\n\n[workspace.dependencies]\nserde = \"1.0\"\n",
    )
    .expect("root manifest");
    fs::write(
        dir.join("Cargo.lock"),
        "version = 3\n\n[[package]]\nname = \"rand\"\nversion = \"0.8.5\"\n\
         source = \"registry+https://github.com/rust-lang/crates.io-index\"\n",
    )
    .expect("lockfile");
    fs::write(
        dir.join("crates/badapp/Cargo.toml"),
        "[package]\nname = \"pvs-badapp\"\n",
    )
    .expect("member manifest");
    fs::write(
        src.join("lib.rs"),
        "pub fn now() -> std::time::Instant {\n    std::time::Instant::now()\n}\n",
    )
    .expect("seeded source");
    dir
}

#[test]
fn real_workspace_is_clean_and_exits_zero() {
    let root = workspace_root();
    let out = run(&["--root", root.to_str().expect("utf-8 path")]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(
        stdout.contains("0 error(s)"),
        "summary line missing: {stdout}"
    );
    assert!(stdout.contains("kernel descriptor(s) cross-checked"));
}

#[test]
fn seeded_violations_exit_nonzero_with_correct_spans() {
    let dir = seeded_workspace();
    let out = run(&["--root", dir.to_str().expect("utf-8 path")]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "{stdout}");
    // PVS001 with the manifest line of the serde entry.
    assert!(
        stdout.contains("Cargo.toml:5: error[PVS001]"),
        "{stdout}"
    );
    assert!(stdout.contains("serde"), "{stdout}");
    // PVS002 pointing at the lockfile's registry source line.
    assert!(stdout.contains("Cargo.lock:4: error[PVS002]"), "{stdout}");
    assert!(stdout.contains("Cargo.lock:6: error[PVS002]"), "{stdout}");
    // PVS003 in the seeded source, both lines.
    let src = "crates/badapp/src/lib.rs";
    assert!(stdout.contains(&format!("{src}:1: error[PVS003]")), "{stdout}");
    assert!(stdout.contains(&format!("{src}:2: error[PVS003]")), "{stdout}");
    fs::remove_dir_all(&dir).ok();
}

/// A scratch workspace seeding the cross-file passes: a two-lock
/// acquisition cycle (PVS013), a consumed-but-never-emitted counter
/// (PVS014), and a schema literal outside the registry (PVS015).
fn seeded_cross_file_workspace() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pvs-lint-xfile-{}", std::process::id()));
    let src = dir.join("crates/badapp/src");
    fs::create_dir_all(&src).expect("scratch dirs");
    fs::write(
        dir.join("Cargo.toml"),
        "[workspace]\nmembers = [\"crates/*\"]\n",
    )
    .expect("root manifest");
    fs::write(dir.join("Cargo.lock"), "version = 3\n").expect("lockfile");
    fs::write(
        dir.join("crates/badapp/Cargo.toml"),
        "[package]\nname = \"pvs-badapp\"\n",
    )
    .expect("member manifest");
    fs::write(
        src.join("lib.rs"),
        "use std::sync::Mutex;\n\
         \n\
         pub struct S {\n\
         \x20   // LOCK ORDER: 10\n\
         \x20   pub alpha: Mutex<u32>,\n\
         \x20   // LOCK ORDER: 20\n\
         \x20   pub beta: Mutex<u32>,\n\
         }\n\
         \n\
         pub fn forward(s: &S) {\n\
         \x20   let alpha = s.alpha.lock().expect(\"alpha\");\n\
         \x20   let beta = s.beta.lock().expect(\"beta\");\n\
         \x20   drop(beta);\n\
         \x20   drop(alpha);\n\
         }\n\
         \n\
         pub fn backward(s: &S) {\n\
         \x20   let beta = s.beta.lock().expect(\"beta\");\n\
         \x20   let alpha = s.alpha.lock().expect(\"alpha\");\n\
         \x20   drop(alpha);\n\
         \x20   drop(beta);\n\
         }\n\
         \n\
         pub fn read_counters(r: &Registry) -> u64 {\n\
         \x20   r.counter(\"badapp.requests.total\")\n\
         }\n\
         \n\
         pub const SCHEMA: &str = \"pvs-bench/profile-v2\";\n",
    )
    .expect("seeded source");
    dir
}

#[test]
fn seeded_two_lock_cycle_trips_all_cross_file_codes() {
    let dir = seeded_cross_file_workspace();
    let root = dir.to_str().expect("utf-8 path");
    let out = run(&["--root", root]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "{stdout}");
    assert!(
        stdout.contains("error[PVS013]: lock order inversion"),
        "{stdout}"
    );
    assert!(
        stdout.contains("error[PVS013]: acquisition-order cycle: badapp.alpha -> badapp.beta -> badapp.alpha"),
        "{stdout}"
    );
    assert!(
        stdout.contains("error[PVS014]: counter `badapp.requests.total` is consumed but never emitted"),
        "{stdout}"
    );
    assert!(
        stdout.contains("error[PVS015]: schema version `pvs-bench/profile-v2`"),
        "{stdout}"
    );

    // --codes narrows the report to the listed codes only.
    let filtered = run(&["--root", root, "--codes", "PVS013"]);
    let filtered_out = String::from_utf8_lossy(&filtered.stdout);
    assert_eq!(filtered.status.code(), Some(1), "{filtered_out}");
    assert!(filtered_out.contains("PVS013"), "{filtered_out}");
    assert!(!filtered_out.contains("PVS014"), "{filtered_out}");
    assert!(!filtered_out.contains("PVS015"), "{filtered_out}");

    // Filtering away every firing code leaves a clean (exit 0) run.
    let none = run(&["--root", root, "--codes", "PVS005"]);
    assert_eq!(none.status.code(), Some(0));

    // Unknown codes are usage errors.
    let bad = run(&["--root", root, "--codes", "PVS999"]);
    assert_eq!(bad.status.code(), Some(2));
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn json_output_is_byte_stable_across_runs() {
    let root = workspace_root();
    let args = ["--json", "--root", root.to_str().expect("utf-8 path")];
    let first = run(&args);
    let second = run(&args);
    assert!(first.status.success());
    assert_eq!(
        String::from_utf8_lossy(&first.stdout),
        String::from_utf8_lossy(&second.stdout),
        "--json output must be deterministic"
    );
}

#[test]
fn json_report_is_machine_readable() {
    let root = workspace_root();
    let out = run(&["--json", "--root", root.to_str().expect("utf-8 path")]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let json = stdout.trim();
    assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
    assert!(json.contains("\"errors\":0"), "{json}");
    assert!(json.contains("\"files_scanned\":"), "{json}");
    assert!(json.contains("\"kernels_checked\":"), "{json}");
    assert!(json.contains("\"diagnostics\":["), "{json}");
}

#[test]
fn explain_prints_rationale_and_rejects_unknown_codes() {
    let out = run(&["--explain", "PVS003"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.starts_with("PVS003:"), "{stdout}");
    assert!(stdout.contains("byte-identical"), "{stdout}");

    let bad = run(&["--explain", "PVS999"]);
    assert_eq!(bad.status.code(), Some(2));

    let unknown_flag = run(&["--frobnicate"]);
    assert_eq!(unknown_flag.status.code(), Some(2));
}
