//! # pvs-memsim — memory-system simulation substrate
//!
//! This crate models the two memory-system families that the SC 2004 study
//! ("Scientific Computations on Modern Parallel Vector Systems") contrasts:
//!
//! * **cache-based superscalar memory hierarchies** (IBM Power3/Power4, SGI
//!   Altix): multi-level set-associative caches with LRU replacement plus a
//!   hardware stream-prefetch engine ([`cache`], [`hierarchy`], [`prefetch`]);
//! * **cacheless banked vector memory** (Earth Simulator FPLRAM, Cray X1
//!   memory ports): heavily interleaved banks whose throughput collapses
//!   under bank conflicts ([`banks`]).
//!
//! Two usage styles are supported, mirroring how the paper reasons about
//! memory:
//!
//! 1. **trace-driven simulation** — feed an address trace (see [`trace`])
//!    through a [`hierarchy::CacheHierarchy`] or a [`banks::BankedMemory`]
//!    and read hit/conflict statistics; this is how the unit and property
//!    tests validate the models, and how the application crates calibrate
//!    their phase descriptors;
//! 2. **analytic effective-bandwidth estimation** — [`bandwidth`] turns a
//!    working-set / access-pattern description into a sustained fraction of
//!    the machine's peak memory bandwidth, which the performance engine in
//!    `pvs-core` consumes.
//!
//! ## Example
//!
//! ```
//! use pvs_memsim::{Cache, CacheConfig};
//!
//! // A Power3-like 8 MB 4-way L2: a 4 MB working set streamed twice hits
//! // on the second pass.
//! let mut l2 = Cache::new(CacheConfig::new(8 << 20, 128, 4));
//! for _pass in 0..2 {
//!     for line in 0..(4u64 << 20) / 128 {
//!         l2.access(line * 128);
//!     }
//! }
//! assert!(l2.stats().hit_rate() > 0.49);
//! ```

pub mod bandwidth;
pub mod banks;
pub mod cache;
pub mod hierarchy;
pub mod prefetch;
pub mod trace;

pub use bandwidth::{AccessPattern, BandwidthModel};
pub use banks::{BankConfig, BankedMemory};
pub use cache::{AccessResult, Cache, CacheConfig, CacheStats};
pub use hierarchy::{CacheHierarchy, HierarchyConfig, LevelHit};
pub use prefetch::{PrefetchConfig, StreamPrefetcher};
