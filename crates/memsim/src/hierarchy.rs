//! Multi-level cache hierarchy simulation.
//!
//! Composes up to three [`Cache`] levels in the "mostly inclusive" style of
//! the study's superscalar platforms: an access walks L1 → L2 → L3 → memory,
//! filling every level it missed on the way back. Statistics per level plus
//! memory-traffic accounting let callers convert an address trace into the
//! *effective* bytes-from-DRAM count, which is what bounds performance on the
//! Power and Itanium systems.

use crate::cache::{Cache, CacheConfig};

/// Which level serviced an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LevelHit {
    /// Serviced by the level-1 data cache.
    L1,
    /// Serviced by the level-2 cache.
    L2,
    /// Serviced by the level-3 cache.
    L3,
    /// Went all the way to main memory.
    Memory,
}

/// Configuration for a whole hierarchy. Levels beyond `levels.len()` simply
/// don't exist (the Power3 has no L3; the vector machines have none at all —
/// they use [`crate::banks`] instead).
#[derive(Debug, Clone)]
pub struct HierarchyConfig {
    /// Inner-to-outer cache level geometries (max 3 levels).
    pub levels: Vec<CacheConfig>,
}

impl HierarchyConfig {
    /// Two-level hierarchy (e.g. Power3: 64 KB L1 + 8 MB L2).
    pub fn two_level(l1: CacheConfig, l2: CacheConfig) -> Self {
        Self {
            levels: vec![l1, l2],
        }
    }

    /// Three-level hierarchy (e.g. Power4, Altix).
    pub fn three_level(l1: CacheConfig, l2: CacheConfig, l3: CacheConfig) -> Self {
        Self {
            levels: vec![l1, l2, l3],
        }
    }
}

/// A simulated cache hierarchy.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    levels: Vec<Cache>,
    line_bytes: usize,
    /// Bytes fetched from DRAM (outermost misses x line size).
    pub memory_bytes: u64,
    /// Total accesses.
    pub accesses: u64,
    hits_per_level: [u64; 3],
}

impl CacheHierarchy {
    /// Build an empty hierarchy.
    pub fn new(config: &HierarchyConfig) -> Self {
        assert!(!config.levels.is_empty() && config.levels.len() <= 3);
        let line_bytes = config.levels[0].line_bytes;
        Self {
            levels: config.levels.iter().map(|&c| Cache::new(c)).collect(),
            line_bytes,
            memory_bytes: 0,
            accesses: 0,
            hits_per_level: [0; 3],
        }
    }

    /// Access a byte address; returns the level that serviced it and fills
    /// all inner levels.
    pub fn access(&mut self, addr: u64) -> LevelHit {
        self.accesses += 1;
        let mut hit_level = None;
        for (i, cache) in self.levels.iter_mut().enumerate() {
            if cache.access(addr).is_hit() {
                hit_level = Some(i);
                break;
            }
        }
        match hit_level {
            Some(0) => {
                self.hits_per_level[0] += 1;
                LevelHit::L1
            }
            Some(1) => {
                self.hits_per_level[1] += 1;
                LevelHit::L2
            }
            Some(2) => {
                self.hits_per_level[2] += 1;
                LevelHit::L3
            }
            Some(_) => unreachable!(),
            None => {
                self.memory_bytes += self.line_bytes as u64;
                LevelHit::Memory
            }
        }
    }

    /// Run a whole trace, returning the fraction of accesses serviced by any
    /// cache level (i.e. not requiring a DRAM fetch).
    pub fn run_trace<I: IntoIterator<Item = u64>>(&mut self, trace: I) -> f64 {
        let before_acc = self.accesses;
        let before_mem = self.memory_bytes;
        for a in trace {
            self.access(a);
        }
        let n = self.accesses - before_acc;
        if n == 0 {
            return 1.0;
        }
        let dram_lines = (self.memory_bytes - before_mem) / self.line_bytes as u64;
        1.0 - dram_lines as f64 / n as f64
    }

    /// Hits recorded at a level (0-indexed).
    pub fn level_hits(&self, level: usize) -> u64 {
        self.hits_per_level[level]
    }

    /// Fraction of accesses that required DRAM.
    pub fn dram_access_rate(&self) -> f64 {
        if self.accesses == 0 {
            return 0.0;
        }
        let dram_lines = self.memory_bytes / self.line_bytes as u64;
        dram_lines as f64 / self.accesses as f64
    }

    /// Reset contents and statistics.
    pub fn reset(&mut self) {
        for c in &mut self.levels {
            c.reset();
        }
        self.memory_bytes = 0;
        self.accesses = 0;
        self.hits_per_level = [0; 3];
    }

    /// Number of configured levels.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace;

    fn power3_like() -> CacheHierarchy {
        // Scaled-down Power3: 4 KB L1 (128-way in reality; use 8), 64 KB L2.
        CacheHierarchy::new(&HierarchyConfig::two_level(
            CacheConfig::new(4 * 1024, 128, 8),
            CacheConfig::new(64 * 1024, 128, 4),
        ))
    }

    #[test]
    fn inner_fill_on_outer_hit() {
        let mut h = power3_like();
        // First touch: memory. Evict from L1 by streaming, keep in L2.
        assert_eq!(h.access(0), LevelHit::Memory);
        // Stream 8 KB to push line 0 out of the 4 KB L1 but not the 64 KB L2.
        for i in 1..64u64 {
            h.access(i * 128);
        }
        assert_eq!(h.access(0), LevelHit::L2);
        // Now it has been refilled into L1.
        assert_eq!(h.access(0), LevelHit::L1);
    }

    #[test]
    fn streaming_counts_memory_bytes() {
        let mut h = power3_like();
        let n_lines = 1024u64; // 128 KB, exceeds both levels
        for i in 0..n_lines {
            h.access(i * 128);
        }
        assert_eq!(h.memory_bytes, n_lines * 128);
        assert_eq!(h.dram_access_rate(), 1.0);
    }

    #[test]
    fn small_working_set_hits_l1() {
        let mut h = power3_like();
        let ws = trace::unit_stride(0, 16, 8); // 16 doubles = 2 lines
        h.run_trace(ws.clone());
        let rate = h.run_trace(ws);
        assert!(rate > 0.99, "resident working set must hit, got {rate}");
        assert!(h.level_hits(0) > 0);
    }

    #[test]
    fn blocked_reuse_beats_streaming() {
        // The cache-blocking optimization from the paper's LBMHD/Cactus ports:
        // process a 32 KB array in 2 KB blocks touched 4x each vs 4 full sweeps.
        let total = 256 * 1024 / 8; // 32768 doubles, exceeds L1 and L2
        let mut blocked = power3_like();
        let mut streamed = power3_like();
        // Streaming: 4 sweeps over the full array.
        for _ in 0..4 {
            streamed.run_trace(trace::unit_stride(0, total, 8));
        }
        // Blocked: each 2 KB block swept 4 times before moving on.
        let block = 2 * 1024 / 8;
        for b in 0..(total / block) {
            for _ in 0..4 {
                blocked.run_trace(trace::unit_stride((b * block * 8) as u64, block, 8));
            }
        }
        assert!(
            blocked.memory_bytes < streamed.memory_bytes,
            "blocking must reduce DRAM traffic: {} vs {}",
            blocked.memory_bytes,
            streamed.memory_bytes
        );
    }

    #[test]
    fn reset_restores_cold_state() {
        let mut h = power3_like();
        h.access(0);
        h.reset();
        assert_eq!(h.accesses, 0);
        assert_eq!(h.access(0), LevelHit::Memory);
    }
}
