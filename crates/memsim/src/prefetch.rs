//! Hardware stream-prefetch engine model.
//!
//! The Power3/Power4 prefetch engines detect runs of consecutive cache-line
//! accesses and start fetching ahead; §5.2 of the paper attributes Cactus's
//! poor Power performance to these engines *disengaging* whenever the
//! stencil sweep skips over multi-layer ghost zones, breaking the unit-stride
//! run. This module reproduces that mechanism: streams must observe
//! `min_run_to_engage` consecutive lines before they prefetch, and any break
//! in the run resets them.

/// Prefetcher geometry and policy.
#[derive(Debug, Clone, Copy)]
pub struct PrefetchConfig {
    /// Number of independent stream trackers (Power3 has 4, Power4 has 8).
    pub num_streams: usize,
    /// Consecutive same-direction line accesses required before the stream
    /// engages (IBM engines need 2–4 misses in ascending order).
    pub min_run_to_engage: usize,
    /// Cache-line size in bytes.
    pub line_bytes: usize,
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        Self {
            num_streams: 8,
            min_run_to_engage: 3,
            line_bytes: 128,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Stream {
    /// Next expected line number.
    next_line: u64,
    /// Length of the current consecutive run.
    run: usize,
    /// Last use timestamp for LRU stream replacement.
    last_used: u64,
    valid: bool,
}

/// A bank of sequential stream trackers.
///
/// Feed it the *line-granularity* access sequence; it reports which accesses
/// would have been covered by an engaged prefetch stream. The summary
/// statistic, [`StreamPrefetcher::coverage`], is the fraction of accesses a
/// real prefetch engine would have hidden — the paper's "hardware streams
/// disengaged for the majority of the time" maps to low coverage.
#[derive(Debug, Clone)]
pub struct StreamPrefetcher {
    config: PrefetchConfig,
    streams: Vec<Stream>,
    clock: u64,
    /// Total accesses observed.
    pub accesses: u64,
    /// Accesses covered by an engaged stream.
    pub covered: u64,
}

impl StreamPrefetcher {
    /// New prefetcher with all streams invalid.
    pub fn new(config: PrefetchConfig) -> Self {
        assert!(config.num_streams >= 1);
        Self {
            streams: vec![
                Stream {
                    next_line: 0,
                    run: 0,
                    last_used: 0,
                    valid: false
                };
                config.num_streams
            ],
            config,
            clock: 0,
            accesses: 0,
            covered: 0,
        }
    }

    /// Observe one byte-address access. Returns `true` when an engaged stream
    /// covered it (i.e. the data would already be in flight).
    pub fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        self.accesses += 1;
        let line = addr / self.config.line_bytes as u64;

        // Look for a stream expecting exactly this line (advance it)...
        if let Some(s) = self
            .streams
            .iter_mut()
            .find(|s| s.valid && s.next_line == line)
        {
            s.next_line = line + 1;
            s.run += 1;
            s.last_used = self.clock;
            if s.run >= self.config.min_run_to_engage {
                self.covered += 1;
                return true;
            }
            return false;
        }
        // ...or one whose current line this access still falls on (several
        // element accesses land in each cache line).
        if let Some(s) = self
            .streams
            .iter_mut()
            .find(|s| s.valid && s.next_line == line + 1)
        {
            s.last_used = self.clock;
            if s.run >= self.config.min_run_to_engage {
                self.covered += 1;
                return true;
            }
            return false;
        }

        // Otherwise (re)allocate the LRU stream to start a new run here.
        let lru = self
            .streams
            .iter_mut()
            .min_by_key(|s| if s.valid { s.last_used } else { 0 })
            .expect("at least one stream");
        *lru = Stream {
            next_line: line + 1,
            run: 1,
            last_used: self.clock,
            valid: true,
        };
        false
    }

    /// Fraction of accesses covered by engaged streams.
    pub fn coverage(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.covered as f64 / self.accesses as f64
        }
    }

    /// Reset all streams and statistics.
    pub fn reset(&mut self) {
        for s in &mut self.streams {
            s.valid = false;
            s.run = 0;
        }
        self.clock = 0;
        self.accesses = 0;
        self.covered = 0;
    }
}

/// Estimate prefetch coverage for an interior-sweep-with-ghost-zones pattern
/// analytically: sweeping `interior` contiguous elements then skipping
/// `ghost` elements, repeated per row.
///
/// The engine engages on the `min_run_to_engage`-th consecutive line, so a
/// run spanning `run_lines` cache lines loses the first
/// `min_run_to_engage - 1` lines to re-detection after every ghost-zone
/// skip: coverage is `(run_lines - (engage-1)) / run_lines`. This is the
/// closed-form twin of simulating [`StreamPrefetcher`] on
/// [`crate::trace::ghost_zone_sweep`].
pub fn ghost_zone_coverage(
    interior_elems: usize,
    elem_bytes: usize,
    config: &PrefetchConfig,
) -> f64 {
    let run_lines = (interior_elems * elem_bytes) as f64 / config.line_bytes as f64;
    let lost = (config.min_run_to_engage - 1) as f64;
    if run_lines <= lost {
        return 0.0;
    }
    (run_lines - lost) / run_lines
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace;

    fn pf() -> StreamPrefetcher {
        StreamPrefetcher::new(PrefetchConfig {
            num_streams: 4,
            min_run_to_engage: 3,
            line_bytes: 128,
        })
    }

    #[test]
    fn long_unit_stride_is_covered() {
        let mut p = pf();
        for a in trace::unit_stride(0, 4096, 128) {
            p.access(a);
        }
        assert!(p.coverage() > 0.99, "long run coverage {}", p.coverage());
    }

    #[test]
    fn short_runs_never_engage() {
        let mut p = pf();
        // Runs of 2 lines, then a jump: never reaches min_run_to_engage.
        for block in 0..100u64 {
            p.access(block * 1_000_000);
            p.access(block * 1_000_000 + 128);
        }
        assert_eq!(p.covered, 0);
    }

    #[test]
    fn ghost_zone_skips_hurt_coverage() {
        let mut contiguous = pf();
        let mut ghosty = pf();
        // 64 rows of 32 lines each.
        for a in trace::unit_stride(0, 64 * 32, 128) {
            contiguous.access(a);
        }
        for a in trace::ghost_zone_sweep(64, 32, 8, 128) {
            ghosty.access(a);
        }
        assert!(
            ghosty.coverage() < contiguous.coverage() - 0.05,
            "ghost zones must reduce coverage: {} vs {}",
            ghosty.coverage(),
            contiguous.coverage()
        );
    }

    #[test]
    fn multiple_interleaved_streams_tracked() {
        let mut p = pf();
        // Two interleaved ascending streams, within the 4-stream capacity.
        for i in 0..200u64 {
            p.access(i * 128);
            p.access(0x100_0000 + i * 128);
        }
        assert!(p.coverage() > 0.9, "coverage {}", p.coverage());
    }

    #[test]
    fn stream_thrashing_when_over_capacity() {
        let mut p = StreamPrefetcher::new(PrefetchConfig {
            num_streams: 2,
            min_run_to_engage: 3,
            line_bytes: 128,
        });
        // Four interleaved streams with only two trackers: constant replacement.
        for i in 0..200u64 {
            for s in 0..4u64 {
                p.access(s * 0x100_0000 + i * 128);
            }
        }
        assert!(p.coverage() < 0.1, "thrashed coverage {}", p.coverage());
    }

    #[test]
    fn analytic_matches_simulated_shape() {
        let cfg = PrefetchConfig {
            num_streams: 4,
            min_run_to_engage: 3,
            line_bytes: 128,
        };
        // 32-line interior rows: analytic coverage (32-3)/32.
        let analytic = ghost_zone_coverage(32 * 16, 8, &cfg);
        let mut p = StreamPrefetcher::new(cfg);
        for a in trace::ghost_zone_sweep(128, 32, 4, 128) {
            p.access(a);
        }
        assert!(
            (analytic - p.coverage()).abs() < 0.05,
            "{analytic} vs {}",
            p.coverage()
        );
    }

    #[test]
    fn tiny_interior_has_zero_analytic_coverage() {
        let cfg = PrefetchConfig::default();
        assert_eq!(ghost_zone_coverage(16, 8, &cfg), 0.0);
    }
}
