//! Interleaved banked-memory model for cacheless vector machines.
//!
//! The Earth Simulator's FPLRAM (24 ns bank cycle) and the X1's memory ports
//! deliver full bandwidth only when consecutive vector element accesses land
//! in *different* banks. A stride that is a multiple of the bank count — or a
//! gather concentrated on a few small arrays, as in GTC's charge deposition —
//! revisits busy banks and serializes. GTC's `duplicate` pragma fix (§6.1,
//! +37% on the deposition routine) is modelled by [`BankedMemory::duplicate`],
//! which spreads logical copies of a hot array across banks.

/// Banked memory geometry.
#[derive(Debug, Clone, Copy)]
pub struct BankConfig {
    /// Number of interleaved banks (the ES uses 2048 banks per node group;
    /// scaled-down values are fine for behavioural studies).
    pub num_banks: usize,
    /// Bank busy (cycle) time in CPU cycles: after an access, the bank cannot
    /// service another for this many cycles.
    pub bank_cycle: u64,
    /// Interleave granularity in bytes (one 64-bit word on the ES).
    pub word_bytes: usize,
}

impl Default for BankConfig {
    fn default() -> Self {
        // ES-like: 24 ns bank cycle at 500 MHz = 12 CPU cycles.
        Self {
            num_banks: 512,
            bank_cycle: 12,
            word_bytes: 8,
        }
    }
}

/// Simulates the issue of a vector memory instruction's element accesses into
/// interleaved banks, counting stall cycles from bank conflicts.
#[derive(Debug, Clone)]
pub struct BankedMemory {
    config: BankConfig,
    /// Cycle at which each bank becomes free again.
    busy_until: Vec<u64>,
    clock: u64,
    /// Total element accesses.
    pub accesses: u64,
    /// Total stall cycles caused by conflicts.
    pub stall_cycles: u64,
    /// Replication factor applied per logical address region (the
    /// `duplicate` pragma model): accesses rotate across `dup` images.
    dup: usize,
    dup_rr: usize,
    /// Banks mapped out by fault injection: accesses that land on a failed
    /// bank are redirected to the next surviving bank, degrading the
    /// interleave and forcing the conflict-heavy fallback path.
    failed: Vec<bool>,
    failed_banks: usize,
    /// Element accesses that hit a failed bank and were remapped.
    pub remapped_accesses: u64,
    /// Accesses by bank-queue depth at arrival: `depth_counts[d]` is how
    /// many accesses found `d` earlier accesses still occupying their
    /// bank. Indexed rather than mapped because `access` is the
    /// per-element hot path; grows lazily to the deepest queue seen.
    depth_counts: Vec<u64>,
}

impl BankedMemory {
    /// Fresh banked memory, all banks idle.
    pub fn new(config: BankConfig) -> Self {
        assert!(config.num_banks >= 1);
        Self {
            busy_until: vec![0; config.num_banks],
            config,
            clock: 0,
            accesses: 0,
            stall_cycles: 0,
            dup: 1,
            dup_rr: 0,
            failed: vec![false; config.num_banks],
            failed_banks: 0,
            remapped_accesses: 0,
            depth_counts: Vec::new(),
        }
    }

    /// Mark one bank as failed: the hardware maps it out and its share of
    /// the interleave piles onto the next surviving bank. At least one
    /// bank must survive.
    pub fn fail_bank(&mut self, bank: usize) {
        assert!(bank < self.config.num_banks, "bank {bank} out of range");
        if !self.failed[bank] {
            self.failed[bank] = true;
            self.failed_banks += 1;
        }
        assert!(
            self.failed_banks < self.config.num_banks,
            "at least one bank must survive"
        );
    }

    /// Number of banks currently mapped out.
    pub fn failed_bank_count(&self) -> usize {
        self.failed_banks
    }

    /// Model the compiler's `duplicate` directive: create `copies` images of
    /// the address space offset by one bank each; successive accesses rotate
    /// across images so that repeated hits on one hot word spread over
    /// `copies` banks.
    pub fn duplicate(&mut self, copies: usize) {
        assert!(copies >= 1);
        self.dup = copies;
    }

    fn bank_of(&mut self, addr: u64) -> usize {
        let word = addr / self.config.word_bytes as u64;
        let img = if self.dup > 1 {
            self.dup_rr = (self.dup_rr + 1) % self.dup;
            // Image copies are laid out `num_banks / dup` banks apart so that
            // rotating across images spreads a hot word evenly over banks.
            (self.dup_rr * (self.config.num_banks / self.dup).max(1)) as u64
        } else {
            0
        };
        let mut bank = ((word + img) % self.config.num_banks as u64) as usize;
        if self.failed_banks > 0 && self.failed[bank] {
            self.remapped_accesses += 1;
            while self.failed[bank] {
                bank = (bank + 1) % self.config.num_banks;
            }
        }
        bank
    }

    /// Issue one element access at the current clock; advances the clock by
    /// one issue slot and adds any conflict stall. Returns the stall incurred.
    pub fn access(&mut self, addr: u64) -> u64 {
        self.accesses += 1;
        let bank = self.bank_of(addr);
        self.clock += 1; // one element issues per cycle when conflict-free
        let stall = self.busy_until[bank].saturating_sub(self.clock);
        // Queue depth at arrival: how many bank-cycle slots of earlier
        // work this access waits behind (0 when conflict-free).
        let depth = stall.div_ceil(self.config.bank_cycle.max(1)) as usize;
        if depth >= self.depth_counts.len() {
            self.depth_counts.resize(depth + 1, 0);
        }
        self.depth_counts[depth] += 1;
        self.clock += stall;
        self.stall_cycles += stall;
        self.busy_until[bank] = self.clock + self.config.bank_cycle;
        stall
    }

    /// Issue a whole strided vector access (`n` elements starting at `base`
    /// with `stride_words` spacing). Returns total stall cycles for the
    /// instruction.
    pub fn strided_access(&mut self, base: u64, n: usize, stride_words: usize) -> u64 {
        let mut stalls = 0;
        for i in 0..n {
            stalls += self.access(base + (i * stride_words * self.config.word_bytes) as u64);
        }
        stalls
    }

    /// Issue a gather/scatter over explicit word indices.
    pub fn gather(&mut self, base: u64, indices: &[usize]) -> u64 {
        let mut stalls = 0;
        for &ix in indices {
            stalls += self.access(base + (ix * self.config.word_bytes) as u64);
        }
        stalls
    }

    /// Average stall cycles per access so far.
    pub fn stall_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.stall_cycles as f64 / self.accesses as f64
        }
    }

    /// Effective throughput as a fraction of peak (1 element/cycle).
    pub fn efficiency(&self) -> f64 {
        if self.accesses == 0 {
            1.0
        } else {
            self.accesses as f64 / (self.accesses as f64 + self.stall_cycles as f64)
        }
    }

    /// Report this memory's counters into a [`Recorder`] under the
    /// `memsim.bank.*` names (bank-conflict stalls are the `stall_cycles`
    /// counter; `efficiency` can be recomputed as
    /// `accesses / (accesses + stall_cycles)`).
    pub fn record_to(&self, r: &dyn pvs_obs::Recorder) {
        r.add("memsim.bank.accesses", self.accesses);
        r.add("memsim.bank.stall_cycles", self.stall_cycles);
        if self.failed_banks > 0 {
            r.add("memsim.bank.failed_banks", self.failed_banks as u64);
            r.add("memsim.bank.remapped_accesses", self.remapped_accesses);
        }
        let depths = self.queue_depths();
        if !depths.is_empty() {
            let entries: Vec<(&str, u64, u64)> = depths
                .iter()
                .map(|&(d, n)| ("memsim.hist.bank_queue_depth", d, n))
                .collect();
            r.record_many(&entries);
        }
    }

    /// Sorted `(queue_depth, accesses)` pairs for every depth that
    /// occurred: the per-access distribution of how many earlier
    /// bank-cycle slots each access queued behind. Simulated units only
    /// — a pure function of the access stream, like every other counter
    /// here.
    pub fn queue_depths(&self) -> Vec<(u64, u64)> {
        self.depth_counts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(d, &n)| (d as u64, n))
            .collect()
    }

    /// Reset banks and statistics (keeps the duplication setting and any
    /// injected bank faults — the hardware stays broken across phases).
    pub fn reset(&mut self) {
        self.busy_until.iter_mut().for_each(|b| *b = 0);
        self.clock = 0;
        self.accesses = 0;
        self.stall_cycles = 0;
        self.remapped_accesses = 0;
        self.depth_counts.clear();
    }

    /// The configured geometry.
    pub fn config(&self) -> BankConfig {
        self.config
    }
}

/// Closed-form conflict-free condition: a constant stride `s` (in words) over
/// `b` banks achieves full throughput iff `gcd(s, b)*bank_cycle <= b`,
/// i.e. the access rotates through `b/gcd(s,b)` distinct banks, which must
/// cover the bank busy time.
pub fn stride_is_conflict_free(stride_words: usize, config: &BankConfig) -> bool {
    let g = gcd(stride_words.max(1), config.num_banks);
    let distinct = config.num_banks / g;
    distinct as u64 >= config.bank_cycle
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> BankedMemory {
        BankedMemory::new(BankConfig {
            num_banks: 64,
            bank_cycle: 8,
            word_bytes: 8,
        })
    }

    #[test]
    fn record_to_exports_access_and_stall_counters() {
        let mut m = mem();
        m.strided_access(0, 256, 64); // bank-count stride: heavy conflicts
        let reg = pvs_obs::Registry::new();
        m.record_to(&reg);
        assert_eq!(reg.counter("memsim.bank.accesses"), m.accesses);
        assert_eq!(reg.counter("memsim.bank.stall_cycles"), m.stall_cycles);
        assert!(reg.counter("memsim.bank.stall_cycles") > 0);
    }

    #[test]
    fn queue_depth_distribution_tracks_conflicts() {
        let mut free = mem();
        free.strided_access(0, 256, 1);
        // Conflict-free: every access found an idle bank.
        assert_eq!(free.queue_depths(), vec![(0, 256)]);

        let mut jam = mem();
        jam.strided_access(0, 256, 64); // every access hits one bank
        let depths = jam.queue_depths();
        assert_eq!(depths.iter().map(|&(_, n)| n).sum::<u64>(), 256);
        assert!(
            depths.iter().any(|&(d, _)| d > 0),
            "single-bank stream must queue: {depths:?}"
        );
        let reg = pvs_obs::Registry::new();
        jam.record_to(&reg);
        let h = reg.hist("memsim.hist.bank_queue_depth").unwrap();
        assert_eq!(h.count(), 256);

        jam.reset();
        assert!(jam.queue_depths().is_empty());
    }

    #[test]
    fn unit_stride_is_free() {
        let mut m = mem();
        let stalls = m.strided_access(0, 1024, 1);
        assert_eq!(stalls, 0);
        assert_eq!(m.efficiency(), 1.0);
    }

    #[test]
    fn power_of_two_stride_conflicts() {
        let mut m = mem();
        // stride 64 words = bank count: every access hits bank 0.
        let stalls = m.strided_access(0, 256, 64);
        assert!(stalls > 0);
        assert!(m.efficiency() < 0.2, "eff {}", m.efficiency());
    }

    #[test]
    fn odd_stride_is_free() {
        let mut m = mem();
        let stalls = m.strided_access(0, 1024, 17);
        assert_eq!(stalls, 0, "odd strides rotate through all banks");
    }

    #[test]
    fn conflict_free_predicate_matches_simulation() {
        let cfg = BankConfig {
            num_banks: 64,
            bank_cycle: 8,
            word_bytes: 8,
        };
        for stride in [1usize, 2, 3, 7, 8, 16, 17, 32, 64] {
            let mut m = BankedMemory::new(cfg);
            let stalls = m.strided_access(0, 512, stride);
            let predicted = stride_is_conflict_free(stride, &cfg);
            assert_eq!(
                stalls == 0,
                predicted,
                "stride {stride}: sim stalls {stalls}, predicted free {predicted}"
            );
        }
    }

    #[test]
    fn hot_array_gather_conflicts() {
        // GTC's pathology: gather concentrated on a few small arrays.
        let mut m = mem();
        let hot: Vec<usize> = (0..512).map(|i| i % 4).collect(); // 4 hot words
        let stalls = m.gather(0, &hot);
        assert!(stalls > 0, "repeated hot-word access must conflict");
    }

    #[test]
    fn duplicate_pragma_reduces_conflicts() {
        let hot: Vec<usize> = (0..512).map(|i| i % 4).collect();
        let mut plain = mem();
        let s_plain = plain.gather(0, &hot);
        let mut dup = mem();
        dup.duplicate(16);
        let s_dup = dup.gather(0, &hot);
        assert!(
            s_dup < s_plain / 2,
            "duplication must at least halve stalls: {s_dup} vs {s_plain}"
        );
    }

    #[test]
    fn random_gather_mostly_free() {
        // Pseudorandom spread across a large array ~ few conflicts.
        let mut m = mem();
        let idx: Vec<usize> = (0..2048usize).map(|i| (i * 2654435761) % 100_000).collect();
        m.gather(0, &idx);
        assert!(m.efficiency() > 0.8, "eff {}", m.efficiency());
    }

    #[test]
    fn failed_bank_forces_conflict_fallback() {
        let mut healthy = mem();
        assert_eq!(healthy.strided_access(0, 1024, 1), 0);
        let mut broken = mem();
        broken.fail_bank(0);
        let stalls = broken.strided_access(0, 1024, 1);
        assert!(stalls > 0, "remapped bank 0 must collide with bank 1");
        assert!(broken.efficiency() < healthy.efficiency());
        assert!(broken.remapped_accesses > 0);
        assert_eq!(broken.failed_bank_count(), 1);
    }

    #[test]
    fn zero_faults_leave_behaviour_bitwise_identical() {
        let idx: Vec<usize> = (0..1024usize).map(|i| (i * 2654435761) % 9973).collect();
        let mut a = mem();
        let mut b = mem();
        let sa = a.gather(0, &idx);
        let sb = b.gather(0, &idx);
        assert_eq!(sa, sb);
        assert_eq!(a.remapped_accesses, 0);
        assert_eq!(a.failed_bank_count(), 0);
    }

    #[test]
    fn faulted_counters_are_exported() {
        let mut m = mem();
        m.fail_bank(3);
        m.strided_access(0, 256, 1);
        let reg = pvs_obs::Registry::new();
        m.record_to(&reg);
        assert_eq!(reg.counter("memsim.bank.failed_banks"), 1);
        assert!(reg.counter("memsim.bank.remapped_accesses") > 0);
    }

    #[test]
    fn reset_keeps_injected_faults() {
        let mut m = mem();
        m.fail_bank(0);
        m.strided_access(0, 64, 1);
        m.reset();
        assert_eq!(m.remapped_accesses, 0);
        assert_eq!(m.failed_bank_count(), 1);
        m.access(0);
        assert_eq!(m.remapped_accesses, 1, "bank 0 is still mapped out");
    }

    #[test]
    #[should_panic(expected = "at least one bank must survive")]
    fn last_bank_cannot_fail() {
        let mut m = BankedMemory::new(BankConfig {
            num_banks: 2,
            bank_cycle: 8,
            word_bytes: 8,
        });
        m.fail_bank(0);
        m.fail_bank(1);
    }

    #[test]
    fn reset_clears_state() {
        let mut m = mem();
        m.strided_access(0, 64, 64);
        m.reset();
        assert_eq!(m.accesses, 0);
        assert_eq!(m.stall_cycles, 0);
        assert_eq!(m.strided_access(8, 1, 1), 0);
    }
}
