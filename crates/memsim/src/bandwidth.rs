//! Analytic effective-bandwidth model.
//!
//! The performance engine in `pvs-core` needs, for every kernel phase, the
//! *sustained* memory bandwidth a platform delivers for that phase's access
//! pattern and working set. This module provides a closed-form model whose
//! ingredients are each validated against the trace-driven simulators in
//! this crate:
//!
//! * **cache capture** — if the per-processor working set fits in a cache
//!   level, traffic is served at that level's (higher) bandwidth;
//! * **line utilization** — strided/indirect patterns waste the unused part
//!   of each fetched line (cache machines) or memory word group;
//! * **prefetch engagement** — DRAM streams without engaged prefetch run at
//!   latency-limited, not bandwidth-limited, speed (the Cactus-on-Power
//!   pathology);
//! * **bank conflicts** — vector machines lose throughput to conflicting
//!   strides (delegated to [`crate::banks`]).

use crate::hierarchy::HierarchyConfig;

/// Memory access pattern of a kernel phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AccessPattern {
    /// Contiguous unit-stride streams (LBMHD collision, Cactus interior).
    UnitStride,
    /// Constant stride of `stride_elems` elements of `elem_bytes` each
    /// (stream-step copies, transposed accesses).
    Strided {
        stride_elems: usize,
        elem_bytes: usize,
    },
    /// Data-dependent gather/scatter (GTC deposition/gather); `reuse` in
    /// `[0,1]` is the fraction of accesses that re-touch a recently used
    /// line (spatially clustered particles have high reuse).
    Indirect { elem_bytes: usize, reuse: f64 },
    /// Unit-stride runs of `interior_elems` elements interrupted by
    /// ghost-zone skips (Cactus stencil sweeps), with `streams` distinct
    /// arrays swept concurrently (each needs its own prefetch tracker).
    GhostZoneSweep {
        interior_elems: usize,
        elem_bytes: usize,
        streams: usize,
    },
}

/// Relative bandwidth multipliers for cache levels vs DRAM. These are
/// conventional superscalar ratios (L1 runs near core bandwidth).
const LEVEL_BW_MULTIPLIER_DEFAULT: [f64; 3] = [8.0, 4.0, 2.0];

/// Default sustained fraction of *peak DRAM* bandwidth achievable by pure
/// streaming with prefetch fully engaged (STREAM-like efficiency).
pub const DEFAULT_STREAM_EFFICIENCY: f64 = 0.75;

/// Fraction of peak achievable when prefetch is disengaged and every line
/// fetch exposes full memory latency.
const LATENCY_BOUND_FRACTION: f64 = 0.15;

/// Analytic bandwidth model for one (superscalar) platform.
#[derive(Debug, Clone)]
pub struct BandwidthModel {
    /// Peak DRAM bandwidth per processor, GB/s (Table 1 "Memory BW").
    pub peak_dram_gbs: f64,
    /// Cache geometry (empty for cacheless vector machines).
    pub hierarchy: Option<HierarchyConfig>,
    /// Cache-line size in bytes.
    pub line_bytes: usize,
    /// Bandwidth multiplier for each cache level relative to DRAM.
    pub level_multiplier: [f64; 3],
    /// Whether a hardware stream prefetcher exists (IBM Power machines; the
    /// Itanium2 relies on software prefetch which we treat as engaged).
    pub has_stream_prefetch: bool,
    /// Sustained fraction of peak achievable by perfect streaming (a
    /// STREAM-benchmark-like machine constant; Power4 and Itanium2 sustain
    /// less of their nominal bandwidth than the Power3 does).
    pub stream_efficiency: f64,
    /// Hardware prefetch engine geometry (tracker count matters: a stencil
    /// sweeping more arrays than there are trackers thrashes the engine —
    /// the paper's Cactus-on-Power3 pathology).
    pub prefetch: crate::prefetch::PrefetchConfig,
}

impl BandwidthModel {
    /// Model for a cache-based machine.
    pub fn cached(
        peak_dram_gbs: f64,
        hierarchy: HierarchyConfig,
        line_bytes: usize,
        has_stream_prefetch: bool,
    ) -> Self {
        Self {
            peak_dram_gbs,
            hierarchy: Some(hierarchy),
            line_bytes,
            level_multiplier: LEVEL_BW_MULTIPLIER_DEFAULT,
            has_stream_prefetch,
            stream_efficiency: DEFAULT_STREAM_EFFICIENCY,
            prefetch: crate::prefetch::PrefetchConfig::default(),
        }
    }

    /// Model for a cacheless (vector) machine: bandwidth is pattern-dependent
    /// only through bank behaviour, which the vector execution model applies
    /// separately.
    pub fn cacheless(peak_dram_gbs: f64) -> Self {
        Self {
            peak_dram_gbs,
            hierarchy: None,
            line_bytes: 8,
            level_multiplier: [1.0; 3],
            has_stream_prefetch: false,
            stream_efficiency: DEFAULT_STREAM_EFFICIENCY,
            prefetch: crate::prefetch::PrefetchConfig::default(),
        }
    }

    /// Innermost cache level (0-based) whose capacity holds `working_set`
    /// bytes, if any.
    pub fn capturing_level(&self, working_set_bytes: usize) -> Option<usize> {
        let h = self.hierarchy.as_ref()?;
        h.levels
            .iter()
            .position(|l| working_set_bytes <= l.size_bytes)
    }

    /// Fraction of each fetched line actually consumed by the pattern.
    pub fn line_utilization(&self, pattern: AccessPattern) -> f64 {
        match pattern {
            AccessPattern::UnitStride => 1.0,
            AccessPattern::GhostZoneSweep { .. } => 1.0,
            AccessPattern::Strided {
                stride_elems,
                elem_bytes,
            } => {
                let span = stride_elems * elem_bytes;
                if span <= self.line_bytes {
                    1.0
                } else {
                    elem_bytes as f64 / self.line_bytes as f64
                }
            }
            AccessPattern::Indirect { elem_bytes, reuse } => {
                let base = elem_bytes as f64 / self.line_bytes as f64;
                // Reused lines amortize their fetch across several accesses.
                (base + reuse * (1.0 - base)).clamp(0.0, 1.0)
            }
        }
    }

    /// Whether the pattern keeps a hardware stream prefetcher engaged.
    pub fn prefetch_engaged(&self, pattern: AccessPattern) -> f64 {
        if self.hierarchy.is_none() {
            return 1.0; // vector loads are pipelined, not prefetched
        }
        if !self.has_stream_prefetch {
            return 1.0; // treat software-prefetch machines as engaged
        }
        match pattern {
            AccessPattern::UnitStride => 1.0,
            AccessPattern::Strided {
                stride_elems,
                elem_bytes,
            } => {
                if stride_elems * elem_bytes <= self.line_bytes {
                    1.0
                } else {
                    0.0 // strided line-skipping defeats the engines
                }
            }
            AccessPattern::Indirect { .. } => 0.0,
            AccessPattern::GhostZoneSweep {
                interior_elems,
                elem_bytes,
                streams,
            } => {
                if streams > self.prefetch.num_streams {
                    // More concurrent array sweeps than trackers: the
                    // engine thrashes and almost nothing is covered.
                    0.05
                } else {
                    crate::prefetch::ghost_zone_coverage(interior_elems, elem_bytes, &self.prefetch)
                }
            }
        }
    }

    /// Sustained bandwidth in GB/s for a phase touching `working_set_bytes`
    /// per processor with the given pattern.
    pub fn sustained_gbs(&self, working_set_bytes: usize, pattern: AccessPattern) -> f64 {
        // Cache capture: served at the capturing level's bandwidth.
        if let Some(level) = self.capturing_level(working_set_bytes) {
            return self.peak_dram_gbs
                * self.level_multiplier[level.min(2)]
                * self.line_utilization(pattern).max(0.25);
        }
        // DRAM-bound.
        let engaged = self.prefetch_engaged(pattern);
        let base = self.stream_efficiency * engaged + LATENCY_BOUND_FRACTION * (1.0 - engaged);
        let mut util = self.line_utilization(pattern);
        if let AccessPattern::GhostZoneSweep { streams, .. } = pattern {
            if self.has_stream_prefetch && streams > self.prefetch.num_streams {
                // Thrashing: the interleaved sweeps evict each other's
                // lines before they are fully consumed, on top of the
                // disengaged prefetch (§5.2: "stalled on memory requests
                // even though only a fraction of the available memory
                // bandwidth is utilized").
                util *= 0.25;
            }
        }
        self.peak_dram_gbs * base * util
    }

    /// Sustained fraction of peak DRAM bandwidth (convenience).
    pub fn sustained_fraction(&self, working_set_bytes: usize, pattern: AccessPattern) -> f64 {
        self.sustained_gbs(working_set_bytes, pattern) / self.peak_dram_gbs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;

    fn power3_model() -> BandwidthModel {
        BandwidthModel::cached(
            0.7,
            HierarchyConfig::two_level(
                CacheConfig::new(128 * 1024, 128, 128),
                CacheConfig::new(8 * 1024 * 1024, 128, 4),
            ),
            128,
            true,
        )
    }

    #[test]
    fn cache_resident_beats_dram() {
        let m = power3_model();
        let small = m.sustained_gbs(64 * 1024, AccessPattern::UnitStride);
        let large = m.sustained_gbs(64 * 1024 * 1024, AccessPattern::UnitStride);
        assert!(small > 2.0 * large, "{small} vs {large}");
    }

    #[test]
    fn level_ordering_monotonic() {
        let m = power3_model();
        let l1 = m.sustained_gbs(32 * 1024, AccessPattern::UnitStride);
        let l2 = m.sustained_gbs(4 * 1024 * 1024, AccessPattern::UnitStride);
        let dram = m.sustained_gbs(1 << 30, AccessPattern::UnitStride);
        assert!(l1 > l2 && l2 > dram);
    }

    #[test]
    fn indirect_is_slowest_dram_pattern() {
        let m = power3_model();
        let ws = 1 << 30;
        let unit = m.sustained_gbs(ws, AccessPattern::UnitStride);
        let ind = m.sustained_gbs(
            ws,
            AccessPattern::Indirect {
                elem_bytes: 8,
                reuse: 0.0,
            },
        );
        assert!(ind < unit / 5.0, "{ind} vs {unit}");
    }

    #[test]
    fn reuse_improves_indirect() {
        let m = power3_model();
        let ws = 1 << 30;
        let cold = m.sustained_gbs(
            ws,
            AccessPattern::Indirect {
                elem_bytes: 8,
                reuse: 0.0,
            },
        );
        let warm = m.sustained_gbs(
            ws,
            AccessPattern::Indirect {
                elem_bytes: 8,
                reuse: 0.9,
            },
        );
        assert!(warm > 2.0 * cold);
    }

    #[test]
    fn large_stride_wastes_lines() {
        let m = power3_model();
        let ws = 1 << 30;
        let unit = m.sustained_gbs(ws, AccessPattern::UnitStride);
        let strided = m.sustained_gbs(
            ws,
            AccessPattern::Strided {
                stride_elems: 64,
                elem_bytes: 8,
            },
        );
        assert!(strided < unit / 4.0);
    }

    #[test]
    fn small_stride_within_line_is_fine() {
        let m = power3_model();
        let ws = 1 << 30;
        let s = m.sustained_gbs(
            ws,
            AccessPattern::Strided {
                stride_elems: 2,
                elem_bytes: 8,
            },
        );
        let u = m.sustained_gbs(ws, AccessPattern::UnitStride);
        assert!((s - u).abs() < 1e-12);
    }

    #[test]
    fn ghost_zone_sweep_degrades_with_short_rows() {
        let m = power3_model();
        let ws = 1 << 30;
        let long = m.sustained_gbs(
            ws,
            AccessPattern::GhostZoneSweep {
                interior_elems: 4096,
                elem_bytes: 8,
                streams: 2,
            },
        );
        let short = m.sustained_gbs(
            ws,
            AccessPattern::GhostZoneSweep {
                interior_elems: 64,
                elem_bytes: 8,
                streams: 2,
            },
        );
        assert!(short < long, "{short} vs {long}");
    }

    #[test]
    fn bandwidth_monotonic_in_working_set() {
        // Deterministic sweep: growing the working set never increases
        // sustained bandwidth (cache capture only ever helps), for every
        // access pattern, across sizes straddling both cache capacities.
        let m = power3_model();
        let patterns = [
            AccessPattern::UnitStride,
            AccessPattern::Strided {
                stride_elems: 4,
                elem_bytes: 8,
            },
            AccessPattern::Strided {
                stride_elems: 64,
                elem_bytes: 8,
            },
            AccessPattern::Indirect {
                elem_bytes: 8,
                reuse: 0.5,
            },
            AccessPattern::GhostZoneSweep {
                interior_elems: 512,
                elem_bytes: 8,
                streams: 2,
            },
        ];
        for pattern in patterns {
            let mut prev = f64::INFINITY;
            for shift in 10..31 {
                let ws = 1usize << shift;
                let bw = m.sustained_gbs(ws, pattern);
                assert!(
                    bw <= prev * (1.0 + 1e-12),
                    "ws={ws} pattern={pattern:?}: {bw} > {prev}"
                );
                prev = bw;
            }
        }
    }

    #[test]
    fn line_utilization_bounded_and_reuse_monotone() {
        // Utilization stays in (0, 1] over a stride sweep, and indirect
        // utilization never decreases with reuse.
        let m = power3_model();
        for stride in [1usize, 2, 3, 8, 15, 16, 17, 64, 255] {
            let u = m.line_utilization(AccessPattern::Strided {
                stride_elems: stride,
                elem_bytes: 8,
            });
            assert!(u > 0.0 && u <= 1.0, "stride={stride}: {u}");
        }
        let mut prev = 0.0;
        for i in 0..=10 {
            let reuse = i as f64 / 10.0;
            let u = m.line_utilization(AccessPattern::Indirect {
                elem_bytes: 8,
                reuse,
            });
            assert!(u >= prev - 1e-12, "reuse={reuse}");
            prev = u;
        }
    }

    #[test]
    fn cacheless_model_is_pattern_insensitive_here() {
        let m = BandwidthModel::cacheless(32.0);
        let a = m.sustained_gbs(1 << 30, AccessPattern::UnitStride);
        assert!((a - 32.0 * 0.75).abs() < 1e-9 || a > 0.0);
        assert!(m.capturing_level(1).is_none());
    }
}
