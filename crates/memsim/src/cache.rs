//! Single-level set-associative cache simulator with true-LRU replacement.
//!
//! The simulator is tag-only (no data payload): it answers "would this access
//! hit?" and maintains hit/miss/eviction statistics. Tag-only simulation is
//! exactly what is needed to estimate the *effective computational intensity*
//! of the superscalar platforms in the study — the quantity that decides
//! whether the Power3/Power4/Altix run a kernel compute-bound or
//! bandwidth-bound.

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes (e.g. `8 * 1024 * 1024` for the Power3 L2).
    pub size_bytes: usize,
    /// Cache-line size in bytes (all platforms in the study use 128-byte
    /// L2/L3 lines; we default to 128 elsewhere).
    pub line_bytes: usize,
    /// Set associativity; `1` means direct-mapped. A fully associative cache
    /// is expressed by `associativity == size_bytes / line_bytes`.
    pub associativity: usize,
}

impl CacheConfig {
    /// Create a config, panicking on degenerate geometry.
    pub fn new(size_bytes: usize, line_bytes: usize, associativity: usize) -> Self {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(
            size_bytes.is_multiple_of(line_bytes),
            "size must be a multiple of line size"
        );
        let lines = size_bytes / line_bytes;
        assert!(
            associativity >= 1 && associativity <= lines,
            "bad associativity"
        );
        assert!(
            lines.is_multiple_of(associativity),
            "lines must divide evenly into sets"
        );
        Self {
            size_bytes,
            line_bytes,
            associativity,
        }
    }

    /// Number of sets in the cache.
    pub fn num_sets(&self) -> usize {
        self.size_bytes / self.line_bytes / self.associativity
    }
}

/// Outcome of a single access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessResult {
    /// The line was resident.
    Hit,
    /// The line was not resident; `evicted` reports whether fetching it
    /// displaced a valid line.
    Miss { evicted: bool },
}

impl AccessResult {
    /// `true` when the access hit.
    pub fn is_hit(&self) -> bool {
        matches!(self, AccessResult::Hit)
    }
}

/// Running statistics for a cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses observed.
    pub accesses: u64,
    /// Accesses that hit.
    pub hits: u64,
    /// Valid lines displaced by fills.
    pub evictions: u64,
}

impl CacheStats {
    /// Report these statistics into a [`Recorder`] under the
    /// `memsim.cache.*` names. The invariant `hits + misses == accesses`
    /// holds for the recorded counters by construction.
    pub fn record_to(&self, r: &dyn pvs_obs::Recorder) {
        r.add("memsim.cache.accesses", self.accesses);
        r.add("memsim.cache.hits", self.hits);
        r.add("memsim.cache.misses", self.misses());
        r.add("memsim.cache.evictions", self.evictions);
    }

    /// Misses observed (`accesses - hits`).
    pub fn misses(&self) -> u64 {
        self.accesses - self.hits
    }

    /// Hit rate in `[0, 1]`; defined as 1.0 for an untouched cache so that
    /// "no traffic" never looks like pathological thrashing.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            1.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

/// A set-associative, true-LRU, tag-only cache.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// `sets[s]` holds up to `associativity` tags, most recently used last.
    sets: Vec<Vec<u64>>,
    stats: CacheStats,
    set_mask: u64,
    line_shift: u32,
}

impl Cache {
    /// Build an empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        let num_sets = config.num_sets();
        assert!(
            num_sets.is_power_of_two(),
            "number of sets must be a power of two"
        );
        Self {
            sets: vec![Vec::with_capacity(config.associativity); num_sets],
            stats: CacheStats::default(),
            set_mask: (num_sets - 1) as u64,
            line_shift: config.line_bytes.trailing_zeros(),
            config,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Access a byte address, updating LRU state and statistics.
    pub fn access(&mut self, addr: u64) -> AccessResult {
        self.stats.accesses += 1;
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let tag = line >> self.set_mask.count_ones();
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&t| t == tag) {
            // Move to MRU position.
            let t = ways.remove(pos);
            ways.push(t);
            self.stats.hits += 1;
            return AccessResult::Hit;
        }
        let evicted = if ways.len() == self.config.associativity {
            ways.remove(0); // LRU is at the front.
            self.stats.evictions += 1;
            true
        } else {
            false
        };
        ways.push(tag);
        AccessResult::Miss { evicted }
    }

    /// Whether the line containing `addr` is currently resident (no state
    /// change, no statistics update).
    pub fn probe(&self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let tag = line >> self.set_mask.count_ones();
        self.sets[set].contains(&tag)
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Invalidate all contents and reset statistics.
    pub fn reset(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
        self.stats = CacheStats::default();
    }

    /// Number of valid lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets x 2 ways x 64B lines = 512 B.
        Cache::new(CacheConfig::new(512, 64, 2))
    }

    #[test]
    fn recorded_hits_plus_misses_equal_issued_accesses() {
        let mut c = small();
        let mut issued = 0u64;
        for i in 0..257u64 {
            c.access(i * 64);
            issued += 1;
        }
        for i in 0..97u64 {
            c.access(i * 128);
            issued += 1;
        }
        let reg = pvs_obs::Registry::new();
        c.stats().record_to(&reg);
        assert_eq!(reg.counter("memsim.cache.accesses"), issued);
        assert_eq!(
            reg.counter("memsim.cache.hits") + reg.counter("memsim.cache.misses"),
            issued
        );
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        assert!(!c.access(0x1000).is_hit());
        assert!(c.access(0x1000).is_hit());
        assert!(c.access(0x1010).is_hit(), "same line, different offset");
        assert_eq!(c.stats().accesses, 3);
        assert_eq!(c.stats().hits, 2);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small();
        // Three distinct lines mapping to the same set (stride = num_sets * line).
        let stride = 4 * 64;
        c.access(0);
        c.access(stride as u64);
        // Touch line 0 again so line `stride` becomes LRU.
        c.access(0);
        // Third line evicts the LRU (line `stride`).
        let r = c.access(2 * stride as u64);
        assert_eq!(r, AccessResult::Miss { evicted: true });
        assert!(c.probe(0), "MRU line must survive");
        assert!(!c.probe(stride as u64), "LRU line must be evicted");
    }

    #[test]
    fn working_set_fits() {
        let mut c = small();
        // Working set exactly equal to capacity: 8 lines, touched twice.
        for pass in 0..2 {
            for i in 0..8u64 {
                let r = c.access(i * 64);
                if pass == 1 {
                    assert!(r.is_hit(), "second pass over resident set must hit");
                }
            }
        }
        assert_eq!(c.stats().misses(), 8);
    }

    #[test]
    fn thrashing_working_set() {
        let mut c = small();
        // 16 lines in a 8-line cache, streamed repeatedly: ~0% hits (LRU streaming).
        for _ in 0..4 {
            for i in 0..16u64 {
                c.access(i * 64);
            }
        }
        assert_eq!(
            c.stats().hits,
            0,
            "LRU streaming over 2x capacity never hits"
        );
    }

    #[test]
    fn direct_mapped_conflict() {
        let mut c = Cache::new(CacheConfig::new(256, 64, 1)); // 4 sets, 1 way
        let stride = 4 * 64;
        for _ in 0..4 {
            c.access(0);
            c.access(stride as u64);
        }
        assert_eq!(
            c.stats().hits,
            0,
            "two lines in one direct-mapped set ping-pong"
        );
    }

    #[test]
    fn fully_associative() {
        let mut c = Cache::new(CacheConfig::new(512, 64, 8)); // one set, 8 ways
        for i in 0..8u64 {
            c.access(i * 64);
        }
        for i in 0..8u64 {
            assert!(c.access(i * 64).is_hit());
        }
    }

    #[test]
    fn reset_clears() {
        let mut c = small();
        c.access(0);
        c.reset();
        assert_eq!(c.stats().accesses, 0);
        assert_eq!(c.resident_lines(), 0);
        assert!(!c.access(0).is_hit());
    }

    #[test]
    #[should_panic]
    fn rejects_bad_geometry() {
        CacheConfig::new(100, 64, 1);
    }
}
