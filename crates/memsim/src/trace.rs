//! Address-trace generators for the access patterns that appear in the
//! study's four applications.
//!
//! Traces are plain `Vec<u64>` byte addresses so they can be replayed through
//! any of the simulators in this crate. Generators cover: unit-stride sweeps
//! (LBMHD collision), strided sweeps (stream step's strided copies), blocked
//! 2D sweeps (the cache-blocking ports), ghost-zone-skipping stencil sweeps
//! (Cactus on Power), and indirect gathers (GTC deposition).

/// `n` accesses of `elem_bytes` each starting at `base`, unit stride.
pub fn unit_stride(base: u64, n: usize, elem_bytes: usize) -> Vec<u64> {
    (0..n).map(|i| base + (i * elem_bytes) as u64).collect()
}

/// `n` accesses with a constant stride of `stride_elems` elements.
pub fn strided(base: u64, n: usize, stride_elems: usize, elem_bytes: usize) -> Vec<u64> {
    (0..n)
        .map(|i| base + (i * stride_elems * elem_bytes) as u64)
        .collect()
}

/// Row-major sweep over the `interior` of each of `rows` rows, skipping
/// `ghost` elements between rows — the ghost-zone pattern that disengages
/// the IBM prefetch engines.
pub fn ghost_zone_sweep(
    rows: usize,
    interior_elems: usize,
    ghost_elems: usize,
    elem_bytes: usize,
) -> Vec<u64> {
    let row_len = interior_elems + ghost_elems;
    let mut t = Vec::with_capacity(rows * interior_elems);
    for r in 0..rows {
        let row_base = (r * row_len * elem_bytes) as u64;
        for c in 0..interior_elems {
            t.push(row_base + (c * elem_bytes) as u64);
        }
    }
    t
}

/// Blocked 2D sweep: an `n x n` array of `elem_bytes` elements, visited in
/// `block x block` tiles (row-major within each tile), each tile revisited
/// `passes` times before moving on — the collision-routine blocking described
/// in the LBMHD port.
pub fn blocked_2d(n: usize, block: usize, passes: usize, elem_bytes: usize) -> Vec<u64> {
    assert!(block >= 1 && block <= n);
    let mut t = Vec::new();
    let tiles = n / block;
    for bi in 0..tiles {
        for bj in 0..tiles {
            for _ in 0..passes {
                for i in 0..block {
                    for j in 0..block {
                        let row = bi * block + i;
                        let col = bj * block + j;
                        t.push(((row * n + col) * elem_bytes) as u64);
                    }
                }
            }
        }
    }
    t
}

/// Indirect gather: accesses `indices[i] * elem_bytes` offsets from `base`,
/// the pattern of PIC charge deposition and gather-push.
pub fn indirect(base: u64, indices: &[usize], elem_bytes: usize) -> Vec<u64> {
    indices
        .iter()
        .map(|&ix| base + (ix * elem_bytes) as u64)
        .collect()
}

/// Deterministic pseudo-random particle-to-grid indices for `n` particles
/// over `grid_points` grid points (multiplicative-hash scramble; no external
/// RNG needed for trace generation).
pub fn scrambled_indices(n: usize, grid_points: usize) -> Vec<usize> {
    assert!(grid_points > 0);
    (0..n)
        .map(|i| ((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 16) as usize % grid_points)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_stride_shape() {
        let t = unit_stride(100, 4, 8);
        assert_eq!(t, vec![100, 108, 116, 124]);
    }

    #[test]
    fn strided_shape() {
        let t = strided(0, 3, 10, 8);
        assert_eq!(t, vec![0, 80, 160]);
    }

    #[test]
    fn ghost_zone_skips() {
        let t = ghost_zone_sweep(2, 3, 2, 8);
        // Row stride is 5 elements = 40 bytes.
        assert_eq!(t, vec![0, 8, 16, 40, 48, 56]);
    }

    #[test]
    fn blocked_covers_everything_once_per_pass() {
        let t = blocked_2d(4, 2, 1, 8);
        assert_eq!(t.len(), 16);
        let mut sorted = t.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 16, "each element exactly once");
    }

    #[test]
    fn blocked_passes_multiply_length() {
        assert_eq!(blocked_2d(4, 2, 3, 8).len(), 48);
    }

    #[test]
    fn scrambled_indices_in_range() {
        let idx = scrambled_indices(1000, 37);
        assert!(idx.iter().all(|&i| i < 37));
        // Spread: all 37 grid points should be touched for 1000 particles.
        let mut seen = [false; 37];
        for &i in &idx {
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
