//! The Table 6 workload: GTC's phase stream for the performance engine.
//!
//! The paper's configuration: 2 million grid points, 10 or 100 particles
//! per cell (20M / 200M particles), MPI decomposition limited to 64
//! domains, optional loop-level (OpenMP) second level for the Power3
//! P=1024 hybrid row. Operation counts per particle come from the
//! implementation in this crate (ring setup + 4×4-cell bilinear scatter,
//! gyroaveraged gather + RK2 push, shift classification).

use pvs_core::phase::{CommPattern, Phase, VectorizationInfo};
use pvs_memsim::bandwidth::AccessPattern;

/// Flops per particle in the 4-point gyroaveraged deposition.
pub const DEPOSIT_FLOPS: f64 = 130.0;
/// Scatter traffic per particle (reads of particle state + 16 cell
/// read-modify-writes).
pub const DEPOSIT_BYTES: f64 = 300.0;
/// Flops per particle in the gyroaveraged gather + RK2 push.
pub const PUSH_FLOPS: f64 = 160.0;
/// Gather traffic per particle.
pub const PUSH_BYTES: f64 = 350.0;
/// Operations per particle in the shift scan (periodic-distance
/// classification, buffer packing bounds logic).
pub const SHIFT_FLOPS: f64 = 30.0;
/// Grid work per grid point per step (screened-Poisson CG + field
/// differencing + smoothing).
pub const GRID_FLOPS_PER_POINT: f64 = 200.0;
/// Distinct work-vector temporary arrays the vector port maintains
/// (charge plus per-ring-point and field accumulators) — the source of
/// the 2-8x memory-footprint growth of §6.1.
pub const WORK_ARRAYS: usize = 8;

/// Code variant per platform (the paper ran per-machine ports).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GtcVariant {
    /// Work-vector lanes (the machine's vector length); `None` = classic
    /// scatter (superscalar).
    pub work_vector_lanes: Option<usize>,
    /// The `duplicate` pragma applied to the hot auxiliary arrays
    /// (ES optimization, +37% on deposition).
    pub duplicated: bool,
    /// Shift routine vectorized (the X1 split-condition rewrite; the ES
    /// version keeps the nested-if scalar form — §6.1).
    pub shift_vectorized: bool,
    /// OpenMP-style threads per MPI process (hybrid mode).
    pub hybrid_threads: usize,
}

impl GtcVariant {
    /// The variant the paper ran on the named platform.
    pub fn for_machine(name: &str) -> Self {
        match name {
            "ES" => GtcVariant {
                work_vector_lanes: Some(256),
                duplicated: true,
                shift_vectorized: false,
                hybrid_threads: 1,
            },
            "X1" | "X1-CAF" => GtcVariant {
                work_vector_lanes: Some(64),
                duplicated: true,
                shift_vectorized: true,
                hybrid_threads: 1,
            },
            _ => GtcVariant {
                work_vector_lanes: None,
                duplicated: false,
                shift_vectorized: true,
                hybrid_threads: 1,
            },
        }
    }

    /// Hybrid MPI/OpenMP variant (Power3 P=1024 row).
    pub fn hybrid(threads: usize) -> Self {
        GtcVariant {
            hybrid_threads: threads,
            ..Self::for_machine("Power3")
        }
    }
}

/// One Table 6 configuration.
#[derive(Debug, Clone, Copy)]
pub struct GtcWorkload {
    /// Grid points (2 million in the paper).
    pub grid_points: usize,
    /// Particles per cell (10 or 100).
    pub particles_per_cell: usize,
    /// Total processors.
    pub procs: usize,
    /// MPI domains (≤ 64; more processors ⇒ hybrid threading).
    pub mpi_domains: usize,
    /// Time steps modelled.
    pub steps: usize,
}

impl GtcWorkload {
    /// A paper-sized workload.
    pub fn new(particles_per_cell: usize, procs: usize) -> Self {
        Self {
            grid_points: 2_000_000,
            particles_per_cell,
            procs,
            mpi_domains: procs.min(64),
            steps: 10,
        }
    }

    /// Total particles.
    pub fn particles(&self) -> usize {
        self.grid_points * self.particles_per_cell
    }

    /// Particles per processor (hybrid threads divide an MPI domain's
    /// particles among processors).
    pub fn particles_per_proc(&self) -> usize {
        self.particles() / self.procs
    }

    /// Grid points per MPI domain.
    pub fn grid_per_domain(&self) -> usize {
        self.grid_points / self.mpi_domains
    }

    /// The phase stream for a code variant (per processor).
    pub fn phases(&self, variant: GtcVariant) -> Vec<Phase> {
        let ptcl = self.particles_per_proc();
        let grid_local = self.grid_per_domain();
        let mut phases = Vec::new();

        // Charge deposition: vectorized via work-vector on the vector
        // machines (gather/scatter dominated), classic scatter elsewhere.
        let mut dep_vec = VectorizationInfo::full();
        dep_vec.gather_fraction = 0.7;
        // The hot auxiliary arrays are tiny (a few words per direction):
        // without `duplicate` they concentrate on a handful of banks.
        dep_vec.gather_hot_words = Some(8);
        dep_vec.duplicated = variant.duplicated;
        dep_vec.ilp_efficiency = 0.13;
        // OpenMP fork/join overhead, the serialized field solve, and load
        // imbalance cost the hybrid mode most of a factor of two (§6.2:
        // 1024 hybrid Power3 processors lose to 64 vector processors).
        let hybrid_eff = if variant.hybrid_threads > 1 {
            0.35
        } else {
            1.0
        };
        let mut dep = Phase::loop_nest("charge_deposition", ptcl, self.steps)
            .flops_per_iter(DEPOSIT_FLOPS)
            .bytes_per_iter(DEPOSIT_BYTES)
            .pattern(AccessPattern::Indirect {
                elem_bytes: 8,
                reuse: 0.5,
            })
            .working_set(grid_local * 8)
            .vector(dep_vec);
        if variant.hybrid_threads > 1 {
            let mut v = dep_vec;
            v.ilp_efficiency *= hybrid_eff;
            dep = dep.vector(v);
        }
        phases.push(dep);

        // Work-vector reduction: zero + reduce WORK_ARRAYS lane-private
        // grids every step (the 2-8x memory-footprint cost, §6.1).
        if let Some(lanes) = variant.work_vector_lanes {
            let bytes = (lanes * WORK_ARRAYS * 16) as f64;
            phases.push(
                Phase::loop_nest("workvector_reduce", grid_local, self.steps)
                    .flops_per_iter((lanes * WORK_ARRAYS) as f64)
                    .bytes_per_iter(bytes)
                    .pattern(AccessPattern::UnitStride)
                    .working_set(grid_local * lanes * WORK_ARRAYS * 8)
                    .vector(VectorizationInfo::full())
                    .overhead(),
            );
        }

        // Gather-push.
        let mut push_vec = VectorizationInfo::full();
        push_vec.gather_fraction = 0.6;
        push_vec.gather_hot_words = Some(4096);
        push_vec.duplicated = variant.duplicated;
        push_vec.ilp_efficiency = 0.13 * hybrid_eff;
        phases.push(
            Phase::loop_nest("gather_push", ptcl, self.steps)
                .flops_per_iter(PUSH_FLOPS)
                .bytes_per_iter(PUSH_BYTES)
                .pattern(AccessPattern::Indirect {
                    elem_bytes: 8,
                    reuse: 0.4,
                })
                .working_set(grid_local * 8 * 3)
                .vector(push_vec),
        );

        // Shift: nested-if scalar form vs split-condition vector form.
        let shift_vec = if variant.shift_vectorized {
            let mut v = VectorizationInfo::full();
            v.ilp_efficiency = 0.3;
            v
        } else {
            VectorizationInfo::scalar()
        };
        phases.push(
            Phase::loop_nest("shift", ptcl, self.steps)
                .flops_per_iter(SHIFT_FLOPS)
                .bytes_per_iter(40.0)
                .pattern(AccessPattern::UnitStride)
                .working_set(ptcl * 32)
                .vector(shift_vec),
        );

        // Grid work (Poisson CG, field differencing, smoothing).
        let mut grid_vec = VectorizationInfo::full();
        grid_vec.ilp_efficiency = 0.4;
        phases.push(
            Phase::loop_nest("poisson_field", grid_local, self.steps)
                .flops_per_iter(GRID_FLOPS_PER_POINT)
                .bytes_per_iter(100.0)
                .pattern(AccessPattern::UnitStride)
                .working_set(grid_local * 8 * 4)
                .vector(grid_vec),
        );

        // Communication: shift migration with the two slab neighbours plus
        // the field-solve reduction.
        let migrants = (ptcl / 20).max(1) as u64 * 32; // ~5% cross per step
        phases.push(
            Phase::comm(
                "shift_exchange",
                CommPattern::Halo2d {
                    px: self.mpi_domains,
                    py: 1,
                    bytes_edge: migrants,
                    bytes_corner: 0,
                },
            )
            .repetitions(self.steps),
        );
        phases.push(
            Phase::comm(
                "field_reduce",
                CommPattern::AllReduce {
                    ranks: self.mpi_domains,
                    bytes: (grid_local * 8) as u64,
                },
            )
            .repetitions(self.steps),
        );

        phases
    }
}

/// The kernels this crate registers with the static-analysis layer: the
/// Table 6 loop phases of a representative configuration, using each
/// vector machine's own code variant (the ES keeps the nested-if scalar
/// shift; the X1 runs the split-condition vector rewrite).
pub fn kernel_descriptors() -> Vec<pvs_core::kernel::KernelDescriptor> {
    use pvs_core::kernel::{descriptors_from_phases, MachineKind};
    let w = GtcWorkload::new(10, 64);
    let mut out = Vec::new();
    for machine in [MachineKind::Es, MachineKind::X1Msp] {
        let variant = GtcVariant::for_machine(machine.name());
        out.extend(descriptors_from_phases(
            "gtc",
            "crates/gtc/src/perf.rs",
            machine,
            &w.phases(variant),
        ));
    }
    out
}

/// The Table 6 cells: (particles per cell, procs).
pub fn table6_configs() -> Vec<(usize, usize)> {
    vec![(10, 32), (10, 64), (100, 32), (100, 64)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvs_core::engine::Engine;
    use pvs_core::platforms;
    use pvs_core::report::PerfReport;

    fn run(machine: pvs_core::machine::Machine, w: &GtcWorkload) -> PerfReport {
        let variant = GtcVariant::for_machine(machine.name);
        Engine::new(machine).run(&w.phases(variant), w.procs)
    }

    #[test]
    fn registered_kernels_static_dynamic_agree() {
        for d in kernel_descriptors() {
            let s = d.static_prediction();
            let m = d.dynamic_metrics();
            if s.avl > 0.0 {
                assert!(
                    (m.avl() - s.avl).abs() / s.avl < 0.05,
                    "{}: static AVL {} vs dynamic {}",
                    d.kernel,
                    s.avl,
                    m.avl()
                );
            }
            assert!((m.vor() - s.vor).abs() < 0.05, "{}", d.kernel);
        }
    }

    #[test]
    fn vector_machines_lead_but_at_modest_fractions() {
        // Paper (100 ppc, P=32): ES 1.34 (17%), X1 1.50 (12%).
        let w = GtcWorkload::new(100, 32);
        let es = run(platforms::earth_simulator(), &w);
        let x1 = run(platforms::x1(), &w);
        assert!(
            (0.8..2.2).contains(&es.gflops_per_p),
            "ES {}",
            es.gflops_per_p
        );
        assert!(
            (0.8..2.4).contains(&x1.gflops_per_p),
            "X1 {}",
            x1.gflops_per_p
        );
        assert!(
            es.pct_peak < 30.0,
            "PIC stays far from peak: {}",
            es.pct_peak
        );
        assert!(
            es.pct_peak > x1.pct_peak,
            "ES fraction {} must beat X1 {}",
            es.pct_peak,
            x1.pct_peak
        );
    }

    #[test]
    fn higher_resolution_improves_vector_efficiency() {
        // Paper: ES 0.961 -> 1.34, X1 1.00 -> 1.50 going from 10 to 100 ppc.
        let es10 = run(platforms::earth_simulator(), &GtcWorkload::new(10, 32));
        let es100 = run(platforms::earth_simulator(), &GtcWorkload::new(100, 32));
        assert!(
            es100.gflops_per_p > 1.15 * es10.gflops_per_p,
            "10ppc {} -> 100ppc {}",
            es10.gflops_per_p,
            es100.gflops_per_p
        );
    }

    #[test]
    fn superscalar_rates_match_paper_band() {
        // Paper (10 ppc, P=32): Power3 0.135, Power4 0.299, Altix 0.290.
        let w = GtcWorkload::new(10, 32);
        let p3 = run(platforms::power3(), &w).gflops_per_p;
        let p4 = run(platforms::power4(), &w).gflops_per_p;
        let altix = run(platforms::altix(), &w).gflops_per_p;
        assert!((0.08..0.25).contains(&p3), "Power3 {p3}");
        assert!((0.15..0.55).contains(&p4), "Power4 {p4}");
        assert!((0.15..0.65).contains(&altix), "Altix {altix}");
    }

    #[test]
    fn vector_speedup_4_to_10x_over_superscalar() {
        let w = GtcWorkload::new(100, 32);
        let es = run(platforms::earth_simulator(), &w).gflops_per_p;
        let p3 = run(platforms::power3(), &w).gflops_per_p;
        let altix = run(platforms::altix(), &w).gflops_per_p;
        assert!((4.0..18.0).contains(&(es / p3)), "ES/P3 {}", es / p3);
        assert!(
            (2.0..10.0).contains(&(es / altix)),
            "ES/Altix {}",
            es / altix
        );
    }

    #[test]
    fn unvectorized_shift_costs_more_on_x1_than_es() {
        // The §6.1 story: the nested-if shift was 54% of X1 time vs 11% on
        // the ES. Compare both machines running the *unoptimized* variant.
        let w = GtcWorkload::new(100, 32);
        let unopt_es = GtcVariant {
            shift_vectorized: false,
            ..GtcVariant::for_machine("ES")
        };
        let unopt_x1 = GtcVariant {
            shift_vectorized: false,
            ..GtcVariant::for_machine("X1")
        };
        let es = Engine::new(platforms::earth_simulator()).run(&w.phases(unopt_es), 32);
        let x1 = Engine::new(platforms::x1()).run(&w.phases(unopt_x1), 32);
        let es_frac = es.phase_fraction("shift");
        let x1_frac = x1.phase_fraction("shift");
        assert!(
            x1_frac > 1.5 * es_frac,
            "X1 shift fraction {x1_frac} vs ES {es_frac}"
        );
    }

    #[test]
    fn shift_optimization_recovers_x1() {
        let w = GtcWorkload::new(100, 32);
        let unopt = GtcVariant {
            shift_vectorized: false,
            ..GtcVariant::for_machine("X1")
        };
        let opt = GtcVariant::for_machine("X1");
        let t_unopt = Engine::new(platforms::x1()).run(&w.phases(unopt), 32);
        let t_opt = Engine::new(platforms::x1()).run(&w.phases(opt), 32);
        assert!(t_opt.gflops_per_p > 1.3 * t_unopt.gflops_per_p);
        assert!(
            t_opt.phase_fraction("shift") < 0.10,
            "{}",
            t_opt.phase_fraction("shift")
        );
    }

    #[test]
    fn duplicate_pragma_improves_deposition() {
        // Paper: +37% on the charge-deposition routine.
        let w = GtcWorkload::new(100, 32);
        let with = GtcVariant::for_machine("ES");
        let without = GtcVariant {
            duplicated: false,
            ..with
        };
        let t_with = Engine::new(platforms::earth_simulator()).run(&w.phases(with), 32);
        let t_without = Engine::new(platforms::earth_simulator()).run(&w.phases(without), 32);
        let dep_with: f64 = t_with
            .phases
            .iter()
            .filter(|p| p.name == "charge_deposition")
            .map(|p| p.seconds)
            .sum();
        let dep_without: f64 = t_without
            .phases
            .iter()
            .filter(|p| p.name == "charge_deposition")
            .map(|p| p.seconds)
            .sum();
        let gain = dep_without / dep_with;
        assert!(
            (1.1..2.0).contains(&gain),
            "duplicate gain {gain} (paper: 1.37)"
        );
    }

    #[test]
    fn hybrid_mode_halves_per_processor_efficiency() {
        // Paper: Power3 0.133 at P=64 MPI vs 0.063 at P=1024 hybrid.
        let flat = run(platforms::power3(), &GtcWorkload::new(100, 64));
        let hybrid_w = GtcWorkload {
            procs: 1024,
            mpi_domains: 64,
            ..GtcWorkload::new(100, 1024)
        };
        let hybrid =
            Engine::new(platforms::power3()).run(&hybrid_w.phases(GtcVariant::hybrid(16)), 1024);
        assert!(
            hybrid.gflops_per_p < 0.7 * flat.gflops_per_p,
            "hybrid {} vs flat {}",
            hybrid.gflops_per_p,
            flat.gflops_per_p
        );
    }

    #[test]
    fn avl_and_vor_high_for_vector_ports() {
        let w = GtcWorkload::new(100, 32);
        let es = run(platforms::earth_simulator(), &w);
        let x1 = run(platforms::x1(), &w);
        assert!(
            es.avl().expect("vector") > 200.0,
            "ES AVL {}",
            es.avl().unwrap()
        );
        assert!(
            x1.avl().expect("vector") > 55.0,
            "X1 AVL {}",
            x1.avl().unwrap()
        );
        // The paper reports VOR 99%/97%; our accounting charges the scalar
        // shift's integer bookkeeping as scalar ops, landing slightly lower.
        assert!(
            es.vor_pct().expect("vector") > 85.0,
            "ES VOR {}",
            es.vor_pct().unwrap()
        );
    }
}
