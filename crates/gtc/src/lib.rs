//! # pvs-gtc — the magnetic-fusion application
//!
//! A from-scratch stand-in for the Gyrokinetic Toroidal Code evaluated in
//! the paper: a particle-in-cell solver for gyrophase-averaged
//! Vlasov–Poisson dynamics of charged rings in a strong magnetic field.
//!
//! **Substitution note** (see DESIGN.md): GTC's 3D toroidal geometry is
//! replaced by a doubly periodic 2D slab perpendicular to `B = B ẑ` — the
//! plane in which the gyroaverage, the E×B turbulent transport, and every
//! performance-relevant code structure live:
//!
//! * [`deposit`]: the **4-point gyroaveraged charge deposition** (paper
//!   Fig. 8b) — each particle is a charged ring sampled at four points,
//!   each bilinearly scattered to the grid. Three interchangeable
//!   implementations: serial scatter, the Nishiguchi **work-vector**
//!   vectorization (lane-private grids + reduction, cf.
//!   `pvs-vectorsim::workvec`), and an OpenMP-style threaded variant with
//!   thread-private grids (GTC's hybrid MPI/OpenMP second level);
//! * [`field`]: the gyrokinetic (screened) Poisson solve
//!   `−∇²φ + φ/λ² = ρ` by conjugate gradient, and `E = −∇φ`;
//! * [`push`]: gyroaveraged field gather and second-order E×B drift push;
//! * [`shift`]: the particle-migration routine between 1D domains — the
//!   nested-`if` form the X1 compiler could not vectorize and the
//!   split-condition rewrite that cut its overhead from 54% to 4% (§6.1);
//! * [`sim`]: serial and distributed drivers with conservation and drift
//!   physics tests;
//! * [`perf`]: the Table 6 workload (10 and 100 particles per cell);
//! * [`annulus`]: the poloidal-plane (annular) geometry extension — polar
//!   deposition, the cylindrical screened-Poisson solve, and E×B rotation
//!   on flux surfaces.
//!
//! ## Example
//!
//! ```
//! use pvs_gtc::sim::{GtcConfig, GtcSim};
//!
//! let mut sim = GtcSim::new(GtcConfig::new(16, 16, 4), 1, 0.2);
//! let q0 = sim.particles.total_charge();
//! sim.run(3);
//! assert!((sim.particles.total_charge() - q0).abs() < 1e-9);
//! ```

// Index loops mirror the Fortran-style kernels they reproduce (particle/grid index loops).
#![allow(clippy::needless_range_loop)]

pub mod annulus;
pub mod deposit;
pub mod field;
pub mod grid2d;
pub mod particles;
pub mod perf;
pub mod scale;
pub mod push;
pub mod shift;
pub mod sim;

pub use grid2d::Grid2d;
pub use particles::Particles;
pub use sim::{GtcConfig, GtcSim};
