//! Doubly periodic 2D field grid with bilinear interpolation.

/// A scalar field on a periodic `nx × ny` grid (unit spacing, site index
/// `y * nx + x`).
#[derive(Debug, Clone)]
pub struct Grid2d {
    /// Extent in x.
    pub nx: usize,
    /// Extent in y.
    pub ny: usize,
    data: Vec<f64>,
}

impl Grid2d {
    /// Zeroed grid.
    pub fn new(nx: usize, ny: usize) -> Self {
        Self {
            nx,
            ny,
            data: vec![0.0; nx * ny],
        }
    }

    /// Construct from a closure.
    pub fn from_fn(nx: usize, ny: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut g = Self::new(nx, ny);
        for y in 0..ny {
            for x in 0..nx {
                g.data[y * nx + x] = f(x, y);
            }
        }
        g
    }

    /// Cell count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw values.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw values.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Value at integer coordinates (periodic).
    #[inline]
    pub fn at(&self, x: isize, y: isize) -> f64 {
        let xm = x.rem_euclid(self.nx as isize) as usize;
        let ym = y.rem_euclid(self.ny as isize) as usize;
        self.data[ym * self.nx + xm]
    }

    /// Add `v` at integer coordinates (periodic).
    #[inline]
    pub fn add_at(&mut self, x: isize, y: isize, v: f64) {
        let xm = x.rem_euclid(self.nx as isize) as usize;
        let ym = y.rem_euclid(self.ny as isize) as usize;
        self.data[ym * self.nx + xm] += v;
    }

    /// The four bilinear stencil cells and weights for a continuous
    /// position `(x, y)` (periodic). Weights sum to 1.
    pub fn bilinear(&self, x: f64, y: f64) -> [(isize, isize, f64); 4] {
        let x0 = x.floor();
        let y0 = y.floor();
        let fx = x - x0;
        let fy = y - y0;
        let (ix, iy) = (x0 as isize, y0 as isize);
        [
            (ix, iy, (1.0 - fx) * (1.0 - fy)),
            (ix + 1, iy, fx * (1.0 - fy)),
            (ix, iy + 1, (1.0 - fx) * fy),
            (ix + 1, iy + 1, fx * fy),
        ]
    }

    /// Bilinearly interpolated value at a continuous position.
    pub fn sample(&self, x: f64, y: f64) -> f64 {
        self.bilinear(x, y)
            .iter()
            .map(|&(ix, iy, w)| w * self.at(ix, iy))
            .sum()
    }

    /// Bilinearly scatter `v` at a continuous position.
    pub fn scatter(&mut self, x: f64, y: f64, v: f64) {
        for (ix, iy, w) in self.bilinear(x, y) {
            self.add_at(ix, iy, w * v);
        }
    }

    /// Sum of all values.
    pub fn total(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Zero the grid.
    pub fn clear(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bilinear_weights_partition_unity() {
        let g = Grid2d::new(8, 8);
        for (x, y) in [(0.0, 0.0), (3.25, 4.75), (7.9, 0.1)] {
            let w: f64 = g.bilinear(x, y).iter().map(|&(_, _, w)| w).sum();
            assert!((w - 1.0).abs() < 1e-14, "({x},{y})");
        }
    }

    #[test]
    fn scatter_conserves_total() {
        let mut g = Grid2d::new(8, 8);
        g.scatter(3.3, 4.7, 2.5);
        g.scatter(7.9, 7.9, -1.0); // wraps around the corner
        assert!((g.total() - 1.5).abs() < 1e-13);
    }

    #[test]
    fn sample_reproduces_linear_fields() {
        // Bilinear interpolation is exact for f = a + bx + cy away from the
        // periodic wrap line.
        let g = Grid2d::from_fn(16, 16, |x, y| 1.0 + 0.5 * x as f64 - 0.25 * y as f64);
        let got = g.sample(3.4, 7.8);
        let expect = 1.0 + 0.5 * 3.4 - 0.25 * 7.8;
        assert!((got - expect).abs() < 1e-12);
    }

    #[test]
    fn sample_at_grid_point_is_exact() {
        let g = Grid2d::from_fn(8, 8, |x, y| (x * 10 + y) as f64);
        assert_eq!(g.sample(5.0, 2.0), 52.0);
    }

    #[test]
    fn periodic_wraparound() {
        let g = Grid2d::from_fn(4, 4, |x, y| (y * 4 + x) as f64);
        assert_eq!(g.at(-1, 0), 3.0);
        assert_eq!(g.at(4, 1), 4.0);
        assert_eq!(g.at(0, -1), 12.0);
    }
}
