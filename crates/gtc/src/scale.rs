//! Weak-scaling communication kernel for GTC on both mpisim runtimes.
//!
//! GTC's dominant communication is the toroidal particle shift
//! ([`crate::shift`]): particles that crossed a domain boundary hop to
//! the next poloidal plane, possibly several planes over, and the loop
//! repeats until a global reduction reports every particle settled.
//! That makes the kernel *data-dependent* — the number of rounds is
//! known only at runtime — so the v2 form is a real continuation, not a
//! fixed script: each `resume` decides the next op from the
//! [`Reply::MaxReduced`] that closed the previous round.

use pvs_mpisim::event::{EventSim, Op, RankCtx, RankProgram, Reply, SimStats, Step};
use pvs_mpisim::{Comm, CommStats};

/// A migrating marker particle: `(weight, hops_remaining)`.
type Particle = (f64, u32);

const TAG_SHIFT_BASE: u64 = 0x40;

/// The deterministic initial population of one rank: a few particles
/// with 0–3 hops left, weights carrying a cancellation probe.
fn seed_particles(rank: usize, size: usize) -> Vec<Particle> {
    let count = rank % 4 + 1;
    (0..count)
        .map(|i| {
            let w = [1e16, 1.0, -1e16, 0.5][(rank + i) % 4] + (rank * 13 + i) as f64 * 1e-2;
            let hops = ((rank + i) % 4) as u32 % ((size as u32).max(2));
            (w, hops)
        })
        .collect()
}

fn max_hops(particles: &[Particle]) -> f64 {
    particles.iter().map(|&(_, h)| h).max().unwrap_or(0) as f64
}

/// Split off the particles that still need to move, decrementing their
/// hop counts, and flatten them for the wire.
fn departures(particles: &mut Vec<Particle>) -> Vec<f64> {
    let mut flat = Vec::new();
    particles.retain(|&(w, h)| {
        if h > 0 {
            flat.push(w);
            flat.push((h - 1) as f64);
            false
        } else {
            true
        }
    });
    flat
}

fn arrivals(particles: &mut Vec<Particle>, flat: &[f64]) {
    for pair in flat.chunks_exact(2) {
        particles.push((pair[0], pair[1] as u32));
    }
}

/// Weight checksum folded in stable local order.
fn weight_sum(particles: &[Particle]) -> f64 {
    particles.iter().fold(0.0, |a, &(w, _)| a + w)
}

/// The v1 reference: shift rounds until the global max hop count is 0,
/// then reduce the settled weights.
fn shift_v1(comm: &mut Comm) -> Vec<f64> {
    let rank = comm.rank();
    let size = comm.size();
    let right = (rank + 1) % size;
    let left = (rank + size - 1) % size;
    let mut particles = seed_particles(rank, size);
    let mut round = 0u64;
    while comm.allreduce_max_scalar(max_hops(&particles)) > 0.0 {
        let tag = TAG_SHIFT_BASE + round;
        comm.send(right, tag, departures(&mut particles));
        let incoming = comm.recv(left, tag);
        arrivals(&mut particles, &incoming);
        round += 1;
    }
    comm.allreduce_sum(&[weight_sum(&particles), particles.len() as f64])
}

/// The same loop as a v2 continuation.
pub struct ShiftScaleProgram {
    particles: Vec<Particle>,
    round: u64,
    state: ShiftState,
}

enum ShiftState {
    /// Waiting for the round-gate reduction.
    AwaitMax,
    /// Waiting for this round's send to complete.
    AwaitSent,
    /// Waiting for this round's arrivals.
    AwaitRecv,
    /// Waiting for the final weight reduction.
    AwaitSum,
}

impl ShiftScaleProgram {
    /// The kernel for `rank` of `size`.
    pub fn new(rank: usize, size: usize) -> Self {
        ShiftScaleProgram {
            particles: seed_particles(rank, size),
            round: 0,
            state: ShiftState::AwaitMax,
        }
    }

    fn gate(&mut self) -> Step<Vec<f64>> {
        self.state = ShiftState::AwaitMax;
        Step::Op(Op::AllreduceMaxScalar {
            x: max_hops(&self.particles),
        })
    }
}

impl RankProgram for ShiftScaleProgram {
    type Output = Vec<f64>;

    fn resume(&mut self, ctx: &RankCtx, reply: Reply) -> Step<Vec<f64>> {
        let right = (ctx.rank + 1) % ctx.size;
        let left = (ctx.rank + ctx.size - 1) % ctx.size;
        match (&self.state, reply) {
            (_, Reply::Start) => self.gate(),
            (ShiftState::AwaitMax, Reply::MaxReduced(Ok(m))) => {
                if m > 0.0 {
                    self.state = ShiftState::AwaitSent;
                    Step::Op(Op::Send {
                        dst: right,
                        tag: TAG_SHIFT_BASE + self.round,
                        data: departures(&mut self.particles),
                    })
                } else {
                    self.state = ShiftState::AwaitSum;
                    Step::Op(Op::AllreduceSum {
                        data: vec![weight_sum(&self.particles), self.particles.len() as f64],
                    })
                }
            }
            (ShiftState::AwaitSent, Reply::Sent(Ok(()))) => {
                self.state = ShiftState::AwaitRecv;
                Step::Op(Op::Recv {
                    src: left,
                    tag: TAG_SHIFT_BASE + self.round,
                })
            }
            (ShiftState::AwaitRecv, Reply::Received(Ok(incoming))) => {
                arrivals(&mut self.particles, &incoming);
                self.round += 1;
                self.gate()
            }
            (ShiftState::AwaitSum, Reply::Reduced(Ok(v))) => Step::Finish(v),
            (_, other) => panic!("unexpected reply in shift kernel: {other:?}"),
        }
    }
}

/// Run the kernel on the thread-backed runtime.
pub fn run_scale_v1(p: usize) -> Vec<(Vec<f64>, CommStats)> {
    pvs_mpisim::run(p, |mut comm| {
        let out = shift_v1(&mut comm);
        (out, comm.stats())
    })
}

/// Run the kernel on the event-driven runtime.
pub fn run_scale_v2(p: usize, threads: usize) -> (Vec<(Vec<f64>, CommStats)>, SimStats) {
    let report = EventSim::new(p)
        .threads(threads)
        .run(ShiftScaleProgram::new);
    let sim = report.sim;
    let per_rank = report
        .outcomes
        .into_iter()
        .zip(report.comm_stats)
        .map(|(o, stats)| match o.value() {
            Some(v) => (v.clone(), stats.expect("healthy rank has stats")),
            None => unreachable!("healthy run"),
        })
        .collect();
    (per_rank, sim)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v2_shift_kernel_matches_v1_bitwise() {
        for p in [1usize, 2, 4, 16] {
            let v1 = run_scale_v1(p);
            let (v2, _) = run_scale_v2(p, 2);
            for (rank, ((a, sa), (b, sb))) in v1.iter().zip(&v2).enumerate() {
                assert_eq!(
                    a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    b.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    "p={p} rank={rank}"
                );
                assert_eq!(sa, sb, "traffic p={p} rank={rank}");
            }
        }
    }

    #[test]
    fn shift_conserves_particles_and_weight() {
        let (v2, _) = run_scale_v2(8, 2);
        // Settled-particle count survives the migration (weights cancel
        // by construction, so pin the count channel).
        let total: f64 = (0..8).map(|r| seed_particles(r, 8).len() as f64).sum();
        for (v, _) in &v2 {
            assert_eq!(v[1], total);
        }
    }
}
