//! Charge deposition: classic PIC and the 4-point gyroaverage, in serial,
//! work-vector, and thread-parallel forms.
//!
//! The gyrokinetic trick (paper Fig. 8): instead of resolving the fast
//! circular motion, each particle is a charged *ring*; four points on the
//! ring each carry a quarter of the charge and deposit bilinearly. Two or
//! more ring points of concurrently processed particles may hit the same
//! grid cell — the memory dependency that blocks vectorization and that
//! the work-vector algorithm (Nishiguchi et al. 1985) resolves with
//! lane-private copies at a 2–8× memory cost (§6.1).

use crate::grid2d::Grid2d;
use crate::particles::Particles;
use pvs_vectorsim::workvec::WorkVectorGrid;

/// The four gyroaverage sample offsets for gyroradius `rho` (points at
/// 0°, 90°, 180°, 270° on the ring).
#[inline]
pub fn ring_points(rho: f64) -> [(f64, f64); 4] {
    [(rho, 0.0), (0.0, rho), (-rho, 0.0), (0.0, -rho)]
}

/// Classic PIC deposition (Fig. 8a): the guiding centre deposits directly.
pub fn deposit_classic(p: &Particles, grid: &mut Grid2d) {
    for i in 0..p.len() {
        grid.scatter(p.x[i], p.y[i], p.w[i]);
    }
}

/// Serial 4-point gyroaveraged deposition (Fig. 8b) — the reference
/// implementation every vectorized variant must reproduce exactly.
pub fn deposit_gyro_serial(p: &Particles, grid: &mut Grid2d) {
    for i in 0..p.len() {
        let q = p.w[i] * 0.25;
        for (dx, dy) in ring_points(p.rho[i]) {
            grid.scatter(p.x[i] + dx, p.y[i] + dy, q);
        }
    }
}

/// Work-vector 4-point deposition: particles are processed in chunks of
/// `lanes`; each lane scatters into its private grid copy and the copies
/// are reduced at the end — dependence-free inner loop, `lanes ×` memory.
pub fn deposit_gyro_workvector(p: &Particles, grid: &mut Grid2d, lanes: usize) {
    assert!(lanes >= 1);
    let n = grid.len();
    let mut wv = WorkVectorGrid::new(lanes, n.max(1));
    let nx = grid.nx;
    for (i, ((x, y), (rho, w))) in p.x.iter().zip(&p.y).zip(p.rho.iter().zip(&p.w)).enumerate() {
        let lane = i % lanes;
        let q = w * 0.25;
        for (dx, dy) in ring_points(*rho) {
            for (ix, iy, bw) in grid.bilinear(x + dx, y + dy) {
                let xm = ix.rem_euclid(nx as isize) as usize;
                let ym = iy.rem_euclid(grid.ny as isize) as usize;
                wv.deposit(lane, ym * nx + xm, bw * q);
            }
        }
    }
    wv.reduce_into(grid.as_mut_slice());
}

/// Thread-parallel 4-point deposition with thread-private grids (GTC's
/// loop-level OpenMP second level of parallelism): each thread deposits a
/// particle range into its own copy; copies are summed afterwards.
pub fn deposit_gyro_threaded(p: &Particles, grid: &mut Grid2d, threads: usize) {
    assert!(threads >= 1);
    let (nx, ny) = (grid.nx, grid.ny);
    let chunk = p.len().div_ceil(threads);
    let partials: Vec<Grid2d> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let lo = (t * chunk).min(p.len());
            let hi = ((t + 1) * chunk).min(p.len());
            handles.push(scope.spawn(move || {
                let mut local = Grid2d::new(nx, ny);
                for i in lo..hi {
                    let q = p.w[i] * 0.25;
                    for (dx, dy) in ring_points(p.rho[i]) {
                        local.scatter(p.x[i] + dx, p.y[i] + dy, q);
                    }
                }
                local
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("deposit thread"))
            .collect()
    });
    for partial in partials {
        for (g, v) in grid.as_mut_slice().iter_mut().zip(partial.as_slice()) {
            *g += v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_particles(n: usize, seed: u64) -> Particles {
        Particles::load_uniform(n, 16, 16, 2.5, seed)
    }

    #[test]
    fn gyro_deposition_conserves_charge() {
        let p = sample_particles(500, 3);
        let mut g = Grid2d::new(16, 16);
        deposit_gyro_serial(&p, &mut g);
        assert!((g.total() - p.total_charge()).abs() < 1e-10);
    }

    #[test]
    fn classic_deposition_conserves_charge() {
        let p = sample_particles(500, 4);
        let mut g = Grid2d::new(16, 16);
        deposit_classic(&p, &mut g);
        assert!((g.total() - p.total_charge()).abs() < 1e-10);
    }

    #[test]
    fn work_vector_matches_serial_exactly_in_total_and_closely_per_cell() {
        let p = sample_particles(300, 5);
        let mut serial = Grid2d::new(16, 16);
        deposit_gyro_serial(&p, &mut serial);
        for lanes in [1, 4, 64] {
            let mut wv = Grid2d::new(16, 16);
            deposit_gyro_workvector(&p, &mut wv, lanes);
            for (a, b) in serial.as_slice().iter().zip(wv.as_slice()) {
                assert!((a - b).abs() < 1e-10, "lanes={lanes}");
            }
        }
    }

    #[test]
    fn threaded_matches_serial() {
        let p = sample_particles(400, 6);
        let mut serial = Grid2d::new(16, 16);
        deposit_gyro_serial(&p, &mut serial);
        for threads in [1, 2, 5] {
            let mut th = Grid2d::new(16, 16);
            deposit_gyro_threaded(&p, &mut th, threads);
            for (a, b) in serial.as_slice().iter().zip(th.as_slice()) {
                assert!((a - b).abs() < 1e-10, "threads={threads}");
            }
        }
    }

    #[test]
    fn zero_gyroradius_reduces_to_classic() {
        let mut p = sample_particles(200, 7);
        p.rho.iter_mut().for_each(|r| *r = 0.0);
        let mut gyro = Grid2d::new(16, 16);
        let mut classic = Grid2d::new(16, 16);
        deposit_gyro_serial(&p, &mut gyro);
        deposit_classic(&p, &mut classic);
        for (a, b) in gyro.as_slice().iter().zip(classic.as_slice()) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn ring_points_have_radius_rho() {
        for (dx, dy) in ring_points(2.5) {
            assert!((dx * dx + dy * dy - 6.25).abs() < 1e-12);
        }
    }

    #[test]
    fn gyroaverage_smooths_the_deposit() {
        // A single particle's gyro deposit spreads charge wider than the
        // classic deposit: peak cell value must be lower.
        let mut p = Particles::default();
        p.push(8.0, 8.0, 3.0, 1.0);
        let mut gyro = Grid2d::new(16, 16);
        let mut classic = Grid2d::new(16, 16);
        deposit_gyro_serial(&p, &mut gyro);
        deposit_classic(&p, &mut classic);
        let max = |g: &Grid2d| g.as_slice().iter().cloned().fold(0.0f64, f64::max);
        assert!(max(&gyro) < max(&classic));
    }

    #[test]
    fn charge_conservation_across_populations_and_lane_counts() {
        // Former proptest property, swept deterministically: population
        // sizes straddling the lane counts (including n < lanes), several
        // seeds, and ragged lane widths.
        for n in [1usize, 3, 7, 50, 111, 199] {
            for seed in [0u64, 123, 499] {
                for lanes in [1usize, 3, 8, 15] {
                    let p = sample_particles(n, seed);
                    let mut g = Grid2d::new(16, 16);
                    deposit_gyro_workvector(&p, &mut g, lanes);
                    assert!(
                        (g.total() - p.total_charge()).abs() < 1e-9,
                        "n={n} seed={seed} lanes={lanes}"
                    );
                }
            }
        }
    }
}
