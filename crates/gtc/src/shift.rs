//! The particle shift: migrating particles that crossed a subdomain
//! boundary to the owning rank.
//!
//! GTC decomposes its domain one-dimensionally (here: slabs in y, the
//! paper's ~64-subdomain toroidal decomposition). After each push, `shift`
//! scans the particle list for emigrants. The scan's control flow is the
//! §6.1 story: the original *nested-if* form defeated the X1's vectorizer
//! (54% of runtime); rewriting it as two successive independent condition
//! blocks let the compiler stream and vectorize it (4%). Both forms are
//! implemented and must classify identically.

use crate::particles::Particles;
use pvs_mpisim::comm::Comm;

/// Ownership classification of one particle relative to this rank's slab.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Destination {
    /// Stays on this rank.
    Stay,
    /// Must move to the left (lower-y) neighbour.
    Left,
    /// Must move to the right (higher-y) neighbour.
    Right,
}

/// Nested-`if` classification (the form that serializes on the X1):
/// exactly one branch chain per particle.
pub fn classify_nested(y: f64, y_lo: f64, y_hi: f64, ny: f64) -> Destination {
    // Handle the periodic seam: a slab may wrap (y_lo > y_hi never happens
    // here because slabs partition [0, ny), but emigrants may wrap).
    if y < y_lo {
        if y_lo - y <= ny / 2.0 {
            Destination::Left
        } else {
            Destination::Right // wrapped around the bottom
        }
    } else if y >= y_hi {
        if y - y_hi < ny / 2.0 {
            Destination::Right
        } else {
            Destination::Left // wrapped around the top
        }
    } else {
        Destination::Stay
    }
}

/// Split-condition classification (the vectorizable rewrite): two
/// independent, branch-free condition evaluations combined arithmetically.
pub fn classify_split(y: f64, y_lo: f64, y_hi: f64, ny: f64) -> Destination {
    // Signed periodic distance from the slab: negative = below, positive
    // = above, computed without nested control flow.
    let below = (y < y_lo) as i32;
    let above = (y >= y_hi) as i32;
    let wrap_below = (below == 1 && y_lo - y > ny / 2.0) as i32;
    let wrap_above = (above == 1 && y - y_hi >= ny / 2.0) as i32;
    let code = below * (1 - 2 * wrap_below) - above * (1 - 2 * wrap_above);
    match code {
        0 => Destination::Stay,
        c if c > 0 => Destination::Left,
        _ => Destination::Right,
    }
}

/// Migrate emigrant particles to the neighbouring ranks of a 1D periodic
/// slab decomposition in y. Every rank owns `[rank·ny/p, (rank+1)·ny/p)`.
/// Returns the number of particles sent away.
pub fn shift_particles(p: &mut Particles, comm: &mut Comm, ny: usize) -> usize {
    let size = comm.size();
    let rank = comm.rank();
    let slab = ny as f64 / size as f64;
    let y_lo = rank as f64 * slab;
    let y_hi = (rank + 1) as f64 * slab;

    let mut to_left: Vec<f64> = Vec::new();
    let mut to_right: Vec<f64> = Vec::new();
    let mut i = 0;
    let mut sent = 0;
    while i < p.len() {
        match classify_split(p.y[i], y_lo, y_hi, ny as f64) {
            Destination::Stay => i += 1,
            dest => {
                let (x, y, rho, w) = p.swap_remove(i);
                let buf = if dest == Destination::Left {
                    &mut to_left
                } else {
                    &mut to_right
                };
                buf.extend_from_slice(&[x, y, rho, w]);
                sent += 1;
            }
        }
    }

    let left = (rank + size - 1) % size;
    let right = (rank + 1) % size;
    const TAG_L: u64 = 0x5F1;
    const TAG_R: u64 = 0x5F2;
    if size == 1 {
        // Everything wraps back to us.
        for chunk in to_left.chunks_exact(4).chain(to_right.chunks_exact(4)) {
            p.push(chunk[0], chunk[1], chunk[2], chunk[3]);
        }
        return 0;
    }
    comm.send(left, TAG_L, to_left);
    comm.send(right, TAG_R, to_right);
    // What my right neighbour sent left is for me, and vice versa.
    let from_right = comm.recv(right, TAG_L);
    let from_left = comm.recv(left, TAG_R);
    for chunk in from_right.chunks_exact(4).chain(from_left.chunks_exact(4)) {
        p.push(chunk[0], chunk[1], chunk[2], chunk[3]);
    }
    sent
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifications_agree() {
        let ny = 64.0;
        for (y_lo, y_hi) in [(0.0, 16.0), (16.0, 32.0), (48.0, 64.0)] {
            for y in [0.0, 5.0, 15.99, 16.0, 31.9, 40.0, 63.9, 0.01] {
                assert_eq!(
                    classify_nested(y, y_lo, y_hi, ny),
                    classify_split(y, y_lo, y_hi, ny),
                    "y={y} slab=({y_lo},{y_hi})"
                );
            }
        }
    }

    #[test]
    fn interior_particles_stay() {
        assert_eq!(classify_nested(10.0, 8.0, 16.0, 64.0), Destination::Stay);
        assert_eq!(classify_split(10.0, 8.0, 16.0, 64.0), Destination::Stay);
    }

    #[test]
    fn wraparound_goes_the_short_way() {
        // Rank owning [0, 16) sees a particle at y=63.5: that is one step
        // below 0 across the seam - it belongs to the left neighbour.
        assert_eq!(classify_nested(63.5, 0.0, 16.0, 64.0), Destination::Left);
        assert_eq!(classify_split(63.5, 0.0, 16.0, 64.0), Destination::Left);
    }

    #[test]
    fn shift_conserves_particles_and_charge() {
        let ny = 32;
        let results = pvs_mpisim::run(4, move |mut comm| {
            let rank = comm.rank();
            let slab = ny as f64 / 4.0;
            // Start with particles scattered over the whole domain on every
            // rank (deliberately misplaced).
            let mut p = Particles::load_uniform(100, 32, ny, 1.0, rank as u64);
            let total_before = comm.allreduce_sum_scalar(p.total_charge());
            shift_particles(&mut p, &mut comm, ny);
            let total_after = comm.allreduce_sum_scalar(p.total_charge());
            // After one shift round, every remaining particle must be local
            // or at most one slab away; iterate until settled.
            for _ in 0..4 {
                shift_particles(&mut p, &mut comm, ny);
            }
            let y_lo = rank as f64 * slab;
            let y_hi = (rank + 1) as f64 * slab;
            let all_local = p.y.iter().all(|&y| y >= y_lo && y < y_hi);
            (total_before, total_after, all_local)
        });
        for (before, after, all_local) in results {
            assert!((before - after).abs() < 1e-9, "charge conserved");
            assert!(all_local, "all particles homed after shifting");
        }
    }

    #[test]
    fn single_rank_shift_is_noop() {
        let results = pvs_mpisim::run(1, |mut comm| {
            let mut p = Particles::load_uniform(50, 16, 16, 1.0, 3);
            let n_before = p.len();
            shift_particles(&mut p, &mut comm, 16);
            p.len() == n_before
        });
        assert!(results[0]);
    }

    #[test]
    fn forms_agree_everywhere() {
        // Former proptest property: dense deterministic sweep of the
        // domain (quarter-cell steps) plus the exact slab seams, for
        // every slab.
        for slab_idx in 0usize..4 {
            let y_lo = slab_idx as f64 * 16.0;
            let y_hi = y_lo + 16.0;
            let mut ys: Vec<f64> = (0..256).map(|i| i as f64 * 0.25).collect();
            ys.extend([y_lo, y_hi - 1e-9, y_hi, 63.999_999, 0.0]);
            for y in ys {
                assert_eq!(
                    classify_nested(y, y_lo, y_hi, 64.0),
                    classify_split(y, y_lo, y_hi, 64.0),
                    "y={y} slab={slab_idx}"
                );
            }
        }
    }
}
