//! The gather-push step: gyroaveraged field gather and E×B drift push.
//!
//! With `B = B ẑ`, guiding centres drift at `v = E × B / B²
//! = (E_y, −E_x)/B`. The field at the particle is gathered with the same
//! 4-point gyroaverage as the deposition, and positions advance with a
//! second-order midpoint (RK2) step — GTC's gather-push, the second of
//! the two dominant loops over particles (§6).

use crate::deposit::ring_points;
use crate::grid2d::Grid2d;
use crate::particles::Particles;

/// Gyroaveraged electric field at a guiding centre.
pub fn gather_gyro(ex: &Grid2d, ey: &Grid2d, x: f64, y: f64, rho: f64) -> (f64, f64) {
    let mut e = (0.0, 0.0);
    for (dx, dy) in ring_points(rho) {
        e.0 += ex.sample(x + dx, y + dy);
        e.1 += ey.sample(x + dx, y + dy);
    }
    (e.0 * 0.25, e.1 * 0.25)
}

/// The E×B drift velocity for field `e` and magnetic field strength `b`.
#[inline]
pub fn exb_velocity(e: (f64, f64), b: f64) -> (f64, f64) {
    (e.1 / b, -e.0 / b)
}

/// Push all particles by `dt` with midpoint RK2 in the (static within the
/// step) field, wrapping positions periodically.
pub fn push_particles(p: &mut Particles, ex: &Grid2d, ey: &Grid2d, b: f64, dt: f64) {
    let (nx, ny) = (ex.nx as f64, ex.ny as f64);
    for i in 0..p.len() {
        let (x0, y0, rho) = (p.x[i], p.y[i], p.rho[i]);
        let v1 = exb_velocity(gather_gyro(ex, ey, x0, y0, rho), b);
        let xm = x0 + 0.5 * dt * v1.0;
        let ym = y0 + 0.5 * dt * v1.1;
        let v2 = exb_velocity(gather_gyro(ex, ey, xm, ym, rho), b);
        p.x[i] = (x0 + dt * v2.0).rem_euclid(nx);
        p.y[i] = (y0 + dt * v2.1).rem_euclid(ny);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_field_drifts_uniformly() {
        // E = (E0, 0) everywhere: drift is (0, -E0/B), exactly.
        let n = 16;
        let e0 = 0.5;
        let ex = Grid2d::from_fn(n, n, |_, _| e0);
        let ey = Grid2d::new(n, n);
        let mut p = Particles::load_uniform(50, n, n, 2.0, 9);
        let y_before = p.y.clone();
        let b = 2.0;
        let dt = 0.1;
        push_particles(&mut p, &ex, &ey, b, dt);
        for (i, y0) in y_before.iter().enumerate() {
            let expect = (y0 - e0 / b * dt).rem_euclid(n as f64);
            assert!((p.y[i] - expect).abs() < 1e-12, "particle {i}");
        }
    }

    #[test]
    fn exb_velocity_is_perpendicular_to_e() {
        let e = (0.3, -0.7);
        let v = exb_velocity(e, 1.5);
        assert!((e.0 * v.0 + e.1 * v.1).abs() < 1e-15, "v ⊥ E");
    }

    #[test]
    fn drift_conserves_potential_energy() {
        // E×B motion follows equipotential contours: φ at the particle
        // should stay (nearly) constant over many small steps.
        let n = 32;
        let k = 2.0 * std::f64::consts::PI / n as f64;
        let phi = Grid2d::from_fn(n, n, |x, y| (k * x as f64).sin() * (k * y as f64).cos());
        let (ex, ey) = crate::field::electric_field(&phi);
        let mut p = Particles::default();
        p.push(11.3, 7.2, 0.0, 1.0);
        let phi0 = phi.sample(p.x[0], p.y[0]);
        for _ in 0..200 {
            push_particles(&mut p, &ex, &ey, 1.0, 0.05);
        }
        let phi1 = phi.sample(p.x[0], p.y[0]);
        assert!(
            (phi1 - phi0).abs() < 0.05 * phi0.abs().max(0.1),
            "φ drift: {phi0} -> {phi1}"
        );
    }

    #[test]
    fn gyroaverage_of_uniform_field_is_identity() {
        let ex = Grid2d::from_fn(8, 8, |_, _| 1.25);
        let ey = Grid2d::from_fn(8, 8, |_, _| -0.5);
        let (gx, gy) = gather_gyro(&ex, &ey, 3.7, 4.2, 2.0);
        assert!((gx - 1.25).abs() < 1e-12);
        assert!((gy + 0.5).abs() < 1e-12);
    }

    #[test]
    fn positions_stay_in_domain() {
        let n = 8;
        let ex = Grid2d::from_fn(n, n, |_, _| 5.0);
        let ey = Grid2d::from_fn(n, n, |_, _| -3.0);
        let mut p = Particles::load_uniform(100, n, n, 1.0, 11);
        for _ in 0..50 {
            push_particles(&mut p, &ex, &ey, 0.5, 0.7);
        }
        assert!(p.x.iter().all(|&x| (0.0..n as f64).contains(&x)));
        assert!(p.y.iter().all(|&y| (0.0..n as f64).contains(&y)));
    }
}
