//! Serial and distributed GTC drivers.

use crate::deposit::{deposit_gyro_serial, deposit_gyro_workvector};
use crate::field::{electric_field, solve_potential};
use crate::grid2d::Grid2d;
use crate::particles::Particles;
use crate::push::push_particles;
use crate::shift::shift_particles;
use pvs_mpisim::comm::Comm;

/// Simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct GtcConfig {
    /// Grid extent in x.
    pub nx: usize,
    /// Grid extent in y.
    pub ny: usize,
    /// Particles per grid cell (the paper's 10 / 100 knob).
    pub particles_per_cell: usize,
    /// Magnetic field strength.
    pub b: f64,
    /// Inverse squared screening length of the gyrokinetic Poisson
    /// equation.
    pub inv_lambda2: f64,
    /// Time step.
    pub dt: f64,
    /// Work-vector lanes for vectorized deposition (`None` = serial
    /// scatter).
    pub work_vector_lanes: Option<usize>,
}

impl GtcConfig {
    /// A stable default on an `nx × ny` grid.
    pub fn new(nx: usize, ny: usize, particles_per_cell: usize) -> Self {
        Self {
            nx,
            ny,
            particles_per_cell,
            b: 1.0,
            inv_lambda2: 1.0,
            dt: 0.2,
            work_vector_lanes: None,
        }
    }
}

/// The serial simulation state.
pub struct GtcSim {
    /// Parameters.
    pub config: GtcConfig,
    /// Marker particles.
    pub particles: Particles,
    /// Deposited (gyroaveraged) charge density, minus the neutralizing
    /// background.
    pub rho: Grid2d,
    /// Electrostatic potential.
    pub phi: Grid2d,
    steps_taken: usize,
}

impl GtcSim {
    /// Initialize with uniformly loaded particles (plus a density
    /// perturbation via weights if `perturb` is nonzero).
    pub fn new(config: GtcConfig, seed: u64, perturb: f64) -> Self {
        let n = config.nx * config.ny * config.particles_per_cell;
        let mut particles = Particles::load_uniform(n, config.nx, config.ny, 2.0, seed);
        if perturb != 0.0 {
            let k = 2.0 * std::f64::consts::PI / config.nx as f64;
            for i in 0..particles.len() {
                let w = particles.w[i];
                particles.w[i] = w * (1.0 + perturb * (k * particles.x[i]).sin());
            }
        }
        Self {
            config,
            particles,
            rho: Grid2d::new(config.nx, config.ny),
            phi: Grid2d::new(config.nx, config.ny),
            steps_taken: 0,
        }
    }

    /// One full PIC cycle: deposit → subtract background → solve → push.
    pub fn step(&mut self) {
        self.rho.clear();
        match self.config.work_vector_lanes {
            Some(lanes) => deposit_gyro_workvector(&self.particles, &mut self.rho, lanes),
            None => deposit_gyro_serial(&self.particles, &mut self.rho),
        }
        // Quasi-neutral background: subtract the mean so the screened
        // solve sees only fluctuations.
        let mean = self.rho.total() / self.rho.len() as f64;
        for v in self.rho.as_mut_slice() {
            *v -= mean;
        }
        self.phi = solve_potential(&self.rho, self.config.inv_lambda2, 1e-8);
        let (ex, ey) = electric_field(&self.phi);
        push_particles(&mut self.particles, &ex, &ey, self.config.b, self.config.dt);
        self.steps_taken += 1;
    }

    /// Run `n` steps.
    pub fn run(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Steps taken.
    pub fn steps_taken(&self) -> usize {
        self.steps_taken
    }

    /// Field energy `½ Σ ρ φ` (the electrostatic fluctuation energy).
    pub fn field_energy(&self) -> f64 {
        0.5 * self
            .rho
            .as_slice()
            .iter()
            .zip(self.phi.as_slice())
            .map(|(r, p)| r * p)
            .sum::<f64>()
    }
}

/// One distributed step on a 1D slab decomposition: local deposit, global
/// field reduction, redundant solve (GTC solves its field on a per-plane
/// basis; our 2D field is small relative to particle work), push, shift.
pub fn distributed_step(sim: &mut GtcSim, comm: &mut Comm) {
    sim.rho.clear();
    match sim.config.work_vector_lanes {
        Some(lanes) => deposit_gyro_workvector(&sim.particles, &mut sim.rho, lanes),
        None => deposit_gyro_serial(&sim.particles, &mut sim.rho),
    }
    // Sum charge contributions across ranks (ring-points may deposit into
    // other ranks' slabs; the global grid is replicated).
    let summed = comm.allreduce_sum(sim.rho.as_slice());
    sim.rho.as_mut_slice().copy_from_slice(&summed);
    let mean = sim.rho.total() / sim.rho.len() as f64;
    for v in sim.rho.as_mut_slice() {
        *v -= mean;
    }
    sim.phi = solve_potential(&sim.rho, sim.config.inv_lambda2, 1e-8);
    let (ex, ey) = electric_field(&sim.phi);
    push_particles(&mut sim.particles, &ex, &ey, sim.config.b, sim.config.dt);
    shift_particles(&mut sim.particles, comm, sim.config.ny);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_is_conserved_over_steps() {
        let mut sim = GtcSim::new(GtcConfig::new(16, 16, 4), 1, 0.1);
        let q0 = sim.particles.total_charge();
        sim.run(5);
        assert!((sim.particles.total_charge() - q0).abs() < 1e-9);
        assert_eq!(sim.steps_taken(), 5);
    }

    #[test]
    fn unperturbed_plasma_stays_quiet() {
        // Uniform weights + uniform load: fluctuations stay at noise level.
        let mut sim = GtcSim::new(GtcConfig::new(16, 16, 16), 2, 0.0);
        sim.step();
        let e0 = sim.field_energy().abs();
        sim.run(10);
        let e1 = sim.field_energy().abs();
        assert!(
            e1 < 10.0 * e0.max(1e-9),
            "noise must not blow up: {e0} -> {e1}"
        );
    }

    #[test]
    fn perturbation_creates_field_energy() {
        let mut quiet = GtcSim::new(GtcConfig::new(16, 16, 8), 3, 0.0);
        let mut loud = GtcSim::new(GtcConfig::new(16, 16, 8), 3, 0.5);
        quiet.step();
        loud.step();
        assert!(
            loud.field_energy().abs() > 3.0 * quiet.field_energy().abs(),
            "perturbed: {} vs quiet: {}",
            loud.field_energy(),
            quiet.field_energy()
        );
    }

    #[test]
    fn work_vector_mode_matches_serial_trajectory() {
        let mut a = GtcSim::new(GtcConfig::new(12, 12, 6), 4, 0.2);
        let mut b = GtcSim::new(
            GtcConfig {
                work_vector_lanes: Some(16),
                ..GtcConfig::new(12, 12, 6)
            },
            4,
            0.2,
        );
        a.run(3);
        b.run(3);
        for i in 0..a.particles.len() {
            assert!(
                (a.particles.x[i] - b.particles.x[i]).abs() < 1e-8,
                "particle {i}"
            );
            assert!((a.particles.y[i] - b.particles.y[i]).abs() < 1e-8);
        }
    }

    #[test]
    fn distributed_conserves_global_charge() {
        let results = pvs_mpisim::run(4, |mut comm| {
            let cfg = GtcConfig::new(16, 16, 4);
            // Each rank loads its own slab's particles.
            let mut sim = GtcSim::new(cfg, 10 + comm.rank() as u64, 0.1);
            // Confine initial particles to this rank's slab.
            let slab = cfg.ny as f64 / 4.0;
            let y0 = comm.rank() as f64 * slab;
            for y in sim.particles.y.iter_mut() {
                *y = y0 + (*y / cfg.ny as f64) * slab;
            }
            let before = comm.allreduce_sum_scalar(sim.particles.total_charge());
            for _ in 0..3 {
                distributed_step(&mut sim, &mut comm);
            }
            let after = comm.allreduce_sum_scalar(sim.particles.total_charge());
            (before, after)
        });
        for (b, a) in results {
            assert!((b - a).abs() / b < 1e-12);
        }
    }
}
