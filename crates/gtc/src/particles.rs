//! Particle storage (structure-of-arrays, as vector machines demand).

use pvs_core::rng::Pcg32;

/// A population of gyrokinetic marker particles (guiding centres plus
/// gyroradius and weight), stored SoA so the deposition and push loops
/// vectorize over particles.
#[derive(Debug, Clone, Default)]
pub struct Particles {
    /// Guiding-centre x.
    pub x: Vec<f64>,
    /// Guiding-centre y.
    pub y: Vec<f64>,
    /// Gyroradius (from the magnetic moment; fixed per particle).
    pub rho: Vec<f64>,
    /// Charge weight.
    pub w: Vec<f64>,
}

impl Particles {
    /// Number of particles.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Whether there are no particles.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Append one particle.
    pub fn push(&mut self, x: f64, y: f64, rho: f64, w: f64) {
        self.x.push(x);
        self.y.push(y);
        self.rho.push(rho);
        self.w.push(w);
    }

    /// Remove particle `i` in O(1) (order not preserved) and return it.
    pub fn swap_remove(&mut self, i: usize) -> (f64, f64, f64, f64) {
        (
            self.x.swap_remove(i),
            self.y.swap_remove(i),
            self.rho.swap_remove(i),
            self.w.swap_remove(i),
        )
    }

    /// Total charge.
    pub fn total_charge(&self) -> f64 {
        self.w.iter().sum()
    }

    /// Uniformly loaded population: `n` particles over an `nx × ny`
    /// domain, gyroradii in `[0.5, rho_max]`, unit weights scaled so the
    /// mean charge density is 1. Draws come from the in-tree
    /// [`Pcg32`] generator, so a given seed produces the same population
    /// on every host and toolchain.
    pub fn load_uniform(n: usize, nx: usize, ny: usize, rho_max: f64, seed: u64) -> Self {
        let mut rng = Pcg32::seed_from_u64(seed);
        let mut p = Particles::default();
        let w = (nx * ny) as f64 / n as f64;
        for _ in 0..n {
            p.push(
                rng.next_f64() * nx as f64,
                rng.next_f64() * ny as f64,
                0.5 + rng.next_f64() * (rho_max - 0.5).max(0.0),
                w,
            );
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_load_statistics() {
        let p = Particles::load_uniform(10_000, 32, 32, 2.0, 7);
        assert_eq!(p.len(), 10_000);
        assert!((p.total_charge() - (32.0 * 32.0)).abs() < 1e-9);
        assert!(p.x.iter().all(|&x| (0.0..32.0).contains(&x)));
        assert!(p.rho.iter().all(|&r| (0.5..=2.0).contains(&r)));
        // Mean position near the centre.
        let mx = p.x.iter().sum::<f64>() / p.len() as f64;
        assert!((mx - 16.0).abs() < 0.5);
    }

    #[test]
    fn swap_remove_keeps_charge() {
        let mut p = Particles::load_uniform(100, 8, 8, 1.0, 1);
        let before = p.total_charge();
        let (.., w) = p.swap_remove(13);
        assert_eq!(p.len(), 99);
        assert!((p.total_charge() + w - before).abs() < 1e-12);
    }

    #[test]
    fn deterministic_seeding() {
        let a = Particles::load_uniform(50, 16, 16, 2.0, 42);
        let b = Particles::load_uniform(50, 16, 16, 2.0, 42);
        assert_eq!(a.x, b.x);
        assert_eq!(a.y, b.y);
    }
}
