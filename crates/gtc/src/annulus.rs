//! Annular (poloidal-plane) geometry for the gyrokinetic solver.
//!
//! The real GTC works on a torus; in the poloidal plane that is an annulus
//! `r ∈ [r0, r1]`, `θ ∈ [0, 2π)` threaded by the strong field `B = B ẑ`.
//! This module carries the slab solver's machinery into that geometry:
//! polar-grid charge deposition, the screened Poisson solve with the
//! cylindrical Laplacian, and the E×B drift in polar components
//! (`ṙ = E_θ/B`, `r θ̇ = −E_r/B`), with reflecting radial boundaries.
//! The slab solver remains the Table 6 workhorse — this is the geometry
//! fidelity extension.

use crate::particles::Particles;
use pvs_linalg::cg::cg_solve;

/// A scalar field on the annular grid: `nr` radial rings (cell-centred at
/// `r0 + (i + ½)·dr`) × `nt` periodic poloidal cells.
#[derive(Debug, Clone)]
pub struct AnnulusGrid {
    /// Radial cells.
    pub nr: usize,
    /// Poloidal cells.
    pub nt: usize,
    /// Inner radius.
    pub r0: f64,
    /// Outer radius.
    pub r1: f64,
    data: Vec<f64>,
}

impl AnnulusGrid {
    /// Zeroed annular grid.
    pub fn new(nr: usize, nt: usize, r0: f64, r1: f64) -> Self {
        assert!(nr >= 3 && nt >= 4 && r0 > 0.0 && r1 > r0);
        Self {
            nr,
            nt,
            r0,
            r1,
            data: vec![0.0; nr * nt],
        }
    }

    /// Radial spacing.
    pub fn dr(&self) -> f64 {
        (self.r1 - self.r0) / self.nr as f64
    }

    /// Poloidal spacing in radians.
    pub fn dt(&self) -> f64 {
        2.0 * std::f64::consts::PI / self.nt as f64
    }

    /// Centre radius of ring `i`.
    pub fn r_of(&self, i: usize) -> f64 {
        self.r0 + (i as f64 + 0.5) * self.dr()
    }

    /// Value at (ring, poloidal index), θ periodic.
    #[inline]
    pub fn at(&self, i: isize, j: isize) -> f64 {
        let i = i.clamp(0, self.nr as isize - 1) as usize;
        let j = j.rem_euclid(self.nt as isize) as usize;
        self.data[i * self.nt + j]
    }

    /// Raw values.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw values.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Bilinearly scatter `q` at `(r, θ)` (θ periodic, r clamped into the
    /// annulus). Conserves total charge.
    pub fn scatter(&mut self, r: f64, theta: f64, q: f64) {
        let (dr, dt) = (self.dr(), self.dt());
        let fr = ((r - self.r0) / dr - 0.5).clamp(0.0, self.nr as f64 - 1.0);
        let ft = theta.rem_euclid(2.0 * std::f64::consts::PI) / dt - 0.5;
        let (i0, wi) = (fr.floor() as usize, fr.fract());
        let i1 = (i0 + 1).min(self.nr - 1);
        let j0 = ft.floor().rem_euclid(self.nt as f64) as usize;
        let wj = ft - ft.floor();
        let j1 = (j0 + 1) % self.nt;
        self.data[i0 * self.nt + j0] += q * (1.0 - wi) * (1.0 - wj);
        self.data[i0 * self.nt + j1] += q * (1.0 - wi) * wj;
        self.data[i1 * self.nt + j0] += q * wi * (1.0 - wj);
        self.data[i1 * self.nt + j1] += q * wi * wj;
    }

    /// Bilinear sample at `(r, θ)`.
    pub fn sample(&self, r: f64, theta: f64) -> f64 {
        let (dr, dt) = (self.dr(), self.dt());
        let fr = ((r - self.r0) / dr - 0.5).clamp(0.0, self.nr as f64 - 1.0);
        let ft = theta.rem_euclid(2.0 * std::f64::consts::PI) / dt - 0.5;
        let (i0, wi) = (fr.floor() as isize, fr.fract());
        let j0 = ft.floor() as isize;
        let wj = ft - ft.floor();
        self.at(i0, j0) * (1.0 - wi) * (1.0 - wj)
            + self.at(i0, j0 + 1) * (1.0 - wi) * wj
            + self.at(i0 + 1, j0) * wi * (1.0 - wj)
            + self.at(i0 + 1, j0 + 1) * wi * wj
    }

    /// Total charge.
    pub fn total(&self) -> f64 {
        self.data.iter().sum()
    }
}

/// Apply `(−∇² + s)` in cylindrical coordinates with Dirichlet-0 radial
/// boundaries: `−(1/r)∂r(r ∂r φ) − (1/r²)∂θ²φ + s·φ`.
pub fn apply_screened_polar(grid: &AnnulusGrid, s: f64, x: &[f64], out: &mut [f64]) {
    let (nr, nt) = (grid.nr, grid.nt);
    assert_eq!(x.len(), nr * nt);
    let dr = grid.dr();
    let dt = grid.dt();
    for i in 0..nr {
        let r = grid.r_of(i);
        let r_minus = r - 0.5 * dr;
        let r_plus = r + 0.5 * dr;
        for j in 0..nt {
            let c = x[i * nt + j];
            let inner = if i > 0 { x[(i - 1) * nt + j] } else { 0.0 };
            let outer = if i + 1 < nr { x[(i + 1) * nt + j] } else { 0.0 };
            let left = x[i * nt + (j + nt - 1) % nt];
            let right = x[i * nt + (j + 1) % nt];
            let radial = (r_plus * (outer - c) - r_minus * (c - inner)) / (r * dr * dr);
            let poloidal = (left - 2.0 * c + right) / (r * r * dt * dt);
            out[i * nt + j] = -radial - poloidal + s * c;
        }
    }
}

/// Solve the screened Poisson equation on the annulus by CG.
pub fn solve_potential_polar(rho: &AnnulusGrid, s: f64, tol: f64) -> AnnulusGrid {
    assert!(s >= 0.0);
    let result = cg_solve(
        |x, out| apply_screened_polar(rho, s, x, out),
        rho.as_slice(),
        tol,
        20 * rho.nr * rho.nt,
    );
    assert!(
        result.converged,
        "polar Poisson CG stalled at {}",
        result.residual
    );
    let mut phi = AnnulusGrid::new(rho.nr, rho.nt, rho.r0, rho.r1);
    phi.as_mut_slice().copy_from_slice(&result.x);
    phi
}

/// Electric field components `(E_r, E_θ)` from a potential, by centred
/// differences (`E_θ = −(1/r) ∂θ φ`).
pub fn electric_field_polar(phi: &AnnulusGrid) -> (AnnulusGrid, AnnulusGrid) {
    let (nr, nt) = (phi.nr, phi.nt);
    let mut er = AnnulusGrid::new(nr, nt, phi.r0, phi.r1);
    let mut et = AnnulusGrid::new(nr, nt, phi.r0, phi.r1);
    let dr = phi.dr();
    let dt = phi.dt();
    for i in 0..nr as isize {
        let r = phi.r_of(i as usize);
        for j in 0..nt as isize {
            let dphidr = (phi.at(i + 1, j) - phi.at(i - 1, j)) / (2.0 * dr);
            let dphidt = (phi.at(i, j + 1) - phi.at(i, j - 1)) / (2.0 * dt);
            er.as_mut_slice()[(i as usize) * nt + j as usize] = -dphidr;
            et.as_mut_slice()[(i as usize) * nt + j as usize] = -dphidt / r;
        }
    }
    (er, et)
}

/// E×B-push particles in the annulus: `ṙ = E_θ/B`, `θ̇ = −E_r/(rB)`,
/// midpoint (RK2) integration, reflecting radial boundaries. Particle
/// `x` stores `r`, `y` stores `θ`.
pub fn push_polar(p: &mut Particles, er: &AnnulusGrid, et: &AnnulusGrid, b: f64, dt: f64) {
    let (r0, r1) = (er.r0, er.r1);
    for k in 0..p.len() {
        let (r, th) = (p.x[k], p.y[k]);
        let v1 = (et.sample(r, th) / b, -er.sample(r, th) / (r * b));
        let rm = r + 0.5 * dt * v1.0;
        let tm = th + 0.5 * dt * v1.1;
        let rm = rm.clamp(r0, r1);
        let v2 = (et.sample(rm, tm) / b, -er.sample(rm, tm) / (rm * b));
        let mut rn = r + dt * v2.0;
        let tn = (th + dt * v2.1).rem_euclid(2.0 * std::f64::consts::PI);
        // Reflect at the radial walls.
        if rn < r0 {
            rn = 2.0 * r0 - rn;
        }
        if rn > r1 {
            rn = 2.0 * r1 - rn;
        }
        p.x[k] = rn.clamp(r0, r1);
        p.y[k] = tn;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> AnnulusGrid {
        AnnulusGrid::new(16, 32, 4.0, 12.0)
    }

    #[test]
    fn scatter_conserves_charge() {
        let mut g = grid();
        g.scatter(5.3, 1.2, 2.0);
        g.scatter(11.9, 6.2, -0.5); // near the outer wall, θ near wrap
        assert!((g.total() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn sample_reproduces_smooth_fields() {
        let mut g = grid();
        // Fill with f(r) = r (linear in r, θ-independent).
        let (nr, nt) = (g.nr, g.nt);
        for i in 0..nr {
            let r = g.r_of(i);
            for j in 0..nt {
                g.as_mut_slice()[i * nt + j] = r;
            }
        }
        assert!((g.sample(7.35, 2.2) - 7.35).abs() < 1e-10);
    }

    #[test]
    fn polar_laplacian_matches_analytic_bessel_free_mode() {
        // For φ = sin(m θ) / r^0 ... use φ = r²·sin(2θ): ∇²φ = (4 − 4)·
        // sin(2θ) = 0, so (−∇² + s)φ = s·φ away from the radial boundaries.
        let g = grid();
        let m = 2.0;
        let phi: Vec<f64> = (0..g.nr * g.nt)
            .map(|idx| {
                let (i, j) = (idx / g.nt, idx % g.nt);
                let r = g.r_of(i);
                let th = (j as f64 + 0.5) * g.dt();
                r.powf(m) * (m * th).sin()
            })
            .collect();
        let s = 0.7;
        let mut out = vec![0.0; g.nr * g.nt];
        apply_screened_polar(&g, s, &phi, &mut out);
        // Interior rings only (boundary rings see the Dirichlet wall).
        for i in 2..g.nr - 2 {
            for j in 0..g.nt {
                let idx = i * g.nt + j;
                let rel = (out[idx] - s * phi[idx]).abs() / phi[idx].abs().max(1.0);
                assert!(
                    rel < 0.02,
                    "ring {i}, θ {j}: {} vs {}",
                    out[idx],
                    s * phi[idx]
                );
            }
        }
    }

    #[test]
    fn polar_poisson_solve_inverts_the_operator() {
        let mut rho = grid();
        let (nr, nt) = (rho.nr, rho.nt);
        for i in 0..nr {
            for j in 0..nt {
                rho.as_mut_slice()[i * nt + j] =
                    ((i as f64) * 0.4).sin() * ((j as f64) * 0.3).cos();
            }
        }
        let phi = solve_potential_polar(&rho, 0.5, 1e-10);
        let mut back = vec![0.0; rho.nr * rho.nt];
        apply_screened_polar(&rho, 0.5, phi.as_slice(), &mut back);
        for (a, b) in back.iter().zip(rho.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn radial_field_drives_azimuthal_rotation() {
        // φ = φ(r) ⇒ E = (E_r, 0) ⇒ pure θ̇ = −E_r/(rB): particles rotate
        // on their flux surface at the analytic rate, r unchanged.
        let g = grid();
        let mut phi = g.clone();
        let nt = g.nt;
        for i in 0..g.nr {
            let r = g.r_of(i);
            for j in 0..nt {
                phi.as_mut_slice()[i * nt + j] = 0.5 * r * r; // E_r = −r
            }
        }
        let (er, et) = electric_field_polar(&phi);
        let mut p = Particles::default();
        let (r_start, t_start) = (8.0, 1.0);
        p.push(r_start, t_start, 0.0, 1.0);
        let b = 2.0;
        let dt = 0.01;
        let steps = 100;
        for _ in 0..steps {
            push_polar(&mut p, &er, &et, b, dt);
        }
        // θ̇ = −E_r/(rB) = r/(rB) = 1/B.
        let expect_theta = t_start + steps as f64 * dt / b;
        assert!(
            (p.x[0] - r_start).abs() < 0.02,
            "r drift {}",
            p.x[0] - r_start
        );
        assert!(
            (p.y[0] - expect_theta).abs() < 0.02,
            "θ {} vs analytic {expect_theta}",
            p.y[0]
        );
    }

    #[test]
    fn particles_stay_inside_the_annulus() {
        let g = grid();
        let mut phi = g.clone();
        let (nr, nt, dt_g) = (g.nr, g.nt, g.dt());
        for i in 0..nr {
            for j in 0..nt {
                let th = (j as f64 + 0.5) * dt_g;
                phi.as_mut_slice()[i * nt + j] = (2.0 * th).sin() * g.r_of(i);
            }
        }
        let (er, et) = electric_field_polar(&phi);
        let mut p = Particles::default();
        for k in 0..200 {
            let r = 4.1 + (k as f64 * 0.0391) % 7.8;
            let th = (k as f64 * 0.731) % (2.0 * std::f64::consts::PI);
            p.push(r, th, 0.0, 1.0);
        }
        for _ in 0..100 {
            push_polar(&mut p, &er, &et, 1.0, 0.05);
        }
        assert!(p.x.iter().all(|&r| (4.0..=12.0).contains(&r)));
        assert!(p
            .y
            .iter()
            .all(|&t| (0.0..2.0 * std::f64::consts::PI + 1e-12).contains(&t)));
    }
}
