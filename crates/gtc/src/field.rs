//! The gyrokinetic field solve: screened Poisson equation and E = −∇φ.
//!
//! GTC solves the gyrokinetic Poisson equation on the grid each step. In
//! the long-wavelength limit it is the screened (Padé) form
//! `−∇²φ + φ/λ² = ρ̄` with the ion polarization providing the screening —
//! a symmetric positive-definite operator, solved here matrix-free with
//! the conjugate-gradient kernel from `pvs-linalg`.

use crate::grid2d::Grid2d;
use pvs_linalg::cg::cg_solve;

/// Apply `(−∇² + 1/λ²)` on a periodic grid (unit spacing).
pub fn apply_screened_laplacian(
    nx: usize,
    ny: usize,
    inv_lambda2: f64,
    x: &[f64],
    out: &mut [f64],
) {
    assert_eq!(x.len(), nx * ny);
    assert_eq!(out.len(), nx * ny);
    for j in 0..ny {
        let jp = (j + 1) % ny;
        let jm = (j + ny - 1) % ny;
        for i in 0..nx {
            let ip = (i + 1) % nx;
            let im = (i + nx - 1) % nx;
            let c = x[j * nx + i];
            let lap = x[j * nx + ip] + x[j * nx + im] + x[jp * nx + i] + x[jm * nx + i] - 4.0 * c;
            out[j * nx + i] = -lap + inv_lambda2 * c;
        }
    }
}

/// Solve `−∇²φ + φ/λ² = rho` for the potential.
pub fn solve_potential(rho: &Grid2d, inv_lambda2: f64, tol: f64) -> Grid2d {
    assert!(
        inv_lambda2 > 0.0,
        "screening keeps the operator SPD on a periodic grid"
    );
    let (nx, ny) = (rho.nx, rho.ny);
    let result = cg_solve(
        |x, out| apply_screened_laplacian(nx, ny, inv_lambda2, x, out),
        rho.as_slice(),
        tol,
        10 * nx * ny,
    );
    assert!(
        result.converged,
        "Poisson CG stalled at residual {}",
        result.residual
    );
    let mut phi = Grid2d::new(nx, ny);
    phi.as_mut_slice().copy_from_slice(&result.x);
    phi
}

/// Electric field `E = −∇φ` by periodic central differences; returns
/// `(Ex, Ey)` grids.
pub fn electric_field(phi: &Grid2d) -> (Grid2d, Grid2d) {
    let (nx, ny) = (phi.nx, phi.ny);
    let mut ex = Grid2d::new(nx, ny);
    let mut ey = Grid2d::new(nx, ny);
    for j in 0..ny as isize {
        for i in 0..nx as isize {
            let dphidx = (phi.at(i + 1, j) - phi.at(i - 1, j)) * 0.5;
            let dphidy = (phi.at(i, j + 1) - phi.at(i, j - 1)) * 0.5;
            ex.add_at(i, j, -dphidx);
            ey.add_at(i, j, -dphidy);
        }
    }
    (ex, ey)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operator_matches_fourier_symbol() {
        // On a single mode sin(kx·x): (−∇² + s)φ = (4 sin²(kx/2) + s) φ.
        let n = 16;
        let kx = 2.0 * std::f64::consts::PI / n as f64;
        let s = 0.5;
        let phi: Vec<f64> = (0..n * n).map(|i| ((i % n) as f64 * kx).sin()).collect();
        let mut out = vec![0.0; n * n];
        apply_screened_laplacian(n, n, s, &phi, &mut out);
        let symbol = 4.0 * (kx / 2.0).sin().powi(2) + s;
        for i in 0..n * n {
            assert!((out[i] - symbol * phi[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn solve_inverts_operator() {
        let n = 16;
        let rho = Grid2d::from_fn(n, n, |x, y| {
            ((x as f64) * 0.7).sin() * ((y as f64) * 0.4).cos()
        });
        let phi = solve_potential(&rho, 0.25, 1e-10);
        let mut back = vec![0.0; n * n];
        apply_screened_laplacian(n, n, 0.25, phi.as_slice(), &mut back);
        for (a, b) in back.iter().zip(rho.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn uniform_charge_gives_uniform_screened_potential() {
        let rho = Grid2d::from_fn(8, 8, |_, _| 2.0);
        let phi = solve_potential(&rho, 0.5, 1e-12);
        // −∇²φ = 0 for uniform φ, so φ = ρ λ² = 4 everywhere.
        for &v in phi.as_slice() {
            assert!((v - 4.0).abs() < 1e-8);
        }
    }

    #[test]
    fn field_of_single_mode_potential() {
        let n = 32;
        let k = 2.0 * std::f64::consts::PI / n as f64;
        let phi = Grid2d::from_fn(n, n, |x, _| (k * x as f64).sin());
        let (ex, ey) = electric_field(&phi);
        // Ex = −∂x φ = −k cos(kx) (with the discrete factor sin(k)/k).
        let disc = k.sin() / k;
        for x in 0..n as isize {
            let expect = -k * disc * (k * x as f64).cos() / k * k;
            assert!((ex.at(x, 3) - expect).abs() < 1e-10, "x={x}");
            assert!(ey.at(x, 3).abs() < 1e-12);
        }
    }

    #[test]
    fn field_has_zero_mean() {
        let rho = Grid2d::from_fn(16, 16, |x, y| ((x + 2 * y) % 5) as f64 - 2.0);
        let phi = solve_potential(&rho, 0.3, 1e-10);
        let (ex, ey) = electric_field(&phi);
        assert!(ex.total().abs() < 1e-8);
        assert!(ey.total().abs() < 1e-8);
    }
}
