//! Vectorization hardware-counter accounting (AVL and VOR).
//!
//! The paper characterizes every port by two counters:
//!
//! * **AVL** — average vector length: elements processed per vector
//!   instruction issued (optimal 256 on the ES, 64 on the X1);
//! * **VOR** — vector operation ratio: vector element-operations over all
//!   operations (vector + scalar); optimal 100%.

/// Accumulated operation counts for a run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct VectorMetrics {
    /// Element operations performed by vector instructions.
    pub vector_element_ops: u64,
    /// Vector instructions issued.
    pub vector_instructions: u64,
    /// Operations executed on the scalar unit.
    pub scalar_ops: u64,
}

impl VectorMetrics {
    /// Average vector length (elements per vector instruction); 0 when no
    /// vector instructions were issued.
    pub fn avl(&self) -> f64 {
        if self.vector_instructions == 0 {
            0.0
        } else {
            self.vector_element_ops as f64 / self.vector_instructions as f64
        }
    }

    /// Vector operation ratio in `[0, 1]`; 0 for a purely scalar run and 1.0
    /// (by convention) for an empty run.
    pub fn vor(&self) -> f64 {
        let total = self.vector_element_ops + self.scalar_ops;
        if total == 0 {
            1.0
        } else {
            self.vector_element_ops as f64 / total as f64
        }
    }

    /// Merge another accumulator into this one.
    pub fn merge(&mut self, other: &VectorMetrics) {
        self.vector_element_ops += other.vector_element_ops;
        self.vector_instructions += other.vector_instructions;
        self.scalar_ops += other.scalar_ops;
    }

    /// Record a vectorized loop: `instructions` vector instructions covering
    /// `element_ops` total element operations.
    pub fn record_vector(&mut self, element_ops: u64, instructions: u64) {
        self.vector_element_ops += element_ops;
        self.vector_instructions += instructions;
    }

    /// Record scalar work.
    pub fn record_scalar(&mut self, ops: u64) {
        self.scalar_ops += ops;
    }

    /// Report these counters into a [`Recorder`] under the `vectorsim.*`
    /// names; AVL/VOR are recomputable downstream from the raw counts.
    pub fn record_to(&self, r: &dyn pvs_obs::Recorder) {
        r.add("vectorsim.element_ops", self.vector_element_ops);
        r.add("vectorsim.vector_instructions", self.vector_instructions);
        r.add("vectorsim.scalar_ops", self.scalar_ops);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_vectorization() {
        let mut m = VectorMetrics::default();
        m.record_vector(256 * 100, 100);
        assert_eq!(m.avl(), 256.0);
        assert_eq!(m.vor(), 1.0);
    }

    #[test]
    fn scalar_contamination_lowers_vor() {
        let mut m = VectorMetrics::default();
        m.record_vector(9900, 100);
        m.record_scalar(100);
        assert!((m.vor() - 0.99).abs() < 1e-12);
    }

    #[test]
    fn pure_scalar_run() {
        let mut m = VectorMetrics::default();
        m.record_scalar(1000);
        assert_eq!(m.vor(), 0.0);
        assert_eq!(m.avl(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = VectorMetrics::default();
        a.record_vector(640, 10);
        let mut b = VectorMetrics::default();
        b.record_vector(64, 10);
        b.record_scalar(50);
        a.merge(&b);
        assert_eq!(a.vector_element_ops, 704);
        assert_eq!(a.vector_instructions, 20);
        assert!((a.avl() - 35.2).abs() < 1e-12);
        assert!(a.vor() < 1.0);
    }

    #[test]
    fn record_to_exports_raw_counts() {
        let mut m = VectorMetrics::default();
        m.record_vector(2560, 10);
        m.record_scalar(7);
        let reg = pvs_obs::Registry::new();
        m.record_to(&reg);
        assert_eq!(reg.counter("vectorsim.element_ops"), 2560);
        assert_eq!(reg.counter("vectorsim.vector_instructions"), 10);
        assert_eq!(reg.counter("vectorsim.scalar_ops"), 7);
    }

    #[test]
    fn empty_run_conventions() {
        let m = VectorMetrics::default();
        assert_eq!(m.vor(), 1.0);
        assert_eq!(m.avl(), 0.0);
    }
}
