//! Vector processor configurations.

/// Description of one vector processing unit (an ES processor, an X1 SSP, or
/// an X1 MSP when `ssp_count > 1`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VectorUnitConfig {
    /// Core clock in MHz.
    pub clock_mhz: f64,
    /// Hardware maximum vector length (elements per vector register):
    /// 256 on the ES, 64 on the X1.
    pub max_vl: usize,
    /// Replicated vector pipes per SSP-equivalent; each pipe retires one
    /// fused multiply-add (2 flops) per cycle.
    pub pipes: usize,
    /// Vector registers available (72 on the ES, 32 per X1 SSP) — bounds how
    /// many temporaries a loop body may keep live before spilling.
    pub vector_registers: usize,
    /// Per-vector-instruction startup (issue + pipeline fill that chaining
    /// cannot hide) in cycles.
    pub startup_cycles: f64,
    /// Number of single-streaming processors ganged into this logical unit:
    /// 1 for the ES CPU and the bare SSP, 4 for the X1 MSP.
    pub ssp_count: usize,
    /// Peak scalar-unit performance in Gflop/s (1.0 on the ES — 1/8 of
    /// vector peak; 0.4 on one X1 SSP's 400 MHz scalar core).
    pub scalar_peak_gflops: f64,
}

impl VectorUnitConfig {
    /// Peak vector performance of the whole unit in Gflop/s
    /// (pipes × 2 flops × clock × ssp_count).
    pub fn vector_peak_gflops(&self) -> f64 {
        self.pipes as f64 * 2.0 * self.clock_mhz * 1e-3 * self.ssp_count as f64
    }

    /// Ratio of vector peak to the scalar performance available when a loop
    /// fails to vectorize *and* (on an MSP) to multistream: the paper's
    /// 8:1 (ES) vs 32:1 (X1 MSP) asymmetry.
    pub fn serialization_penalty(&self) -> f64 {
        self.vector_peak_gflops() / self.scalar_peak_gflops
    }

    /// Fraction of nominal scalar peak a serialized loop actually achieves
    /// in the execution model (scalar units are modest in-order cores that
    /// cannot keep their nominal issue rate on real code).
    pub fn scalar_efficiency(&self) -> f64 {
        SCALAR_EFFICIENCY
    }

    /// Issue efficiency of a full-length arithmetic vector instruction:
    /// execution slots over execution-plus-startup cycles. This is the
    /// ceiling AVL buys — shorter strips amortize the startup worse.
    pub fn full_vl_issue_efficiency(&self) -> f64 {
        let exec = self.max_vl as f64 / self.pipes as f64;
        exec / (self.startup_cycles + exec)
    }

    /// The serialization penalty the execution model actually produces for
    /// a compute-bound, full-VL loop: the nominal peak ratio corrected by
    /// the two efficiency factors above. The analysis layer checks engine
    /// slowdowns against the closed form using this value.
    pub fn effective_serialization_penalty(&self) -> f64 {
        self.serialization_penalty() * self.full_vl_issue_efficiency() / self.scalar_efficiency()
    }
}

/// Scalar units reach only a fraction of their nominal peak on real code
/// (the ES scalar unit is a modest 4-way in-order-ish core).
pub(crate) const SCALAR_EFFICIENCY: f64 = 0.5;

/// The Earth Simulator processor: 500 MHz, 8 vector pipes, VL=256,
/// 72 vector registers, 8 Gflop/s vector peak, 1 Gflop/s scalar unit.
pub fn es_processor() -> VectorUnitConfig {
    VectorUnitConfig {
        clock_mhz: 500.0,
        max_vl: 256,
        pipes: 8,
        vector_registers: 72,
        startup_cycles: 10.0,
        ssp_count: 1,
        scalar_peak_gflops: 1.0,
    }
}

/// One Cray X1 single-streaming processor: two 800 MHz vector pipes, VL=64,
/// 32 vector registers, 3.2 Gflop/s peak, 400 MHz 2-way scalar core.
pub fn x1_ssp() -> VectorUnitConfig {
    VectorUnitConfig {
        clock_mhz: 800.0,
        max_vl: 64,
        pipes: 2,
        vector_registers: 32,
        startup_cycles: 12.0,
        ssp_count: 1,
        scalar_peak_gflops: 0.4,
    }
}

/// The Cray X1 multi-streaming processor: four ganged SSPs, 12.8 Gflop/s
/// peak. A serialized loop runs on one SSP's scalar core, so the effective
/// penalty is 32:1 rather than the ES's 8:1.
pub fn x1_msp() -> VectorUnitConfig {
    VectorUnitConfig {
        ssp_count: 4,
        ..x1_ssp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn es_peak_matches_table1() {
        assert!((es_processor().vector_peak_gflops() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn x1_msp_peak_matches_table1() {
        assert!((x1_msp().vector_peak_gflops() - 12.8).abs() < 1e-9);
    }

    #[test]
    fn ssp_is_quarter_of_msp() {
        assert!((x1_ssp().vector_peak_gflops() * 4.0 - x1_msp().vector_peak_gflops()).abs() < 1e-9);
    }

    #[test]
    fn serialization_asymmetry_8_vs_32() {
        assert!((es_processor().serialization_penalty() - 8.0).abs() < 1e-9);
        assert!((x1_msp().serialization_penalty() - 32.0).abs() < 1e-9);
    }

    #[test]
    fn effective_penalty_layers_both_efficiencies() {
        // ES: 32 execution cycles per full-VL instruction, 10 startup.
        let es = es_processor();
        assert!((es.full_vl_issue_efficiency() - 32.0 / 42.0).abs() < 1e-12);
        assert!(
            (es.effective_serialization_penalty() - 8.0 * (32.0 / 42.0) / 0.5).abs() < 1e-9
        );
        // The effective penalty always exceeds the nominal one: the scalar
        // unit loses more of its peak than the vector unit loses to startup.
        for cfg in [es_processor(), x1_ssp(), x1_msp()] {
            assert!(cfg.effective_serialization_penalty() > cfg.serialization_penalty());
            assert!(cfg.full_vl_issue_efficiency() > cfg.scalar_efficiency());
        }
    }
}
