//! Scatter-dependency analysis and the work-vector transformation.
//!
//! PIC charge deposition scatters particle contributions onto grid points;
//! two elements of one vector chunk may target the *same* grid point, so the
//! loop cannot be vectorized as-is. The paper's GTC port uses the
//! work-vector algorithm (Nishiguchi, Orii & Yabe 1985): give the target
//! array an extra dimension of the vector length so each vector lane writes
//! a private copy, then reduce. The price is a 2–8× memory footprint, which
//! in GTC prevented OpenMP loop-level parallelism on the ES (§6.1).

/// A potential memory dependency in a scatter loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScatterDependency {
    /// Can two iterations within one vector chunk write the same address?
    pub intra_chunk_conflicts: bool,
    /// Size in bytes of the scatter target array (the grid).
    pub target_bytes: usize,
    /// Bytes of non-replicated state per processor (particles etc.), used to
    /// report the whole-application memory multiplier.
    pub other_bytes: usize,
}

/// How a scatter loop is executed on a vector unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DepResolution {
    /// No conflicts: vectorize directly.
    Direct,
    /// Work-vector transform: replicate the target over `copies` lanes.
    WorkVector {
        /// Number of private copies (the effective vector length used).
        copies: usize,
        /// Total application memory footprint multiplier this causes.
        memory_multiplier: f64,
        /// Extra element-operations for the final reduction of the copies,
        /// per grid point.
        reduction_ops_per_point: usize,
    },
    /// Leave the loop scalar (what happens without the transform).
    Serialize,
}

/// Decide how a scatter loop runs, mirroring the compiler + pragma decision
/// in the GTC port. `allow_work_vector = false` models the unported code
/// (or an architecture without the memory headroom).
pub fn resolve_dependency(
    dep: &ScatterDependency,
    vector_length: usize,
    allow_work_vector: bool,
) -> DepResolution {
    if !dep.intra_chunk_conflicts {
        return DepResolution::Direct;
    }
    if !allow_work_vector {
        return DepResolution::Serialize;
    }
    let replicated = dep.target_bytes as f64 * vector_length as f64;
    let total_before = (dep.target_bytes + dep.other_bytes) as f64;
    let total_after = replicated + dep.other_bytes as f64;
    DepResolution::WorkVector {
        copies: vector_length,
        memory_multiplier: total_after / total_before,
        reduction_ops_per_point: vector_length,
    }
}

/// A reusable, *functional* work-vector accumulator used by the GTC crate:
/// `lanes` private copies of a length-`n` grid, merged on demand. This is
/// the same data structure a vectorizing compiler materializes, and it also
/// serves as the per-thread private grid for loop-level (OpenMP-style)
/// parallelism.
#[derive(Debug, Clone)]
pub struct WorkVectorGrid {
    lanes: usize,
    n: usize,
    data: Vec<f64>,
}

impl WorkVectorGrid {
    /// Allocate `lanes` zeroed private copies of a grid with `n` points.
    pub fn new(lanes: usize, n: usize) -> Self {
        assert!(lanes >= 1 && n >= 1);
        Self {
            lanes,
            n,
            data: vec![0.0; lanes * n],
        }
    }

    /// Deposit `value` at grid point `idx` from vector lane `lane`.
    #[inline]
    pub fn deposit(&mut self, lane: usize, idx: usize, value: f64) {
        debug_assert!(lane < self.lanes && idx < self.n);
        self.data[lane * self.n + idx] += value;
    }

    /// Reduce all lanes into `out` (adds to existing contents).
    pub fn reduce_into(&self, out: &mut [f64]) {
        assert_eq!(out.len(), self.n);
        for lane in 0..self.lanes {
            let base = lane * self.n;
            for (i, o) in out.iter_mut().enumerate() {
                *o += self.data[base + i];
            }
        }
    }

    /// Zero all lanes for reuse.
    pub fn clear(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Number of private copies.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Memory footprint in bytes.
    pub fn footprint_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_conflict_vectorizes_directly() {
        let dep = ScatterDependency {
            intra_chunk_conflicts: false,
            target_bytes: 1000,
            other_bytes: 0,
        };
        assert_eq!(resolve_dependency(&dep, 256, true), DepResolution::Direct);
    }

    #[test]
    fn conflict_without_transform_serializes() {
        let dep = ScatterDependency {
            intra_chunk_conflicts: true,
            target_bytes: 1000,
            other_bytes: 0,
        };
        assert_eq!(
            resolve_dependency(&dep, 256, false),
            DepResolution::Serialize
        );
    }

    #[test]
    fn gtc_memory_multiplier_in_paper_range() {
        // GTC: grid is small relative to particles (10 particles/cell,
        // ~13 doubles per particle vs 1 per grid point): a 256-copy grid
        // lands the total footprint multiplier in the paper's 2-8x band.
        let grid = 2_000_000 * 8; // 2M grid points
        let particles = 20_000_000 * 13 * 8; // 20M particles
        let dep = ScatterDependency {
            intra_chunk_conflicts: true,
            target_bytes: grid,
            other_bytes: particles,
        };
        match resolve_dependency(&dep, 256, true) {
            DepResolution::WorkVector {
                memory_multiplier,
                copies,
                ..
            } => {
                assert_eq!(copies, 256);
                assert!(
                    (2.0..=8.0).contains(&memory_multiplier),
                    "multiplier {memory_multiplier} outside the paper's 2-8x"
                );
            }
            other => panic!("expected work-vector, got {other:?}"),
        }
    }

    #[test]
    fn work_vector_grid_equals_serial_scatter() {
        // The correctness property the transform relies on: lane-private
        // deposition + reduction == serial deposition.
        let n = 50;
        let deposits: Vec<(usize, f64)> = (0..400).map(|i| (i * 7 % n, (i as f64).sin())).collect();

        let mut serial = vec![0.0; n];
        for &(ix, v) in &deposits {
            serial[ix] += v;
        }

        let mut wv = WorkVectorGrid::new(8, n);
        for (k, &(ix, v)) in deposits.iter().enumerate() {
            wv.deposit(k % 8, ix, v);
        }
        let mut reduced = vec![0.0; n];
        wv.reduce_into(&mut reduced);

        for i in 0..n {
            assert!((serial[i] - reduced[i]).abs() < 1e-12, "point {i}");
        }
    }

    #[test]
    fn clear_resets_lanes() {
        let mut wv = WorkVectorGrid::new(4, 10);
        wv.deposit(2, 3, 1.5);
        wv.clear();
        let mut out = vec![0.0; 10];
        wv.reduce_into(&mut out);
        assert!(out.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn footprint_scales_with_lanes() {
        let a = WorkVectorGrid::new(1, 100).footprint_bytes();
        let b = WorkVectorGrid::new(64, 100).footprint_bytes();
        assert_eq!(b, 64 * a);
    }
}
