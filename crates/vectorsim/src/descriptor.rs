//! Static kernel descriptors: the "compiler listing" view of a loop nest.
//!
//! On the Earth Simulator and the Cray X1, the paper's per-kernel analysis
//! started from *statically knowable* properties — the vectorization
//! diagnostics and operation counts the compilers' listing files exposed —
//! and cross-checked them against the hardware counters (`ftrace`, `pat`)
//! after a run. A [`KernelDescriptor`] is this reproduction's listing-file
//! entry: enough static information about one registered kernel on one
//! machine to predict computational intensity, AVL, and VOR *without
//! executing anything* ([`KernelDescriptor::static_prediction`]), plus the
//! hook to run the same loop through the dynamic pipeline model
//! ([`KernelDescriptor::dynamic_metrics`]) so `pvs-lint` can flag any
//! descriptor whose static story diverges from what the simulated hardware
//! counters report.
//!
//! The two predictions are *independently derived*: the static side uses
//! only the closed-form strip-mining arithmetic in [`crate::stripmine`],
//! while the dynamic side goes through the full instruction-accounting
//! model in [`crate::exec`]. Agreement is therefore a real invariant, not a
//! tautology — a change to either derivation that breaks the relationship
//! trips the `PVS008`/`PVS009` model lints.

use crate::config::{es_processor, x1_msp, VectorUnitConfig};
use crate::exec::{ExecResult, LoopClass, MemoryEnv, VectorLoop, VectorUnit};
use crate::metrics::VectorMetrics;
use crate::stripmine::average_vector_length;

/// The vector machine a descriptor is registered for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineKind {
    /// NEC Earth Simulator processor (VL 256, 8 pipes, one stream).
    Es,
    /// Cray X1 multi-streaming processor (VL 64, 4 ganged SSPs).
    X1Msp,
}

impl MachineKind {
    /// The machine's vector-unit configuration.
    pub fn unit(&self) -> VectorUnitConfig {
        match self {
            MachineKind::Es => es_processor(),
            MachineKind::X1Msp => x1_msp(),
        }
    }

    /// Short display name matching `pvs_core::platforms` machine names.
    pub fn name(&self) -> &'static str {
        match self {
            MachineKind::Es => "ES",
            MachineKind::X1Msp => "X1",
        }
    }

    /// Clean sustained memory bandwidth in bytes per core cycle (ES:
    /// 32 GB/s at 500 MHz; X1 MSP: 34.1 GB/s at 800 MHz), used for the
    /// dynamic cross-check run. AVL and VOR are pure operation-count
    /// ratios, so the exact bandwidth does not affect the comparison.
    pub fn bytes_per_cycle(&self) -> f64 {
        match self {
            MachineKind::Es => 64.0,
            MachineKind::X1Msp => 42.6,
        }
    }
}

/// One registered kernel: a loop nest bound to the machine whose port it
/// describes, with a stable provenance trail for diagnostics.
#[derive(Debug, Clone)]
pub struct KernelDescriptor {
    /// Application the kernel belongs to ("lbmhd", "gtc", …).
    pub app: &'static str,
    /// Kernel name as reported in tables ("collision", "gather_push", …).
    pub kernel: String,
    /// Machine whose port this descriptor models.
    pub machine: MachineKind,
    /// Repo-relative file that registered the descriptor (diagnostic span).
    pub source_hint: &'static str,
    /// The loop nest, in the execution model's own terms.
    pub vloop: VectorLoop,
}

/// What the static analysis predicts for a kernel, before any execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaticPrediction {
    /// Computational intensity in flops per byte of memory traffic.
    pub intensity: f64,
    /// Predicted average vector length (0 for a scalar kernel).
    pub avl: f64,
    /// Predicted vector operation ratio in `[0, 1]`.
    pub vor: f64,
}

impl KernelDescriptor {
    /// Predict intensity, AVL, and VOR from the descriptor alone, using
    /// only strip-mining arithmetic — the paper's "listing file" numbers.
    ///
    /// A vectorized loop of `n` trips on a unit with `s` streams and
    /// maximum vector length `VL` issues `ceil(n/s) / VL`-strip
    /// instructions per stream, so its AVL is the average strip length of
    /// `ceil(n/s)` iterations; every operation it retires is a vector
    /// element operation, so VOR is 1. A scalar loop issues no vector
    /// instructions at all: AVL 0, VOR 0.
    pub fn static_prediction(&self) -> StaticPrediction {
        let unit = self.machine.unit();
        let intensity = self.vloop.intensity();
        match self.vloop.class {
            LoopClass::Scalar => StaticPrediction {
                intensity,
                avl: 0.0,
                vor: 0.0,
            },
            LoopClass::Vectorizable { multistreamable } => {
                let streams = if multistreamable { unit.ssp_count } else { 1 };
                let trips_per_stream = self.vloop.trips.div_ceil(streams.max(1));
                StaticPrediction {
                    intensity,
                    avl: average_vector_length(trips_per_stream, unit.max_vl),
                    vor: 1.0,
                }
            }
        }
    }

    /// Execute the kernel through the dynamic pipeline model on its
    /// machine (clean memory) and return the full result.
    pub fn execute(&self) -> ExecResult {
        let unit = VectorUnit::new(self.machine.unit());
        unit.execute(
            &self.vloop,
            &MemoryEnv::clean(self.machine.bytes_per_cycle()),
        )
    }

    /// The simulated hardware counters for a dynamic run of this kernel —
    /// what `ftrace`/`pat` would report.
    pub fn dynamic_metrics(&self) -> VectorMetrics {
        self.execute().metrics
    }
}

/// The synthetic microkernels `pvs-vectorsim` itself registers: the
/// limiting cases the paper's §2 architecture discussion is built on,
/// useful as always-present calibration rows for the model lints.
pub fn reference_descriptors() -> Vec<KernelDescriptor> {
    const HERE: &str = "crates/vectorsim/src/descriptor.rs";
    let compute_bound = |trips: usize| VectorLoop {
        trips,
        outer_iters: 100,
        flops_per_iter: 64.0,
        bytes_per_iter: 16.0,
        gather_fraction: 0.0,
        live_vector_temps: 8,
        class: LoopClass::Vectorizable {
            multistreamable: true,
        },
    };
    let mut out = Vec::new();
    for machine in [MachineKind::Es, MachineKind::X1Msp] {
        out.push(KernelDescriptor {
            app: "vectorsim",
            kernel: "compute_bound_long".to_string(),
            machine,
            source_hint: HERE,
            vloop: compute_bound(4096),
        });
        out.push(KernelDescriptor {
            app: "vectorsim",
            kernel: "stream_bound".to_string(),
            machine,
            source_hint: HERE,
            vloop: VectorLoop {
                flops_per_iter: 12.0,
                bytes_per_iter: 64.0,
                ..compute_bound(4096)
            },
        });
        out.push(KernelDescriptor {
            app: "vectorsim",
            kernel: "serialized".to_string(),
            machine,
            source_hint: HERE,
            vloop: VectorLoop {
                class: LoopClass::Scalar,
                ..compute_bound(4096)
            },
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn relative_gap(a: f64, b: f64) -> f64 {
        if b == 0.0 {
            a.abs()
        } else {
            (a - b).abs() / b.abs()
        }
    }

    #[test]
    fn static_avl_matches_dynamic_on_references() {
        for d in reference_descriptors() {
            let s = d.static_prediction();
            let m = d.dynamic_metrics();
            assert!(
                relative_gap(m.avl(), s.avl) < 0.05,
                "{}/{} on {}: static AVL {} vs dynamic {}",
                d.app,
                d.kernel,
                d.machine.name(),
                s.avl,
                m.avl()
            );
        }
    }

    #[test]
    fn static_vor_matches_dynamic_on_references() {
        for d in reference_descriptors() {
            let s = d.static_prediction();
            let m = d.dynamic_metrics();
            assert!(
                (m.vor() - s.vor).abs() < 0.05,
                "{}/{}: static VOR {} vs dynamic {}",
                d.app,
                d.kernel,
                s.vor,
                m.vor()
            );
        }
    }

    #[test]
    fn es_long_loop_predicts_full_strips() {
        let d = &reference_descriptors()[0];
        assert_eq!(d.machine, MachineKind::Es);
        let s = d.static_prediction();
        assert_eq!(s.avl, 256.0);
        assert_eq!(s.vor, 1.0);
        assert!((s.intensity - 4.0).abs() < 1e-12);
    }

    #[test]
    fn scalar_kernel_predicts_zero_avl_and_vor() {
        let d = reference_descriptors()
            .into_iter()
            .find(|d| d.kernel == "serialized")
            .expect("registered");
        let s = d.static_prediction();
        assert_eq!(s.avl, 0.0);
        assert_eq!(s.vor, 0.0);
    }

    #[test]
    fn multistreaming_divides_x1_trip_count() {
        // 4096 trips over 4 SSPs: 1024 each, VL 64 ⇒ AVL exactly 64.
        let d = reference_descriptors()
            .into_iter()
            .find(|d| d.machine == MachineKind::X1Msp && d.kernel == "compute_bound_long")
            .expect("registered");
        assert_eq!(d.static_prediction().avl, 64.0);
    }

    #[test]
    fn deliberate_divergence_is_detectable() {
        // Tiny trip count with a fractional instruction count per
        // iteration: ceil-rounding in the dynamic accounting visibly
        // departs from the closed-form strip average. This is the shape
        // the PVS008 lint exists to catch.
        let d = KernelDescriptor {
            app: "fixture",
            kernel: "rounding_pathology".to_string(),
            machine: MachineKind::Es,
            source_hint: "crates/vectorsim/src/descriptor.rs",
            vloop: VectorLoop {
                trips: 3,
                outer_iters: 1,
                flops_per_iter: 3.0,
                bytes_per_iter: 8.0,
                gather_fraction: 0.0,
                live_vector_temps: 8,
                class: LoopClass::Vectorizable {
                    multistreamable: true,
                },
            },
        };
        let s = d.static_prediction();
        let m = d.dynamic_metrics();
        assert!(
            relative_gap(m.avl(), s.avl) > 0.05,
            "expected divergence, got static {} vs dynamic {}",
            s.avl,
            m.avl()
        );
    }
}
