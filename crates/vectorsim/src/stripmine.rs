//! Strip-mining arithmetic: how a loop of `n` iterations is chopped into
//! vector-length-sized chunks, and what AVL that produces.

/// Number of vector instructions needed to cover `n` iterations at maximum
/// vector length `vl` (zero for an empty loop).
pub fn num_strips(n: usize, vl: usize) -> usize {
    assert!(vl >= 1);
    n.div_ceil(vl)
}

/// The chunk sizes of each strip: `vl, vl, …, remainder`.
pub fn strip_chunks(n: usize, vl: usize) -> Vec<usize> {
    let strips = num_strips(n, vl);
    (0..strips)
        .map(|s| {
            if s + 1 < strips || n.is_multiple_of(vl) {
                vl
            } else {
                n % vl
            }
        })
        .collect()
}

/// Average vector length over the strips covering `n` iterations — exactly
/// the AVL a hardware counter reports for this loop (elements processed per
/// vector instruction issued).
pub fn average_vector_length(n: usize, vl: usize) -> f64 {
    let strips = num_strips(n, vl);
    if strips == 0 {
        0.0
    } else {
        n as f64 / strips as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_multiple() {
        assert_eq!(num_strips(512, 256), 2);
        assert_eq!(strip_chunks(512, 256), vec![256, 256]);
        assert_eq!(average_vector_length(512, 256), 256.0);
    }

    #[test]
    fn remainder_strip() {
        assert_eq!(strip_chunks(300, 256), vec![256, 44]);
        assert!((average_vector_length(300, 256) - 150.0).abs() < 1e-12);
    }

    #[test]
    fn short_loop_single_strip() {
        assert_eq!(num_strips(10, 256), 1);
        assert_eq!(average_vector_length(10, 256), 10.0);
    }

    #[test]
    fn empty_loop() {
        assert_eq!(num_strips(0, 64), 0);
        assert_eq!(average_vector_length(0, 64), 0.0);
        assert!(strip_chunks(0, 64).is_empty());
    }

    #[test]
    fn paper_cactus_avl_values() {
        // Table 5 discussion: AVL 248 for x-dimension 250, AVL ~92 for 80
        // after accounting for two ghost cells — here we check the raw
        // strip-mining relationship that drives it: 250 iterations on the ES
        // splits as 250 (<=256, one strip).
        assert_eq!(average_vector_length(250, 256), 250.0);
        assert_eq!(average_vector_length(80, 256), 80.0);
        // On the X1 (VL=64): 250 -> 62.5, 80 -> 40.
        assert!((average_vector_length(250, 64) - 62.5).abs() < 1e-12);
        assert!((average_vector_length(80, 64) - 40.0).abs() < 1e-12);
    }

    // The former proptest properties, swept deterministically over a grid
    // that hits every boundary class: vl | n, n < vl, n = vl ± 1, n = 0,
    // prime/awkward values, and the hardware vector lengths (64, 256).
    const NS: [usize; 16] = [
        0, 1, 2, 3, 10, 63, 64, 65, 100, 250, 255, 256, 257, 999, 4096, 9999,
    ];
    const VLS: [usize; 9] = [1, 2, 3, 7, 63, 64, 256, 500, 511];

    #[test]
    fn chunks_sum_to_n() {
        for n in NS {
            for vl in VLS {
                assert_eq!(strip_chunks(n, vl).iter().sum::<usize>(), n, "n={n} vl={vl}");
            }
        }
    }

    #[test]
    fn avl_bounded_by_vl() {
        for n in NS.into_iter().filter(|&n| n >= 1) {
            for vl in VLS {
                let avl = average_vector_length(n, vl);
                assert!(
                    avl > 0.0 && avl <= vl as f64 + 1e-12,
                    "n={n} vl={vl} avl={avl}"
                );
            }
        }
    }

    #[test]
    fn all_chunks_positive_and_bounded() {
        for n in NS.into_iter().filter(|&n| n >= 1) {
            for vl in VLS {
                for c in strip_chunks(n, vl) {
                    assert!(c >= 1 && c <= vl, "n={n} vl={vl} chunk={c}");
                }
            }
        }
    }
}
