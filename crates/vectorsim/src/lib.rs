//! # pvs-vectorsim — vector pipeline execution model
//!
//! Models how the Earth Simulator and Cray X1 execute loop nests, at the
//! level of detail the SC 2004 paper's analysis uses:
//!
//! * **strip-mining** ([`stripmine`]): a loop of `n` iterations runs as
//!   `ceil(n / VL)` vector instructions, whose average chunk size *is* the
//!   hardware AVL counter the paper reports (`ftrace` on the ES, `pat` on
//!   the X1);
//! * **vector-operation-ratio accounting** ([`metrics`]): every element
//!   processed by a vector instruction counts toward VOR's numerator, every
//!   scalar-unit operation toward the denominator's scalar part;
//! * **multistreaming** ([`config`], [`exec`]): the X1 MSP distributes loop
//!   iterations across four SSPs; a vectorized-but-unstreamed loop uses one
//!   SSP (¼ performance) and a fully serial loop uses one SSP's *scalar*
//!   core (1/32 of MSP peak — the asymmetry behind the paper's Cactus and
//!   GTC findings);
//! * **work-vector dependency resolution** ([`workvec`]): Nishiguchi-style
//!   replication of a scatter target across the vector length, trading a
//!   2–8× memory footprint for vectorizability (GTC charge deposition);
//! * **static kernel descriptors** ([`descriptor`]): the "compiler listing"
//!   view of a registered kernel — closed-form intensity/AVL/VOR
//!   predictions that `pvs-lint` cross-checks against the dynamic model.
//!
//! ## Example
//!
//! ```
//! use pvs_vectorsim::{es_processor, LoopClass, MemoryEnv, VectorLoop, VectorUnit};
//!
//! let unit = VectorUnit::new(es_processor());
//! let compute_bound = VectorLoop {
//!     trips: 4096, outer_iters: 100,
//!     flops_per_iter: 64.0, bytes_per_iter: 16.0,
//!     gather_fraction: 0.0, live_vector_temps: 8,
//!     class: LoopClass::Vectorizable { multistreamable: true },
//! };
//! let r = unit.execute(&compute_bound, &MemoryEnv::clean(64.0));
//! assert!(r.gflops() > 4.0);           // well-vectorized: most of 8 GF/s
//! assert!(r.metrics.avl() > 250.0);    // full 256-element strips
//! ```

pub mod config;
pub mod descriptor;
pub mod exec;
pub mod metrics;
pub mod stripmine;
pub mod workvec;

pub use config::{es_processor, x1_msp, x1_ssp, VectorUnitConfig};
pub use descriptor::{KernelDescriptor, MachineKind, StaticPrediction};
pub use exec::{ExecResult, LoopClass, MemoryEnv, VectorLoop, VectorUnit};
pub use metrics::VectorMetrics;
pub use stripmine::{average_vector_length, num_strips, strip_chunks};
pub use workvec::{resolve_dependency, DepResolution, ScatterDependency};
