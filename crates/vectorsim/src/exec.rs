//! Execution timing of loop nests on a vector unit.
//!
//! The model charges, per strip of a vectorized loop, one chained startup
//! plus `chunk / pipes` cycles per vector instruction in the body, and
//! bounds the result by sustained memory bandwidth (vector machines overlap
//! pipelined memory fetches with computation, so the bound is a `max`, not
//! a sum). Scalar loops run on the scalar core; on an X1 MSP only one of
//! the four SSP scalar cores does useful work in a serialized region.

use crate::config::VectorUnitConfig;
use crate::metrics::VectorMetrics;
use crate::stripmine::{num_strips, strip_chunks};

/// How the compiler classified a loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoopClass {
    /// Vectorized; `multistreamable` says whether the X1 compiler could also
    /// distribute iterations across the MSP's four SSPs (irrelevant on the
    /// ES, whose unit has `ssp_count == 1`).
    Vectorizable {
        /// Whether MSP multistreaming applies.
        multistreamable: bool,
    },
    /// Left on the scalar unit (dependences, nested ifs, …).
    Scalar,
}

/// One loop nest to execute.
#[derive(Debug, Clone, Copy)]
pub struct VectorLoop {
    /// Trip count of the (innermost, vectorized) loop.
    pub trips: usize,
    /// How many times the inner loop runs (product of outer loop trip
    /// counts); 1 for a flat loop.
    pub outer_iters: usize,
    /// Floating-point operations per inner iteration.
    pub flops_per_iter: f64,
    /// Memory traffic (loads + stores) in bytes per inner iteration.
    pub bytes_per_iter: f64,
    /// Fraction of the loop's vector instructions that are gather/scatter
    /// (indexed) memory operations. Gathers cannot use the replicated
    /// pipes: they issue roughly one element per cycle, which is why PIC
    /// deposition runs far below peak even when fully vectorized (§6).
    pub gather_fraction: f64,
    /// Vector-register temporaries the loop body keeps live; a body needing
    /// more than the hardware provides spills, inflating the instruction
    /// count (the Cactus BSSN kernel's "large number of variables" hits the
    /// X1's 32 registers per SSP much harder than the ES's 72).
    pub live_vector_temps: usize,
    /// Compiler classification.
    pub class: LoopClass,
}

impl VectorLoop {
    /// Total floating-point operations in the nest.
    pub fn total_flops(&self) -> f64 {
        self.flops_per_iter * self.trips as f64 * self.outer_iters as f64
    }

    /// Total memory traffic in bytes.
    pub fn total_bytes(&self) -> f64 {
        self.bytes_per_iter * self.trips as f64 * self.outer_iters as f64
    }

    /// Computational intensity (flops per byte).
    pub fn intensity(&self) -> f64 {
        if self.bytes_per_iter == 0.0 {
            f64::INFINITY
        } else {
            self.flops_per_iter / self.bytes_per_iter
        }
    }
}

/// Memory environment the unit executes in.
#[derive(Debug, Clone, Copy)]
pub struct MemoryEnv {
    /// Sustained memory bandwidth available to this unit, bytes per cycle
    /// (e.g. ES: 32 GB/s at 500 MHz = 64 B/cycle).
    pub bytes_per_cycle: f64,
    /// Derating in `(0, 1]` from bank conflicts / gather-scatter, computed
    /// by the caller (e.g. from `pvs-memsim::banks`).
    pub access_efficiency: f64,
}

impl MemoryEnv {
    /// Conflict-free environment with the given bandwidth.
    pub fn clean(bytes_per_cycle: f64) -> Self {
        Self {
            bytes_per_cycle,
            access_efficiency: 1.0,
        }
    }
}

/// Result of executing one loop nest.
#[derive(Debug, Clone, Copy)]
pub struct ExecResult {
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Hardware-counter style metrics.
    pub metrics: VectorMetrics,
    /// Floating-point operations performed.
    pub flops: f64,
    /// Strip-mine loop bodies executed (strips per stream × outer
    /// iterations × streams); 0 for a scalar loop. Cross-checks AVL:
    /// `element_ops / instructions` must equal the average strip length.
    pub strips: u64,
    /// Strip-length distribution as `(length, strips)` pairs: slot 0 the
    /// full-VL strips, slot 1 the remainder strips (zero-count slots are
    /// padding — a strip-mined loop has at most two distinct lengths).
    /// Fixed-size so the result stays `Copy`; counts sum to `strips`.
    pub strip_lens: [(u64, u64); 2],
}

impl ExecResult {
    /// Achieved Gflop/s.
    pub fn gflops(&self) -> f64 {
        if self.seconds <= 0.0 {
            0.0
        } else {
            self.flops / 1e9 / self.seconds
        }
    }
}

/// A vector processing unit bound to a configuration.
#[derive(Debug, Clone, Copy)]
pub struct VectorUnit {
    config: VectorUnitConfig,
}

impl VectorUnit {
    /// Wrap a configuration.
    pub fn new(config: VectorUnitConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &VectorUnitConfig {
        &self.config
    }

    /// Execute a loop nest, returning time and counter metrics.
    pub fn execute(&self, l: &VectorLoop, mem: &MemoryEnv) -> ExecResult {
        match l.class {
            LoopClass::Scalar => self.execute_scalar(l),
            LoopClass::Vectorizable { multistreamable } => {
                self.execute_vector(l, mem, multistreamable)
            }
        }
    }

    fn execute_scalar(&self, l: &VectorLoop) -> ExecResult {
        let flops = l.total_flops();
        let seconds =
            flops / (self.config.scalar_peak_gflops * 1e9 * self.config.scalar_efficiency());
        let mut metrics = VectorMetrics::default();
        // Operations, not flops: normalize by the 2-flop MADD convention so
        // scalar and vector operation counts are commensurable in VOR.
        metrics.record_scalar((flops / 2.0) as u64);
        ExecResult {
            seconds,
            metrics,
            flops,
            strips: 0,
            strip_lens: [(0, 0); 2],
        }
    }

    fn execute_vector(&self, l: &VectorLoop, mem: &MemoryEnv, multistreamable: bool) -> ExecResult {
        let cfg = &self.config;
        // How many SSPs participate, and what trip count each one sees.
        let streams = if multistreamable { cfg.ssp_count } else { 1 };
        let trips_per_stream = l.trips.div_ceil(streams);

        // Arithmetic vector instructions per iteration (one MADD retires two
        // flops). Memory instructions chain with arithmetic and overlap with
        // the pipelined fetches, so their cost is carried entirely by the
        // bandwidth bound below rather than by issue slots. Register
        // pressure beyond the architected vector registers forces spill
        // loads/stores, inflating the instruction count proportionally.
        let spill_factor = (l.live_vector_temps as f64 / cfg.vector_registers as f64).max(1.0);
        let vinsn_per_iter = (l.flops_per_iter / 2.0).max(1.0) * spill_factor;

        let chunks = strip_chunks(trips_per_stream, cfg.max_vl);
        let gf = l.gather_fraction.clamp(0.0, 1.0);
        let mut cycles_per_outer = 0.0;
        for &c in &chunks {
            // Each vector instruction pays its issue/startup latency plus
            // its execution slots; short chunks cannot amortize the startup,
            // which is exactly why AVL matters. Gather/scatter elements
            // retire roughly one per cycle for the whole unit (all SSPs of
            // an MSP contend for the indexed memory ports), further slowed
            // by bank conflicts (`access_efficiency`).
            let arith = cfg.startup_cycles + c as f64 / cfg.pipes as f64;
            // Gather throughput is set by the banked DRAM, not the core
            // clock: ~one element per GATHER_REFERENCE_NS per processor,
            // shared by all SSPs of an MSP, degraded by bank conflicts.
            let gather_elem_cycles =
                cfg.clock_mhz / 500.0 * streams as f64 / mem.access_efficiency.sqrt().max(0.05);
            let gather = cfg.startup_cycles + c as f64 * gather_elem_cycles;
            cycles_per_outer += vinsn_per_iter * ((1.0 - gf) * arith + gf * gather);
        }
        let compute_cycles = cycles_per_outer * l.outer_iters as f64;

        // Memory bound over the whole nest: bytes are global and the
        // bandwidth is a property of the whole unit, shared by all streams.
        let memory_cycles =
            l.total_bytes() / (mem.bytes_per_cycle * mem.access_efficiency).max(f64::MIN_POSITIVE);
        let total_cycles = compute_cycles.max(memory_cycles);

        let seconds = total_cycles / (cfg.clock_mhz * 1e6);

        // Counter accounting: each vector instruction processes `chunk`
        // element slots, so element ops = instructions-weighted chunk sums —
        // this makes AVL come out as the average strip length, exactly what
        // the hardware counters report.
        let flops = l.total_flops();
        let instructions = (num_strips(trips_per_stream, cfg.max_vl) as f64 * vinsn_per_iter).ceil()
            as u64
            * l.outer_iters as u64
            * streams as u64;
        let element_ops = (vinsn_per_iter * trips_per_stream as f64).ceil() as u64
            * l.outer_iters as u64
            * streams as u64;
        let mut metrics = VectorMetrics::default();
        metrics.record_vector(element_ops, instructions.max(1));
        // Strip-length distribution: every stream × outer iteration walks
        // the same chunk sequence — full-VL strips plus at most one
        // remainder — so the whole nest has at most two distinct lengths.
        let repeats = l.outer_iters as u64 * streams as u64;
        let full = (trips_per_stream / cfg.max_vl) as u64;
        let rem = (trips_per_stream % cfg.max_vl) as u64;
        let strip_lens = [
            (cfg.max_vl as u64, full * repeats),
            (rem, if rem > 0 { repeats } else { 0 }),
        ];
        ExecResult {
            seconds,
            metrics,
            flops,
            strips: num_strips(trips_per_stream, cfg.max_vl) as u64
                * l.outer_iters as u64
                * streams as u64,
            strip_lens,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{es_processor, x1_msp};

    /// ES memory: 32 GB/s at 500 MHz = 64 bytes/cycle.
    fn es_mem() -> MemoryEnv {
        MemoryEnv::clean(64.0)
    }

    fn compute_heavy(trips: usize) -> VectorLoop {
        VectorLoop {
            trips,
            outer_iters: 100,
            flops_per_iter: 64.0,
            bytes_per_iter: 16.0, // intensity 4: compute-bound on the ES
            gather_fraction: 0.0,
            live_vector_temps: 8,
            class: LoopClass::Vectorizable {
                multistreamable: true,
            },
        }
    }

    #[test]
    fn long_vectors_approach_peak() {
        let unit = VectorUnit::new(es_processor());
        let r = unit.execute(&compute_heavy(4096), &es_mem());
        let frac = r.gflops() / unit.config().vector_peak_gflops();
        assert!(
            frac > 0.55,
            "long compute-bound loop should exceed 55% of peak, got {frac}"
        );
        assert!((r.metrics.avl() - 256.0).abs() < 1.0);
        assert_eq!(r.metrics.vor(), 1.0);
    }

    #[test]
    fn strip_length_distribution_sums_to_strips() {
        let unit = VectorUnit::new(es_processor());
        // 300 trips at VL 256: one full strip + a 44-element remainder
        // per stream per outer iteration.
        let r = unit.execute(&compute_heavy(300), &es_mem());
        let total: u64 = r.strip_lens.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, r.strips);
        assert_eq!(r.strip_lens[0].0, 256);
        assert_eq!(r.strip_lens[1].0, 44);
        assert_eq!(r.strip_lens[0].1, r.strip_lens[1].1);
        let weighted: u64 = r.strip_lens.iter().map(|&(l, n)| l * n).sum();
        assert_eq!(weighted, 300 * 100); // trips x outer_iters

        // Exact multiple: no remainder slot.
        let exact = unit.execute(&compute_heavy(512), &es_mem());
        assert_eq!(exact.strip_lens[1].1, 0);
        assert_eq!(exact.strip_lens[0].1, exact.strips);

        // Scalar loops have no strips at all.
        let mut sloop = compute_heavy(512);
        sloop.class = LoopClass::Scalar;
        let s = unit.execute(&sloop, &es_mem());
        assert_eq!(s.strip_lens, [(0, 0); 2]);
    }

    #[test]
    fn short_vectors_lose_to_startup() {
        let unit = VectorUnit::new(es_processor());
        let long = unit.execute(&compute_heavy(4096), &es_mem());
        let short = unit.execute(&compute_heavy(16), &es_mem());
        assert!(
            short.gflops() < long.gflops() * 0.7,
            "short {} vs long {}",
            short.gflops(),
            long.gflops()
        );
        assert!(short.metrics.avl() <= 16.0);
    }

    #[test]
    fn low_intensity_is_bandwidth_bound() {
        let unit = VectorUnit::new(es_processor());
        // LBMHD-like: 1.5 flops per 8-byte word = 0.1875 flops/byte.
        let l = VectorLoop {
            trips: 4096,
            outer_iters: 100,
            flops_per_iter: 12.0,
            bytes_per_iter: 64.0,
            gather_fraction: 0.0,
            live_vector_temps: 8,
            class: LoopClass::Vectorizable {
                multistreamable: true,
            },
        };
        let r = unit.execute(&l, &es_mem());
        // Bandwidth bound: 64 B/cycle * 0.1875 flop/B = 12 flops/cycle
        // = 6 Gflop/s at 500 MHz (75% of peak) upper bound.
        assert!(r.gflops() <= 6.0 + 1e-6, "{}", r.gflops());
        assert!(r.gflops() > 3.0, "{}", r.gflops());
    }

    #[test]
    fn bank_conflicts_slow_memory_bound_loops() {
        let unit = VectorUnit::new(es_processor());
        let l = VectorLoop {
            trips: 4096,
            outer_iters: 10,
            flops_per_iter: 4.0,
            bytes_per_iter: 64.0,
            gather_fraction: 0.0,
            live_vector_temps: 8,
            class: LoopClass::Vectorizable {
                multistreamable: true,
            },
        };
        let clean = unit.execute(&l, &es_mem());
        let conflicted = unit.execute(
            &l,
            &MemoryEnv {
                bytes_per_cycle: 64.0,
                access_efficiency: 0.25,
            },
        );
        assert!(conflicted.seconds > 3.0 * clean.seconds);
    }

    #[test]
    fn msp_multistreaming_quadruples_throughput() {
        let unit = VectorUnit::new(x1_msp());
        let mem = MemoryEnv::clean(42.6); // 34.1 GB/s at 800 MHz
        let streamed = VectorLoop {
            trips: 4096,
            outer_iters: 100,
            flops_per_iter: 64.0,
            bytes_per_iter: 16.0,
            gather_fraction: 0.0,
            live_vector_temps: 8,
            class: LoopClass::Vectorizable {
                multistreamable: true,
            },
        };
        let unstreamed = VectorLoop {
            class: LoopClass::Vectorizable {
                multistreamable: false,
            },
            ..streamed
        };
        let rs = unit.execute(&streamed, &mem);
        let ru = unit.execute(&unstreamed, &mem);
        let ratio = rs.gflops() / ru.gflops();
        assert!((3.0..=4.5).contains(&ratio), "multistream speedup {ratio}");
    }

    #[test]
    fn serialized_loop_pays_32x_on_msp_8x_on_es() {
        let es = VectorUnit::new(es_processor());
        let x1 = VectorUnit::new(x1_msp());
        let vl = compute_heavy(4096);
        let sl = VectorLoop {
            class: LoopClass::Scalar,
            ..vl
        };

        let es_pen = es.execute(&vl, &es_mem()).gflops() / es.execute(&sl, &es_mem()).gflops();
        let mem = MemoryEnv::clean(42.6);
        let x1_pen = x1.execute(&vl, &mem).gflops() / x1.execute(&sl, &mem).gflops();
        assert!(
            x1_pen > 2.5 * es_pen,
            "X1 serialization penalty ({x1_pen:.1}x) must far exceed ES ({es_pen:.1}x)"
        );
    }

    #[test]
    fn x1_avl_capped_at_64() {
        let unit = VectorUnit::new(x1_msp());
        let r = unit.execute(&compute_heavy(4096), &MemoryEnv::clean(42.6));
        assert!(r.metrics.avl() <= 64.0 + 1e-9);
        assert!(r.metrics.avl() > 60.0);
    }

    #[test]
    fn scalar_run_has_zero_vor() {
        let unit = VectorUnit::new(es_processor());
        let l = VectorLoop {
            trips: 100,
            outer_iters: 1,
            flops_per_iter: 10.0,
            bytes_per_iter: 8.0,
            gather_fraction: 0.0,
            live_vector_temps: 8,
            class: LoopClass::Scalar,
        };
        let r = unit.execute(&l, &es_mem());
        assert_eq!(r.metrics.vor(), 0.0);
    }

    #[test]
    fn strip_counts_cross_check_avl() {
        let unit = VectorUnit::new(es_processor());
        let r = unit.execute(&compute_heavy(4096), &es_mem());
        // 4096 trips / 256 max VL = 16 strips per outer iteration.
        assert_eq!(r.strips, 16 * 100);
        // AVL is elements per vector instruction; independently, total
        // trips / strips gives the average strip length. The two must
        // agree — that is the strip-mine/AVL cross-check.
        let avg_strip = (4096.0 * 100.0) / r.strips as f64;
        assert!(
            (avg_strip - r.metrics.avl()).abs() < 1.0,
            "avg strip {avg_strip} vs AVL {}",
            r.metrics.avl()
        );
        assert!((r.metrics.avl() - 256.0).abs() < 1.0);
    }

    #[test]
    fn scalar_loops_have_no_strips() {
        let unit = VectorUnit::new(es_processor());
        let sl = VectorLoop {
            class: LoopClass::Scalar,
            ..compute_heavy(4096)
        };
        assert_eq!(unit.execute(&sl, &es_mem()).strips, 0);
    }

    #[test]
    fn flop_accounting_is_exact() {
        let unit = VectorUnit::new(es_processor());
        let l = compute_heavy(1000);
        let r = unit.execute(&l, &es_mem());
        assert!((r.flops - 64.0 * 1000.0 * 100.0).abs() < 1.0);
    }
}
