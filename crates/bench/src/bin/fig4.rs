//! Regenerate the data behind the paper's Figure 4.
fn main() {
    print!("{}", pvs_bench::figures::fig4());
}
