//! Regenerate the data behind the paper's Figure 4.
fn main() {
    pvs_bench::cli::parse_flags("fig4", &[]);
    print!("{}", pvs_bench::figures::fig4());
}
