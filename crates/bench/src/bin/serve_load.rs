//! Seeded load generator for the sweep server, and the
//! `BENCH_serve.json` emitter.
//!
//! ```text
//! cargo run --release -p pvs-bench --bin serve_load -- --inline --out BENCH_serve.json
//! cargo run --release -p pvs-bench --bin serve_load -- --addr 127.0.0.1:7411 --rate 500
//! cargo run --release -p pvs-bench --bin serve_load -- --inline --smoke --check-identity
//! ```
//!
//! Flags: `--inline` (start a server in-process on an ephemeral port —
//! the one-command CI path) or `--addr A` (drive an existing server);
//! `--requests N`; `--connections C` (closed loop, default 4) or
//! `--rate R` (open loop, Poisson arrivals at R req/s); `--seed S`;
//! `--smoke` (16 requests over 4 cells); `--check-identity` (verify
//! every served cell byte-matches a direct engine run); `--stats-every N`
//! (poll the server's live telemetry plane during the run, printing one
//! snapshot line per N completed requests and validating each response
//! against the versioned snapshot schema); `--retry-attempts N` (total
//! attempts per request for retryable failures — `overloaded` and
//! transport errors — with seeded-jitter exponential backoff floored at
//! the server's `retry_after_ms` hint; `1` disables retries);
//! `--out PATH` (write the profile-v2 document, probed first, written
//! atomically).
//!
//! Exit codes (the shared `pvs_bench::cli` convention): 0 success,
//! 1 a request failed or identity was violated, 2 malformed usage,
//! 6 `--out` cannot be written.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use pvs_bench::cli::{self, exit};
use pvs_bench::serveload::{
    bench_serve_doc, check_identity, fetch_cell_body, fetch_stats, paper_serve_cells, run_load,
    ArrivalMode, LoadOptions, RetryPolicy,
};
use pvs_serve::{Request, Server, ServerOptions};

const USAGE: &str = "serve_load [--inline | --addr A] [--requests N] [--connections C | --rate R] \
                     [--seed S] [--smoke] [--check-identity] [--stats-every N] \
                     [--retry-attempts N] [--out PATH]";

fn usage_exit(message: &str) -> ! {
    eprintln!("error: {message}");
    eprintln!("usage: {USAGE}");
    std::process::exit(exit::USAGE);
}

struct Cli {
    addr: Option<String>,
    inline: bool,
    smoke: bool,
    check: bool,
    stats_every: Option<usize>,
    out: Option<String>,
    options: LoadOptions,
}

fn parse_cli() -> Cli {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cli = Cli {
        addr: None,
        inline: false,
        smoke: false,
        check: false,
        stats_every: None,
        out: None,
        options: LoadOptions::default(),
    };
    let mut requests = None;
    let mut i = 0;
    while i < args.len() {
        let value = |name: &str| -> String {
            args.get(i + 1)
                .cloned()
                .unwrap_or_else(|| usage_exit(&format!("{name} needs a value")))
        };
        match args[i].as_str() {
            "--help" | "-h" => {
                println!("usage: {USAGE}");
                std::process::exit(exit::OK);
            }
            "--inline" => {
                cli.inline = true;
                i += 1;
            }
            "--smoke" => {
                cli.smoke = true;
                i += 1;
            }
            "--check-identity" => {
                cli.check = true;
                i += 1;
            }
            "--addr" => {
                cli.addr = Some(value("--addr"));
                i += 2;
            }
            "--out" => {
                cli.out = Some(value("--out"));
                i += 2;
            }
            "--requests" => {
                requests = Some(value("--requests").parse::<usize>().unwrap_or_else(|_| {
                    usage_exit("--requests needs a positive integer")
                }));
                i += 2;
            }
            "--connections" => {
                let c = value("--connections")
                    .parse::<usize>()
                    .ok()
                    .filter(|&c| c >= 1)
                    .unwrap_or_else(|| usage_exit("--connections needs a positive integer"));
                cli.options.mode = ArrivalMode::Closed { connections: c };
                i += 2;
            }
            "--rate" => {
                let r = value("--rate")
                    .parse::<f64>()
                    .ok()
                    .filter(|&r| r > 0.0)
                    .unwrap_or_else(|| usage_exit("--rate needs a positive number"));
                cli.options.mode = ArrivalMode::Open { rate_rps: r };
                i += 2;
            }
            "--stats-every" => {
                let n = value("--stats-every")
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage_exit("--stats-every needs a positive integer"));
                cli.stats_every = Some(n);
                i += 2;
            }
            "--seed" => {
                cli.options.seed = value("--seed")
                    .parse::<u64>()
                    .unwrap_or_else(|_| usage_exit("--seed needs a non-negative integer"));
                i += 2;
            }
            "--retry-attempts" => {
                let n = value("--retry-attempts")
                    .parse::<u32>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage_exit("--retry-attempts needs a positive integer"));
                cli.options.retry = if n == 1 {
                    None
                } else {
                    Some(RetryPolicy { max_attempts: n, ..RetryPolicy::default() })
                };
                i += 2;
            }
            other => usage_exit(&format!("unrecognized argument {other:?}")),
        }
    }
    if cli.inline && cli.addr.is_some() {
        usage_exit("--inline and --addr are mutually exclusive");
    }
    if !cli.inline && cli.addr.is_none() {
        cli.inline = true; // one-command default
    }
    cli.options.requests = requests.unwrap_or(if cli.smoke { 16 } else { 64 });
    if cli.options.requests == 0 {
        usage_exit("--requests needs a positive integer");
    }
    cli
}

/// Poll the live telemetry plane while the load run is in flight.
///
/// Every ~20ms the poller fetches a cumulative `stats` snapshot,
/// validates it against the versioned snapshot schema, and prints one
/// progress line each time `serve.requests` crosses the next multiple
/// of `every`. Returns the number of snapshots taken, or an error if
/// any response failed schema validation (connection errors are
/// tolerated — the server may still be binding or already gone).
fn spawn_stats_poller(
    addr: String,
    every: usize,
    done: Arc<AtomicBool>,
) -> std::thread::JoinHandle<Result<usize, String>> {
    std::thread::spawn(move || {
        let mut snapshots = 0usize;
        let mut reported = 0u64;
        while !done.load(Ordering::Relaxed) {
            std::thread::sleep(Duration::from_millis(20));
            let body = match fetch_stats(&addr) {
                Ok(body) => body,
                Err(_) => continue,
            };
            let doc = pvs_analyze::json::parse(&body)
                .map_err(|e| format!("stats response is not JSON: {e:?}"))?;
            if doc.str("schema") != Some(pvs_core::schema::SNAPSHOT_V1) {
                return Err(format!(
                    "stats response is not a {} document: {}",
                    pvs_core::schema::SNAPSHOT_V1,
                    body.chars().take(120).collect::<String>()
                ));
            }
            snapshots += 1;
            let served = doc
                .get("counters")
                .and_then(|c| c.get("serve.requests"))
                .and_then(|v| v.as_f64())
                .unwrap_or(0.0) as u64;
            let uptime = doc.num("uptime_s").unwrap_or(0.0) as u64;
            while served >= reported + every as u64 {
                reported += every as u64;
                println!("stats: {reported} requests served  (uptime {uptime}s)");
            }
        }
        Ok(snapshots)
    })
}

fn cells_for(smoke: bool) -> Vec<Request> {
    if smoke {
        // Four small cells: one per application, cheap enough for CI.
        vec![
            Request::cell("LBMHD", "4096x4096", "ES", 16),
            Request::cell("PARATEC", "432 atom", "X1", 16),
            Request::cell("CACTUS", "80x80x80", "Power3", 16),
            Request::cell("GTC", "10 part/cell", "Altix", 16),
        ]
    } else {
        paper_serve_cells()
    }
}

fn main() {
    let cli = parse_cli();
    if let Some(out) = &cli.out {
        if let Err(e) = cli::probe_writable(out) {
            eprintln!("error: cannot write {out}: {e}");
            std::process::exit(exit::WRITE);
        }
    }
    let cells = cells_for(cli.smoke);

    let inline_server = if cli.inline {
        match Server::start(ServerOptions::default()) {
            Ok(server) => Some(server),
            Err(e) => {
                eprintln!("error: cannot start inline server: {e}");
                std::process::exit(exit::WRITE);
            }
        }
    } else {
        None
    };
    let addr = match (&inline_server, &cli.addr) {
        (Some(server), _) => server.addr().to_string(),
        (None, Some(addr)) => addr.clone(),
        (None, None) => unreachable!("parse_cli guarantees a target"),
    };

    let poll_done = Arc::new(AtomicBool::new(false));
    let poller = cli
        .stats_every
        .map(|every| spawn_stats_poller(addr.clone(), every, Arc::clone(&poll_done)));

    let run = match run_load(&addr, &cells, &cli.options) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("error: load run failed: {e}");
            std::process::exit(exit::FAILURE);
        }
    };

    poll_done.store(true, Ordering::Relaxed);
    if let Some(handle) = poller {
        match handle.join().expect("stats poller panicked") {
            Ok(snapshots) => println!("stats: polled {snapshots} live snapshots"),
            Err(e) => {
                eprintln!("FAILURE: live telemetry check failed: {e}");
                std::process::exit(exit::FAILURE);
            }
        }
    }

    let lat = run.latency_hist_us().summary();
    println!(
        "{} requests in {:.3}s  ({:.1} req/s)",
        run.samples.len(),
        run.wall_s,
        run.throughput_rps()
    );
    println!(
        "latency p50 {}us  p90 {}us  p99 {}us",
        lat.p50, lat.p90, lat.p99
    );
    for (source, count) in run.source_counts() {
        println!("  {source:<12} {count}");
    }
    let retries = run.retry.counter("serve.retry.attempts").unwrap_or(0);
    let giveups = run.retry.counter("serve.retry.giveups").unwrap_or(0);
    if retries + giveups > 0 {
        println!("retries: {retries} backoffs slept, {giveups} giveups");
    }

    let failed = run.samples.iter().filter(|s| !s.ok).count();
    if failed > 0 {
        eprintln!("FAILURE: {failed} requests did not succeed");
        std::process::exit(exit::FAILURE);
    }

    if cli.check {
        match check_identity(&addr, &cells) {
            Ok(()) => println!("identity: every served cell matches the direct computation"),
            Err(bad) => {
                eprintln!("FAILURE: served bytes diverge from direct computation for:");
                for key in bad {
                    eprintln!("  {key}");
                }
                std::process::exit(exit::FAILURE);
            }
        }
    }

    if let Some(out) = &cli.out {
        let bodies: Result<Vec<String>, _> =
            cells.iter().map(|c| fetch_cell_body(&addr, c)).collect();
        let stats = fetch_stats(&addr);
        let (bodies, stats) = match (bodies, stats) {
            (Ok(b), Ok(s)) => (b, s),
            (b, s) => {
                eprintln!("error: could not gather document inputs: {:?} {:?}", b.err(), s.err());
                std::process::exit(exit::FAILURE);
            }
        };
        let doc = bench_serve_doc(&cells, &bodies, &run, &stats, &cli.options);
        if let Err(e) = cli::write_atomic(out, &doc) {
            eprintln!("error: cannot write {out}: {e}");
            std::process::exit(exit::WRITE);
        }
        println!("wrote {out}");
    }
}
