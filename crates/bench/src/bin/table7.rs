//! Regenerate the paper's Table 7.
fn main() {
    let flags = pvs_bench::cli::parse_flags("table7 [--json]", &["--json"]);
    let out = pvs_bench::table7_model();
    if flags.iter().any(|f| f == "--json") {
        println!("{}", out.render_json());
    } else {
        print!("{}", out.render());
    }
    std::process::exit(if out.all_checks_pass() { 0 } else { 1 });
}
