//! The perf-regression sentinel CLI.
//!
//! ```text
//! cargo run -p pvs-bench --bin compare -- BENCH_sweep.json target/BENCH_new.json
//! cargo run -p pvs-bench --bin compare -- old.json new.json --host-tol 25
//! ```
//!
//! Joins the two profile documents on cell identity and exits nonzero on
//! regression: any modelled-time growth or modelled-Gflop/s drop (the
//! model is deterministic, so these compare exactly), or a baseline cell
//! missing from the new document. Host wall-clock drift is reported but
//! only enforced when `--host-tol <pct>` is given — host times are
//! machine-specific noise and the committed baseline usually comes from
//! another machine.
//!
//! Exit codes (the shared `pvs_bench::cli` convention): 0 clean,
//! 1 regression, 2 malformed usage, 3 unreadable input, 4 input is not
//! valid JSON, 5 input is JSON but not a known profile schema.

use pvs_analyze::profiledoc;
use pvs_analyze::sentinel::compare_docs;
use pvs_bench::cli::{self, exit};

fn load_or_exit(path: &str) -> profiledoc::ProfileDoc {
    match cli::load_profile_doc(path) {
        Ok(doc) => doc,
        Err((code, msg)) => {
            eprintln!("error: {msg}");
            std::process::exit(code);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut host_tol = None;
    let mut paths = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--host-tol" => {
                host_tol = args.get(i + 1).and_then(|v| v.parse::<f64>().ok());
                if host_tol.is_none() {
                    eprintln!("error: --host-tol needs a numeric percentage");
                    std::process::exit(exit::USAGE);
                }
                i += 2;
            }
            other if other.starts_with("--") => {
                eprintln!("error: unrecognized flag {other:?}");
                std::process::exit(exit::USAGE);
            }
            _ => {
                paths.push(args[i].clone());
                i += 1;
            }
        }
    }
    let [old_path, new_path] = paths.as_slice() else {
        eprintln!("usage: compare <old.json> <new.json> [--host-tol <pct>]");
        std::process::exit(exit::USAGE);
    };

    let old = load_or_exit(old_path);
    let new = load_or_exit(new_path);
    let cmp = compare_docs(&old, &new, host_tol);
    print!("{}", cmp.table().render());
    println!(
        "{} matched cells, {} drifts ({} vs {})",
        cmp.matched_cells,
        cmp.drifts.len(),
        old_path,
        new_path
    );
    if cmp.regressed() {
        eprintln!("REGRESSION: model metrics moved the wrong way (see table)");
        std::process::exit(exit::FAILURE);
    }
    println!("ok: no regression");
}
