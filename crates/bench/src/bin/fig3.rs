//! Regenerate the data behind the paper's Figure 3.
fn main() {
    print!("{}", pvs_bench::figures::fig3());
}
