//! Regenerate the data behind the paper's Figure 3.
fn main() {
    pvs_bench::cli::parse_flags("fig3", &[]);
    print!("{}", pvs_bench::figures::fig3());
}
