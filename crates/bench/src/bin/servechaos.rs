//! Break the serving plane's host and prove it stays correct; write
//! `BENCH_servechaos.json`.
//!
//! ```text
//! cargo run --release -p pvs-bench --bin servechaos
//! cargo run --release -p pvs-bench --bin servechaos -- --smoke
//! ```
//!
//! Six seeded scenarios against in-process stores and live TCP servers:
//! spill corruption, kill-and-warm-restart, hostile clients, a worker
//! panic storm, deadline pressure, and backoff under overload. Every
//! assertion is exact (zero unplanned panics, byte-identical bodies,
//! pinned counters), and the run renders as a `pvs-bench/profile-v2`
//! document the `compare` sentinel gates.
//!
//! Flags: `--smoke` (same scenarios and cells — the harness is already
//! CI-sized — but the document lands under `target/` instead of the
//! repository root), `--threads N` (store worker threads, default
//! honours `PVS_THREADS`), `--out PATH` (override the output path).
//!
//! Exit codes (the shared `pvs_bench::cli` convention): 0 success,
//! 1 a resilience invariant failed, 2 malformed usage, 6 the output
//! cannot be written. The output path is probed before the scenarios
//! run and written atomically — no partial documents.

use pvs_bench::cli::{self, exit};
use pvs_bench::servechaos::run_servechaos;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value_of = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let known = ["--smoke", "--threads", "--out"];
    let mut skip_value = false;
    for a in &args {
        if skip_value {
            skip_value = false;
            continue;
        }
        match a.as_str() {
            "--threads" | "--out" => skip_value = true,
            other if known.contains(&other) => {}
            other => {
                eprintln!("error: unrecognized argument {other:?}");
                eprintln!("usage: servechaos [--smoke] [--threads N] [--out PATH]");
                std::process::exit(exit::USAGE);
            }
        }
    }

    let threads = match value_of("--threads") {
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("error: --threads needs a positive integer, got {v:?}");
                std::process::exit(exit::USAGE);
            }
        },
        None => pvs_core::pool::default_threads(),
    };

    let out_path = value_of("--out").unwrap_or_else(|| {
        if flag("--smoke") {
            "target/BENCH_servechaos_smoke.json".to_string()
        } else {
            "BENCH_servechaos.json".to_string()
        }
    });

    // Fail fast on an unwritable destination — before the scenarios.
    if let Err(e) = cli::probe_writable(&out_path) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(exit::WRITE);
    }

    let out = match run_servechaos(threads) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("SERVECHAOS FAILURE: {e}");
            std::process::exit(exit::FAILURE);
        }
    };

    for s in &out.scenarios {
        println!(
            "{:<18} {} requests, {} byte-identical  ok  {}",
            s.name, s.requests, s.identical, s.note
        );
    }

    match cli::write_atomic(&out_path, &(out.to_json() + "\n")) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => {
            eprintln!("error: cannot write {out_path}: {e}");
            std::process::exit(exit::WRITE);
        }
    }
    println!("ok: the serving plane survived every host-fault scenario");
}
