//! Roofline sweep: per-processor performance as a function of
//! computational intensity on every machine — where the vector advantage
//! lives and where it ends.
//!
//! The study's four applications sit at very different intensities (LBMHD
//! ~0.2 flops/byte, Cactus ~1, PARATEC's BLAS3 ~6+); this sweep shows the
//! whole curve and marks each application's operating point.

use pvs_core::engine::Engine;
use pvs_core::phase::{Phase, VectorizationInfo};
use pvs_core::platforms;
use pvs_memsim::bandwidth::AccessPattern;

fn gflops_at_intensity(machine: pvs_core::machine::Machine, flops_per_byte: f64) -> f64 {
    let bytes_per_iter = 64.0;
    let phase = Phase::loop_nest("sweep", 1 << 20, 10)
        .flops_per_iter(flops_per_byte * bytes_per_iter)
        .bytes_per_iter(bytes_per_iter)
        .pattern(AccessPattern::UnitStride)
        .working_set(usize::MAX / 2)
        .vector(VectorizationInfo::full());
    Engine::new(machine).run(&[phase], 1).gflops_per_p
}

fn main() {
    pvs_bench::cli::parse_flags("roofline", &[]);
    println!("Roofline sweep: streaming kernel, Gflops/P vs computational intensity\n");
    println!(
        "{:>10} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "flops/byte", "Power3", "Power4", "Altix", "ES", "X1"
    );
    let intensities = [0.0625, 0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0];
    for &i in &intensities {
        let row: Vec<String> = platforms::all()
            .into_iter()
            .map(|m| format!("{:.2}", gflops_at_intensity(m, i)))
            .collect();
        println!(
            "{:>10} {:>9} {:>9} {:>9} {:>9} {:>9}",
            i, row[0], row[1], row[2], row[3], row[4]
        );
    }
    println!("\nApplication operating points (approximate flops/byte):");
    println!("  LBMHD    ~0.19  (1.5 flops/word: deep in the bandwidth-bound regime,");
    println!("                   where 4 bytes/flop of vector memory is decisive)");
    println!("  GTC      ~0.4   (plus gather/scatter costs not on this chart)");
    println!("  Cactus   ~1.0   (stencils with register pressure)");
    println!("  PARATEC  ~6     (BLAS3: every machine near its compute roof)");
    println!("\nThe vector machines' roof is an order of magnitude higher on the left");
    println!("of the chart; by ~8 flops/byte the superscalar systems have reached");
    println!("their own roofs and the gap is just the peak-rate ratio.");
}
