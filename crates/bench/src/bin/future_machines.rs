//! The paper's forward-looking questions, answered by the model:
//!
//! 1. §5.2: would the Power5's irregularity-tolerant prefetch engines fix
//!    Cactus's large-case collapse? (The authors "look forward to testing
//!    Cactus on the Power5".)
//! 2. Would the X1 have fared better in SSP mode, where code that fails to
//!    multistream pays 8:1 instead of 32:1?

use pvs_cactus::perf::{CactusVariant, CactusWorkload};
use pvs_core::engine::Engine;
use pvs_core::platforms;
use pvs_gtc::perf::{GtcVariant, GtcWorkload};
use pvs_paratec::perf::ParatecWorkload;

fn main() {
    pvs_bench::cli::parse_flags("future_machines", &[]);
    println!("1. Cactus on the speculative Power5 (weak scaling, P=64)\n");
    println!("{:<9} {:>14} {:>14} {:>8}", "case", "Gflops/P", "%peak", "");
    for (label, w) in [
        ("80^3", CactusWorkload::small(64)),
        ("250x64x64", CactusWorkload::large(64)),
    ] {
        for m in [
            platforms::power3(),
            platforms::power4(),
            platforms::power5_preview(),
        ] {
            let name = m.name;
            let r = Engine::new(m).run(&w.phases(CactusVariant::Superscalar), 64);
            println!(
                "{:<9} {:>9} {:>4.3} {:>13.1}%",
                label, name, r.gflops_per_p, r.pct_peak
            );
        }
        println!();
    }
    let p3_large = Engine::new(platforms::power3()).run(
        &CactusWorkload::large(64).phases(CactusVariant::Superscalar),
        64,
    );
    let p5_large = Engine::new(platforms::power5_preview()).run(
        &CactusWorkload::large(64).phases(CactusVariant::Superscalar),
        64,
    );
    println!(
        "The Power5's extra prefetch trackers recover the large case: {:.2} vs {:.2}\nGflops/P ({}x) — the fix §5.2 anticipates.\n",
        p5_large.gflops_per_p,
        p3_large.gflops_per_p,
        (p5_large.gflops_per_p / p3_large.gflops_per_p).round()
    );

    println!("2. X1 MSP mode vs SSP mode (P=64 MSPs vs 256 SSPs: same hardware)\n");
    println!(
        "{:<9} {:>12} {:>12} {:>14}",
        "App", "MSP GF/rank", "SSP GF/rank", "SSP aggregate"
    );
    for app in ["PARATEC", "CACTUS", "GTC"] {
        let msp = {
            let m = platforms::x1();
            let phases = match app {
                "PARATEC" => ParatecWorkload::si432(64).phases(),
                "CACTUS" => CactusWorkload::large(64).phases(CactusVariant::for_machine("X1")),
                "GTC" => GtcWorkload::new(100, 64).phases(GtcVariant::for_machine("X1")),
                _ => unreachable!(),
            };
            Engine::new(m).run(&phases, 64)
        };
        let ssp = {
            let m = platforms::x1_ssp_mode();
            let phases = match app {
                "PARATEC" => ParatecWorkload::si432(256).phases(),
                "CACTUS" => CactusWorkload::large(256).phases(CactusVariant::for_machine("X1")),
                "GTC" => GtcWorkload::new(100, 256).phases(GtcVariant::for_machine("X1")),
                _ => unreachable!(),
            };
            Engine::new(m).run(&phases, 256)
        };
        // Aggregate over the same silicon: 64 MSPs = 256 SSPs.
        let msp_agg = 64.0 * msp.gflops_per_p;
        let ssp_agg = 256.0 * ssp.gflops_per_p;
        println!(
            "{:<9} {:>12.3} {:>12.3} {:>9.1} vs {:.1}",
            app, msp.gflops_per_p, ssp.gflops_per_p, ssp_agg, msp_agg
        );
    }
    println!("\nSSP mode trades peak for serialization tolerance: codes whose hot loops");
    println!("multistream cleanly prefer MSP mode; multistreaming-hostile codes close");
    println!("most of the gap (or win) by running four smaller ranks per MSP.");
}
