//! Regenerate the paper's Table 3.
fn main() {
    let out = pvs_bench::table3_model();
    if std::env::args().any(|a| a == "--json") {
        println!("{}", out.render_json());
    } else {
        print!("{}", out.render());
    }
    std::process::exit(if out.all_checks_pass() { 0 } else { 1 });
}
