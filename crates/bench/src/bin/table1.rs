//! Regenerate the paper's Table 1.
fn main() {
    print!("{}", pvs_bench::table1_text());
}
