//! Regenerate the paper's Table 1.
fn main() {
    pvs_bench::cli::parse_flags("table1", &[]);
    print!("{}", pvs_bench::table1_text());
}
