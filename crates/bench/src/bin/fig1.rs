//! Regenerate the data behind the paper's Figure 1.
fn main() {
    pvs_bench::cli::parse_flags("fig1", &[]);
    print!("{}", pvs_bench::figures::fig1(64, &[0, 100, 300]));
}
