//! Profile the harness itself — wall-clock histograms per pipeline
//! stage — and write the `BENCH_selfperf.json` baseline.
//!
//! ```text
//! cargo run --release -p pvs-bench --bin selfperf               # BENCH_selfperf.json
//! cargo run --release -p pvs-bench --bin selfperf -- --smoke    # CI subset
//! cargo run --release -p pvs-bench --bin selfperf -- --check-identity
//! ```
//!
//! Flags: `--smoke` (6-cell subset, one round, written under
//! `target/`), `--rounds N` (passes over the cell set, default 3),
//! `--out PATH` (override the output path), `--check-identity` (prove a
//! fully observed, stage-wrapped engine run renders bitwise-identically
//! to a bare one, then report the interleaved A/B overhead against the
//! ≤5% budget).
//!
//! The document reuses the `pvs-bench/profile-v2` schema: one cell per
//! stage with `procs` carrying the sample count, so `compare
//! BENCH_selfperf.json NEW.json` gates the stage list and sample counts
//! exactly while the microsecond axes stay advisory until `--host-tol`.
//!
//! Exit codes (the shared `pvs_bench::cli` convention): 0 success,
//! 1 identity violated, 2 malformed usage, 6 unwritable output.

use pvs_bench::cli::{self, exit};
use pvs_bench::profile::{paper_cells, smoke_cells};
use pvs_bench::selfperf::{
    check_model_identity, measure_stage_overhead, run_selfperf, HostProfiler, SelfperfOptions,
};
use pvs_core::report::fmt_pct_signed;
use std::sync::Arc;

const USAGE: &str = "usage: selfperf [--smoke] [--rounds N] [--out PATH] [--check-identity]";

fn usage_exit(message: &str) -> ! {
    eprintln!("error: {message}");
    eprintln!("{USAGE}");
    std::process::exit(exit::USAGE);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut check = false;
    let mut rounds: Option<usize> = None;
    let mut out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(exit::OK);
            }
            "--smoke" => smoke = true,
            "--check-identity" => check = true,
            "--rounds" => {
                rounds = Some(
                    args.get(i + 1)
                        .and_then(|v| v.parse::<usize>().ok())
                        .filter(|&n| n >= 1)
                        .unwrap_or_else(|| usage_exit("--rounds needs a positive integer")),
                );
                i += 1;
            }
            "--out" => {
                out = Some(
                    args.get(i + 1)
                        .cloned()
                        .unwrap_or_else(|| usage_exit("--out needs a value")),
                );
                i += 1;
            }
            other => usage_exit(&format!("unrecognized argument {other:?}")),
        }
        i += 1;
    }

    let cells = if smoke { smoke_cells() } else { paper_cells() };
    let options = SelfperfOptions {
        rounds: rounds.unwrap_or(if smoke { 1 } else { 3 }),
        ..SelfperfOptions::default()
    };
    let out_path = out.unwrap_or_else(|| {
        if smoke {
            "target/BENCH_selfperf_smoke.json".to_string()
        } else {
            "BENCH_selfperf.json".to_string()
        }
    });

    // Fail fast on unwritable destinations — before the sweep runs.
    if let Err(e) = cli::probe_writable(&out_path) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(exit::WRITE);
    }

    let profiler = Arc::new(HostProfiler::new(true));
    let run = run_selfperf(&profiler, &cells, options);
    println!(
        "{} stages over {} cells × {} rounds on {} threads, total self-time {:.3e}s",
        run.stages.len(),
        cells.len(),
        run.options.rounds,
        run.options.threads,
        run.total_s()
    );

    // Rank through the same reader `compare` and offline analysis use —
    // what gets ranked is exactly what the file will say.
    let json = run.to_json();
    match pvs_analyze::profiledoc::load(&json) {
        Ok(doc) => {
            print!(
                "{}",
                pvs_analyze::selftime::render_table(&pvs_analyze::selftime::rank_stages(&doc))
            );
        }
        Err(e) => {
            eprintln!("error: selfperf document does not round-trip: {e}");
            std::process::exit(exit::FAILURE);
        }
    }

    if check {
        match check_model_identity(&cells) {
            Ok(()) => println!("identity: stage-wrapped observed runs render bitwise-identically"),
            Err(bad) => {
                eprintln!("FAILURE: profiler perturbed the model for:");
                for key in bad {
                    eprintln!("  {key}");
                }
                std::process::exit(exit::FAILURE);
            }
        }
        let rounds = if smoke { 3 } else { 9 };
        let (armed, plain) = measure_stage_overhead(&cells, rounds);
        let pct = 100.0 * (armed / plain - 1.0);
        println!(
            "overhead: armed {armed:.3e}s vs disarmed {plain:.3e}s \
             ({rounds} interleaved rounds, min per arm): {} (budget ≤5%)",
            fmt_pct_signed(pct)
        );
    }

    match cli::write_atomic(&out_path, &(json + "\n")) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => {
            eprintln!("error: cannot write {out_path}: {e}");
            std::process::exit(exit::WRITE);
        }
    }
}
