//! Run the 4-application × 5-machine paper sweep under full
//! instrumentation and write the observability baseline.
//!
//! ```text
//! cargo run --release -p pvs-bench --bin profile               # BENCH_sweep.json
//! cargo run --release -p pvs-bench --bin profile -- --smoke    # CI subset
//! cargo run --release -p pvs-bench --bin profile -- --no-obs   # overhead baseline
//! ```
//!
//! Flags: `--smoke` (4-cell subset, written under `target/`),
//! `--no-obs` (no recorder attached — the baseline the ≤5% overhead
//! claim is measured against), `--samples N` (host wall-clock samples
//! per cell, default 3), `--out PATH` (override the output path).

use pvs_bench::profile::{
    measure_overhead, paper_cells, run_profile, smoke_cells, ProfileOptions,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value_of = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    for a in &args {
        if !["--smoke", "--no-obs", "--samples", "--out", "--overhead"].contains(&a.as_str())
            && !a.chars().next().map(char::is_alphanumeric).unwrap_or(false)
        {
            eprintln!("warning: unrecognized flag {a:?}");
        }
    }

    let smoke = flag("--smoke");

    if flag("--overhead") {
        let rounds = value_of("--overhead")
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(9);
        let cells = if smoke { smoke_cells() } else { paper_cells() };
        let (observed, plain) = measure_overhead(&cells, rounds);
        println!(
            "instrumented {observed:.3e}s vs bare {plain:.3e}s over {} cells \
             ({rounds} interleaved rounds, min per arm): overhead {:+.1}%",
            cells.len(),
            100.0 * (observed / plain - 1.0)
        );
        return;
    }
    let mut options = ProfileOptions {
        observe: !flag("--no-obs"),
        ..ProfileOptions::default()
    };
    if let Some(n) = value_of("--samples") {
        match n.parse::<usize>() {
            Ok(n) if n >= 1 => options.host_samples = n,
            _ => eprintln!(
                "warning: --samples {n:?} is not a positive integer; using {}",
                options.host_samples
            ),
        }
    }

    let cells = if smoke { smoke_cells() } else { paper_cells() };
    let out_path = value_of("--out").unwrap_or_else(|| {
        if smoke {
            "target/BENCH_sweep_smoke.json".to_string()
        } else {
            "BENCH_sweep.json".to_string()
        }
    });

    let out = run_profile(cells, options);
    for c in &out.cells {
        println!(
            "{:<8} {:<8} P={:<4} {:>7.3} Gflop/s/P  model {:>9.4}s  host {:>9.2e}s  {} counters, {} spans",
            c.cell.app,
            c.cell.machine,
            c.cell.procs,
            c.report.gflops_per_p,
            c.report.time_s,
            c.host_median_s(),
            c.snapshot.counters.len(),
            c.span_events,
        );
    }
    println!(
        "{} cells, sweep on {} threads, host median sum {:.3e}s ({})",
        out.cells.len(),
        out.options.threads,
        out.host_median_sum_s(),
        if out.options.observe {
            "observed"
        } else {
            "no-obs baseline"
        }
    );

    let json = out.to_json();
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("error: cannot create {}: {e}", dir.display());
                std::process::exit(1);
            }
        }
    }
    match std::fs::write(&out_path, json + "\n") {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => {
            eprintln!("error: cannot write {out_path}: {e}");
            std::process::exit(1);
        }
    }
}
