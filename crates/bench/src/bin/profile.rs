//! Run the 4-application × 5-machine paper sweep under full
//! instrumentation and write the observability baseline.
//!
//! ```text
//! cargo run --release -p pvs-bench --bin profile               # BENCH_sweep.json
//! cargo run --release -p pvs-bench --bin profile -- --smoke    # CI subset
//! cargo run --release -p pvs-bench --bin profile -- --no-obs   # overhead baseline
//! cargo run --release -p pvs-bench --bin profile -- --smoke --analyze
//! cargo run --release -p pvs-bench --bin profile -- --smoke --trace target/traces
//! ```
//!
//! Flags: `--smoke` (6-cell subset, written under `target/`),
//! `--no-obs` (no recorder attached — the baseline the ≤5% overhead
//! claim is measured against), `--samples N` (host wall-clock samples
//! per cell, default 3), `--out PATH` (override the output path),
//! `--analyze` (print the bottleneck-attribution findings table and
//! per-cell self-time rollups), `--trace DIR` (export one Chrome
//! trace-event JSON per cell — timestamps are simulated picoseconds).

use pvs_analyze::{chrome, findings, profiledoc};
use pvs_bench::profile::{
    measure_overhead, paper_cells, run_profile, smoke_cells, ProfileOptions,
};
use pvs_core::report::fmt_pct_signed;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value_of = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let known = [
        "--smoke",
        "--no-obs",
        "--samples",
        "--out",
        "--overhead",
        "--analyze",
        "--trace",
    ];
    for a in &args {
        if !known.contains(&a.as_str())
            && !a.chars().next().map(char::is_alphanumeric).unwrap_or(false)
        {
            eprintln!("warning: unrecognized flag {a:?}");
        }
    }

    let smoke = flag("--smoke");

    if flag("--overhead") {
        let rounds = value_of("--overhead")
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(9);
        let cells = if smoke { smoke_cells() } else { paper_cells() };
        let (observed, plain) = measure_overhead(&cells, rounds);
        println!(
            "instrumented {observed:.3e}s vs bare {plain:.3e}s over {} cells \
             ({rounds} interleaved rounds, min per arm): overhead {}",
            cells.len(),
            fmt_pct_signed(100.0 * (observed / plain - 1.0))
        );
        return;
    }
    let mut options = ProfileOptions {
        observe: !flag("--no-obs"),
        ..ProfileOptions::default()
    };
    if let Some(n) = value_of("--samples") {
        match n.parse::<usize>() {
            Ok(n) if n >= 1 => options.host_samples = n,
            _ => eprintln!(
                "warning: --samples {n:?} is not a positive integer; using {}",
                options.host_samples
            ),
        }
    }

    let cells = if smoke { smoke_cells() } else { paper_cells() };
    let out_path = value_of("--out").unwrap_or_else(|| {
        if smoke {
            "target/BENCH_sweep_smoke.json".to_string()
        } else {
            "BENCH_sweep.json".to_string()
        }
    });

    let out = run_profile(cells, options);
    for c in &out.cells {
        println!(
            "{:<8} {:<8} P={:<4} {:>7.3} Gflop/s/P  model {:>9.4}s  host {:>9.2e}s  {} counters, {} spans",
            c.cell.app,
            c.cell.machine,
            c.cell.procs,
            c.report.gflops_per_p,
            c.report.time_s,
            c.host_median_s(),
            c.snapshot.counters.len(),
            c.span_events,
        );
    }
    println!(
        "{} cells, sweep on {} threads, host median sum {:.3e}s ({})",
        out.cells.len(),
        out.options.threads,
        out.host_median_sum_s(),
        if out.options.observe {
            "observed"
        } else {
            "no-obs baseline"
        }
    );

    if let Some(dir) = value_of("--trace") {
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("error: cannot create {dir}: {e}");
            std::process::exit(1);
        }
        for c in &out.cells {
            let name = format!(
                "{}_{}_P{}.trace.json",
                c.cell.app.to_lowercase(),
                c.cell.machine.to_lowercase().replace('-', "_"),
                c.cell.procs
            );
            let label = format!("{}/{}/P{}", c.cell.app, c.cell.machine, c.cell.procs);
            let path = std::path::Path::new(&dir).join(&name);
            let doc = chrome::to_chrome_trace(&c.trace, &label);
            if let Err(e) = std::fs::write(&path, doc + "\n") {
                eprintln!("error: cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
            println!("wrote {} ({} spans)", path.display(), c.trace.events().len());
        }
    }

    let json = out.to_json();

    if flag("--analyze") {
        // Round-trip the document through the same reader `compare` and
        // offline analysis use — what gets analyzed is exactly what the
        // file says.
        match profiledoc::load(&json) {
            Ok(doc) => {
                let diagnoses = findings::analyze_doc(&doc);
                print!("{}", findings::findings_table(&diagnoses).render());
                for c in &out.cells {
                    let rollup = chrome::self_time_rollup(&c.trace);
                    let total: u64 = rollup.iter().map(|r| r.self_ticks).sum();
                    if total == 0 {
                        continue;
                    }
                    let top: Vec<String> = rollup
                        .iter()
                        .take(3)
                        .map(|r| {
                            format!(
                                "{} {:.0}%",
                                r.name,
                                100.0 * r.self_ticks as f64 / total as f64
                            )
                        })
                        .collect();
                    println!(
                        "self-time {:<8} {:<8} P={:<4} {}",
                        c.cell.app,
                        c.cell.machine,
                        c.cell.procs,
                        top.join(", ")
                    );
                }
            }
            Err(e) => {
                eprintln!("error: --analyze cannot read the sweep document: {e}");
                std::process::exit(1);
            }
        }
    }

    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("error: cannot create {}: {e}", dir.display());
                std::process::exit(1);
            }
        }
    }
    match std::fs::write(&out_path, json + "\n") {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => {
            eprintln!("error: cannot write {out_path}: {e}");
            std::process::exit(1);
        }
    }
}
