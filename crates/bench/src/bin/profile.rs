//! Run the 4-application × 5-machine paper sweep under full
//! instrumentation and write the observability baseline.
//!
//! ```text
//! cargo run --release -p pvs-bench --bin profile               # BENCH_sweep.json
//! cargo run --release -p pvs-bench --bin profile -- --smoke    # CI subset
//! cargo run --release -p pvs-bench --bin profile -- --no-obs   # overhead baseline
//! cargo run --release -p pvs-bench --bin profile -- --smoke --analyze
//! cargo run --release -p pvs-bench --bin profile -- --smoke --trace target/traces
//! ```
//!
//! Flags: `--smoke` (6-cell subset, written under `target/`),
//! `--no-obs` (no recorder attached — the baseline the ≤5% overhead
//! claim is measured against), `--samples N` (host wall-clock samples
//! per cell, default 3), `--out PATH` (override the output path),
//! `--analyze` (print the bottleneck-attribution findings table and
//! per-cell self-time rollups), `--trace DIR` (export one Chrome
//! trace-event JSON per cell — timestamps are simulated picoseconds).
//!
//! `PVS_SELF_PROFILE=1` additionally times the harness's own pipeline
//! stages (see `pvs_bench::selfperf`) and prints one `self` line per
//! stage; the document's model axes are bitwise-unaffected either way.
//!
//! Exit codes (the shared `pvs_bench::cli` convention): 0 success,
//! 1 internal failure, 2 malformed usage, 6 the output file or `--trace`
//! directory cannot be written. Output paths are probed *before* the
//! sweep runs and written atomically, so a failed run never leaves a
//! partial document behind.

use pvs_analyze::{chrome, findings, profiledoc};
use pvs_bench::cli::{self, exit};
use pvs_bench::profile::{
    measure_overhead, paper_cells, run_profile_with, smoke_cells, ProfileOptions,
};
use pvs_bench::selfperf::{collect_stages, HostProfiler};
use pvs_core::report::fmt_pct_signed;
use std::sync::Arc;

const USAGE: &str = "usage: profile [--smoke] [--no-obs] [--samples N] [--out PATH] \
                     [--analyze] [--trace DIR] [--overhead [N]]";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value_of = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" | "--no-obs" | "--analyze" => {}
            "--samples" | "--out" | "--trace" => {
                if args.get(i + 1).is_none() {
                    eprintln!("error: {} needs a value", args[i]);
                    eprintln!("{USAGE}");
                    std::process::exit(exit::USAGE);
                }
                i += 1;
            }
            // `--overhead` takes an *optional* round count.
            "--overhead" => {
                if args
                    .get(i + 1)
                    .map(|v| v.parse::<usize>().is_ok())
                    .unwrap_or(false)
                {
                    i += 1;
                }
            }
            other => {
                eprintln!("error: unrecognized argument {other:?}");
                eprintln!("{USAGE}");
                std::process::exit(exit::USAGE);
            }
        }
        i += 1;
    }

    let smoke = flag("--smoke");

    if flag("--overhead") {
        let rounds = value_of("--overhead")
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(9);
        let cells = if smoke { smoke_cells() } else { paper_cells() };
        let (observed, plain) = measure_overhead(&cells, rounds);
        println!(
            "instrumented {observed:.3e}s vs bare {plain:.3e}s over {} cells \
             ({rounds} interleaved rounds, min per arm): overhead {}",
            cells.len(),
            fmt_pct_signed(100.0 * (observed / plain - 1.0))
        );
        return;
    }
    let mut options = ProfileOptions {
        observe: !flag("--no-obs"),
        ..ProfileOptions::default()
    };
    if let Some(n) = value_of("--samples") {
        match n.parse::<usize>() {
            Ok(n) if n >= 1 => options.host_samples = n,
            _ => {
                eprintln!("error: --samples needs a positive integer, got {n:?}");
                std::process::exit(exit::USAGE);
            }
        }
    }

    let cells = if smoke { smoke_cells() } else { paper_cells() };
    let out_path = value_of("--out").unwrap_or_else(|| {
        if smoke {
            "target/BENCH_sweep_smoke.json".to_string()
        } else {
            "BENCH_sweep.json".to_string()
        }
    });

    // Fail fast on unwritable destinations — before minutes of sweep.
    if let Err(e) = cli::probe_writable(&out_path) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(exit::WRITE);
    }
    let trace_dir = value_of("--trace");
    if let Some(dir) = &trace_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create --trace directory {dir}: {e}");
            std::process::exit(exit::WRITE);
        }
    }

    // `PVS_SELF_PROFILE=1` arms the harness's own stage timing; the
    // document's model axes are unaffected either way.
    let profiler = Arc::new(HostProfiler::from_env());
    let out = run_profile_with(cells, options, &profiler);
    for c in &out.cells {
        println!(
            "{:<8} {:<8} P={:<4} {:>7.3} Gflop/s/P  model {:>9.4}s  host {:>9.2e}s  {} counters, {} spans",
            c.cell.app,
            c.cell.machine,
            c.cell.procs,
            c.report.gflops_per_p,
            c.report.time_s,
            c.host_median_s(),
            c.snapshot.counters.len(),
            c.span_events,
        );
    }
    println!(
        "{} cells, sweep on {} threads, host median sum {:.3e}s ({})",
        out.cells.len(),
        out.options.threads,
        out.host_median_sum_s(),
        if out.options.observe {
            "observed"
        } else {
            "no-obs baseline"
        }
    );
    if profiler.enabled() {
        for s in collect_stages(&profiler) {
            println!(
                "self     {:<30} {:>5} samples  p50 {:>7}us  p99 {:>7}us  total {:>9}us",
                s.stage, s.summary.count, s.summary.p50, s.summary.p99, s.summary.sum
            );
        }
    }

    if let Some(dir) = trace_dir {
        for c in &out.cells {
            let name = format!(
                "{}_{}_P{}.trace.json",
                c.cell.app.to_lowercase(),
                c.cell.machine.to_lowercase().replace('-', "_"),
                c.cell.procs
            );
            let label = format!("{}/{}/P{}", c.cell.app, c.cell.machine, c.cell.procs);
            let path = std::path::Path::new(&dir).join(&name);
            let doc = chrome::to_chrome_trace(&c.trace, &label);
            let display = path.display().to_string();
            if let Err(e) = cli::write_atomic(&display, &(doc + "\n")) {
                eprintln!("error: cannot write {display}: {e}");
                std::process::exit(exit::WRITE);
            }
            println!("wrote {} ({} spans)", path.display(), c.trace.events().len());
        }
    }

    let json = out.to_json();

    if flag("--analyze") {
        // Round-trip the document through the same reader `compare` and
        // offline analysis use — what gets analyzed is exactly what the
        // file says.
        match profiledoc::load(&json) {
            Ok(doc) => {
                let diagnoses = findings::analyze_doc(&doc);
                print!("{}", findings::findings_table(&diagnoses).render());
                for c in &out.cells {
                    let rollup = chrome::self_time_rollup(&c.trace);
                    let total: u64 = rollup.iter().map(|r| r.self_ticks).sum();
                    if total == 0 {
                        continue;
                    }
                    let top: Vec<String> = rollup
                        .iter()
                        .take(3)
                        .map(|r| {
                            format!(
                                "{} {:.0}%",
                                r.name,
                                100.0 * r.self_ticks as f64 / total as f64
                            )
                        })
                        .collect();
                    println!(
                        "self-time {:<8} {:<8} P={:<4} {}",
                        c.cell.app,
                        c.cell.machine,
                        c.cell.procs,
                        top.join(", ")
                    );
                }
            }
            Err(e) => {
                eprintln!("error: --analyze cannot read the sweep document: {e}");
                std::process::exit(exit::FAILURE);
            }
        }
    }

    match cli::write_atomic(&out_path, &(json + "\n")) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => {
            eprintln!("error: cannot write {out_path}: {e}");
            std::process::exit(exit::WRITE);
        }
    }
}
