//! The AMR vector-performance sweep — the paper's stated future work,
//! answered: the same total work at shrinking AMR tile sizes, across the
//! five machines. AVL tracks the tile edge; the vector advantage erodes.
use pvs_amr::perf::{sweep_tile_sizes, AmrWorkload};
use pvs_core::engine::Engine;
use pvs_core::platforms;

fn main() {
    pvs_bench::cli::parse_flags("amr_sweep", &[]);
    println!("AMR tile-size sweep: Gflops/P for 2^20 cells/step of stencil work\n");
    println!(
        "{:>6} {:>9} {:>9} {:>9} {:>9} {:>9} {:>8}",
        "tile", "Power3", "Power4", "Altix", "ES", "X1", "ES AVL"
    );
    for tile in sweep_tile_sizes() {
        let w = AmrWorkload::new(1 << 20, tile);
        let mut cells = Vec::new();
        let mut avl = 0.0;
        for m in platforms::all() {
            let name = m.name;
            let r = Engine::new(m).run(&w.phases(), 1);
            if name == "ES" {
                avl = r.avl().unwrap_or(0.0);
            }
            cells.push(format!("{:.2}", r.gflops_per_p));
        }
        println!(
            "{:>6} {:>9} {:>9} {:>9} {:>9} {:>9} {:>8.0}",
            tile, cells[0], cells[1], cells[2], cells[3], cells[4], avl
        );
    }
    println!("\nThe vector machines forfeit their advantage as AMR tiles shrink below");
    println!("the hardware vector length - the 'additional dimension of architectural");
    println!("balance' the paper closes on, quantified.");
}
