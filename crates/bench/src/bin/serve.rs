//! The sweep server CLI: bind, print the address, serve until told to
//! stop.
//!
//! ```text
//! cargo run --release -p pvs-bench --bin serve                     # 127.0.0.1:7411
//! cargo run --release -p pvs-bench --bin serve -- --addr 127.0.0.1:0 --idle-timeout-ms 5000
//! ```
//!
//! Flags: `--addr A` (bind address, port 0 for ephemeral), `--threads N`
//! (simulation pool), `--shards N` (cache shards), `--max-pending N`
//! (admission cap on distinct in-flight simulations), `--spill-dir PATH`
//! (on-disk cache), `--max-connections N` (cap on live connection
//! threads), `--idle-timeout-ms N` (exit after N ms without traffic;
//! default runs until a client sends `{"op":"shutdown"}`).
//!
//! Exit codes (the shared `pvs_bench::cli` convention): 0 clean
//! shutdown, 2 malformed usage, 6 the bind failed.

use std::time::Duration;

use pvs_bench::cli::exit;
use pvs_serve::{Server, ServerOptions};

const USAGE: &str = "serve [--addr A] [--threads N] [--shards N] [--max-pending N] \
                     [--spill-dir PATH] [--max-connections N] [--idle-timeout-ms N]";

fn usage_exit(message: &str) -> ! {
    eprintln!("error: {message}");
    eprintln!("usage: {USAGE}");
    std::process::exit(exit::USAGE);
}

fn parse_options() -> ServerOptions {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut options = ServerOptions {
        addr: "127.0.0.1:7411".to_string(),
        ..Default::default()
    };
    let mut i = 0;
    while i < args.len() {
        let value = |name: &str| -> String {
            args.get(i + 1)
                .cloned()
                .unwrap_or_else(|| usage_exit(&format!("{name} needs a value")))
        };
        let numeric = |name: &str| -> usize {
            value(name)
                .parse()
                .unwrap_or_else(|_| usage_exit(&format!("{name} needs a non-negative integer")))
        };
        match args[i].as_str() {
            "--help" | "-h" => {
                println!("usage: {USAGE}");
                std::process::exit(exit::OK);
            }
            "--addr" => options.addr = value("--addr"),
            "--threads" => {
                options.store.threads = numeric("--threads").max(1);
            }
            "--shards" => options.store.shards = numeric("--shards").max(1),
            "--max-pending" => options.store.max_pending = numeric("--max-pending"),
            "--spill-dir" => options.store.spill_dir = Some(value("--spill-dir").into()),
            "--max-connections" => {
                options.max_connections = numeric("--max-connections").max(1);
            }
            "--idle-timeout-ms" => {
                options.idle_timeout =
                    Some(Duration::from_millis(numeric("--idle-timeout-ms") as u64));
            }
            other => usage_exit(&format!("unrecognized argument {other:?}")),
        }
        i += 2;
    }
    options
}

fn main() {
    let options = parse_options();
    let store = options.store.clone();
    let mut server = match Server::start(options) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: cannot bind: {e}");
            std::process::exit(exit::WRITE);
        }
    };
    println!("serving on {}", server.addr());
    println!(
        "  threads={} shards={} max_pending={} spill={}",
        store.threads,
        store.shards,
        store.max_pending,
        store
            .spill_dir
            .as_deref()
            .map(|p| p.display().to_string())
            .unwrap_or_else(|| "off".to_string())
    );
    server.wait();
    let snap = server.store().registry().snapshot();
    println!(
        "served {} lines ({} hits, {} misses, {} batched); exiting",
        snap.counter("serve.net.lines").unwrap_or(0),
        snap.counter("serve.cache.hits").unwrap_or(0),
        snap.counter("serve.cache.misses").unwrap_or(0),
        snap.counter("serve.cache.batched_misses").unwrap_or(0),
    );
}
