//! Regenerate the data behind the paper's Figure 8.
fn main() {
    pvs_bench::cli::parse_flags("fig8", &[]);
    print!("{}", pvs_bench::figures::fig8());
}
