//! Regenerate the data behind the paper's Figure 8.
fn main() {
    print!("{}", pvs_bench::figures::fig8());
}
