//! Run the paper sweep under injected faults and write `BENCH_chaos.json`.
//!
//! ```text
//! cargo run --release -p pvs-bench --bin chaos                 # full grid
//! cargo run --release -p pvs-bench --bin chaos -- --smoke      # CI subset
//! cargo run --release -p pvs-bench --bin chaos -- --checkpoint-check
//! ```
//!
//! Flags: `--smoke` (the 6-cell grid, written under `target/`),
//! `--threads N` (sweep worker threads, default honours `PVS_THREADS`),
//! `--out PATH` (override the output path), `--checkpoint-check` (kill a
//! degraded sweep mid-flight, resume it from the serialized checkpoint,
//! and require bit-identical results — then exit).
//!
//! Exit codes (the shared `pvs_bench::cli` convention): 0 success,
//! 1 a resilience invariant failed, 2 malformed usage, 6 the output
//! cannot be written. The output path is probed before the sweep runs
//! and written atomically — no partial documents.

use pvs_bench::chaos::{
    checkpoint_roundtrip_check, covered_kinds, full_scenarios, run_chaos, smoke_scenarios,
};
use pvs_bench::cli::{self, exit};
use pvs_bench::profile::{paper_cells, smoke_cells};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value_of = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let known = ["--smoke", "--threads", "--out", "--checkpoint-check"];
    let mut skip_value = false;
    for a in &args {
        if skip_value {
            skip_value = false;
            continue;
        }
        match a.as_str() {
            "--threads" | "--out" => skip_value = true,
            other if known.contains(&other) => {}
            other => {
                eprintln!("error: unrecognized argument {other:?}");
                eprintln!("usage: chaos [--smoke] [--threads N] [--out PATH] [--checkpoint-check]");
                std::process::exit(exit::USAGE);
            }
        }
    }

    let threads = match value_of("--threads") {
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("error: --threads needs a positive integer, got {v:?}");
                std::process::exit(exit::USAGE);
            }
        },
        None => pvs_core::pool::default_threads(),
    };

    if flag("--checkpoint-check") {
        match checkpoint_roundtrip_check(threads) {
            Ok(summary) => println!("{summary}"),
            Err(e) => {
                eprintln!("CHECKPOINT FAILURE: {e}");
                std::process::exit(exit::FAILURE);
            }
        }
        return;
    }

    let smoke = flag("--smoke");
    let (cells, scenarios) = if smoke {
        (smoke_cells(), smoke_scenarios())
    } else {
        (paper_cells(), full_scenarios())
    };
    let out_path = value_of("--out").unwrap_or_else(|| {
        if smoke {
            "target/BENCH_chaos_smoke.json".to_string()
        } else {
            "BENCH_chaos.json".to_string()
        }
    });

    // Fail fast on an unwritable destination — before the whole sweep.
    if let Err(e) = cli::probe_writable(&out_path) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(exit::WRITE);
    }

    let kinds = covered_kinds(&scenarios);
    println!(
        "{} scenarios over {} cells ({} threads); fault kinds: {}",
        scenarios.len(),
        cells.len(),
        threads,
        kinds.iter().copied().collect::<Vec<_>>().join(", ")
    );

    let out = match run_chaos(&cells, &scenarios, threads) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("CHAOS FAILURE: {e}");
            std::process::exit(exit::FAILURE);
        }
    };

    for s in &out.scenarios {
        let mut notes = Vec::new();
        if s.engine_faulted {
            notes.push("engine damage".to_string());
        }
        if s.mpisim.drops > 0 || s.mpisim.delays > 0 {
            notes.push(format!(
                "mpisim {} delivered / {} drops / {} retries / {} delays",
                s.mpisim.delivered, s.mpisim.drops, s.mpisim.retries, s.mpisim.delays
            ));
        }
        if s.retired_workers > 0 {
            notes.push(format!("{} workers retired", s.retired_workers));
        }
        println!(
            "{:<16} {} cells  ok  {}",
            s.name,
            s.cells,
            notes.join("; ")
        );
    }

    match cli::write_atomic(&out_path, &(out.to_json() + "\n")) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => {
            eprintln!("error: cannot write {out_path}: {e}");
            std::process::exit(exit::WRITE);
        }
    }
    println!("ok: all resilience invariants hold");
}
