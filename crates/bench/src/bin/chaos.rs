//! Run the paper sweep under injected faults and write `BENCH_chaos.json`.
//!
//! ```text
//! cargo run --release -p pvs-bench --bin chaos                 # full grid
//! cargo run --release -p pvs-bench --bin chaos -- --smoke      # CI subset
//! cargo run --release -p pvs-bench --bin chaos -- --checkpoint-check
//! ```
//!
//! Flags: `--smoke` (the 6-cell grid, written under `target/`),
//! `--threads N` (sweep worker threads, default honours `PVS_THREADS`),
//! `--out PATH` (override the output path), `--checkpoint-check` (kill a
//! degraded sweep mid-flight, resume it from the serialized checkpoint,
//! and require bit-identical results — then exit),
//! `--verify-checkpoint PATH` (integrity-check a serialized run or
//! sweep checkpoint without resuming it — then exit).
//!
//! Exit codes (the shared `pvs_bench::cli` convention): 0 success,
//! 1 a resilience invariant failed, 2 malformed usage, 3 a checkpoint
//! under `--verify-checkpoint` cannot be read, 4 it is truncated,
//! bit-damaged, or not a checkpoint at all, 6 the output cannot be
//! written. The output path is probed before the sweep runs and written
//! atomically — no partial documents.

use pvs_bench::chaos::{
    checkpoint_roundtrip_check, covered_kinds, full_scenarios, run_chaos, smoke_scenarios,
};
use pvs_bench::cli::{self, exit};
use pvs_bench::profile::{paper_cells, smoke_cells};
use pvs_core::checkpoint::{
    RunCheckpoint, SweepCheckpoint, RUN_CHECKPOINT_VERSION, SWEEP_CHECKPOINT_VERSION,
};

/// Integrity-check a serialized checkpoint without resuming it: the
/// surface operators point at a file left by a dead campaign before
/// deciding whether a resume can trust it. Dispatches on the version
/// header, then runs the full checksum + structural parse. Returns the
/// process exit code: 0 valid, `UNREADABLE` on I/O failure, `MALFORMED`
/// for truncation, bit damage, or a file that is no checkpoint at all.
fn verify_checkpoint(path: &str) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return exit::UNREADABLE;
        }
    };
    let header = text.lines().next().unwrap_or("").trim();
    let outcome = if header == SWEEP_CHECKPOINT_VERSION {
        SweepCheckpoint::parse(&text).map(|ck| {
            format!("sweep checkpoint: {} of {} cells completed", ck.completed(), ck.total())
        })
    } else if header == RUN_CHECKPOINT_VERSION {
        RunCheckpoint::parse(&text).map(|ck| {
            format!(
                "run checkpoint: {} procs on {}, phase {} of {}",
                ck.procs(),
                ck.machine(),
                ck.next_phase(),
                ck.phases_total()
            )
        })
    } else {
        Err(format!(
            "unrecognized header {header:?} (expected {SWEEP_CHECKPOINT_VERSION:?} \
             or {RUN_CHECKPOINT_VERSION:?})"
        ))
    };
    match outcome {
        Ok(summary) => {
            println!("ok: {path} is a valid {summary}");
            exit::OK
        }
        Err(e) => {
            eprintln!("error: {path} failed verification: {e}");
            exit::MALFORMED
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value_of = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let known = ["--smoke", "--threads", "--out", "--checkpoint-check", "--verify-checkpoint"];
    let mut skip_value = false;
    for a in &args {
        if skip_value {
            skip_value = false;
            continue;
        }
        match a.as_str() {
            "--threads" | "--out" | "--verify-checkpoint" => skip_value = true,
            other if known.contains(&other) => {}
            other => {
                eprintln!("error: unrecognized argument {other:?}");
                eprintln!(
                    "usage: chaos [--smoke] [--threads N] [--out PATH] [--checkpoint-check] \
                     [--verify-checkpoint PATH]"
                );
                std::process::exit(exit::USAGE);
            }
        }
    }

    if args.iter().any(|a| a == "--verify-checkpoint") {
        let Some(path) = value_of("--verify-checkpoint") else {
            eprintln!("error: --verify-checkpoint needs a file path");
            std::process::exit(exit::USAGE);
        };
        std::process::exit(verify_checkpoint(&path));
    }

    let threads = match value_of("--threads") {
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("error: --threads needs a positive integer, got {v:?}");
                std::process::exit(exit::USAGE);
            }
        },
        None => pvs_core::pool::default_threads(),
    };

    if flag("--checkpoint-check") {
        match checkpoint_roundtrip_check(threads) {
            Ok(summary) => println!("{summary}"),
            Err(e) => {
                eprintln!("CHECKPOINT FAILURE: {e}");
                std::process::exit(exit::FAILURE);
            }
        }
        return;
    }

    let smoke = flag("--smoke");
    let (cells, scenarios) = if smoke {
        (smoke_cells(), smoke_scenarios())
    } else {
        (paper_cells(), full_scenarios())
    };
    let out_path = value_of("--out").unwrap_or_else(|| {
        if smoke {
            "target/BENCH_chaos_smoke.json".to_string()
        } else {
            "BENCH_chaos.json".to_string()
        }
    });

    // Fail fast on an unwritable destination — before the whole sweep.
    if let Err(e) = cli::probe_writable(&out_path) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(exit::WRITE);
    }

    let kinds = covered_kinds(&scenarios);
    println!(
        "{} scenarios over {} cells ({} threads); fault kinds: {}",
        scenarios.len(),
        cells.len(),
        threads,
        kinds.iter().copied().collect::<Vec<_>>().join(", ")
    );

    let out = match run_chaos(&cells, &scenarios, threads) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("CHAOS FAILURE: {e}");
            std::process::exit(exit::FAILURE);
        }
    };

    for s in &out.scenarios {
        let mut notes = Vec::new();
        if s.engine_faulted {
            notes.push("engine damage".to_string());
        }
        if s.mpisim.drops > 0 || s.mpisim.delays > 0 {
            notes.push(format!(
                "mpisim {} delivered / {} drops / {} retries / {} delays",
                s.mpisim.delivered, s.mpisim.drops, s.mpisim.retries, s.mpisim.delays
            ));
        }
        if s.retired_workers > 0 {
            notes.push(format!("{} workers retired", s.retired_workers));
        }
        println!(
            "{:<16} {} cells  ok  {}",
            s.name,
            s.cells,
            notes.join("; ")
        );
    }

    match cli::write_atomic(&out_path, &(out.to_json() + "\n")) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => {
            eprintln!("error: cannot write {out_path}: {e}");
            std::process::exit(exit::WRITE);
        }
    }
    println!("ok: all resilience invariants hold");
}
