//! What-if machine explorer: modify one of the study's machines from the
//! command line and see how every application responds — the tool a
//! downstream user reaches for when asking "what would the ES have done
//! with half the memory bandwidth?" or "what if the X1's scalar unit were
//! twice as fast?".
//!
//! ```text
//! cargo run --release -p pvs-bench --bin whatif -- ES --mem-bw 16
//! cargo run --release -p pvs-bench --bin whatif -- X1 --scalar-gflops 0.8
//! cargo run --release -p pvs-bench --bin whatif -- Power3 --issue-eff 0.9 --procs 256
//! ```

use pvs_cactus::perf::{CactusVariant, CactusWorkload};
use pvs_core::engine::Engine;
use pvs_core::machine::{CpuClass, Machine};
use pvs_core::platforms;
use pvs_gtc::perf::{GtcVariant, GtcWorkload};
use pvs_lbmhd::perf::LbmhdWorkload;
use pvs_netsim::topology::TopologyKind;
use pvs_paratec::perf::ParatecWorkload;

fn usage() -> ! {
    eprintln!(
        "usage: whatif <Power3|Power4|Altix|ES|X1> [--mem-bw GB/s] [--peak GF/s]\n\
         \x20             [--net-bw GB/s] [--latency us] [--scalar-gflops GF/s]\n\
         \x20             [--issue-eff 0..1] [--topology crossbar|torus|fattree]\n\
         \x20             [--procs N]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut machine = match args[0].as_str() {
        "Power3" => platforms::power3(),
        "Power4" => platforms::power4(),
        "Altix" => platforms::altix(),
        "ES" => platforms::earth_simulator(),
        "X1" => platforms::x1(),
        _ => usage(),
    };
    let baseline = machine.clone();
    let mut procs = 64usize;

    let mut i = 1;
    while i < args.len() {
        let value = || -> f64 {
            args.get(i + 1)
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--mem-bw" => machine.mem_bw_gbs = value(),
            "--peak" => machine.peak_gflops = value(),
            "--net-bw" => machine.net_bw_gbs_per_cpu = value(),
            "--latency" => machine.mpi_latency_us = value(),
            "--scalar-gflops" => {
                if let CpuClass::Vector { unit, .. } = &mut machine.cpu {
                    unit.scalar_peak_gflops = value();
                } else {
                    eprintln!("--scalar-gflops applies to vector machines");
                    std::process::exit(2);
                }
            }
            "--issue-eff" => {
                if let CpuClass::Superscalar {
                    issue_efficiency, ..
                } = &mut machine.cpu
                {
                    *issue_efficiency = value();
                } else {
                    eprintln!("--issue-eff applies to superscalar machines");
                    std::process::exit(2);
                }
            }
            "--procs" => procs = value() as usize,
            "--topology" => {
                machine.topology = match args.get(i + 1).map(String::as_str) {
                    Some("crossbar") => TopologyKind::Crossbar,
                    Some("torus") => TopologyKind::Torus2D,
                    Some("fattree") => TopologyKind::FatTree {
                        arity: 4,
                        slim: 1.0,
                    },
                    _ => usage(),
                };
            }
            _ => usage(),
        }
        i += 2;
    }

    println!(
        "What-if: {} with mem {} GB/s (was {}), peak {} GF/s (was {}), P={procs}\n",
        machine.name,
        machine.mem_bw_gbs,
        baseline.mem_bw_gbs,
        machine.peak_gflops,
        baseline.peak_gflops,
    );
    println!(
        "{:<9} {:>14} {:>14} {:>8}",
        "App", "baseline GF/P", "what-if GF/P", "change"
    );

    type PhaseBuilder = Box<dyn Fn(&Machine) -> Vec<pvs_core::phase::Phase>>;
    let apps: [(&str, PhaseBuilder); 4] = [
        (
            "LBMHD",
            Box::new(move |_| LbmhdWorkload::new(8192, procs).phases()),
        ),
        (
            "PARATEC",
            Box::new(move |_| ParatecWorkload::si432(procs).phases()),
        ),
        (
            "CACTUS",
            Box::new(move |m| {
                CactusWorkload::large(procs).phases(CactusVariant::for_machine(m.name))
            }),
        ),
        (
            "GTC",
            Box::new(move |m| GtcWorkload::new(100, procs).phases(GtcVariant::for_machine(m.name))),
        ),
    ];

    for (app, phases_for) in &apps {
        let base = Engine::new(baseline.clone())
            .run(&phases_for(&baseline), procs)
            .gflops_per_p;
        let what = Engine::new(machine.clone())
            .run(&phases_for(&machine), procs)
            .gflops_per_p;
        println!(
            "{:<9} {:>14.3} {:>14.3} {:>+7.1}%",
            app,
            base,
            what,
            100.0 * (what / base - 1.0)
        );
    }
}
