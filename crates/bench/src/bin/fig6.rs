//! Regenerate the data behind the paper's Figure 6.
fn main() {
    print!("{}", pvs_bench::figures::fig6());
}
