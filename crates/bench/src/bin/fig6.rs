//! Regenerate the data behind the paper's Figure 6.
fn main() {
    pvs_bench::cli::parse_flags("fig6", &[]);
    print!("{}", pvs_bench::figures::fig6());
}
