//! Regenerate the paper's Table 5.
fn main() {
    let flags = pvs_bench::cli::parse_flags("table5 [--json]", &["--json"]);
    let out = pvs_bench::table5_model();
    if flags.iter().any(|f| f == "--json") {
        println!("{}", out.render_json());
    } else {
        print!("{}", out.render());
    }
    std::process::exit(if out.all_checks_pass() { 0 } else { 1 });
}
