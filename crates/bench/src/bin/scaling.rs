//! Scaling curves: per-processor performance vs processor count for every
//! application on the ES, X1 and Power3 — the fixed-size (LBMHD, PARATEC)
//! and weak (Cactus) scaling behaviour the paper discusses, plus the
//! headline cross-machine claim: "the 64-way vector systems still
//! performed up to 20% faster than 1024 Power3 processors" (§6.2/§7).
//!
//! The whole (app × P × machine) grid is evaluated through the parallel
//! sweep executor; jobs are enumerated and printed in the same order, so
//! the output is identical at any thread count.

use pvs_cactus::perf::{CactusVariant, CactusWorkload};
use pvs_core::engine::{run_sweep, SweepJob};
use pvs_core::platforms;
use pvs_gtc::perf::{GtcVariant, GtcWorkload};
use pvs_lbmhd::perf::LbmhdWorkload;
use pvs_paratec::perf::ParatecWorkload;

fn job(machine: pvs_core::machine::Machine, app: &str, procs: usize) -> SweepJob {
    let phases = match app {
        "LBMHD" => LbmhdWorkload::new(8192, procs).phases(),
        "PARATEC" => ParatecWorkload::si432(procs).phases(),
        "CACTUS" => CactusWorkload::large(procs).phases(CactusVariant::for_machine(machine.name)),
        "GTC" => {
            let w = if procs > 64 {
                GtcWorkload {
                    procs,
                    mpi_domains: 64,
                    ..GtcWorkload::new(100, procs)
                }
            } else {
                GtcWorkload::new(100, procs)
            };
            let variant = if machine.name == "Power3" && procs > 64 {
                GtcVariant::hybrid(procs / 64)
            } else {
                GtcVariant::for_machine(machine.name)
            };
            w.phases(variant)
        }
        _ => unreachable!(),
    };
    SweepJob {
        machine,
        phases,
        procs,
    }
}

fn main() {
    pvs_bench::cli::parse_flags("scaling", &[]);
    let procs = [16usize, 64, 256, 1024];
    let apps = ["LBMHD", "PARATEC", "CACTUS", "GTC"];

    // Pass 1: enumerate the grid (app-major, then P, then machine), plus
    // the three aggregate-comparison cells at the end.
    let mut jobs = Vec::new();
    for app in apps {
        for &p in &procs {
            jobs.push(job(platforms::power3(), app, p));
            jobs.push(job(platforms::earth_simulator(), app, p));
            jobs.push(job(platforms::x1(), app, p));
        }
    }
    jobs.push(job(platforms::earth_simulator(), "GTC", 64));
    jobs.push(job(platforms::x1(), "GTC", 64));
    jobs.push(job(platforms::power3(), "GTC", 1024));

    // Pass 2: evaluate in parallel (results keep enumeration order).
    let results = run_sweep(jobs);

    // Pass 3: print in enumeration order.
    let mut next = results.iter();
    for app in apps {
        println!("{app}: Gflops/P vs P\n");
        println!("{:>6} {:>9} {:>9} {:>9}", "P", "Power3", "ES", "X1");
        for &p in &procs {
            let p3 = next.next().expect("Power3 cell").gflops_per_p;
            let es = next.next().expect("ES cell").gflops_per_p;
            let x1 = next.next().expect("X1 cell").gflops_per_p;
            println!("{p:>6} {p3:>9.3} {es:>9.3} {x1:>9.3}");
        }
        println!();
    }

    // The famous aggregate comparison: 64 vector processors vs 1024
    // Power3 processors running GTC flat-out.
    let es64 = 64.0 * next.next().expect("ES aggregate").gflops_per_p;
    let x164 = 64.0 * next.next().expect("X1 aggregate").gflops_per_p;
    let p3_1024 = 1024.0 * next.next().expect("Power3 aggregate").gflops_per_p;
    println!("GTC aggregate performance (same problem):");
    println!("      64 ES processors: {es64:>8.1} Gflop/s");
    println!("      64 X1 MSPs:       {x164:>8.1} Gflop/s");
    println!("    1024 Power3 CPUs:   {p3_1024:>8.1} Gflop/s");
    println!(
        "\n\"the 64-way vector systems still performed up to 20% faster than 1024\nPower3 processors\" — model: ES x{:.2}, X1 x{:.2}.",
        es64 / p3_1024,
        x164 / p3_1024
    );
}
