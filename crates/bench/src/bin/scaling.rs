//! Scaling curves: per-processor performance vs processor count for every
//! application on the ES, X1 and Power3 — the fixed-size (LBMHD, PARATEC)
//! and weak (Cactus) scaling behaviour the paper discusses, plus the
//! headline cross-machine claim: "the 64-way vector systems still
//! performed up to 20% faster than 1024 Power3 processors" (§6.2/§7).

use pvs_cactus::perf::{CactusVariant, CactusWorkload};
use pvs_core::engine::Engine;
use pvs_core::platforms;
use pvs_gtc::perf::{GtcVariant, GtcWorkload};
use pvs_lbmhd::perf::LbmhdWorkload;
use pvs_paratec::perf::ParatecWorkload;

fn run(machine: pvs_core::machine::Machine, app: &str, procs: usize) -> f64 {
    let phases = match app {
        "LBMHD" => LbmhdWorkload::new(8192, procs).phases(),
        "PARATEC" => ParatecWorkload::si432(procs).phases(),
        "CACTUS" => CactusWorkload::large(procs).phases(CactusVariant::for_machine(machine.name)),
        "GTC" => {
            let w = if procs > 64 {
                GtcWorkload {
                    procs,
                    mpi_domains: 64,
                    ..GtcWorkload::new(100, procs)
                }
            } else {
                GtcWorkload::new(100, procs)
            };
            let variant = if machine.name == "Power3" && procs > 64 {
                GtcVariant::hybrid(procs / 64)
            } else {
                GtcVariant::for_machine(machine.name)
            };
            return Engine::new(machine)
                .run(&w.phases(variant), procs)
                .gflops_per_p;
        }
        _ => unreachable!(),
    };
    Engine::new(machine).run(&phases, procs).gflops_per_p
}

fn main() {
    let procs = [16usize, 64, 256, 1024];
    for app in ["LBMHD", "PARATEC", "CACTUS", "GTC"] {
        println!("{app}: Gflops/P vs P\n");
        println!("{:>6} {:>9} {:>9} {:>9}", "P", "Power3", "ES", "X1");
        for &p in &procs {
            let p3 = run(platforms::power3(), app, p);
            let es = run(platforms::earth_simulator(), app, p);
            let x1 = run(platforms::x1(), app, p);
            println!("{p:>6} {p3:>9.3} {es:>9.3} {x1:>9.3}");
        }
        println!();
    }

    // The famous aggregate comparison: 64 vector processors vs 1024
    // Power3 processors running GTC flat-out.
    let es64 = 64.0 * run(platforms::earth_simulator(), "GTC", 64);
    let x164 = 64.0 * run(platforms::x1(), "GTC", 64);
    let p3_1024 = 1024.0 * run(platforms::power3(), "GTC", 1024);
    println!("GTC aggregate performance (same problem):");
    println!("      64 ES processors: {es64:>8.1} Gflop/s");
    println!("      64 X1 MSPs:       {x164:>8.1} Gflop/s");
    println!("    1024 Power3 CPUs:   {p3_1024:>8.1} Gflop/s");
    println!(
        "\n\"the 64-way vector systems still performed up to 20% faster than 1024\nPower3 processors\" — model: ES x{:.2}, X1 x{:.2}.",
        es64 / p3_1024,
        x164 / p3_1024
    );
}
