//! Regenerate the paper's Figure 9 (sustained % of peak at P=64).
fn main() {
    let out = pvs_bench::fig9_model();
    if std::env::args().any(|a| a == "--json") {
        println!("{}", out.render_json());
    } else {
        print!("{}", out.render());
    }
    std::process::exit(if out.all_checks_pass() { 0 } else { 1 });
}
