//! Regenerate the paper's Figure 9 (sustained % of peak at P=64).
fn main() {
    let flags = pvs_bench::cli::parse_flags("fig9 [--json]", &["--json"]);
    let out = pvs_bench::fig9_model();
    if flags.iter().any(|f| f == "--json") {
        println!("{}", out.render_json());
    } else {
        print!("{}", out.render());
    }
    std::process::exit(if out.all_checks_pass() { 0 } else { 1 });
}
