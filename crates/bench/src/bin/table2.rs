//! Regenerate the paper's Table 2.
fn main() {
    print!("{}", pvs_bench::table2_text());
}
