//! Regenerate the paper's Table 2.
fn main() {
    pvs_bench::cli::parse_flags("table2", &[]);
    print!("{}", pvs_bench::table2_text());
}
