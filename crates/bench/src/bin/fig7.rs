//! Regenerate the data behind the paper's Figure 7.
fn main() {
    print!("{}", pvs_bench::figures::fig7());
}
