//! Regenerate the data behind the paper's Figure 7.
fn main() {
    pvs_bench::cli::parse_flags("fig7", &[]);
    print!("{}", pvs_bench::figures::fig7());
}
