//! Regenerate the data behind the paper's Figure 5.
fn main() {
    pvs_bench::cli::parse_flags("fig5", &[]);
    print!("{}", pvs_bench::figures::fig5());
}
