//! Regenerate the data behind the paper's Figure 5.
fn main() {
    print!("{}", pvs_bench::figures::fig5());
}
