//! Weak-scale the four applications' communication kernels to 10⁵
//! virtual ranks on the event-driven mpisim runtime and write
//! `BENCH_mpisim.json`.
//!
//! ```text
//! cargo run --release -p pvs-bench --bin rankscale               # full ladder
//! cargo run --release -p pvs-bench --bin rankscale -- --smoke    # CI subset
//! ```
//!
//! Flags: `--smoke` (every app at P = 64 plus LBMHD at P = 65536,
//! written under `target/`), `--threads N` (event-loop worker threads,
//! default honours `PVS_THREADS`), `--out PATH`.
//!
//! The smoke set is a strict subset of the full ladder, so CI gates
//! with the fresh smoke document as the `compare` baseline against the
//! committed full `BENCH_mpisim.json`: every fresh cell must exist in
//! the committed document with bit-identical model metrics.
//!
//! Before any cell runs, the identity gate replays every kernel on both
//! runtimes at small P and requires bit-identical values and traffic;
//! a divergence exits 1 without writing anything.
//!
//! Exit codes (the shared `pvs_bench::cli` convention): 0 success,
//! 1 the identity gate failed, 2 malformed usage, 6 the output cannot
//! be written. The output path is probed before the sweep runs and
//! written atomically — no partial documents.

use pvs_bench::cli::{self, exit};
use pvs_bench::rankscale::{run_rankscale, smoke_cells, weak_scaling_cells};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value_of = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let known = ["--smoke", "--threads", "--out"];
    let mut skip_value = false;
    for a in &args {
        if skip_value {
            skip_value = false;
            continue;
        }
        match a.as_str() {
            "--threads" | "--out" => skip_value = true,
            other if known.contains(&other) => {}
            other => {
                eprintln!("error: unrecognized argument {other:?}");
                eprintln!("usage: rankscale [--smoke] [--threads N] [--out PATH]");
                std::process::exit(exit::USAGE);
            }
        }
    }

    let threads = match value_of("--threads") {
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("error: --threads needs a positive integer, got {v:?}");
                std::process::exit(exit::USAGE);
            }
        },
        None => pvs_core::pool::default_threads(),
    };

    let smoke = flag("--smoke");
    let cells = if smoke { smoke_cells() } else { weak_scaling_cells() };
    let out_path = value_of("--out").unwrap_or_else(|| {
        if smoke {
            "target/BENCH_mpisim_smoke.json".to_string()
        } else {
            "BENCH_mpisim.json".to_string()
        }
    });

    // Fail fast on an unwritable destination — before the whole sweep.
    if let Err(e) = cli::probe_writable(&out_path) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(exit::WRITE);
    }

    let max_p = cells.iter().map(|c| c.procs).max().unwrap_or(0);
    println!(
        "{} cells up to P={} on the event-driven runtime ({} threads)",
        cells.len(),
        max_p,
        threads
    );

    let out = match run_rankscale(&cells, threads) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("IDENTITY FAILURE: {e}");
            std::process::exit(exit::FAILURE);
        }
    };

    for c in &out.cells {
        println!(
            "{:<8} P={:<7} events={:<10} comm={:<9} checksum={:<17} host {:.3}s",
            c.cell.app,
            c.cell.procs,
            c.report.time_s,
            c.report.comm_s,
            c.report.gflops_per_p,
            c.host_secs.first().copied().unwrap_or(0.0)
        );
    }

    match cli::write_atomic(&out_path, &(out.to_json() + "\n")) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => {
            eprintln!("error: cannot write {out_path}: {e}");
            std::process::exit(exit::WRITE);
        }
    }
    println!("ok: v1/v2 identity gate held at P in {:?}", pvs_bench::rankscale::IDENTITY_P);
}
