//! Regenerate the data behind the paper's Figure 2.
fn main() {
    print!("{}", pvs_bench::figures::fig2());
}
