//! Regenerate the data behind the paper's Figure 2.
fn main() {
    pvs_bench::cli::parse_flags("fig2", &[]);
    print!("{}", pvs_bench::figures::fig2());
}
