//! Dependency-free benchmark harness with a Criterion-compatible surface.
//!
//! The bench targets in `benches/` were written against the subset of the
//! `criterion` API they actually use (`benchmark_group`, `sample_size`,
//! `bench_function`, `Bencher::iter`, `finish`, and the two entry-point
//! macros). This module provides that surface on `std` alone so the
//! workspace builds and benches offline. Timing methodology is simpler
//! than Criterion's (auto-calibrated batched samples, median-of-samples
//! reporting) but adequate for the A/B ablations these benches exist for:
//! both sides of every comparison run under the identical harness.
//!
//! Set `PVS_BENCH_SAMPLE_MS` to change the per-sample time target
//! (default 2 ms; raise it for lower-noise numbers).

use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Default per-sample time target when `PVS_BENCH_SAMPLE_MS` is unset or
/// invalid.
const DEFAULT_SAMPLE_MS: u64 = 2;

/// Resolve a raw `PVS_BENCH_SAMPLE_MS` value: a positive integer wins;
/// a set-but-invalid value (unparseable or zero) falls back to the
/// default and returns a warning naming the variable. Pure so the parse
/// paths are unit-testable without touching process environment.
fn sample_ms_from(raw: Option<&str>) -> (u64, Option<String>) {
    match raw {
        None => (DEFAULT_SAMPLE_MS, None),
        Some(s) => match s.trim().parse::<u64>() {
            Ok(ms) if ms >= 1 => (ms, None),
            _ => (
                DEFAULT_SAMPLE_MS,
                Some(format!(
                    "warning: PVS_BENCH_SAMPLE_MS={s:?} is not a positive integer; \
                     using the {DEFAULT_SAMPLE_MS} ms default"
                )),
            ),
        },
    }
}

/// Per-sample measurement time target. Resolved once per process; an
/// invalid `PVS_BENCH_SAMPLE_MS` prints a single stderr warning.
fn sample_target() -> Duration {
    static TARGET_MS: OnceLock<u64> = OnceLock::new();
    let ms = *TARGET_MS.get_or_init(|| {
        let raw = std::env::var("PVS_BENCH_SAMPLE_MS").ok();
        let (ms, warning) = sample_ms_from(raw.as_deref());
        if let Some(w) = warning {
            eprintln!("{w}");
        }
        ms
    });
    Duration::from_millis(ms)
}

/// Top-level handle passed to every benchmark function (Criterion-shaped).
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
        }
    }
}

/// A named group of benchmarks sharing a sample-count setting.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Number of timed samples per benchmark (Criterion-compatible knob).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark: `f` receives a [`Bencher`] and calls
    /// [`Bencher::iter`] with the routine to measure.
    pub fn bench_function<S, F>(&mut self, name: S, mut f: F) -> &mut Self
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iters: 0,
            };
            f(&mut b);
            if let Some(secs) = b.per_iter_secs() {
                per_iter.push(secs);
            }
        }
        per_iter.sort_by(f64::total_cmp);
        if per_iter.is_empty() {
            eprintln!(
                "warning: {}/{name}: benchmark closure never called Bencher::iter; skipping",
                self.name
            );
        } else {
            let median = median(&per_iter);
            let (lo, hi) = (per_iter[0], per_iter[per_iter.len() - 1]);
            println!(
                "{}/{name}: time [{} {} {}] ({} samples)",
                self.name,
                fmt_time(lo),
                fmt_time(median),
                fmt_time(hi),
                per_iter.len(),
            );
        }
        self
    }

    /// End the group (Criterion-compatible no-op).
    pub fn finish(self) {}
}

/// Measures one routine: calibrates a batch size on first use, then times
/// whole batches so per-iteration overhead vanishes.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `routine`, auto-scaling repetitions to the per-sample target.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Calibration: time a single call (also serves as warmup).
        let t0 = Instant::now();
        std::hint::black_box(routine());
        let once = t0.elapsed();
        let target = sample_target();
        let n = if once.is_zero() {
            1024
        } else {
            (target.as_nanos() / once.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };
        let start = Instant::now();
        for _ in 0..n {
            std::hint::black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += n;
    }

    /// Seconds per iteration measured so far, or `None` when the closure
    /// never called [`Bencher::iter`] — the guard that keeps a zero-iter
    /// benchmark from reporting `NaN`.
    pub fn per_iter_secs(&self) -> Option<f64> {
        if self.iters == 0 {
            None
        } else {
            Some(self.elapsed.as_secs_f64() / self.iters as f64)
        }
    }
}

/// Median of a sample vector: midpoint average of the two middle
/// elements for even lengths, the middle element for odd lengths, `0.0`
/// for an empty slice. Sorts a copy with `f64::total_cmp`, so NaN-free
/// inputs order totally and the result is deterministic.
///
/// Every reported-time path in this crate funnels through here: a bare
/// `v[v.len() / 2]` picks the *upper*-middle element for even-length
/// samples, biasing every reported median upward.
pub fn median(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut v = samples.to_vec();
    v.sort_by(f64::total_cmp);
    let mid = v.len() / 2;
    if v.len() % 2 == 0 {
        (v[mid - 1] + v[mid]) / 2.0
    } else {
        v[mid]
    }
}

/// Take `samples` wall-clock measurements of `f` and return seconds per
/// call for each — the hook `pvs-bench` binaries use for host timing so
/// clock access stays confined to this crate.
pub fn time_samples<R, F: FnMut() -> R>(samples: usize, mut f: F) -> Vec<f64> {
    (0..samples)
        .filter_map(|_| {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iters: 0,
            };
            b.iter(&mut f);
            b.per_iter_secs()
        })
        .collect()
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Criterion-compatible group declaration: expands to a function running
/// each benchmark function against a fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::harness::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Criterion-compatible entry point: expands to `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

pub use crate::{criterion_group, criterion_main};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_accumulates_iterations() {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert!(b.iters >= 1);
        assert!(count as u64 >= b.iters, "calibration call counts too");
    }

    #[test]
    fn sample_ms_env_parse_paths() {
        assert_eq!(sample_ms_from(None), (DEFAULT_SAMPLE_MS, None));
        assert_eq!(sample_ms_from(Some("7")), (7, None));
        assert_eq!(sample_ms_from(Some(" 12 ")), (12, None));
        for bad in ["abc", "0", "-3", "", "1.5"] {
            let (ms, warning) = sample_ms_from(Some(bad));
            assert_eq!(ms, DEFAULT_SAMPLE_MS, "{bad:?} must fall back");
            let w = warning.expect("invalid value must warn");
            assert!(w.contains("PVS_BENCH_SAMPLE_MS"), "warning names the var: {w}");
            assert!(w.contains(bad) || bad.is_empty());
        }
    }

    #[test]
    fn zero_iter_bencher_reports_none_not_nan() {
        let b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        assert_eq!(b.per_iter_secs(), None);
    }

    #[test]
    fn zero_iter_bench_is_skipped_without_panicking() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        let mut calls = 0;
        // Closure never calls `b.iter` — the bench must be skipped, not
        // divide 0 elapsed by 0 iterations.
        g.bench_function("empty", |_b| {
            calls += 1;
        });
        g.finish();
        assert_eq!(calls, 3, "all samples still attempted");
    }

    #[test]
    fn median_of_odd_length_is_middle_element() {
        assert_eq!(median(&[3.0]), 3.0);
        assert_eq!(median(&[9.0, 1.0, 5.0]), 5.0);
        assert_eq!(median(&[2.0, 8.0, 4.0, 10.0, 6.0]), 6.0);
    }

    #[test]
    fn median_of_even_length_averages_the_middle_pair() {
        // A bare `v[len / 2]` would return 4.0 here — the upper-middle
        // element — instead of the true median 3.0.
        assert_eq!(median(&[4.0, 2.0]), 3.0);
        assert_eq!(median(&[1.0, 2.0, 4.0, 8.0]), 3.0);
        assert_eq!(median(&[10.0, 20.0, 30.0, 40.0, 50.0, 60.0]), 35.0);
    }

    #[test]
    fn median_of_empty_slice_is_zero() {
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn time_samples_returns_one_value_per_sample() {
        let v = time_samples(3, || std::hint::black_box(3u64.pow(7)));
        assert_eq!(v.len(), 3);
        assert!(v.iter().all(|s| s.is_finite() && *s >= 0.0));
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(2);
        let mut ran = 0;
        g.bench_function("noop", |b| {
            ran += 1;
            b.iter(|| 1 + 1);
        });
        g.finish();
        assert_eq!(ran, 2);
    }
}
