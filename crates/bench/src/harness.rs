//! Dependency-free benchmark harness with a Criterion-compatible surface.
//!
//! The bench targets in `benches/` were written against the subset of the
//! `criterion` API they actually use (`benchmark_group`, `sample_size`,
//! `bench_function`, `Bencher::iter`, `finish`, and the two entry-point
//! macros). This module provides that surface on `std` alone so the
//! workspace builds and benches offline. Timing methodology is simpler
//! than Criterion's (auto-calibrated batched samples, median-of-samples
//! reporting) but adequate for the A/B ablations these benches exist for:
//! both sides of every comparison run under the identical harness.
//!
//! Set `PVS_BENCH_SAMPLE_MS` to change the per-sample time target
//! (default 2 ms; raise it for lower-noise numbers).

use std::time::{Duration, Instant};

/// Per-sample measurement time target in milliseconds.
fn sample_target() -> Duration {
    let ms = std::env::var("PVS_BENCH_SAMPLE_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(2);
    Duration::from_millis(ms.max(1))
}

/// Top-level handle passed to every benchmark function (Criterion-shaped).
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
        }
    }
}

/// A named group of benchmarks sharing a sample-count setting.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Number of timed samples per benchmark (Criterion-compatible knob).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark: `f` receives a [`Bencher`] and calls
    /// [`Bencher::iter`] with the routine to measure.
    pub fn bench_function<S, F>(&mut self, name: S, mut f: F) -> &mut Self
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iters: 0,
            };
            f(&mut b);
            if b.iters > 0 {
                per_iter.push(b.elapsed.as_secs_f64() / b.iters as f64);
            }
        }
        per_iter.sort_by(f64::total_cmp);
        if per_iter.is_empty() {
            println!("{}/{name}: no measurements", self.name);
        } else {
            let median = per_iter[per_iter.len() / 2];
            let (lo, hi) = (per_iter[0], per_iter[per_iter.len() - 1]);
            println!(
                "{}/{name}: time [{} {} {}] ({} samples)",
                self.name,
                fmt_time(lo),
                fmt_time(median),
                fmt_time(hi),
                per_iter.len(),
            );
        }
        self
    }

    /// End the group (Criterion-compatible no-op).
    pub fn finish(self) {}
}

/// Measures one routine: calibrates a batch size on first use, then times
/// whole batches so per-iteration overhead vanishes.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `routine`, auto-scaling repetitions to the per-sample target.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Calibration: time a single call (also serves as warmup).
        let t0 = Instant::now();
        std::hint::black_box(routine());
        let once = t0.elapsed();
        let target = sample_target();
        let n = if once.is_zero() {
            1024
        } else {
            (target.as_nanos() / once.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };
        let start = Instant::now();
        for _ in 0..n {
            std::hint::black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += n;
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Criterion-compatible group declaration: expands to a function running
/// each benchmark function against a fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::harness::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Criterion-compatible entry point: expands to `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

pub use crate::{criterion_group, criterion_main};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_accumulates_iterations() {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert!(b.iters >= 1);
        assert!(count as u64 >= b.iters, "calibration call counts too");
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(2);
        let mut ran = 0;
        g.bench_function("noop", |b| {
            ran += 1;
            b.iter(|| 1 + 1);
        });
        g.finish();
        assert_eq!(ran, 2);
    }
}
