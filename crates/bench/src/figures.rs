//! Regeneration of the paper's figures: each function runs the *real*
//! application code at laptop scale and renders the figure's underlying
//! data (as ASCII heat maps and printed series — the quantities the
//! paper's visualizations plot).

use pvs_lbmhd::diagnostics::{current_density, current_enstrophy, magnetic_energy};
use pvs_report::image::{save_pgm, upscale};
use std::path::Path;

/// Write a field as an upscaled PGM image next to the ASCII rendering.
pub fn save_field_pgm(
    field: &[f64],
    nx: usize,
    ny: usize,
    path: impl AsRef<Path>,
) -> std::io::Result<()> {
    let k = (512 / nx.max(ny)).max(1);
    let (big, mx, my) = upscale(field, nx, ny, k);
    save_pgm(&big, mx, my, path)
}
use pvs_lbmhd::init::crossed_current_sheets;
use pvs_lbmhd::solver::{Simulation, SimulationConfig};

/// Render a scalar field as an ASCII heat map.
pub fn ascii_heatmap(field: &[f64], nx: usize, ny: usize, max_rows: usize) -> String {
    const RAMP: &[u8] = b" .:-=+*#%@";
    let lo = field.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = field.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-300);
    let step = (ny / max_rows.min(ny)).max(1);
    let xstep = (nx / (2 * max_rows).min(nx)).max(1);
    let mut out = String::new();
    for y in (0..ny).step_by(step) {
        for x in (0..nx).step_by(xstep) {
            let v = (field[y * nx + x] - lo) / span;
            let idx = ((v * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1);
            out.push(RAMP[idx] as char);
        }
        out.push('\n');
    }
    out.push_str(&format!("range: [{lo:.4e}, {hi:.4e}]\n"));
    out
}

/// Figure 1: current-density decay of two cross-shaped structures,
/// computed by running the real LBMHD solver.
pub fn fig1(n: usize, snapshots: &[usize]) -> String {
    let cfg = SimulationConfig {
        nx: n,
        ny: n,
        tau_f: 0.6,
        tau_b: 0.6,
    };
    let mut sim = Simulation::from_moments(cfg, |x, y| crossed_current_sheets(x, y, n, n, 0.08));
    let mut out = String::from(
        "Figure 1: current density j_z of two crossed magnetic shear layers, decaying\ninto current sheets (LBMHD).\n\n",
    );
    let mut done = 0;
    for &target in snapshots {
        sim.run(target - done);
        done = target;
        let (_, _, _, bx, by) = sim.fields();
        let j = current_density(&bx, &by, n, n);
        out.push_str(&format!(
            "t = {target}: magnetic energy {:.5}, current enstrophy {:.5}\n",
            magnetic_energy(&bx, &by),
            current_enstrophy(&j)
        ));
        out.push_str(&ascii_heatmap(&j, n, n, 24));
        if std::env::args().any(|a| a == "--pgm") {
            let path = format!("fig1_t{target}.pgm");
            if save_field_pgm(&j, n, n, &path).is_ok() {
                out.push_str(&format!("(image written to {path})\n"));
            }
        }
        out.push('\n');
    }
    out
}

/// Figure 2: the octagonal streaming lattice coupled to the square grid,
/// and the third-degree interpolation weights the diagonal streams use.
pub fn fig2() -> String {
    use pvs_lbmhd::lattice::{octagon_directions, C, CB, W, WB};
    use pvs_lbmhd::stream::lagrange4_weights;
    let mut out = String::from("Figure 2a: streaming lattices\n\nSquare-lattice velocity directions (9 = 8 + null) and weights:\n");
    for (i, ((cx, cy), w)) in C.iter().zip(W).enumerate() {
        out.push_str(&format!("  c{i} = ({cx:>2}, {cy:>2})   w = {w:.6}\n"));
    }
    out.push_str("\nMagnetic streaming directions (vector-valued) and weights:\n");
    for (i, ((cx, cy), w)) in CB.iter().zip(WB).enumerate() {
        out.push_str(&format!("  b{i} = ({cx:>2}, {cy:>2})   w = {w:.6}\n"));
    }
    out.push_str("\nOctagonal (unit-speed) directions; diagonals land between grid points:\n");
    for (k, (x, y)) in octagon_directions().iter().enumerate() {
        out.push_str(&format!("  e{k} = ({x:+.4}, {y:+.4})\n"));
    }
    let t = std::f64::consts::FRAC_1_SQRT_2;
    let w = lagrange4_weights(t);
    out.push_str(&format!(
        "\nFigure 2b: a diagonal stream updates multiple cells through cubic (4-point\nLagrange) interpolation; at offset 1/sqrt(2) = {t:.4} the weights are\n  {:+.4} {:+.4} {:+.4} {:+.4}  (sum = {:.6})\n",
        w[0], w[1], w[2], w[3], w.iter().sum::<f64>()
    ));
    out
}

/// Figure 3: charge density of a PARATEC-style calculation (the paper's
/// glycine visualization stands in for "density from a converged run").
pub fn fig3() -> String {
    use pvs_paratec::basis::PwBasis;
    use pvs_paratec::density::charge_density;
    use pvs_paratec::hamiltonian::Hamiltonian;
    use pvs_paratec::solver::{solve_lowest, SolveOptions};
    let n = 8;
    let basis = PwBasis::new(n, 1.5);
    let h = Hamiltonian::with_atoms(basis, &[(0.3, 0.5, 0.5), (0.7, 0.5, 0.5)], -4.0, 1.0);
    let r = solve_lowest(&h, SolveOptions::new(4));
    let rho = charge_density(&h.basis, &r.eigenvectors, 2.0);
    let mut out = String::from(
        "Figure 3: charge density (z = midplane slice) of a two-atom plane-wave DFT\ncalculation (model system standing in for the paper's glycine run).\n\n",
    );
    let slice: Vec<f64> = (0..n * n).map(|i| rho[(n / 2) * n * n + i]).collect();
    out.push_str(&ascii_heatmap(&slice, n, n, 8));
    if std::env::args().any(|a| a == "--pgm") && save_field_pgm(&slice, n, n, "fig3.pgm").is_ok() {
        out.push_str("(image written to fig3.pgm)\n");
    }
    out.push_str(&format!(
        "\nband energies: {:?}\nsweeps: {}, residual {:.2e}\n",
        r.eigenvalues
            .iter()
            .map(|e| (e * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>(),
        r.sweeps,
        r.residual
    ));
    out
}

/// Figure 4: the Fourier-space and real-space parallel data layouts.
pub fn fig4() -> String {
    use pvs_paratec::layout::{FourierLayout, RealLayout};
    let layout = FourierLayout::new(16, 18.0, 3);
    let mut out = String::from(
        "Figure 4a: three-processor decomposition of the wavefunction sphere into\ncolumns (greedy balancer: longest column to least-loaded processor).\n\n",
    );
    for q in 0..3 {
        let cols = layout.columns_of(q);
        let points: usize = cols.iter().map(|c| c.len).sum();
        out.push_str(&format!(
            "  P{q}: {:>3} columns, {points:>4} points\n",
            cols.len()
        ));
    }
    out.push_str(&format!(
        "  imbalance: {:.2}%\n",
        100.0 * layout.imbalance()
    ));
    out.push_str("\nFigure 4b: real-space layout (contiguous plane slabs):\n");
    let real = RealLayout { n: 16, procs: 3 };
    for q in 0..3 {
        let (start, count) = real.planes_of(q);
        out.push_str(&format!("  P{q}: planes {start}..{}\n", start + count));
    }
    out
}

/// Figure 5: an evolved gravitational-wave field from the real Cactus
/// solver (standing in for the black-hole collision visualization).
pub fn fig5() -> String {
    use pvs_cactus::grid::h;
    use pvs_cactus::solver::{tt_plane_wave, CactusConfig, CactusSim};
    let n = 24;
    let mut sim = CactusSim::from_fields(CactusConfig::periodic_cube(n), |_, _, z| {
        tt_plane_wave(z, n, 0.01)
    });
    sim.run(2 * n);
    let mut out = String::from(
        "Figure 5: h_xx metric perturbation (x-z slice) of a propagating\ngravitational wave after half a crossing time (Cactus ADM solver).\n\n",
    );
    let mut slice = vec![0.0; n * n];
    for z in 0..n {
        for x in 0..n {
            slice[z * n + x] = sim.grid.get(h(0), x as isize, (n / 2) as isize, z as isize);
        }
    }
    out.push_str(&ascii_heatmap(&slice, n, n, 24));
    if std::env::args().any(|a| a == "--pgm") && save_field_pgm(&slice, n, n, "fig5.pgm").is_ok() {
        out.push_str("(image written to fig5.pgm)\n");
    }
    out.push_str(&format!(
        "\nconstraint RMS: {:.3e}\n",
        sim.constraint_violation()
    ));
    out
}

/// Figure 6: the ghost-zone exchange pattern of the block decomposition.
pub fn fig6() -> String {
    use pvs_mpisim::cart::Cart3d;
    let cart = Cart3d::near_cubic(8);
    let mut out = String::from(
        "Figure 6: each processor updates ghost zones by exchanging faces with its\ntopological neighbours (2x2x2 decomposition shown).\n\n",
    );
    for r in 0..cart.size() {
        let (x, y, z) = cart.coords(r);
        let n = cart.neighbors6(r);
        out.push_str(&format!(
            "  rank {r} at ({x},{y},{z}): +x->{} -x->{} +y->{} -y->{} +z->{} -z->{}\n",
            n[0], n[1], n[2], n[3], n[4], n[5]
        ));
    }
    out
}

/// Figure 7: electrostatic potential of a GTC microturbulence run.
pub fn fig7() -> String {
    use pvs_gtc::sim::{GtcConfig, GtcSim};
    let mut sim = GtcSim::new(GtcConfig::new(32, 32, 8), 7, 0.3);
    sim.run(10);
    let mut out = String::from(
        "Figure 7: electrostatic potential in a self-consistent gyrokinetic PIC\nsimulation (elongated turbulent eddies act as transport channels).\n\n",
    );
    out.push_str(&ascii_heatmap(sim.phi.as_slice(), 32, 32, 16));
    if std::env::args().any(|a| a == "--pgm")
        && save_field_pgm(sim.phi.as_slice(), 32, 32, "fig7.pgm").is_ok()
    {
        out.push_str("(image written to fig7.pgm)\n");
    }
    out.push_str(&format!("\nfield energy: {:.4e}\n", sim.field_energy()));
    out
}

/// Figure 8: classic vs 4-point gyroaveraged charge deposition footprints.
pub fn fig8() -> String {
    use pvs_gtc::deposit::{deposit_classic, deposit_gyro_serial};
    use pvs_gtc::grid2d::Grid2d;
    use pvs_gtc::particles::Particles;
    let mut p = Particles::default();
    p.push(8.3, 8.6, 3.0, 1.0);
    let mut classic = Grid2d::new(16, 16);
    let mut gyro = Grid2d::new(16, 16);
    deposit_classic(&p, &mut classic);
    deposit_gyro_serial(&p, &mut gyro);
    let mut out =
        String::from("Figure 8a: classic PIC deposition (guiding centre -> nearest cells):\n\n");
    out.push_str(&ascii_heatmap(classic.as_slice(), 16, 16, 16));
    out.push_str("\nFigure 8b: 4-point gyroaveraged deposition (charged ring, rho = 3):\n\n");
    out.push_str(&ascii_heatmap(gyro.as_slice(), 16, 16, 16));
    let nz_classic = classic.as_slice().iter().filter(|&&v| v != 0.0).count();
    let nz_gyro = gyro.as_slice().iter().filter(|&&v| v != 0.0).count();
    out.push_str(&format!(
        "\ncells touched: classic {nz_classic}, gyroaveraged {nz_gyro}\n(concurrent ring points may target the same cell - the vectorization hazard)\n",
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heatmap_dimensions_and_range() {
        let field = vec![0.0, 1.0, 2.0, 3.0];
        let s = ascii_heatmap(&field, 2, 2, 4);
        assert!(s.contains("range"));
        assert!(s.lines().count() >= 3);
    }

    #[test]
    fn fig1_reports_decaying_energy() {
        let s = fig1(32, &[0, 60]);
        assert!(s.contains("t = 0"));
        assert!(s.contains("t = 60"));
        // Parse the two magnetic-energy values and check decay.
        let vals: Vec<f64> = s
            .lines()
            .filter(|l| l.contains("magnetic energy"))
            .map(|l| {
                l.split("magnetic energy ")
                    .nth(1)
                    .and_then(|r| r.split(',').next())
                    .and_then(|v| v.trim().parse().ok())
                    .expect("parsable energy")
            })
            .collect();
        assert_eq!(vals.len(), 2);
        assert!(vals[1] < vals[0], "magnetic energy must decay: {vals:?}");
    }

    #[test]
    fn fig2_weights_consistent() {
        let s = fig2();
        assert!(s.contains("sum = 1.000000"));
    }

    #[test]
    fn fig4_balanced() {
        let s = fig4();
        assert!(s.contains("P0") && s.contains("P2"));
    }

    #[test]
    fn fig6_neighbor_symmetry() {
        let s = fig6();
        assert!(s.contains("rank 0"));
        assert!(s.contains("rank 7"));
    }

    #[test]
    fn fig8_gyro_touches_more_cells() {
        let s = fig8();
        let line = s
            .lines()
            .find(|l| l.starts_with("cells touched"))
            .expect("summary");
        let nums: Vec<usize> = line
            .split(|c: char| !c.is_ascii_digit())
            .filter(|t| !t.is_empty())
            .map(|t| t.parse().expect("number"))
            .collect();
        assert!(nums[1] > nums[0], "{line}");
    }
}
