//! The chaos harness: the paper sweep re-run under injected faults.
//!
//! Each [`ChaosScenario`] is a deterministic [`FaultPlan`] plus the set
//! of machines it makes sense on (hard link failures only reroute on the
//! X1 torus, port loss only on the ES crossbar, and so on). The harness
//! runs every applicable cell of the grid healthy and degraded, checks
//! the resilience invariants the fault model promises, and renders the
//! whole thing as a `pvs-bench/profile-v2` document (`BENCH_chaos.json`)
//! with the scenario name folded into each cell's `config` field — so
//! the `compare` sentinel diffs chaos baselines with no new schema.
//!
//! Invariants checked on every run:
//!
//! * **Determinism** — the degraded sweep, re-run through a thread pool
//!   (with worker retirements injected, when the scenario calls for
//!   them), is bit-identical to the serial pass at any thread count.
//! * **No free lunch** — degraded modelled time is never below healthy
//!   (equivalently, degraded Gflop/s ≤ healthy); scenarios that damage
//!   the engine's machine model must slow at least one cell strictly.
//! * **Diagnosable damage** — cutting the X1 bisection pushes PARATEC
//!   *deeper* into the `bisection-bound` class: same classification,
//!   strictly higher communication fraction.
//! * **Runtime resilience** — under message loss/delay and rank failure
//!   the `pvs-mpisim` collectives still complete over the survivors,
//!   twice, with identical results and retry counters.

use crate::profile::{CellProfile, ProfileOptions, ProfileOutput, SweepCell};
use crate::tablegen::{app_phases, machine_by_name};
use pvs_analyze::bottleneck::Bottleneck;
use pvs_analyze::{findings, profiledoc};
use pvs_core::checkpoint::SweepCheckpoint;
use pvs_core::engine::Engine;
use pvs_core::pool::ThreadPool;
use pvs_core::report::PerfReport;
use pvs_fault::{FaultKind, FaultPlan};
use pvs_mpisim::fault::{run_faulty, total_fault_stats, FaultSpec, FaultStats};
use pvs_netsim::Network;
use pvs_obs::{Recorder, Registry};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// One named fault scenario: what breaks, and which machines it applies
/// to.
#[derive(Debug, Clone)]
pub struct ChaosScenario {
    /// Scenario name, folded into each degraded cell's `config` field.
    pub name: &'static str,
    /// Machines the scenario applies to.
    pub machines: &'static [&'static str],
    /// The fault schedule.
    pub plan: FaultPlan,
}

/// Stable label for a fault kind (used to prove smoke coverage).
pub fn kind_label(kind: &FaultKind) -> &'static str {
    match kind {
        FaultKind::LinkFailure { .. } => "link-failure",
        FaultKind::LinkDegrade { .. } => "link-degrade",
        FaultKind::PortLoss { .. } => "port-loss",
        FaultKind::BankFault { .. } => "bank-fault",
        FaultKind::RankFailure { .. } => "rank-failure",
        FaultKind::MessageLoss { .. } => "message-loss",
        FaultKind::MessageDelay { .. } => "message-delay",
        FaultKind::WorkerLoss { .. } => "worker-loss",
    }
}

/// Every fault kind injected by a scenario set.
pub fn covered_kinds(scenarios: &[ChaosScenario]) -> BTreeSet<&'static str> {
    scenarios
        .iter()
        .flat_map(|s| s.plan.events().map(|e| kind_label(&e.kind)))
        .collect()
}

/// Cut the X1 bisection: both +x crossings die in half the torus rows
/// (forcing their traffic onto the surviving −x links — rerouting around
/// a *single* dead link would ride otherwise-idle reverse links for
/// free), and the interior +x crossing is derated to half bandwidth in
/// the rest.
fn x1_link_down() -> ChaosScenario {
    let net = Network::new(machine_by_name("X1").network(64));
    let cut = net.bisection_cut_links().expect("the X1 is a torus");
    let rows = cut.len() / 4;
    let mut plan = FaultPlan::new(0x11A0);
    let mut t = 1_000_000; // onset 1 µs, one row per µs after
    for row in cut.chunks(4).take(rows / 2) {
        plan = plan
            .inject(t, FaultKind::LinkFailure { link: row[0] })
            .inject(t, FaultKind::LinkFailure { link: row[2] });
        t += 1_000_000;
    }
    for row in cut.chunks(4).skip(rows / 2) {
        plan = plan.inject(
            t,
            FaultKind::LinkDegrade {
                link: row[0],
                factor: 0.5,
            },
        );
    }
    ChaosScenario {
        name: "x1-link-down",
        machines: &["X1"],
        plan,
    }
}

/// ES crossbar endpoints lose half their port lanes.
fn es_port_loss() -> ChaosScenario {
    let mut plan = FaultPlan::new(0xE5F0);
    for port in 0..4 {
        plan = plan.inject(2_000_000, FaultKind::PortLoss { port });
    }
    ChaosScenario {
        name: "es-port-loss",
        machines: &["ES"],
        plan,
    }
}

/// Memory banks mapped out of the interleave on the vector machines.
fn bank_fault() -> ChaosScenario {
    let plan = FaultPlan::new(0xBA4F)
        .inject(500_000, FaultKind::BankFault { bank: 0 })
        .inject(700_000, FaultKind::BankFault { bank: 3 });
    ChaosScenario {
        name: "bank-fault",
        machines: &["ES", "X1"],
        plan,
    }
}

/// Lossy, laggy message-passing: the engine model is untouched, but the
/// runtime must retry its way to the same collective results.
fn msg_drop_delay() -> ChaosScenario {
    let plan = FaultPlan::new(0xD07D)
        .inject(1_000, FaultKind::MessageLoss { drop_per_mille: 150 })
        .inject(
            2_000,
            FaultKind::MessageDelay {
                delay_per_mille: 300,
                delay_ps: 2_000_000,
            },
        );
    ChaosScenario {
        name: "msg-drop-delay",
        machines: &["Power3"],
        plan,
    }
}

/// One rank dies and messages drop on top: collectives complete over the
/// survivors.
fn rank_fail_retry() -> ChaosScenario {
    let plan = FaultPlan::new(0x4A4F)
        .inject(1_000, FaultKind::RankFailure { rank: 4 })
        .inject(2_000, FaultKind::MessageLoss { drop_per_mille: 100 });
    ChaosScenario {
        name: "rank-fail-retry",
        machines: &["ES"],
        plan,
    }
}

/// Host-pool workers retire mid-sweep; queued cells redistribute with no
/// effect on the results.
fn worker_loss() -> ChaosScenario {
    let plan = FaultPlan::new(0x1057)
        .inject(3_000, FaultKind::WorkerLoss { worker: 1, after_tasks: 1 })
        .inject(3_000, FaultKind::WorkerLoss { worker: 2, after_tasks: 1 });
    ChaosScenario {
        name: "worker-loss",
        machines: &["Power3"],
        plan,
    }
}

/// The six-scenario CI set: every fault kind the planner knows is
/// injected by at least one scenario.
pub fn smoke_scenarios() -> Vec<ChaosScenario> {
    vec![
        x1_link_down(),
        es_port_loss(),
        bank_fault(),
        msg_drop_delay(),
        rank_fail_retry(),
        worker_loss(),
    ]
}

/// The full set (currently the same scenarios; the grid they run over is
/// what grows in full mode).
pub fn full_scenarios() -> Vec<ChaosScenario> {
    smoke_scenarios()
}

/// What one scenario did, for the human-readable summary. Worker
/// retirement counts are host-scheduling dependent (a quota only fires
/// if that worker wins a task), so they are reported here and *not* in
/// the JSON document.
#[derive(Debug, Clone)]
pub struct ScenarioSummary {
    /// Scenario name.
    pub name: &'static str,
    /// Cells of the grid the scenario ran on.
    pub cells: usize,
    /// Whether the scenario damages the engine's machine model.
    pub engine_faulted: bool,
    /// Aggregated message-runtime fault counters (zero when the scenario
    /// injects no comm faults).
    pub mpisim: FaultStats,
    /// Pool workers that actually retired during the pooled pass.
    pub retired_workers: u64,
}

/// A complete chaos run.
#[derive(Debug, Clone)]
pub struct ChaosOutput {
    /// Healthy + degraded rows as a profile-v2 sweep document.
    pub profile: ProfileOutput,
    /// Per-scenario accounting.
    pub scenarios: Vec<ScenarioSummary>,
}

impl ChaosOutput {
    /// Render as the `BENCH_chaos.json` document (profile-v2 schema).
    pub fn to_json(&self) -> String {
        self.profile.to_json()
    }
}

/// Scenario-qualified config label. Leaked once per distinct label —
/// the label set is a small static cross product, so the leak is
/// bounded and the `&'static str` plugs into [`SweepCell`] unchanged.
fn scenario_config(config: &str, scenario: &str) -> &'static str {
    Box::leak(format!("{config}@{scenario}").into_boxed_str())
}

fn cell_key(c: &SweepCell) -> String {
    format!("{}/{}/P{}", c.app, c.machine, c.procs)
}

/// Bit-exact fingerprint of a report list, via the checkpoint format
/// (f64s serialize as raw bits, so equal fingerprints mean equal runs).
fn fingerprint(reports: &[PerfReport]) -> String {
    let mut cp = SweepCheckpoint::new(reports.len());
    for (i, r) in reports.iter().enumerate() {
        cp.record(i, r.clone());
    }
    cp.serialize()
}

/// Run one cell serially under full observability.
fn observed_run(cell: &SweepCell, adversity: &pvs_core::Adversity) -> CellProfile {
    let phases = app_phases(cell.app, cell.config, cell.machine, cell.procs);
    let reg = Arc::new(Registry::new());
    let engine = Engine::new(machine_by_name(cell.machine))
        .with_recorder(reg.clone())
        .with_adversity(adversity.clone());
    let report = engine.run(&phases, cell.procs);
    let trace = reg.trace();
    let span_events = trace.events().len();
    CellProfile {
        cell: cell.clone(),
        report,
        snapshot: reg.snapshot(),
        trace,
        span_events,
        host_secs: Vec::new(),
    }
}

/// The message-runtime workload each comm-fault scenario must survive: a
/// barrier plus a survivor allreduce on six ranks. Returns the per-rank
/// sums (survivor slots only) and the aggregated fault counters.
fn comm_workload(spec: &FaultSpec) -> (Vec<f64>, FaultStats) {
    let outcomes = run_faulty(6, spec.clone(), |c| {
        c.barrier().expect("barrier completes under injected faults");
        c.allreduce_sum_scalar((c.rank() + 1) as f64)
            .expect("allreduce completes under injected faults")
    });
    let values = outcomes.iter().filter_map(|o| o.value().copied()).collect();
    (values, total_fault_stats(&outcomes))
}

/// Run the chaos harness over `base` cells. Returns the rendered output
/// or a description of the first violated invariant.
pub fn run_chaos(
    base: &[SweepCell],
    scenarios: &[ChaosScenario],
    threads: usize,
) -> Result<ChaosOutput, String> {
    let harness_reg = Registry::new();
    let mut rows: Vec<CellProfile> = Vec::new();
    let mut healthy_times: BTreeMap<String, f64> = BTreeMap::new();

    // Healthy baseline rows, labelled `@healthy` so they diff natively.
    let healthy = pvs_core::Adversity::healthy();
    for cell in base {
        let mut profile = observed_run(cell, &healthy);
        healthy_times.insert(cell_key(cell), profile.report.time_s);
        profile.cell.config = scenario_config(cell.config, "healthy");
        rows.push(profile);
    }

    let mut summaries = Vec::new();
    for scenario in scenarios {
        let cells: Vec<SweepCell> = base
            .iter()
            .filter(|c| scenario.machines.contains(&c.machine))
            .cloned()
            .collect();
        if cells.is_empty() {
            return Err(format!(
                "scenario {} matched no cells of the grid",
                scenario.name
            ));
        }
        let compiled = scenario.plan.compile_all();

        // Serial observed pass.
        let mut serial_reports = Vec::with_capacity(cells.len());
        for cell in &cells {
            let mut profile = observed_run(cell, &compiled.adversity);
            serial_reports.push(profile.report.clone());
            profile.cell.config = scenario_config(cell.config, scenario.name);
            rows.push(profile);
        }

        // Pooled pass: same degraded cells through a thread pool, with
        // the scenario's worker retirements injected (worker 0 stays
        // immortal; quotas beyond the pool width cannot apply).
        let retirements: Vec<(usize, u64)> = compiled
            .retirements
            .iter()
            .filter(|(w, _)| *w != 0 && *w < threads)
            .copied()
            .collect();
        let pool = ThreadPool::with_retirements(threads, &retirements);
        let adversity = compiled.adversity.clone();
        let pooled_reports: Vec<PerfReport> = pool.map(cells.clone(), move |cell| {
            let phases = app_phases(cell.app, cell.config, cell.machine, cell.procs);
            Engine::new(machine_by_name(cell.machine))
                .with_adversity(adversity.clone())
                .run(&phases, cell.procs)
        });
        let pool_reg = Registry::new();
        pool.record_to(&pool_reg);
        let retired = pool_reg.counter("pool.workers.retired");

        // Invariant: degraded results are thread-schedule independent.
        if fingerprint(&serial_reports) != fingerprint(&pooled_reports) {
            return Err(format!(
                "scenario {}: pooled degraded sweep diverged from the serial pass \
                 ({} threads, {} retirements)",
                scenario.name,
                threads,
                retirements.len()
            ));
        }

        // Invariant: damage never speeds the model up; engine-level
        // damage must slow something down.
        let engine_faulted = !compiled.adversity.is_healthy();
        let mut strictly_slower = false;
        for (cell, report) in cells.iter().zip(&serial_reports) {
            let key = cell_key(cell);
            let healthy_t = *healthy_times
                .get(&key)
                .ok_or_else(|| format!("scenario {}: no healthy baseline for {key}", scenario.name))?;
            if report.time_s < healthy_t {
                return Err(format!(
                    "scenario {}: {key} got FASTER under faults ({:.6e}s < {:.6e}s)",
                    scenario.name, report.time_s, healthy_t
                ));
            }
            if report.time_s > healthy_t {
                strictly_slower = true;
            }
        }
        if engine_faulted && !strictly_slower {
            return Err(format!(
                "scenario {}: engine-level faults slowed nothing down",
                scenario.name
            ));
        }

        // Invariant: the message runtime retries through comm faults to
        // the same survivor results, twice.
        let mut mpisim = FaultStats::default();
        if !compiled.comm.is_healthy() {
            let (values, stats) = comm_workload(&compiled.comm);
            let (again, stats_again) = comm_workload(&compiled.comm);
            if values != again || stats != stats_again {
                return Err(format!(
                    "scenario {}: message-runtime workload is not deterministic",
                    scenario.name
                ));
            }
            let survivors: Vec<usize> = (0..6)
                .filter(|r| !compiled.comm.failed_ranks.contains(r))
                .collect();
            let expected: f64 = survivors.iter().map(|r| (r + 1) as f64).sum();
            if values.len() != survivors.len() || values.iter().any(|&v| v != expected) {
                return Err(format!(
                    "scenario {}: survivor allreduce produced {values:?}, expected {expected} \
                     over ranks {survivors:?}",
                    scenario.name
                ));
            }
            if stats.timeouts > 0 {
                return Err(format!(
                    "scenario {}: collectives timed out under the planned loss rate",
                    scenario.name
                ));
            }
            mpisim = stats;
            for (name, value) in [
                ("delivered", stats.delivered),
                ("drops", stats.drops),
                ("retries", stats.retries),
                ("delays", stats.delays),
                ("backoff_ps", stats.backoff_ps),
                ("delay_ps", stats.delay_ps),
            ] {
                if value > 0 {
                    harness_reg.add(&format!("chaos.{}.mpisim.{name}", scenario.name), value);
                }
            }
        }

        harness_reg.add(&format!("chaos.{}.cells", scenario.name), cells.len() as u64);
        summaries.push(ScenarioSummary {
            name: scenario.name,
            cells: cells.len(),
            engine_faulted,
            mpisim,
            retired_workers: retired,
        });
    }
    harness_reg.add("chaos.scenarios", scenarios.len() as u64);

    let output = ChaosOutput {
        profile: ProfileOutput {
            cells: rows,
            harness: harness_reg.snapshot(),
            options: ProfileOptions {
                observe: true,
                host_samples: 0,
                threads,
            },
        },
        scenarios: summaries,
    };

    check_bisection_shift(&output, scenarios)?;
    Ok(output)
}

/// The diagnosable-damage invariant: when `x1-link-down` runs over a
/// grid containing PARATEC/X1, the degraded cell must stay
/// `bisection-bound` with a strictly higher communication fraction than
/// healthy — cutting bisection links pushes the all-to-all app *deeper*
/// into its bottleneck class, never sideways into a different one.
fn check_bisection_shift(
    output: &ChaosOutput,
    scenarios: &[ChaosScenario],
) -> Result<(), String> {
    if !scenarios.iter().any(|s| s.name == "x1-link-down") {
        return Ok(());
    }
    let json = output.to_json();
    let doc = profiledoc::load(&json)
        .map_err(|e| format!("chaos document does not round-trip through the reader: {e}"))?;
    let diagnoses = findings::analyze_doc(&doc);
    let find = |suffix: &str| {
        diagnoses.iter().find(|d| {
            d.key.starts_with("PARATEC/") && d.key.contains("/X1/") && d.key.contains(suffix)
        })
    };
    let (Some(healthy), Some(degraded)) = (find("@healthy"), find("@x1-link-down")) else {
        // PARATEC/X1 not in this grid (custom cell list) — nothing to check.
        return Ok(());
    };
    if healthy.bottleneck != Bottleneck::BisectionBound {
        return Err(format!(
            "PARATEC/X1 healthy classified as {} (expected bisection-bound)",
            healthy.bottleneck.name()
        ));
    }
    if degraded.bottleneck != Bottleneck::BisectionBound {
        return Err(format!(
            "PARATEC/X1 under x1-link-down classified as {} (expected bisection-bound)",
            degraded.bottleneck.name()
        ));
    }
    if degraded.comm_fraction <= healthy.comm_fraction {
        return Err(format!(
            "x1-link-down did not push PARATEC/X1 deeper into bisection: comm fraction \
             {:.4} (degraded) vs {:.4} (healthy)",
            degraded.comm_fraction, healthy.comm_fraction
        ));
    }
    Ok(())
}

/// Mid-sweep kill + restart under faults: run the degraded bank-fault
/// cells to completion as a reference, then re-run with a kill after the
/// first half — serializing the sweep checkpoint to text and parsing it
/// back, as a fresh process would — and require the resumed sweep to be
/// bit-identical to the uninterrupted one. Returns a human-readable
/// summary on success.
pub fn checkpoint_roundtrip_check(threads: usize) -> Result<String, String> {
    let scenario = smoke_scenarios()
        .into_iter()
        .find(|s| s.name == "bank-fault")
        .ok_or("no bank-fault scenario")?;
    let adversity = scenario.plan.compile_all().adversity;
    let cells: Vec<SweepCell> = crate::profile::smoke_cells()
        .into_iter()
        .filter(|c| scenario.machines.contains(&c.machine))
        .collect();
    if cells.len() < 2 {
        return Err("checkpoint check needs at least two cells".into());
    }
    let run_cell = |cell: &SweepCell| {
        let phases = app_phases(cell.app, cell.config, cell.machine, cell.procs);
        Engine::new(machine_by_name(cell.machine))
            .with_adversity(adversity.clone())
            .run(&phases, cell.procs)
    };

    // Uninterrupted reference, through the pool.
    let adversity_for_pool = adversity.clone();
    let reference: Vec<PerfReport> =
        ThreadPool::new(threads).map(cells.clone(), move |cell| {
            let phases = app_phases(cell.app, cell.config, cell.machine, cell.procs);
            Engine::new(machine_by_name(cell.machine))
                .with_adversity(adversity_for_pool.clone())
                .run(&phases, cell.procs)
        });

    // Interrupted run: complete the first half, "kill" the process by
    // serializing the checkpoint, parse it back, finish the rest.
    let half = cells.len() / 2;
    let mut first = SweepCheckpoint::new(cells.len());
    for (i, cell) in cells.iter().take(half).enumerate() {
        first.record(i, run_cell(cell));
    }
    let wire = first.serialize();
    let mut resumed = SweepCheckpoint::parse(&wire)
        .map_err(|e| format!("checkpoint did not survive the wire: {e}"))?;
    for (i, cell) in cells.iter().enumerate().skip(half) {
        resumed.record(i, run_cell(cell));
    }
    let finished = resumed
        .reports_in_order()
        .ok_or("resumed checkpoint is incomplete")?;

    if fingerprint(&reference) != fingerprint(&finished) {
        return Err("resumed sweep diverged from the uninterrupted run".into());
    }
    Ok(format!(
        "checkpoint/restart identity holds: {} degraded cells, killed after {half}, \
         resumed bit-identically ({threads}-thread reference)",
        cells.len()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::smoke_cells;

    #[test]
    fn smoke_scenarios_cover_every_fault_kind() {
        let covered = covered_kinds(&smoke_scenarios());
        for kind in [
            "link-failure",
            "link-degrade",
            "port-loss",
            "bank-fault",
            "rank-failure",
            "message-loss",
            "message-delay",
            "worker-loss",
        ] {
            assert!(covered.contains(kind), "no smoke scenario injects {kind}");
        }
        assert!(smoke_scenarios().len() <= 6, "smoke stays CI-sized");
    }

    #[test]
    fn smoke_chaos_passes_its_invariants() {
        let out = run_chaos(&smoke_cells(), &smoke_scenarios(), 2).expect("invariants hold");
        assert_eq!(out.scenarios.len(), 6);
        // Every scenario matched at least one cell of the smoke grid.
        assert!(out.scenarios.iter().all(|s| s.cells >= 1));
        // The comm-fault scenarios really injected and retried.
        let msg = out
            .scenarios
            .iter()
            .find(|s| s.name == "msg-drop-delay")
            .unwrap();
        assert!(msg.mpisim.drops > 0 && msg.mpisim.retries > 0);
        assert!(msg.mpisim.delays > 0);
        let rank = out
            .scenarios
            .iter()
            .find(|s| s.name == "rank-fail-retry")
            .unwrap();
        assert!(rank.mpisim.delivered > 0);
        // Engine damage scenarios are flagged as such.
        for name in ["x1-link-down", "es-port-loss", "bank-fault"] {
            assert!(
                out.scenarios.iter().find(|s| s.name == name).unwrap().engine_faulted,
                "{name} must damage the machine model"
            );
        }
    }

    #[test]
    fn chaos_document_reuses_the_profile_schema() {
        let out = run_chaos(&smoke_cells(), &smoke_scenarios(), 2).expect("invariants hold");
        let json = out.to_json();
        assert!(json.contains("\"schema\": \"pvs-bench/profile-v2\""));
        assert!(json.contains("@healthy"));
        assert!(json.contains("@x1-link-down"));
        // It round-trips through the same reader `compare` uses, and the
        // degraded rows are distinct cells.
        let doc = profiledoc::load(&json).expect("readable");
        assert!(doc.cells.len() > smoke_cells().len());
        assert!(json.contains("chaos.scenarios"));
    }

    #[test]
    fn degraded_checkpoint_roundtrip_holds() {
        let summary = checkpoint_roundtrip_check(2).expect("identity holds");
        assert!(summary.contains("bit-identically"));
    }

    #[test]
    fn chaos_reruns_are_bit_identical() {
        // Everything but the recorded thread-count knob must be identical
        // at any PVS_THREADS.
        let strip = |json: String| {
            json.lines()
                .filter(|l| !l.contains("sweep_threads"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        let a = strip(
            run_chaos(&smoke_cells(), &smoke_scenarios(), 1)
                .expect("invariants hold")
                .to_json(),
        );
        let b = strip(
            run_chaos(&smoke_cells(), &smoke_scenarios(), 4)
                .expect("invariants hold")
                .to_json(),
        );
        assert_eq!(a, b, "chaos output is thread-count independent");
    }
}
