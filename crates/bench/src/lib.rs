//! # pvs-bench — the benchmark and regeneration harness
//!
//! One binary per table and figure of the paper (see `src/bin/`), backed
//! by the generators in [`tablegen`] and [`figures`], plus Criterion
//! microbenchmarks of the real kernels and the ablations DESIGN.md lists
//! (see `benches/`).
//!
//! ```text
//! cargo run -p pvs-bench --bin table3      # LBMHD, model vs paper
//! cargo run -p pvs-bench --bin fig9       # sustained %peak bars
//! cargo bench -p pvs-bench                # kernel + ablation benches
//! ```

pub mod chaos;
pub mod cli;
pub mod figures;
pub mod harness;
pub mod profile;
pub mod rankscale;
pub mod selfperf;
pub mod servechaos;
pub mod serveload;
pub mod tablegen;

pub use tablegen::{
    fig9_model, fig9_model_threads, table1_text, table2_text, table3_model, table3_model_threads,
    table4_model, table4_model_threads, table5_model, table5_model_threads, table6_model,
    table6_model_threads, table7_model, table7_model_threads, TableOutput,
};
