//! Seeded load generator for the serving layer, plus the
//! `BENCH_serve.json` emitter.
//!
//! Two arrival models, both deterministic in *what* they ask for:
//!
//! * **closed loop** — `C` connections issue requests back-to-back; the
//!   offered load follows service capacity (classic saturation probe);
//! * **open loop** — requests arrive on a seeded Poisson process at a
//!   fixed rate, each on its own connection, regardless of how the
//!   server is keeping up (latency-under-load probe).
//!
//! Request *content* is a fixed schedule over a cell list (request `i`
//! asks for cell `i mod cells.len()`), so two runs with the same options
//! offer the same work in the same order; only host timing differs. The
//! emitted document is schema `pvs-bench/profile-v2`: model metrics are
//! the served cell bytes (pure, gated exactly by `compare`), request
//! latencies land in `host_wall` (report-only unless `--host-tol`).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use pvs_core::engine::{run_sweep_threads, SweepJob};
use pvs_core::rng::Pcg32;
use pvs_obs::{Histogram, Recorder, Registry, Snapshot};
use pvs_report::json::{array, number, pretty, JsonObject};
use pvs_serve::Request;

use crate::harness::median;

/// Odd 64-bit mixer (the SplitMix64 increment): spreads request indices
/// into independent per-request jitter streams.
const SEED_MIX: u64 = 0x9E37_79B9_7F4A_7C15;

/// The default serving grid: every application's large configuration on
/// the two vector machines at the paper's common P=64 — eight distinct
/// cells, so a load run exercises both cold misses and hits.
pub fn paper_serve_cells() -> Vec<Request> {
    let mut cells = Vec::new();
    for (app, config) in [
        ("LBMHD", "8192x8192"),
        ("PARATEC", "686 atom"),
        ("CACTUS", "250x64x64"),
        ("GTC", "100 part/cell"),
    ] {
        for machine in ["ES", "X1"] {
            cells.push(Request::cell(app, config, machine, 64));
        }
    }
    cells
}

/// How requests arrive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalMode {
    /// `connections` workers, each issuing back-to-back requests.
    Closed {
        /// Concurrent connections.
        connections: usize,
    },
    /// Seeded Poisson arrivals at `rate_rps` requests per second, one
    /// connection per request.
    Open {
        /// Offered arrival rate (requests/second).
        rate_rps: f64,
    },
}

/// Seeded-jitter exponential-backoff retry policy. Retryable outcomes
/// are `overloaded` responses and transport errors (refused, reset,
/// timeout); protocol-level rejections (`bad_request`, `malformed`,
/// `deadline_exceeded`, `failed`, `internal`) are definitive and never
/// retried. The backoff *schedule* is a pure function of the load seed
/// and request index (half-jitter drawn from a per-request [`Pcg32`]),
/// floored at the server's `retry_after_ms` hint when one arrives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per request, first try included (≥ 1).
    pub max_attempts: u32,
    /// Backoff before the first retry, in milliseconds; doubles per
    /// retry until `cap_ms`.
    pub base_ms: u64,
    /// Per-sleep ceiling in milliseconds.
    pub cap_ms: u64,
    /// Total backoff a single request may accumulate before giving up,
    /// in milliseconds.
    pub budget_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self { max_attempts: 4, base_ms: 25, cap_ms: 400, budget_ms: 2_000 }
    }
}

impl RetryPolicy {
    /// The backoff before retry number `retry` (1-based), in
    /// milliseconds: exponential from `base_ms`, capped at `cap_ms`,
    /// half-jittered from `rng`, and floored at the server's
    /// `hint_ms`. Deterministic in `(rng state, retry, hint_ms)`.
    pub fn backoff_ms(&self, rng: &mut Pcg32, retry: u32, hint_ms: u64) -> u64 {
        let exp = self.base_ms.saturating_mul(1u64 << retry.saturating_sub(1).min(16));
        let capped = exp.min(self.cap_ms).max(1);
        let jittered = capped / 2 + u64::from(rng.next_below((capped / 2 + 1).min(u32::MAX as u64) as u32));
        jittered.max(hint_ms)
    }
}

/// One load run's knobs.
#[derive(Debug, Clone)]
pub struct LoadOptions {
    /// Total requests to issue.
    pub requests: usize,
    /// Arrival model.
    pub mode: ArrivalMode,
    /// Seed for the open-loop arrival process and the retry jitter.
    pub seed: u64,
    /// Retry policy for retryable failures (`None` = fail fast).
    pub retry: Option<RetryPolicy>,
}

impl Default for LoadOptions {
    fn default() -> Self {
        Self {
            requests: 64,
            mode: ArrivalMode::Closed { connections: 4 },
            seed: 0xC0FFEE,
            retry: Some(RetryPolicy::default()),
        }
    }
}

/// One request's outcome.
#[derive(Debug, Clone)]
pub struct RequestSample {
    /// Index into the cell list this request asked for.
    pub cell: usize,
    /// Wall-clock seconds from send to full response line.
    pub latency_s: f64,
    /// The response's `source` tag (`memory`, `computed`, …), or the
    /// error tag for `"ok":false` responses.
    pub source: String,
    /// Whether the response was `"ok":true`.
    pub ok: bool,
    /// Attempts this request took, first try included.
    pub attempts: u32,
}

/// A completed load run.
#[derive(Debug, Clone)]
pub struct LoadRun {
    /// Per-request outcomes, in schedule order.
    pub samples: Vec<RequestSample>,
    /// Wall-clock seconds for the whole run.
    pub wall_s: f64,
    /// Client-side retry telemetry: `serve.retry.attempts` /
    /// `serve.retry.giveups` counters and the
    /// `serve.retry.hist.backoff_ms` histogram of slept backoffs.
    pub retry: Snapshot,
}

impl LoadRun {
    /// Achieved throughput over the run.
    pub fn throughput_rps(&self) -> f64 {
        if self.wall_s <= 0.0 {
            0.0
        } else {
            self.samples.len() as f64 / self.wall_s
        }
    }

    /// Latencies of successful requests, sorted ascending.
    pub fn sorted_latencies_s(&self) -> Vec<f64> {
        let mut v: Vec<f64> = self
            .samples
            .iter()
            .filter(|s| s.ok)
            .map(|s| s.latency_s)
            .collect();
        v.sort_by(f64::total_cmp);
        v
    }

    /// Histogram of successful request latencies in whole microseconds —
    /// the same [`pvs_obs::Histogram`] the server uses for
    /// `serve.hist.busy_us`, so client-side and server-side quantiles
    /// share one nearest-rank definition. Values below 64us are exact;
    /// larger ones resolve to ~3.1% (one sub-bucket).
    pub fn latency_hist_us(&self) -> Histogram {
        let mut h = Histogram::new();
        for s in self.samples.iter().filter(|s| s.ok) {
            h.record((s.latency_s * 1e6) as u64);
        }
        h
    }

    /// How many responses carried each `source` tag, sorted by tag.
    pub fn source_counts(&self) -> Vec<(String, usize)> {
        let mut counts: std::collections::BTreeMap<String, usize> = Default::default();
        for s in &self.samples {
            *counts.entry(s.source.clone()).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }
}

fn request_line(request: &Request) -> String {
    let mut obj = JsonObject::new()
        .string("op", "cell")
        .string("app", &request.app)
        .string("config", &request.config)
        .string("machine", &request.machine)
        .number("procs", request.procs as f64);
    if let Some(f) = request.faults {
        obj = obj
            .number("fault_seed", f.seed as f64)
            .number("fault_events", f.events as f64);
    }
    obj.render()
}

/// A parsed response's fate, as far as the load client cares.
struct Outcome {
    ok: bool,
    tag: String,
    /// The server's backoff hint on `overloaded` responses.
    retry_after_ms: Option<u64>,
}

fn outcome_of(response: &str) -> Outcome {
    let doc = match pvs_analyze::json::parse(response) {
        Ok(doc) => doc,
        Err(_) => {
            return Outcome { ok: false, tag: "unparseable".to_string(), retry_after_ms: None }
        }
    };
    let ok = doc.get("ok").and_then(|v| v.as_bool()).unwrap_or(false);
    let tag = if ok { doc.str("source") } else { doc.str("error") };
    Outcome {
        ok,
        tag: tag.unwrap_or("missing").to_string(),
        retry_after_ms: doc.num("retry_after_ms").map(|ms| ms.max(0.0) as u64),
    }
}

fn exchange(stream: &mut TcpStream, line: &str) -> std::io::Result<String> {
    // Body and newline go out in one write: split across two, Nagle +
    // delayed ACK can park the newline for tens of milliseconds on
    // non-loopback links, polluting the latency samples with transport
    // artifacts (and stalling the server mid-line).
    stream.write_all(format!("{line}\n").as_bytes())?;
    stream.flush()?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut response = String::new();
    reader.read_line(&mut response)?;
    Ok(response.trim_end().to_string())
}

fn connect(addr: &str) -> std::io::Result<TcpStream> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(120)))?;
    // Measurement client: never let Nagle defer a request.
    stream.set_nodelay(true)?;
    Ok(stream)
}

/// Run one request, retrying retryable failures per `policy`, and time
/// the whole exchange (backoff sleeps included — the latency a caller
/// with this policy actually experiences). The jitter stream is seeded
/// per request (`seed`), so the backoff schedule is reproducible; only
/// *whether* each retry was needed depends on server state. Transport
/// errors reconnect before retrying; a failed reconnect is definitive.
fn timed_request(
    addr: &str,
    stream: &mut TcpStream,
    cell: usize,
    line: &str,
    policy: Option<&RetryPolicy>,
    seed: u64,
    retry_stats: &Registry,
) -> RequestSample {
    let started = Instant::now();
    let mut rng = Pcg32::seed_from_u64(seed);
    let mut attempts = 0u32;
    let mut slept_ms = 0u64;
    loop {
        attempts += 1;
        let outcome = match exchange(stream, line) {
            Ok(response) => outcome_of(&response),
            Err(e) => Outcome { ok: false, tag: format!("io: {e}"), retry_after_ms: None },
        };
        let sample = |o: &Outcome| RequestSample {
            cell,
            latency_s: started.elapsed().as_secs_f64(),
            source: o.tag.clone(),
            ok: o.ok,
            attempts,
        };
        if outcome.ok {
            return sample(&outcome);
        }
        let retryable = outcome.tag == "overloaded" || outcome.tag.starts_with("io:");
        let Some(policy) = policy.filter(|_| retryable) else {
            return sample(&outcome);
        };
        if attempts >= policy.max_attempts {
            retry_stats.add("serve.retry.giveups", 1);
            return sample(&outcome);
        }
        let backoff = policy.backoff_ms(&mut rng, attempts, outcome.retry_after_ms.unwrap_or(0));
        if slept_ms + backoff > policy.budget_ms {
            retry_stats.add("serve.retry.giveups", 1);
            return sample(&outcome);
        }
        if outcome.tag.starts_with("io:") {
            match connect(addr) {
                Ok(fresh) => *stream = fresh,
                Err(_) => return sample(&outcome),
            }
        }
        retry_stats.add("serve.retry.attempts", 1);
        retry_stats.record("serve.retry.hist.backoff_ms", backoff);
        slept_ms += backoff;
        std::thread::sleep(Duration::from_millis(backoff));
    }
}

/// Drive `options.requests` requests at `addr` over the cell schedule.
pub fn run_load(addr: &str, cells: &[Request], options: &LoadOptions) -> std::io::Result<LoadRun> {
    assert!(!cells.is_empty(), "load run needs at least one cell");
    let lines: Vec<String> = cells.iter().map(request_line).collect();
    // LOCK ORDER: 65 — per-run sample slots, written one statement at a
    // time by the load workers (client side; never nested with the
    // server's locks, which live in another process in real use).
    let results: Mutex<Vec<Option<RequestSample>>> = Mutex::new(vec![None; options.requests]);
    let retry_stats = Registry::new();
    let started = Instant::now();

    match options.mode {
        ArrivalMode::Closed { connections } => {
            let connections = connections.clamp(1, options.requests.max(1));
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| -> std::io::Result<()> {
                let mut handles = Vec::new();
                for _ in 0..connections {
                    let mut stream = connect(addr)?;
                    let next = &next;
                    let results = &results;
                    let lines = &lines;
                    let retry_stats = &retry_stats;
                    handles.push(scope.spawn(move || {
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= options.requests {
                                return;
                            }
                            let cell = i % lines.len();
                            let sample = timed_request(
                                addr,
                                &mut stream,
                                cell,
                                &lines[cell],
                                options.retry.as_ref(),
                                options.seed ^ (i as u64).wrapping_mul(SEED_MIX),
                                retry_stats,
                            );
                            // INFALLIBLE: holders only store a sample.
                            results.lock().expect("results poisoned")[i] = Some(sample);
                        }
                    }));
                }
                for h in handles {
                    let _ = h.join();
                }
                Ok(())
            })?;
        }
        ArrivalMode::Open { rate_rps } => {
            assert!(rate_rps > 0.0, "open-loop rate must be positive");
            // Pre-draw the arrival offsets so the schedule depends only
            // on the seed, not on how fast responses come back.
            let mut rng = Pcg32::seed_from_u64(options.seed);
            let mut at = 0.0f64;
            let arrivals: Vec<f64> = (0..options.requests)
                .map(|_| {
                    // Exponential inter-arrival; 1 - u keeps ln() finite.
                    at += -(1.0 - rng.next_f64()).ln() / rate_rps;
                    at
                })
                .collect();
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for (i, arrival) in arrivals.into_iter().enumerate() {
                    let elapsed = started.elapsed().as_secs_f64();
                    if arrival > elapsed {
                        std::thread::sleep(Duration::from_secs_f64(arrival - elapsed));
                    }
                    let results = &results;
                    let lines = &lines;
                    let retry_stats = &retry_stats;
                    handles.push(scope.spawn(move || {
                        let cell = i % lines.len();
                        let sample = match connect(addr) {
                            Ok(mut stream) => timed_request(
                                addr,
                                &mut stream,
                                cell,
                                &lines[cell],
                                options.retry.as_ref(),
                                options.seed ^ (i as u64).wrapping_mul(SEED_MIX),
                                retry_stats,
                            ),
                            Err(e) => RequestSample {
                                cell,
                                latency_s: 0.0,
                                source: format!("io: {e}"),
                                ok: false,
                                attempts: 1,
                            },
                        };
                        // INFALLIBLE: holders only store a sample.
                        results.lock().expect("results poisoned")[i] = Some(sample);
                    }));
                }
                for h in handles {
                    let _ = h.join();
                }
            });
        }
    }

    let wall_s = started.elapsed().as_secs_f64();
    // INFALLIBLE: all workers have joined; the lock is free.
    let samples = results
        .into_inner()
        .expect("results poisoned")
        .into_iter()
        .map(|s| s.expect("every request index filled"))
        .collect();
    Ok(LoadRun { samples, wall_s, retry: retry_stats.snapshot() })
}

/// Fetch one cell's served body (the verbatim `cell` member bytes).
pub fn fetch_cell_body(addr: &str, request: &Request) -> std::io::Result<String> {
    let mut stream = connect(addr)?;
    let response = exchange(&mut stream, &request_line(request))?;
    match response.split_once("\"cell\":") {
        Some((_, rest)) if response.starts_with("{\"ok\":true") => {
            Ok(rest[..rest.len() - 1].to_string())
        }
        _ => Err(std::io::Error::other(format!("not a cell response: {response}"))),
    }
}

/// Fetch the server's `stats` dump (raw JSON line).
pub fn fetch_stats(addr: &str) -> std::io::Result<String> {
    let mut stream = connect(addr)?;
    exchange(&mut stream, "{\"op\":\"stats\"}")
}

/// The model bytes a direct, serial engine run renders for `request` —
/// the reference the serving layer must match byte-for-byte.
pub fn direct_cell_body(request: &Request) -> Result<String, String> {
    let cell = request.resolve().map_err(|e| e.to_string())?;
    let reports = run_sweep_threads(
        vec![SweepJob {
            machine: cell.machine,
            phases: cell.phases,
            procs: cell.procs,
        }],
        1,
    );
    Ok(pvs_report::json::perf_report(&reports[0]))
}

/// Verify every cell's served bytes equal the direct computation.
/// Returns the offending cell keys on mismatch.
pub fn check_identity(addr: &str, cells: &[Request]) -> Result<(), Vec<String>> {
    let mut bad = Vec::new();
    for request in cells {
        let served = fetch_cell_body(addr, request);
        let direct = direct_cell_body(request);
        match (served, direct) {
            (Ok(s), Ok(d)) if s == d => {}
            _ => bad.push(request.canonical_key()),
        }
    }
    if bad.is_empty() {
        Ok(())
    } else {
        Err(bad)
    }
}

/// Render the run as a `pvs-bench/profile-v2` document: one cell per
/// distinct request (model = served bytes, host_wall = that cell's
/// request latencies), the server's `serve.*` registry in `harness`,
/// the load aggregates in a `load` object, and — when the server
/// answered a versioned snapshot — its final stats document verbatim in
/// a `server` member.
pub fn bench_serve_doc(
    cells: &[Request],
    bodies: &[String],
    run: &LoadRun,
    server_stats: &str,
    options: &LoadOptions,
) -> String {
    assert_eq!(cells.len(), bodies.len());
    let cell_docs = array(cells.iter().zip(bodies).enumerate().map(|(i, (req, body))| {
        let mut lat: Vec<f64> = run
            .samples
            .iter()
            .filter(|s| s.ok && s.cell == i)
            .map(|s| s.latency_s)
            .collect();
        lat.sort_by(f64::total_cmp);
        let host = JsonObject::new()
            .number("median_s", median(&lat))
            .number("samples", lat.len() as f64)
            .raw("all_s", array(lat.iter().map(|s| number(*s))))
            .render();
        JsonObject::new()
            .string("app", &req.app)
            .string("config", &req.config)
            .string("machine", &req.machine)
            .number("procs", req.procs as f64)
            .raw("model", body.clone())
            .raw("host_wall", host)
            .render()
    }));

    // The server's own counters/gauges, in the same `harness` name/value
    // shape the profile documents use.
    let mut harness_entries = Vec::new();
    if let Ok(stats) = pvs_analyze::json::parse(server_stats) {
        for section in ["counters", "gauges"] {
            if let Some(pvs_analyze::json::Value::Object(members)) = stats.get(section) {
                for (name, value) in members {
                    if let Some(v) = value.as_f64() {
                        harness_entries.push(
                            JsonObject::new().string("name", name).number("value", v).render(),
                        );
                    }
                }
            }
        }
    }

    let lat = run.latency_hist_us().summary();
    let mode = match options.mode {
        ArrivalMode::Closed { connections } => JsonObject::new()
            .string("mode", "closed")
            .number("connections", connections as f64)
            .render(),
        ArrivalMode::Open { rate_rps } => JsonObject::new()
            .string("mode", "open")
            .number("rate_rps", rate_rps)
            .render(),
    };
    let backoff = run
        .retry
        .hists
        .iter()
        .find(|(name, _)| name == "serve.retry.hist.backoff_ms")
        .map(|(_, h)| h.summary());
    let retry = JsonObject::new()
        .number("attempts", run.retry.counter("serve.retry.attempts").unwrap_or(0) as f64)
        .number("giveups", run.retry.counter("serve.retry.giveups").unwrap_or(0) as f64)
        .number(
            "backoff_p50_ms",
            backoff.as_ref().map(|s| s.p50 as f64).unwrap_or(0.0),
        )
        .number(
            "backoff_max_ms",
            backoff.as_ref().map(|s| s.max as f64).unwrap_or(0.0),
        )
        .render();
    let load = JsonObject::new()
        .number("requests", run.samples.len() as f64)
        .raw("arrivals", mode)
        .number("seed", options.seed as f64)
        .number("wall_s", run.wall_s)
        .number("throughput_rps", run.throughput_rps())
        .number("latency_p50_us", lat.p50 as f64)
        .number("latency_p90_us", lat.p90 as f64)
        .number("latency_p99_us", lat.p99 as f64)
        .raw("retry", retry)
        .render();

    let mut doc = JsonObject::new()
        .string("schema", pvs_core::schema::PROFILE_V2)
        .raw("load", load)
        .raw("harness", array(harness_entries));
    // The server's final snapshot document, embedded verbatim when it is
    // the versioned `pvs-obs/snapshot-v1` line (older servers answered
    // an unversioned stats dump; their runs simply omit the member).
    if pvs_analyze::json::parse(server_stats)
        .ok()
        .and_then(|d| d.str("schema").map(|s| s == pvs_core::schema::SNAPSHOT_V1))
        .unwrap_or(false)
    {
        doc = doc.raw("server", server_stats.to_string());
    }
    pretty(&doc.raw("cells", cell_docs).render())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvs_serve::{Server, ServerOptions};

    fn run_of_us(lats_us: &[u64]) -> LoadRun {
        let samples = lats_us
            .iter()
            .map(|&us| RequestSample {
                cell: 0,
                latency_s: us as f64 / 1e6,
                source: "memory".to_string(),
                ok: true,
                attempts: 1,
            })
            .collect();
        LoadRun { samples, wall_s: 1.0, retry: Snapshot::default() }
    }

    #[test]
    fn latency_hist_is_nearest_rank_on_even_counts() {
        // 4 samples: rank(50) = 2 — the lower-middle sample, per the
        // nearest-rank definition shared with the server's histograms.
        let h = run_of_us(&[10, 20, 30, 40]).latency_hist_us();
        assert_eq!(h.percentile(50), 20);
        assert_eq!(h.percentile(90), 40);
        assert_eq!(h.percentile(99), 40);
        assert_eq!(run_of_us(&[]).latency_hist_us().percentile(50), 0);
        assert_eq!(run_of_us(&[7]).latency_hist_us().percentile(99), 7);
    }

    #[test]
    fn latency_hist_is_nearest_rank_on_odd_counts() {
        // 5 samples: rank(50) = 3 — the true median.
        let h = run_of_us(&[1, 2, 3, 4, 5]).latency_hist_us();
        assert_eq!(h.percentile(50), 3);
        assert_eq!(h.percentile(90), 5);
    }

    #[test]
    fn latency_hist_keeps_sub_64us_values_exact_and_skips_failures() {
        let mut run = run_of_us(&[7, 63]);
        run.samples.push(RequestSample {
            cell: 0,
            latency_s: 9.9,
            source: "io: refused".to_string(),
            ok: false,
            attempts: 1,
        });
        let h = run.latency_hist_us();
        assert_eq!(h.count(), 2, "failed requests never pollute latency");
        assert_eq!(h.min(), 7);
        assert_eq!(h.max(), 63);
        assert_eq!(h.sum(), 70);
    }

    #[test]
    fn default_serve_grid_is_eight_valid_cells() {
        let cells = paper_serve_cells();
        assert_eq!(cells.len(), 8);
        for c in &cells {
            c.resolve().unwrap();
        }
    }

    #[test]
    fn closed_loop_run_covers_the_schedule_and_passes_identity() {
        let server = Server::start(ServerOptions::default()).unwrap();
        let addr = server.addr().to_string();
        let cells = vec![
            Request::cell("LBMHD", "4096x4096", "ES", 16),
            Request::cell("GTC", "10 part/cell", "X1", 16),
        ];
        let options = LoadOptions {
            requests: 10,
            mode: ArrivalMode::Closed { connections: 3 },
            seed: 1,
            ..Default::default()
        };
        let run = run_load(&addr, &cells, &options).unwrap();
        assert_eq!(run.samples.len(), 10);
        assert!(run.samples.iter().all(|s| s.ok), "{:?}", run.source_counts());
        // Request i asked for cell i % 2.
        for (i, s) in run.samples.iter().enumerate() {
            assert_eq!(s.cell, i % 2);
        }
        check_identity(&addr, &cells).unwrap();

        let bodies: Vec<String> = cells
            .iter()
            .map(|c| fetch_cell_body(&addr, c).unwrap())
            .collect();
        let stats = fetch_stats(&addr).unwrap();
        let doc = bench_serve_doc(&cells, &bodies, &run, &stats, &options);
        // The emitted document loads as profile-v2 and carries both cells.
        let parsed = pvs_analyze::profiledoc::load(&doc).unwrap();
        assert_eq!(parsed.cells.len(), 2);
        assert!(doc.contains("serve.cache.hits"), "harness carries serve counters");
        assert!(doc.contains("throughput_rps"));
        // The final server snapshot rides along verbatim.
        assert!(doc.contains("\"server\""), "{doc}");
        assert!(doc.contains("\"uptime_s\""), "{doc}");
        assert!(doc.contains("serve.hist.busy_us"), "{doc}");
    }

    #[test]
    fn backoff_schedules_are_seed_deterministic_and_respect_the_hint() {
        let policy = RetryPolicy::default();
        let schedule = |seed: u64, hint: u64| -> Vec<u64> {
            let mut rng = Pcg32::seed_from_u64(seed);
            (1..=6).map(|retry| policy.backoff_ms(&mut rng, retry, hint)).collect()
        };
        assert_eq!(schedule(7, 0), schedule(7, 0), "same seed, same jitter");
        assert_ne!(schedule(7, 0), schedule(8, 0), "seeds must matter");
        for (retry, &ms) in schedule(7, 0).iter().enumerate() {
            // Half-jitter window: [capped/2, capped].
            let capped = (policy.base_ms << retry).min(policy.cap_ms);
            assert!(ms >= capped / 2 && ms <= capped, "retry {retry}: {ms}");
        }
        // The server hint floors every sleep.
        assert!(schedule(7, 300).iter().all(|&ms| ms >= 300));
    }

    #[test]
    fn overload_is_retried_then_given_up_structurally() {
        // max_pending = 0 rejects every miss, so each attempt draws an
        // `overloaded` + hint and the client must exhaust its attempts.
        let server = Server::start(ServerOptions {
            store: pvs_serve::StoreOptions { threads: 1, max_pending: 0, ..Default::default() },
            ..Default::default()
        })
        .unwrap();
        let addr = server.addr().to_string();
        let cells = vec![Request::cell("LBMHD", "4096x4096", "ES", 16)];
        let options = LoadOptions {
            requests: 2,
            mode: ArrivalMode::Closed { connections: 1 },
            seed: 9,
            retry: Some(RetryPolicy { max_attempts: 3, base_ms: 1, cap_ms: 2, budget_ms: 500 }),
        };
        let run = run_load(&addr, &cells, &options).unwrap();
        for s in &run.samples {
            assert!(!s.ok);
            assert_eq!(s.source, "overloaded");
            assert_eq!(s.attempts, 3, "retries exhausted");
        }
        assert_eq!(run.retry.counter("serve.retry.attempts"), Some(4), "2 requests × 2 retries");
        assert_eq!(run.retry.counter("serve.retry.giveups"), Some(2));
        let (_, backoffs) = run
            .retry
            .hists
            .iter()
            .find(|(n, _)| n == "serve.retry.hist.backoff_ms")
            .expect("backoff histogram recorded");
        // Every slept backoff honored the server's 20 ms queue-depth hint.
        assert_eq!(backoffs.count(), 4);
        assert!(backoffs.min() >= 20, "hint floors the backoff: {}", backoffs.min());

        // No-retry mode fails fast on the same server.
        let fast = run_load(&addr, &cells, &LoadOptions { retry: None, requests: 1, ..options })
            .unwrap();
        assert_eq!(fast.samples[0].attempts, 1);
        assert_eq!(fast.retry.counter("serve.retry.attempts"), None);
    }

    #[test]
    fn open_loop_arrivals_are_seed_deterministic() {
        let server = Server::start(ServerOptions::default()).unwrap();
        let addr = server.addr().to_string();
        let cells = vec![Request::cell("CACTUS", "80x80x80", "Power3", 16)];
        let options = LoadOptions {
            requests: 5,
            mode: ArrivalMode::Open { rate_rps: 200.0 },
            seed: 42,
            ..Default::default()
        };
        let run = run_load(&addr, &cells, &options).unwrap();
        assert_eq!(run.samples.len(), 5);
        assert!(run.samples.iter().all(|s| s.ok), "{:?}", run.source_counts());
        // Exactly one computed miss; the rest were batched or hits.
        let counts = run.source_counts();
        let computed: usize = counts
            .iter()
            .filter(|(tag, _)| tag == "computed")
            .map(|(_, n)| *n)
            .sum();
        assert_eq!(computed, 1, "{counts:?}");
    }
}
