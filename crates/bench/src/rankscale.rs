//! The `rankscale` binary's engine: weak-scaling the four applications'
//! communication kernels to 10⁵ virtual ranks on the event-driven
//! mpisim runtime.
//!
//! The thread-backed runtime tops out around the host's thread limit,
//! so the paper's largest configurations (LBMHD 8192² on P = 8192, the
//! Earth Simulator weak-scaling studies) could never be replayed
//! rank-for-rank before. The event-driven runtime multiplexes virtual
//! ranks over a small worker pool, so this sweep runs the per-app scale
//! kernels (`pvs_lbmhd::scale`, `pvs_gtc::scale`, `pvs_cactus::scale`,
//! `pvs_paratec::scale`) at rank counts up to 131 072.
//!
//! **Identity gate:** before any cell runs, every app's kernel is
//! executed on *both* runtimes at small P and compared bit-for-bit
//! (values and per-rank traffic). A mismatch hard-fails the whole run —
//! scale numbers from a divergent simulator are worthless.
//!
//! The output document reuses the `pvs-bench/profile-v2` schema so the
//! `compare` sentinel gates it exactly like `BENCH_sweep.json`. The
//! model axes are synthetic but deterministic:
//!
//! * `model.time_s`  — total simulator events (resumes + routed
//!   messages + completed collectives);
//! * `model.comm_s`  — the communication share (messages + collectives);
//! * `model.gflops_per_p` — an FNV-1a checksum of every rank's output
//!   bits in rank order, folded below 2⁵³ so it round-trips f64 JSON
//!   exactly. Any behavioural drift anywhere in the runtime moves it.

use crate::profile::{CellProfile, ProfileOptions, ProfileOutput, SweepCell};
use pvs_core::report::{PerfReport, PhaseBreakdown};
use pvs_mpisim::event::SimStats;
use pvs_mpisim::CommStats;
use pvs_obs::span::TraceBuffer;
use pvs_obs::Registry;

/// One rank-scaling cell: an application kernel at a rank count.
#[derive(Debug, Clone, Copy)]
pub struct RankScaleCell {
    /// Application name (`LBMHD`, `PARATEC`, `CACTUS`, `GTC`).
    pub app: &'static str,
    /// Virtual rank count.
    pub procs: usize,
}

type KernelV1 = fn(usize) -> Vec<(Vec<f64>, CommStats)>;
type KernelV2 = fn(usize, usize) -> (Vec<(Vec<f64>, CommStats)>, SimStats);

/// The two runtime entry points for one application's kernel.
fn kernels(app: &str) -> (KernelV1, KernelV2) {
    match app {
        "LBMHD" => (pvs_lbmhd::scale::run_scale_v1, pvs_lbmhd::scale::run_scale_v2),
        "GTC" => (pvs_gtc::scale::run_scale_v1, pvs_gtc::scale::run_scale_v2),
        "CACTUS" => (pvs_cactus::scale::run_scale_v1, pvs_cactus::scale::run_scale_v2),
        "PARATEC" => (
            pvs_paratec::scale::run_scale_v1,
            pvs_paratec::scale::run_scale_v2,
        ),
        other => panic!("unknown rankscale app {other:?}"),
    }
}

/// The full weak-scaling ladder. PARATEC stops early: its kernel is a
/// dense personalized all-to-all, so traffic (and simulator memory)
/// grows as P², exactly the bisection-bandwidth wall §5 of the paper
/// attributes its scaling limit to.
pub fn weak_scaling_cells() -> Vec<RankScaleCell> {
    let mut cells = Vec::new();
    for procs in [64usize, 1024, 8192, 65536, 131072] {
        cells.push(RankScaleCell { app: "LBMHD", procs });
    }
    for procs in [64usize, 1024, 8192, 65536, 131072] {
        cells.push(RankScaleCell { app: "GTC", procs });
    }
    for procs in [64usize, 1024, 8192, 65536] {
        cells.push(RankScaleCell { app: "CACTUS", procs });
    }
    for procs in [64usize, 256, 1024] {
        cells.push(RankScaleCell { app: "PARATEC", procs });
    }
    cells
}

/// The CI subset: every app at P = 64 plus the headline LBMHD cell at
/// P = 65536 — the "more virtual ranks than the host could ever thread"
/// configuration the event-driven runtime exists for.
pub fn smoke_cells() -> Vec<RankScaleCell> {
    vec![
        RankScaleCell { app: "LBMHD", procs: 64 },
        RankScaleCell { app: "GTC", procs: 64 },
        RankScaleCell { app: "CACTUS", procs: 64 },
        RankScaleCell { app: "PARATEC", procs: 64 },
        RankScaleCell { app: "LBMHD", procs: 65536 },
    ]
}

/// Rank counts the identity gate replays on both runtimes.
pub const IDENTITY_P: [usize; 3] = [2, 4, 16];

/// Run every app's kernel on both runtimes at [`IDENTITY_P`] and demand
/// bit-identical values and traffic statistics.
pub fn verify_identity(threads: usize) -> Result<(), String> {
    for app in ["LBMHD", "GTC", "CACTUS", "PARATEC"] {
        let (v1_run, v2_run) = kernels(app);
        for p in IDENTITY_P {
            let v1 = v1_run(p);
            let (v2, _) = v2_run(p, threads);
            if v1.len() != v2.len() {
                return Err(format!(
                    "{app} P={p}: rank count diverged (v1 {} vs v2 {})",
                    v1.len(),
                    v2.len()
                ));
            }
            for (rank, ((a, sa), (b, sb))) in v1.iter().zip(&v2).enumerate() {
                let a_bits: Vec<u64> = a.iter().map(|x| x.to_bits()).collect();
                let b_bits: Vec<u64> = b.iter().map(|x| x.to_bits()).collect();
                if a_bits != b_bits {
                    return Err(format!(
                        "{app} P={p} rank {rank}: values diverged (v1 {a:?} vs v2 {b:?})"
                    ));
                }
                if sa != sb {
                    return Err(format!(
                        "{app} P={p} rank {rank}: traffic diverged (v1 {sa:?} vs v2 {sb:?})"
                    ));
                }
            }
        }
    }
    Ok(())
}

/// FNV-1a over every rank's output bits in rank order, folded below 2⁵³
/// so the checksum survives the f64 JSON round-trip exactly.
fn output_checksum(per_rank: &[(Vec<f64>, CommStats)]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for (values, _) in per_rank {
        for x in values {
            for byte in x.to_bits().to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
    }
    h % (1u64 << 53)
}

/// Run one cell on the event-driven runtime and render it as a
/// profile-v2 cell.
fn run_cell(cell: RankScaleCell, threads: usize) -> CellProfile {
    let (_, v2_run) = kernels(cell.app);
    let started = std::time::Instant::now();
    let (per_rank, sim) = v2_run(cell.procs, threads);
    let host_s = started.elapsed().as_secs_f64();

    let reg = Registry::new();
    sim.record_to(&reg);
    let total_bytes: u64 = per_rank.iter().map(|(_, s)| s.bytes_sent).sum();
    let events = sim.resumes + sim.messages + sim.collectives;
    let comm_events = sim.messages + sim.collectives;
    let report = PerfReport {
        machine: "mpisim-v2".to_string(),
        procs: sim.ranks as usize,
        time_s: events as f64,
        comm_s: comm_events as f64,
        flops_per_p: total_bytes as f64,
        gflops_per_p: output_checksum(&per_rank) as f64,
        pct_peak: 0.0,
        vector_metrics: None,
        phases: vec![
            PhaseBreakdown {
                name: "resume".to_string(),
                seconds: sim.resumes as f64,
                flops: 0.0,
                is_comm: false,
            },
            PhaseBreakdown {
                name: "p2p".to_string(),
                seconds: sim.messages as f64,
                flops: 0.0,
                is_comm: true,
            },
            PhaseBreakdown {
                name: "collectives".to_string(),
                seconds: sim.collectives as f64,
                flops: 0.0,
                is_comm: true,
            },
        ],
    };
    CellProfile {
        cell: SweepCell {
            app: cell.app,
            config: "weak-scaling",
            machine: "mpisim-v2",
            procs: cell.procs,
        },
        report,
        snapshot: reg.snapshot(),
        trace: TraceBuffer::new(),
        span_events: 0,
        host_secs: vec![host_s],
    }
}

/// Run the sweep: the identity gate first, then the cells serially (a
/// 10⁵-rank cell owns the worker pool; running cells concurrently would
/// multiply peak memory, not throughput).
pub fn run_rankscale(cells: &[RankScaleCell], threads: usize) -> Result<ProfileOutput, String> {
    verify_identity(threads)?;
    let profiles = cells.iter().map(|&c| run_cell(c, threads)).collect();
    Ok(ProfileOutput {
        cells: profiles,
        harness: Registry::new().snapshot(),
        options: ProfileOptions {
            observe: true,
            host_samples: 1,
            threads,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_set_includes_the_headline_cell() {
        let cells = smoke_cells();
        assert!(cells.iter().any(|c| c.app == "LBMHD" && c.procs == 65536));
        for app in ["LBMHD", "GTC", "CACTUS", "PARATEC"] {
            assert!(cells.iter().any(|c| c.app == app && c.procs == 64));
        }
    }

    #[test]
    fn ladder_reaches_past_1e5_ranks() {
        let cells = weak_scaling_cells();
        assert!(cells.iter().any(|c| c.procs > 100_000));
        // PARATEC's dense all-to-all is capped (P² traffic).
        let paratec_max = cells
            .iter()
            .filter(|c| c.app == "PARATEC")
            .map(|c| c.procs)
            .max()
            .unwrap();
        assert!(paratec_max <= 1024);
    }

    #[test]
    fn identity_gate_passes() {
        verify_identity(2).expect("v1 and v2 agree bit-for-bit");
    }

    #[test]
    fn cells_are_thread_count_independent() {
        let cell = RankScaleCell { app: "GTC", procs: 64 };
        let a = run_cell(cell, 1);
        let b = run_cell(cell, 4);
        assert_eq!(a.snapshot, b.snapshot);
        assert_eq!(a.report.time_s, b.report.time_s);
        assert_eq!(a.report.comm_s, b.report.comm_s);
        assert_eq!(a.report.gflops_per_p, b.report.gflops_per_p);
    }

    #[test]
    fn document_round_trips_through_the_sentinel_loader() {
        let out = run_rankscale(
            &[
                RankScaleCell { app: "LBMHD", procs: 64 },
                RankScaleCell { app: "PARATEC", procs: 64 },
            ],
            2,
        )
        .expect("identity gate passes");
        let json = out.to_json();
        assert!(json.contains("\"schema\": \"pvs-bench/profile-v2\""));
        assert!(json.contains("\"machine\": \"mpisim-v2\""));
        assert!(json.contains("\"mpisim.sim.ranks\""));
        let doc = pvs_analyze::profiledoc::load(&json).expect("loadable profile doc");
        assert_eq!(doc.cells.len(), 2);
    }

    #[test]
    fn checksum_moves_when_output_moves() {
        let a = vec![(vec![1.0, 2.0], CommStats::default())];
        let b = vec![(vec![1.0, 2.0000000001], CommStats::default())];
        assert_ne!(output_checksum(&a), output_checksum(&b));
        assert!(output_checksum(&a) < (1 << 53));
    }
}
