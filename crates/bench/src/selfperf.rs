//! Harness self-profiling: wall-clock histograms of the harness's own
//! pipeline stages, and the `BENCH_selfperf.json` document.
//!
//! The sweep pipeline has four heavy stages — the netsim DES loop, the
//! memsim access dispatch, the vectorsim strip loop, and the thread-pool
//! task path — plus the full [`Engine::run`] that composes them. The
//! [`HostProfiler`] wraps each stage call with an [`std::time::Instant`]
//! pair (host timing never leaves `pvs-bench`; see PVS003) and feeds the
//! elapsed microseconds into a [`pvs_obs::Histogram`], so the harness
//! profiles itself with exactly the instrument the models use.
//!
//! The profiler is armed by `PVS_SELF_PROFILE=1` (or explicitly by the
//! `selfperf` binary). Disarmed, [`HostProfiler::stage`] is a plain
//! passthrough — no clock read, no lock — so the instrumented sweep is
//! bitwise-identical to the uninstrumented one, and the A/B overhead
//! proof in the `selfperf` binary can hold the armed path to its ≤5%
//! budget.
//!
//! `BENCH_selfperf.json` reuses the `pvs-bench/profile-v2` schema so the
//! regression sentinel (`compare`) gates it with zero new code: each
//! stage becomes one cell with `app = "HARNESS"`, `config = <stage>`,
//! `machine = "host"`, and — deliberately — `procs = <sample count>`.
//! The sentinel joins cells on `(app, config, machine, procs)`, so the
//! stage list *and* every stage's sample count are structural axes gated
//! exactly (a changed count makes the baseline cell unmatched, which is
//! a regression), while the noisy microsecond axes ride in `host_wall`
//! and stay advisory until `--host-tol` arms them.

use crate::harness::{median, time_samples};
use crate::profile::SweepCell;
use crate::tablegen::{app_phases, machine_by_name};
use pvs_core::engine::Engine;
use pvs_core::machine::CpuClass;
use pvs_core::pool::ThreadPool;
use pvs_memsim::banks::{BankConfig, BankedMemory};
use pvs_memsim::trace::scrambled_indices;
use pvs_netsim::collectives::halo_exchange_2d_stats;
use pvs_netsim::topology::Network;
use pvs_obs::{HistSummary, Recorder, Registry};
use pvs_report::json::{array, number, JsonObject};
use pvs_vectorsim::exec::{LoopClass, MemoryEnv, VectorLoop, VectorUnit};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Stage name: one 2-D halo exchange through the discrete-event network
/// simulator, at the cell's process grid.
pub const STAGE_NETSIM: &str = "bench.hist.netsim_halo_us";
/// Stage name: one scrambled gather through the banked-memory conflict
/// simulator (the GTC deposition access pattern).
pub const STAGE_MEMSIM: &str = "bench.hist.memsim_gather_us";
/// Stage name: one strip-mined vector loop execution (vector machines
/// only — superscalar cells skip it).
pub const STAGE_VECTORSIM: &str = "bench.hist.vectorsim_exec_us";
/// Stage name: one sweep-cell task through [`ThreadPool::map`], timed
/// inside the worker (queue wait excluded, task body included).
pub const STAGE_POOL: &str = "bench.hist.pool_task_us";
/// Stage name: one full [`Engine::run`] of the cell's phase list.
pub const STAGE_ENGINE: &str = "bench.hist.engine_run_us";

/// Every stage the profiler knows, in canonical (document) order.
pub const STAGES: [&str; 5] = [
    STAGE_NETSIM,
    STAGE_MEMSIM,
    STAGE_VECTORSIM,
    STAGE_POOL,
    STAGE_ENGINE,
];

/// The environment variable that arms self-profiling inside the normal
/// `profile` sweep (`selfperf` arms it programmatically).
pub const SELF_PROFILE_ENV: &str = "PVS_SELF_PROFILE";

/// Wall-clock recorder for the harness's own pipeline stages.
///
/// Cheap to share: stage timings go through an internal [`Registry`]
/// histogram (microseconds) plus a raw-seconds side channel for the
/// `host_wall` arrays. Disarmed, [`HostProfiler::stage`] runs the
/// closure untouched.
pub struct HostProfiler {
    enabled: bool,
    registry: Registry,
    // LOCK ORDER: 70 — raw per-stage samples, taken after the obs
    // registry's inner lock (tier 30) has been released; never held
    // across a stage closure.
    samples: Mutex<BTreeMap<&'static str, Vec<f64>>>,
}

impl HostProfiler {
    /// A profiler in the given arm state.
    pub fn new(enabled: bool) -> Self {
        Self {
            enabled,
            registry: Registry::new(),
            samples: Mutex::new(BTreeMap::new()),
        }
    }

    /// Armed iff `PVS_SELF_PROFILE=1` in the environment.
    pub fn from_env() -> Self {
        Self::new(std::env::var(SELF_PROFILE_ENV).as_deref() == Ok("1"))
    }

    /// A disarmed profiler: every [`HostProfiler::stage`] call is a
    /// passthrough.
    pub fn disabled() -> Self {
        Self::new(false)
    }

    /// Whether stage calls are being timed.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Run `f`, attributing its wall-clock to `name` when armed. The
    /// elapsed time lands in the `name` histogram (whole microseconds)
    /// and in the raw-seconds sample list.
    pub fn stage<R>(&self, name: &'static str, f: impl FnOnce() -> R) -> R {
        if !self.enabled {
            return f();
        }
        let start = Instant::now();
        let result = f();
        let secs = start.elapsed().as_secs_f64();
        self.registry.record(name, (secs * 1e6).round() as u64);
        self.samples
            .lock()
            .expect("selfperf samples lock poisoned")
            .entry(name)
            .or_default()
            .push(secs);
        result
    }

    /// Summary of one stage's histogram (`None` before its first sample).
    pub fn summary(&self, name: &str) -> Option<HistSummary> {
        self.registry.hist(name).map(|h| h.summary())
    }

    /// Raw per-record seconds for every stage that fired, in stage name
    /// order, each stage's samples in record order.
    pub fn samples(&self) -> Vec<(&'static str, Vec<f64>)> {
        self.samples
            .lock()
            .expect("selfperf samples lock poisoned")
            .iter()
            .map(|(name, secs)| (*name, secs.clone()))
            .collect()
    }
}

/// Knobs for one self-profiling run.
#[derive(Debug, Clone, Copy)]
pub struct SelfperfOptions {
    /// How many times each cell's stage set is driven.
    pub rounds: usize,
    /// Worker threads for the pool-task stage.
    pub threads: usize,
}

impl Default for SelfperfOptions {
    fn default() -> Self {
        Self {
            rounds: 3,
            threads: pvs_core::pool::default_threads(),
        }
    }
}

/// One stage's measurements: the raw samples and their histogram summary.
#[derive(Debug, Clone)]
pub struct StageProfile {
    /// Stage name (one of [`STAGES`]).
    pub stage: &'static str,
    /// Raw per-record seconds, in record order.
    pub secs: Vec<f64>,
    /// Microsecond histogram summary.
    pub summary: HistSummary,
}

impl StageProfile {
    /// Median of the raw samples, seconds.
    pub fn median_s(&self) -> f64 {
        median(&self.secs)
    }
}

/// A complete self-profiling run.
#[derive(Debug, Clone)]
pub struct SelfperfOutput {
    /// One profile per stage that fired, in [`STAGES`] order.
    pub stages: Vec<StageProfile>,
    /// The options the run used.
    pub options: SelfperfOptions,
}

/// The stage-summary counters for one stage, emitted through a real
/// [`Recorder`] so the names live in the registry namespace like every
/// other counter (and so the name lint sees them where they are born).
fn summary_counters(s: &HistSummary) -> Vec<(String, u64)> {
    let reg = Registry::new();
    reg.add("bench.self.count", s.count);
    reg.add("bench.self.sum_us", s.sum);
    reg.add("bench.self.p50_us", s.p50);
    reg.add("bench.self.p90_us", s.p90);
    reg.add("bench.self.p99_us", s.p99);
    reg.add("bench.self.max_us", s.max);
    reg.snapshot().counters
}

impl SelfperfOutput {
    /// Total self-time across all stages, seconds.
    pub fn total_s(&self) -> f64 {
        self.stages
            .iter()
            .map(|s| s.secs.iter().sum::<f64>())
            .sum()
    }

    /// Render the run as the `BENCH_selfperf.json` document — schema
    /// `pvs-bench/profile-v2`, one cell per stage (see the module docs
    /// for why `procs` carries the sample count).
    pub fn to_json(&self) -> String {
        let cells = array(self.stages.iter().map(|s| {
            let counters = array(summary_counters(&s.summary).iter().map(|(name, value)| {
                JsonObject::new()
                    .string("name", name)
                    .number("value", *value as f64)
                    .render()
            }));
            let host = JsonObject::new()
                .number("median_s", s.median_s())
                .number("samples", s.secs.len() as f64)
                .raw("all_s", array(s.secs.iter().map(|x| number(*x))))
                .render();
            // Model axes are identically zero: a harness stage has no
            // simulated time, so the sentinel's exact model comparison
            // can never fire on noise — only the identity join (stage
            // list, sample counts) and the host axes carry signal.
            let model = JsonObject::new()
                .number("time_s", 0.0)
                .number("comm_s", 0.0)
                .number("gflops_per_p", 0.0)
                .render();
            JsonObject::new()
                .string("app", "HARNESS")
                .string("config", s.stage)
                .string("machine", "host")
                .number("procs", s.secs.len() as f64)
                .raw("model", model)
                .raw("host_wall", host)
                .number("span_events", 0.0)
                .raw("counters", counters)
                .raw("gauges", "[]".to_string())
                .render()
        }));
        let doc = JsonObject::new()
            .string("schema", pvs_core::schema::PROFILE_V2)
            .boolean("observed", true)
            .number("sweep_threads", self.options.threads as f64)
            .number("rounds", self.options.rounds as f64)
            .raw("harness", "[]".to_string())
            .raw("cells", cells)
            .render();
        pvs_report::json::pretty(&doc)
    }
}

/// A square-ish 2-D factorization of `procs` for the halo grid.
fn grid_2d(procs: usize) -> (usize, usize) {
    let mut px = (procs as f64).sqrt() as usize;
    while px > 1 && procs % px != 0 {
        px -= 1;
    }
    (px.max(1), procs / px.max(1))
}

/// Drive every stage once for one cell, attributing each to its name.
fn drive_cell(profiler: &HostProfiler, cell: &SweepCell) {
    let machine = machine_by_name(cell.machine);
    let (px, py) = grid_2d(cell.procs);

    // Netsim DES loop: a 2-D halo exchange on the cell's network.
    let net = Network::new(machine.network(cell.procs));
    profiler.stage(STAGE_NETSIM, || {
        std::hint::black_box(halo_exchange_2d_stats(&net, px, py, 64 * 1024, 1024));
    });

    // Memsim access dispatch: a scrambled gather (the PIC deposition
    // pattern) through the machine's bank geometry.
    let banks = match &machine.cpu {
        CpuClass::Vector { banks, .. } => *banks,
        _ => BankConfig::default(),
    };
    let mut mem = BankedMemory::new(banks);
    let indices = scrambled_indices(4096, 1 << 16);
    profiler.stage(STAGE_MEMSIM, || {
        std::hint::black_box(mem.gather(0, &indices));
    });

    // Vectorsim strip loop: vector machines only.
    if let CpuClass::Vector { unit, .. } = &machine.cpu {
        let vu = VectorUnit::new(*unit);
        let l = VectorLoop {
            trips: 4096,
            outer_iters: 8,
            flops_per_iter: 12.0,
            bytes_per_iter: 24.0,
            gather_fraction: 0.1,
            live_vector_temps: 8,
            class: LoopClass::Vectorizable {
                multistreamable: true,
            },
        };
        let env = MemoryEnv::clean(machine.bytes_per_cycle());
        profiler.stage(STAGE_VECTORSIM, || {
            std::hint::black_box(vu.execute(&l, &env));
        });
    }

    // The full engine run composing all of the above.
    let phases = app_phases(cell.app, cell.config, cell.machine, cell.procs);
    let engine = Engine::new(machine_by_name(cell.machine));
    profiler.stage(STAGE_ENGINE, || {
        std::hint::black_box(engine.run(&phases, cell.procs));
    });
}

/// Run the self-profiling sweep: `rounds` passes over `cells`, each pass
/// driving the four stage workloads serially per cell and then one
/// parallel [`ThreadPool::map`] over the cells with the task body timed
/// inside the worker.
pub fn run_selfperf(
    profiler: &Arc<HostProfiler>,
    cells: &[SweepCell],
    options: SelfperfOptions,
) -> SelfperfOutput {
    for _ in 0..options.rounds.max(1) {
        for cell in cells {
            drive_cell(profiler, cell);
        }
        // Pool task latency: time each task body from inside the worker
        // thread, so queue wait is excluded and per-task cost included.
        let pool = ThreadPool::new(options.threads);
        let prof = Arc::clone(profiler);
        pool.map(cells.to_vec(), move |cell| {
            prof.stage(STAGE_POOL, || {
                let phases = app_phases(cell.app, cell.config, cell.machine, cell.procs);
                let engine = Engine::new(machine_by_name(cell.machine));
                std::hint::black_box(engine.run(&phases, cell.procs));
            });
        });
    }

    SelfperfOutput {
        stages: collect_stages(profiler),
        options,
    }
}

/// Snapshot every stage that fired on `profiler` into its profile, in
/// [`STAGES`] order. The shared tail of [`run_selfperf`] and the
/// `profile` binary's `PVS_SELF_PROFILE=1` report.
pub fn collect_stages(profiler: &HostProfiler) -> Vec<StageProfile> {
    let samples: BTreeMap<&'static str, Vec<f64>> = profiler.samples().into_iter().collect();
    STAGES
        .iter()
        .filter_map(|&stage| {
            let secs = samples.get(stage)?.clone();
            let summary = profiler.summary(stage)?;
            Some(StageProfile {
                stage,
                secs,
                summary,
            })
        })
        .collect()
}

/// Interleaved A/B measurement of the profiler's own cost: each round
/// times every cell's engine run twice — once wrapped in an *armed*
/// profiler stage with a full recorder attached (the maximally observed
/// arm), once through a *disarmed* stage with no recorder — and each arm
/// keeps its minimum total across rounds (the minimum is the strongest
/// noise rejector for wall-clock timing). Returns `(armed_s, plain_s)`;
/// the overhead ratio is `armed_s / plain_s - 1`, held to the ≤5%
/// budget by the `selfperf` binary's report.
pub fn measure_stage_overhead(cells: &[SweepCell], rounds: usize) -> (f64, f64) {
    let armed = HostProfiler::new(true);
    let disarmed = HostProfiler::disabled();
    let mut best_armed = f64::INFINITY;
    let mut best_plain = f64::INFINITY;
    for round in 0..rounds.max(1) {
        let mut armed_s = 0.0;
        let mut plain_s = 0.0;
        for cell in cells {
            let phases = app_phases(cell.app, cell.config, cell.machine, cell.procs);
            let time_armed = || {
                time_samples(1, || {
                    let reg = Arc::new(Registry::new());
                    let engine = Engine::new(machine_by_name(cell.machine)).with_recorder(reg);
                    armed.stage(STAGE_ENGINE, || {
                        std::hint::black_box(engine.run(&phases, cell.procs));
                    });
                })[0]
            };
            let time_plain = || {
                time_samples(1, || {
                    let engine = Engine::new(machine_by_name(cell.machine));
                    disarmed.stage(STAGE_ENGINE, || {
                        std::hint::black_box(engine.run(&phases, cell.procs));
                    });
                })[0]
            };
            // Alternate arm order per round so load drift on the host
            // cannot systematically favour one arm.
            if round % 2 == 0 {
                plain_s += time_plain();
                armed_s += time_armed();
            } else {
                armed_s += time_armed();
                plain_s += time_plain();
            }
        }
        best_armed = best_armed.min(armed_s);
        best_plain = best_plain.min(plain_s);
    }
    (best_armed, best_plain)
}

/// Prove the profiler never perturbs the model: for every cell, the
/// perf report from an armed, fully observed, stage-wrapped run must be
/// bitwise identical (as rendered JSON) to a bare run's. Returns the
/// offending cell keys on failure.
pub fn check_model_identity(cells: &[SweepCell]) -> Result<(), Vec<String>> {
    let profiler = HostProfiler::new(true);
    let mut bad = Vec::new();
    for cell in cells {
        let phases = app_phases(cell.app, cell.config, cell.machine, cell.procs);
        let reg = Arc::new(Registry::new());
        let observed = Engine::new(machine_by_name(cell.machine)).with_recorder(reg);
        let wrapped = profiler.stage(STAGE_ENGINE, || observed.run(&phases, cell.procs));
        let bare = Engine::new(machine_by_name(cell.machine)).run(&phases, cell.procs);
        if pvs_report::json::perf_report(&wrapped) != pvs_report::json::perf_report(&bare) {
            bad.push(format!(
                "{}/{}/{}/P{}",
                cell.app, cell.config, cell.machine, cell.procs
            ));
        }
    }
    if bad.is_empty() {
        Ok(())
    } else {
        Err(bad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::smoke_cells;

    fn quick_run() -> SelfperfOutput {
        let profiler = Arc::new(HostProfiler::new(true));
        run_selfperf(
            &profiler,
            &smoke_cells(),
            SelfperfOptions {
                rounds: 1,
                threads: 2,
            },
        )
    }

    #[test]
    fn disarmed_profiler_is_a_passthrough() {
        let p = HostProfiler::disabled();
        assert!(!p.enabled());
        assert_eq!(p.stage(STAGE_ENGINE, || 41 + 1), 42);
        assert!(p.summary(STAGE_ENGINE).is_none());
        assert!(p.samples().is_empty());
    }

    #[test]
    fn armed_profiler_records_every_stage_call() {
        let p = HostProfiler::new(true);
        for _ in 0..5 {
            p.stage(STAGE_NETSIM, || std::hint::black_box(3 * 7));
        }
        let s = p.summary(STAGE_NETSIM).unwrap();
        assert_eq!(s.count, 5);
        let samples = p.samples();
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].0, STAGE_NETSIM);
        assert_eq!(samples[0].1.len(), 5);
        assert!(samples[0].1.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn smoke_run_fires_every_stage() {
        let out = quick_run();
        let stages: Vec<&str> = out.stages.iter().map(|s| s.stage).collect();
        assert_eq!(stages, STAGES.to_vec(), "every stage fires on the smoke set");
        for s in &out.stages {
            assert_eq!(s.secs.len() as u64, s.summary.count);
            assert!(s.summary.p50 <= s.summary.p99);
            assert!(s.summary.p99 <= s.summary.max);
        }
        // The smoke set has 6 cells, 4 of them on vector machines
        // (LBMHD/GTC on the ES, PARATEC/CACTUS on the X1):
        // netsim/memsim/engine/pool fire per cell, vectorsim only on the
        // vector cells.
        let by_name: BTreeMap<&str, u64> =
            out.stages.iter().map(|s| (s.stage, s.summary.count)).collect();
        assert_eq!(by_name[STAGE_NETSIM], 6);
        assert_eq!(by_name[STAGE_MEMSIM], 6);
        assert_eq!(by_name[STAGE_POOL], 6);
        assert_eq!(by_name[STAGE_ENGINE], 6);
        assert_eq!(by_name[STAGE_VECTORSIM], 4, "two ES + two X1 cells");
        assert!(out.total_s() > 0.0);
    }

    #[test]
    fn document_round_trips_through_the_profile_loader() {
        let out = quick_run();
        let doc = pvs_analyze::profiledoc::load(&out.to_json()).unwrap();
        assert_eq!(doc.schema, pvs_core::schema::PROFILE_V2);
        assert_eq!(doc.cells.len(), out.stages.len());
        for (cell, stage) in doc.cells.iter().zip(&out.stages) {
            assert_eq!(cell.app, "HARNESS");
            assert_eq!(cell.machine, "host");
            assert_eq!(cell.config, stage.stage);
            // `procs` carries the sample count: the sentinel's identity
            // join gates it exactly.
            assert_eq!(cell.procs, stage.secs.len());
            assert_eq!(cell.model.time_s, 0.0);
            assert_eq!(cell.counter("bench.self.count"), stage.summary.count);
            assert_eq!(cell.counter("bench.self.sum_us"), stage.summary.sum);
            assert_eq!(cell.host_all_s.len(), stage.secs.len());
        }
    }

    #[test]
    fn self_document_never_regresses_against_itself() {
        let out = quick_run();
        let doc = pvs_analyze::profiledoc::load(&out.to_json()).unwrap();
        let report = pvs_analyze::sentinel::compare_docs(&doc, &doc, None);
        assert!(!report.regressed(), "self-compare must be clean");
    }

    #[test]
    fn profiler_never_perturbs_the_model() {
        check_model_identity(&smoke_cells()).expect("wrapped == bare for every smoke cell");
    }

    #[test]
    fn overhead_measurement_produces_finite_arms() {
        let cells = smoke_cells();
        let (armed, plain) = measure_stage_overhead(&cells[..2], 2);
        assert!(armed.is_finite() && armed > 0.0);
        assert!(plain.is_finite() && plain > 0.0);
    }

    #[test]
    fn grid_factorization_is_square_ish_and_exact() {
        assert_eq!(grid_2d(64), (8, 8));
        assert_eq!(grid_2d(16), (4, 4));
        assert_eq!(grid_2d(12), (3, 4));
        assert_eq!(grid_2d(7), (1, 7));
        assert_eq!(grid_2d(1), (1, 1));
    }
}
