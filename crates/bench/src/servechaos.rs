//! servechaos — the host-fault resilience harness for the serving
//! plane.
//!
//! `chaos` breaks the *simulated* machines; this harness breaks the
//! *host* the server runs on: spilled cache cells corrupted on disk,
//! writers killed mid-spill, hostile and half-dead clients, panicking
//! simulation workers, expiring deadline budgets, and overload with a
//! retrying client. Every scenario is seeded ([`HostFaultPlan`]) and
//! every assertion is exact, so the whole run renders as a
//! `pvs-bench/profile-v2` document (`BENCH_servechaos.json`) the
//! `compare` sentinel can gate — a resilience regression shows up as a
//! missing cell or a changed counter, not a flaky test.
//!
//! Invariants checked on every run:
//!
//! * **Zero unplanned panics** — the only panics observed are the ones
//!   the plan injected, proved by exact `serve.sim.panics` counts;
//! * **Byte identity** — every successfully served body is
//!   byte-identical to a direct `run_sweep` + `perf_report` rendering,
//!   no matter how much damage the scenario did first;
//! * **No bad byte is ever served** — corrupt spill cells are
//!   quarantined (warm-start) or detected and recomputed (runtime),
//!   never returned;
//! * **Structured failure** — hostile frames, poisoned keys, expired
//!   budgets, and overload all answer tagged error responses (or a
//!   clean close), and the server keeps serving afterwards.
//!
//! The grid is deliberately CI-sized: `--smoke` and the full run share
//! the same scenarios and cells (only the default output path
//! differs), so the committed baseline and the CI document always join
//! on identical cell identities.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::profile::{CellProfile, ProfileOptions, ProfileOutput, SweepCell};
use crate::serveload::{direct_cell_body, fetch_cell_body, run_load, ArrivalMode, LoadOptions, RetryPolicy};
use crate::tablegen::{app_phases, machine_by_name};
use pvs_core::engine::Engine;
use pvs_fault::{HostFaultKind, HostFaultPlan};
use pvs_obs::{Recorder, Registry};
use pvs_serve::store::{BudgetProbe, StoreOptions};
use pvs_serve::{
    CellSource, CellStore, PanicSpec, Request, ServeError, Server, ServerOptions,
};

/// The four-cell request grid every scenario draws from: one cell per
/// application, small enough that the whole harness stays CI-sized.
fn base_cells() -> [SweepCell; 4] {
    [
        SweepCell { app: "LBMHD", config: "4096x4096", machine: "ES", procs: 16 },
        SweepCell { app: "PARATEC", config: "432 atom", machine: "X1", procs: 16 },
        SweepCell { app: "CACTUS", config: "80x80x80", machine: "Power3", procs: 16 },
        SweepCell { app: "GTC", config: "10 part/cell", machine: "Altix", procs: 16 },
    ]
}

fn request_of(cell: &SweepCell) -> Request {
    Request::cell(cell.app, cell.config, cell.machine, cell.procs)
}

/// Scenario-qualified config label (same bounded-leak idiom as the
/// chaos harness: the label set is a small static cross product).
fn scenario_config(config: &str, scenario: &str) -> &'static str {
    Box::leak(format!("{config}@{scenario}").into_boxed_str())
}

/// Per-run scratch directory for a scenario's spill.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pvs_servechaos_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The panic hook is process-global; scenarios that inject panics
/// silence it while they run so CI logs stay readable, serialized so a
/// concurrent restore cannot interleave. Any *unplanned* panic still
/// fails the run: the exact `serve.sim.panics` assertions catch it.
static HOOK_GUARD: Mutex<()> = Mutex::new(());

fn with_silent_panics<T>(f: impl FnOnce() -> T) -> T {
    let _guard = HOOK_GUARD.lock().unwrap_or_else(|e| e.into_inner());
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(hook);
    out
}

/// Deterministic budget probe: reports `calls` nonzero probes, then
/// zero forever. No wall clock involved, so deadline counters are
/// exact rather than racy.
fn countdown(calls: u64) -> BudgetProbe {
    use std::sync::atomic::{AtomicU64, Ordering};
    let left = AtomicU64::new(calls);
    Arc::new(move || {
        if left
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok()
        {
            Duration::from_millis(1)
        } else {
            Duration::ZERO
        }
    })
}

/// What one scenario proved, for the human-readable summary.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Scenario name (folded into the document's cell configs).
    pub name: &'static str,
    /// Requests the scenario pushed through the serving plane.
    pub requests: usize,
    /// Cells served and proved byte-identical to direct computation.
    pub identical: usize,
    /// One-line description of what was injected and survived.
    pub note: String,
}

/// A complete servechaos run.
#[derive(Debug, Clone)]
pub struct ServeChaosOutput {
    /// The profile-v2 document: one row per (cell, scenario) pair the
    /// scenario served, plus the harness counter snapshot.
    pub profile: ProfileOutput,
    /// Per-scenario accounting.
    pub scenarios: Vec<ScenarioReport>,
}

impl ServeChaosOutput {
    /// Render as the `BENCH_servechaos.json` document.
    pub fn to_json(&self) -> String {
        self.profile.to_json()
    }
}

/// Serial observed engine run of one cell — the reference the serving
/// plane must match byte-for-byte, and the model axes of the document
/// row.
fn observed_run(cell: &SweepCell) -> CellProfile {
    let phases = app_phases(cell.app, cell.config, cell.machine, cell.procs);
    let reg = Arc::new(Registry::new());
    let engine = Engine::new(machine_by_name(cell.machine)).with_recorder(reg.clone());
    let report = engine.run(&phases, cell.procs);
    let trace = reg.trace();
    let span_events = trace.events().len();
    CellProfile {
        cell: cell.clone(),
        report,
        snapshot: reg.snapshot(),
        trace,
        span_events,
        host_secs: Vec::new(),
    }
}

/// Shorthand: the exact bytes a direct engine run renders for a cell.
fn reference_body(cell: &SweepCell) -> Result<String, String> {
    direct_cell_body(&request_of(cell))
}

type Counters = Vec<(&'static str, u64)>;

struct ScenarioOutcome {
    report: ScenarioReport,
    counters: Counters,
    cells: Vec<SweepCell>,
}

/// Scenario 1 — seeded spill corruption. Warm a spilled store, damage
/// three of the four cells on disk three different ways (truncation,
/// bit-flip, garbage header), and prove a restarted store quarantines
/// exactly the damaged files, serves the survivor from disk, and
/// recomputes the victims byte-identically. Then corrupt a cell *after*
/// the warm-start scan and prove the runtime read path detects it too.
fn spill_corruption(threads: usize) -> Result<ScenarioOutcome, String> {
    let name = "spill-corruption";
    let cells = base_cells().to_vec();
    let dir = scratch(name);
    let opts = || StoreOptions { threads, spill_dir: Some(dir.clone()), ..Default::default() };

    // Warm pass: every cell computed and spilled.
    let warm = Arc::new(CellStore::new(opts()));
    for cell in &cells {
        let served = warm.get(&request_of(cell)).map_err(|e| format!("{name}: warm {e:?}"))?;
        if served.source != CellSource::Computed {
            return Err(format!("{name}: warm pass expected a computed miss, got {:?}", served.source));
        }
    }
    drop(warm);

    // Seeded damage: the plan picks three distinct victims and how each
    // one breaks. Keys sort deterministically, so (seed → victims) is a
    // pure function.
    let plan = HostFaultPlan::new(0x5C0_44C7)
        .with(HostFaultKind::SpillTruncation)
        .with(HostFaultKind::SpillBitFlip)
        .with(HostFaultKind::SpillGarbageHeader);
    let mut keys: Vec<String> = cells.iter().map(|c| request_of(c).key_hash()).collect();
    keys.sort();
    let mut victims = Vec::new();
    let mut pool = keys.clone();
    for event in 0..3u64 {
        let pick = plan.target(event, pool.len());
        victims.push(pool.remove(pick));
    }
    for (event, (key, kind)) in victims
        .iter()
        .zip([HostFaultKind::SpillTruncation, HostFaultKind::SpillBitFlip, HostFaultKind::SpillGarbageHeader])
        .enumerate()
    {
        let path = dir.join(format!("{key}.cell"));
        let bytes = std::fs::read(&path).map_err(|e| format!("{name}: read {path:?}: {e}"))?;
        let damaged = match kind {
            HostFaultKind::SpillTruncation => bytes[..bytes.len() / 2].to_vec(),
            HostFaultKind::SpillBitFlip => {
                let mut b = bytes.clone();
                let pos = b.len() / 2 + (event % 7);
                b[pos] ^= plan.flip_mask(event as u64);
                b
            }
            _ => {
                let mut b = b"pvs-serve/not-a-cell 0 0\n".to_vec();
                b.extend_from_slice(&bytes);
                b
            }
        };
        std::fs::write(&path, damaged).map_err(|e| format!("{name}: damage {path:?}: {e}"))?;
    }

    // Warm restart: the scan must quarantine exactly the three victims
    // and verify the survivor — and every cell must still serve the
    // exact reference bytes.
    let restarted = Arc::new(CellStore::new(opts()));
    let verified = restarted.registry().counter("serve.store.verified");
    let quarantined = restarted.registry().counter("serve.store.quarantined");
    if verified != 1 || quarantined != 3 {
        return Err(format!(
            "{name}: warm-start scan saw verified={verified} quarantined={quarantined}, expected 1/3"
        ));
    }
    let quarantine_files = std::fs::read_dir(dir.join("quarantine"))
        .map_err(|e| format!("{name}: no quarantine dir: {e}"))?
        .count();
    if quarantine_files != 3 {
        return Err(format!("{name}: quarantine holds {quarantine_files} files, expected 3"));
    }
    let mut identical = 0;
    for cell in &cells {
        let served = restarted.get(&request_of(cell)).map_err(|e| format!("{name}: {e:?}"))?;
        let expected = reference_body(cell)?;
        if *served.body != expected {
            return Err(format!("{name}: served bytes diverge for {}/{}", cell.app, cell.machine));
        }
        identical += 1;
        let damaged = victims.contains(&request_of(cell).key_hash());
        match (damaged, served.source) {
            (true, CellSource::Computed) | (false, CellSource::Disk) => {}
            (damaged, source) => {
                return Err(format!(
                    "{name}: {}/{} damaged={damaged} served from {source:?}",
                    cell.app, cell.machine
                ))
            }
        }
    }
    drop(restarted);

    // Runtime detection: corrupt one re-spilled cell after the next
    // store's warm scan already verified it; the read path must catch
    // it, count it, and recompute identical bytes — never serve it.
    let runtime = Arc::new(CellStore::new(opts()));
    if runtime.registry().counter("serve.store.verified") != 4 {
        return Err(format!("{name}: re-spill left fewer than 4 verified cells"));
    }
    let victim = &cells[0];
    let path = dir.join(format!("{}.cell", request_of(victim).key_hash()));
    std::fs::write(&path, b"rotted after the scan").map_err(|e| format!("{name}: {e}"))?;
    let served = runtime.get(&request_of(victim)).map_err(|e| format!("{name}: {e:?}"))?;
    if runtime.registry().counter("serve.store.corrupt") != 1 {
        return Err(format!("{name}: runtime corruption was not counted"));
    }
    if served.source != CellSource::Computed || *served.body != reference_body(victim)? {
        return Err(format!("{name}: runtime-corrupt cell was not recomputed identically"));
    }
    let _ = std::fs::remove_dir_all(&dir);

    let scenario_cells: Vec<SweepCell> = cells
        .iter()
        .map(|c| SweepCell { config: scenario_config(c.config, name), ..c.clone() })
        .collect();
    Ok(ScenarioOutcome {
        report: ScenarioReport {
            name,
            requests: cells.len() * 2 + 1,
            identical,
            note: "3 seeded corruptions quarantined on restart, 1 runtime corruption recomputed".into(),
        },
        counters: vec![
            ("store.verified", verified),
            ("store.quarantined", quarantined),
            ("store.runtime_corrupt", 1),
        ],
        cells: scenario_cells,
    })
}

/// Scenario 2 — kill-and-warm-restart. Simulate a writer killed
/// mid-spill (an orphaned `*.tmp.*` file and a torn `.cell`) and prove
/// the restart scan quarantines the wreckage exactly once: a second
/// restart finds a clean directory and the surviving cells still serve
/// the reference bytes from disk.
fn torn_restart(threads: usize) -> Result<ScenarioOutcome, String> {
    let name = "torn-restart";
    let cells = base_cells()[..2].to_vec();
    let dir = scratch(name);
    let opts = || StoreOptions { threads, spill_dir: Some(dir.clone()), ..Default::default() };

    let warm = Arc::new(CellStore::new(opts()));
    for cell in &cells {
        warm.get(&request_of(cell)).map_err(|e| format!("{name}: warm {e:?}"))?;
    }
    drop(warm);

    // The torn write: a half-flushed temp file, an orphaned temp from
    // another doomed writer, and a `.cell` whose body was cut mid-byte.
    let survivor = dir.join(format!("{}.cell", request_of(&cells[0]).key_hash()));
    let good = std::fs::read(&survivor).map_err(|e| format!("{name}: {e}"))?;
    std::fs::write(dir.join("deadbeefdeadbeef.cell.tmp.1234"), &good[..good.len() / 3])
        .map_err(|e| format!("{name}: {e}"))?;
    std::fs::write(dir.join("0123456789abcdef.tmp.7"), b"{\"half\":")
        .map_err(|e| format!("{name}: {e}"))?;
    let torn = dir.join("feedfacefeedface.cell");
    std::fs::write(&torn, &good[..good.len() - 9]).map_err(|e| format!("{name}: {e}"))?;

    let restarted = Arc::new(CellStore::new(opts()));
    let verified = restarted.registry().counter("serve.store.verified");
    let quarantined = restarted.registry().counter("serve.store.quarantined");
    if verified != 2 || quarantined != 3 {
        return Err(format!(
            "{name}: restart scan saw verified={verified} quarantined={quarantined}, expected 2/3"
        ));
    }
    let mut identical = 0;
    for cell in &cells {
        let served = restarted.get(&request_of(cell)).map_err(|e| format!("{name}: {e:?}"))?;
        if served.source != CellSource::Disk || *served.body != reference_body(cell)? {
            return Err(format!("{name}: survivor {}/{} did not serve from disk identically", cell.app, cell.machine));
        }
        identical += 1;
    }
    drop(restarted);

    // Idempotence: the wreckage is gone, so a second restart verifies
    // the survivors and quarantines nothing.
    let again = Arc::new(CellStore::new(opts()));
    let re_verified = again.registry().counter("serve.store.verified");
    let re_quarantined = again.registry().counter("serve.store.quarantined");
    if re_verified != 2 || re_quarantined != 0 {
        return Err(format!(
            "{name}: second restart saw verified={re_verified} quarantined={re_quarantined}, expected 2/0"
        ));
    }
    let _ = std::fs::remove_dir_all(&dir);

    let scenario_cells: Vec<SweepCell> = cells
        .iter()
        .map(|c| SweepCell { config: scenario_config(c.config, name), ..c.clone() })
        .collect();
    Ok(ScenarioOutcome {
        report: ScenarioReport {
            name,
            requests: cells.len() * 2,
            identical,
            note: "torn tmp + torn cell quarantined once; second restart is clean".into(),
        },
        counters: vec![
            ("store.verified", verified),
            ("store.quarantined", quarantined),
            ("store.reverified", re_verified),
        ],
        cells: scenario_cells,
    })
}

/// One request/response exchange on a fresh connection; `None` means
/// the server closed without answering.
fn exchange(addr: std::net::SocketAddr, frame: &[u8]) -> Option<String> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream.set_read_timeout(Some(Duration::from_secs(30))).ok()?;
    let _ = stream.write_all(frame);
    let _ = stream.write_all(b"\n");
    let _ = stream.flush();
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    match reader.read_line(&mut response) {
        Ok(0) | Err(_) => None,
        Ok(_) => Some(response.trim_end().to_string()),
    }
}

/// Scenario 3 — hostile clients. A slowloris client dribbles a valid
/// request in three chunks with pauses past the server's read timeout;
/// an oversized client blows the line cap; garbage clients send
/// malformed frames. The slow request is served byte-identically, the
/// hostile ones get structured errors or clean closes, and the server
/// keeps serving afterwards.
fn hostile_clients(plan: &HostFaultPlan) -> Result<ScenarioOutcome, String> {
    let name = "hostile-clients";
    if !plan.covers(HostFaultKind::SlowClient) || !plan.covers(HostFaultKind::OversizedFrame) {
        return Err(format!("{name}: plan does not cover the client fault kinds"));
    }
    let cell = base_cells()[2].clone();
    let server = Server::start(ServerOptions::default()).map_err(|e| format!("{name}: {e}"))?;
    let addr = server.addr();

    // Slowloris: three chunks, 60ms apart (the read timeout is 50ms) —
    // the server must keep the partial line and serve it.
    let line = format!(
        "{{\"op\":\"cell\",\"app\":\"{}\",\"config\":\"{}\",\"machine\":\"{}\",\"procs\":{}}}\n",
        cell.app, cell.config, cell.machine, cell.procs
    );
    let expected = reference_body(&cell)?;
    let slow_response = {
        let mut stream = TcpStream::connect(addr).map_err(|e| format!("{name}: {e}"))?;
        stream.set_read_timeout(Some(Duration::from_secs(30))).map_err(|e| format!("{name}: {e}"))?;
        let bytes = line.as_bytes();
        let third = bytes.len() / 3;
        for chunk in [&bytes[..third], &bytes[third..2 * third], &bytes[2 * third..]] {
            stream.write_all(chunk).map_err(|e| format!("{name}: {e}"))?;
            stream.flush().map_err(|e| format!("{name}: {e}"))?;
            std::thread::sleep(Duration::from_millis(60));
        }
        let mut reader = BufReader::new(stream);
        let mut response = String::new();
        reader.read_line(&mut response).map_err(|e| format!("{name}: {e}"))?;
        response.trim_end().to_string()
    };
    let (_, rest) = slow_response
        .split_once("\"cell\":")
        .ok_or_else(|| format!("{name}: slowloris got no cell: {slow_response}"))?;
    if &rest[..rest.len() - 1] != expected {
        return Err(format!("{name}: slowloris served different bytes"));
    }

    // Oversized frame: well past the 64 KiB line cap — clean close.
    if exchange(addr, &vec![b'z'; 128 * 1024]).is_some() {
        return Err(format!("{name}: oversized frame got a response"));
    }

    // Garbage frames: structured malformed responses, connection-safe.
    let garbage: [&[u8]; 3] = [b"not json at all", b"{\"op\":\"teleport\"}", b"[1,2"];
    for frame in garbage {
        match exchange(addr, frame) {
            Some(response) if response.starts_with("{\"ok\":false") => {}
            other => return Err(format!("{name}: garbage frame answered {other:?}")),
        }
    }

    let oversized = server.store().registry().counter("serve.errors.oversized");
    let malformed = server.store().registry().counter("serve.errors.malformed");
    if oversized != 1 || malformed != 3 {
        return Err(format!(
            "{name}: counters oversized={oversized} malformed={malformed}, expected 1/3"
        ));
    }

    // The barrage over, a normal client still gets exact bytes.
    let normal = exchange(addr, line.trim_end().as_bytes())
        .ok_or_else(|| format!("{name}: server died after the barrage"))?;
    let (_, rest) = normal
        .split_once("\"cell\":")
        .ok_or_else(|| format!("{name}: no cell in {normal}"))?;
    if &rest[..rest.len() - 1] != expected {
        return Err(format!("{name}: post-barrage bytes diverge"));
    }

    Ok(ScenarioOutcome {
        report: ScenarioReport {
            name,
            requests: 6,
            identical: 2,
            note: "slowloris served; oversized shed; 3 garbage frames answered structurally".into(),
        },
        counters: vec![("net.oversized", oversized), ("net.malformed", malformed)],
        cells: vec![SweepCell { config: scenario_config(cell.config, name), ..cell }],
    })
}

/// Scenario 4 — worker panic storm. A key whose simulation always
/// panics is retired by the supervisor after exactly `max_key_panics`
/// attempts (poison pill), later requests get the structured `failed`
/// answer without re-running the crash, other keys are unaffected, and
/// a key that panics once recovers. Sequential requests make every
/// counter exact — the zero-unplanned-panics proof.
fn panic_storm(plan: &HostFaultPlan) -> Result<ScenarioOutcome, String> {
    let name = "panic-storm";
    if !plan.covers(HostFaultKind::WorkerPanic) {
        return Err(format!("{name}: plan does not cover WorkerPanic"));
    }
    let storm_cell = base_cells()[3].clone();
    let safe_cell = base_cells()[0].clone();
    let storm_key = request_of(&storm_cell).key_hash();

    let s = Arc::new(CellStore::new(StoreOptions {
        threads: 1,
        max_key_panics: 3,
        panic_inject: Some(PanicSpec { key_substring: storm_key.clone(), times: u32::MAX }),
        ..Default::default()
    }));
    let outcomes: Vec<Result<_, ServeError>> =
        with_silent_panics(|| (0..5).map(|_| s.get(&request_of(&storm_cell))).collect());
    let mut internal = 0;
    let mut failed = 0;
    for outcome in &outcomes {
        match outcome {
            Err(ServeError::Internal(_)) => internal += 1,
            Err(ServeError::Failed { panics: 3 }) => failed += 1,
            other => return Err(format!("{name}: unexpected outcome {other:?}")),
        }
    }
    let reg = s.registry();
    let counts = [
        ("serve.sim.panics", 3),
        ("serve.supervisor.poisoned", 1),
        ("serve.supervisor.failed_served", 2),
        ("serve.errors.internal", 3),
        ("serve.sim.runs", 3),
    ];
    for (counter, expected) in counts {
        let got = reg.counter(counter);
        if got != expected {
            return Err(format!("{name}: {counter} = {got}, expected {expected}"));
        }
    }
    if internal != 3 || failed != 2 {
        return Err(format!("{name}: outcomes internal={internal} failed={failed}, expected 3/2"));
    }

    // Collateral check: an innocent key on the same store still serves
    // the exact reference bytes.
    let safe = s.get(&request_of(&safe_cell)).map_err(|e| format!("{name}: {e:?}"))?;
    if *safe.body != reference_body(&safe_cell)? {
        return Err(format!("{name}: innocent key served wrong bytes"));
    }

    // Recovery: a key that panics exactly once computes on the retry
    // and the supervisor never poisons it.
    let r = Arc::new(CellStore::new(StoreOptions {
        threads: 1,
        max_key_panics: 3,
        panic_inject: Some(PanicSpec { key_substring: storm_key, times: 1 }),
        ..Default::default()
    }));
    let (first, second) = with_silent_panics(|| {
        (r.get(&request_of(&storm_cell)), r.get(&request_of(&storm_cell)))
    });
    if !matches!(first, Err(ServeError::Internal(_))) {
        return Err(format!("{name}: one-shot panic did not surface as internal: {first:?}"));
    }
    let recovered = second.map_err(|e| format!("{name}: retry after one panic failed: {e:?}"))?;
    if *recovered.body != reference_body(&storm_cell)? {
        return Err(format!("{name}: recovered key served wrong bytes"));
    }
    if r.registry().counter("serve.supervisor.poisoned") != 0 {
        return Err(format!("{name}: one panic must not poison the key"));
    }

    Ok(ScenarioOutcome {
        report: ScenarioReport {
            name,
            requests: 8,
            identical: 2,
            note: "poisoned after exactly 3 panics; 2 failed answers; 1-shot key recovered".into(),
        },
        counters: vec![
            ("sim.panics", 4),
            ("supervisor.poisoned", 1),
            ("supervisor.failed_served", 2),
        ],
        cells: vec![
            SweepCell { config: scenario_config(safe_cell.config, name), ..safe_cell },
            SweepCell { config: scenario_config(storm_cell.config, name), ..storm_cell },
        ],
    })
}

/// Scenario 5 — deadline pressure. Clock-free countdown probes make
/// every budget expiry deterministic: a dead-on-arrival budget is
/// rejected at admission, a budget that survives admission but dies in
/// the queue abandons the simulation before it runs, warm hits serve
/// regardless of budget, and a generous budget computes normally.
fn deadline_pressure(threads: usize) -> Result<ScenarioOutcome, String> {
    let name = "deadline-pressure";
    let cell = base_cells()[1].clone();
    let request = request_of(&cell);
    let s = Arc::new(CellStore::new(StoreOptions { threads, ..Default::default() }));

    // Dead on arrival: rejected at admission, no simulation.
    match s.get_with_budget(&request, Some(countdown(0))) {
        Err(ServeError::DeadlineExceeded { stage: "admission" }) => {}
        other => return Err(format!("{name}: zero budget answered {other:?}")),
    }
    // Dies in the queue: admission passes (one nonzero probe), then the
    // job's dispatch check abandons before the engine runs.
    match s.get_with_budget(&request, Some(countdown(1))) {
        Err(ServeError::DeadlineExceeded { .. }) => {}
        other => return Err(format!("{name}: queue-expired budget answered {other:?}")),
    }
    while s.inflight() != 0 {
        std::thread::yield_now();
    }
    // Generous budget: computes, byte-identical.
    let served = s
        .get_with_budget(&request, Some(countdown(1_000_000)))
        .map_err(|e| format!("{name}: generous budget failed: {e:?}"))?;
    if served.source != CellSource::Computed || *served.body != reference_body(&cell)? {
        return Err(format!("{name}: generous budget served wrong bytes"));
    }
    // Warm hit with a dead budget: cache probes precede the check.
    let hit = s
        .get_with_budget(&request, Some(countdown(0)))
        .map_err(|e| format!("{name}: warm hit under dead budget failed: {e:?}"))?;
    if hit.source != CellSource::Memory {
        return Err(format!("{name}: warm hit came from {:?}", hit.source));
    }

    let reg = s.registry();
    // `serve.deadline.expired_wait` is deliberately not pinned: whether
    // the leader's own wait probe or the job's abandonment fires first
    // is a benign race — the structured answer and the abandon counter
    // are what the contract promises.
    let counts = [
        ("serve.deadline.requests", 4),
        ("serve.deadline.rejected", 1),
        ("serve.deadline.abandoned", 1),
        ("serve.sim.runs", 1),
    ];
    for (counter, expected) in counts {
        let got = reg.counter(counter);
        if got != expected {
            return Err(format!("{name}: {counter} = {got}, expected {expected}"));
        }
    }

    Ok(ScenarioOutcome {
        report: ScenarioReport {
            name,
            requests: 4,
            identical: 1,
            note: "admission reject, queue abandon, warm hit under dead budget, generous compute".into(),
        },
        counters: vec![("deadline.rejected", 1), ("deadline.abandoned", 1)],
        cells: vec![SweepCell { config: scenario_config(cell.config, name), ..cell }],
    })
}

/// Scenario 6 — backoff under overload. A server that sheds every miss
/// (drain mode) is driven by the retrying `serveload` client: cold
/// requests burn their full seeded backoff schedule (every sleep
/// floored at the server's deterministic `retry_after_ms` hint) and
/// give up structurally; a spill-warmed cell serves on the first
/// attempt. Every retry counter is exact.
fn overload_backoff() -> Result<ScenarioOutcome, String> {
    let name = "overload-backoff";
    let warm_cell = base_cells()[0].clone();
    let cold_cell = base_cells()[3].clone();
    let dir = scratch(name);
    let opts = |max_pending| ServerOptions {
        store: StoreOptions { max_pending, spill_dir: Some(dir.clone()), ..Default::default() },
        ..Default::default()
    };

    // Warm the spill through a healthy server, then restart in drain
    // mode over the same directory.
    {
        let server = Server::start(opts(64)).map_err(|e| format!("{name}: {e}"))?;
        fetch_cell_body(&server.addr().to_string(), &request_of(&warm_cell))
            .map_err(|e| format!("{name}: warm fetch: {e}"))?;
    }
    let server = Server::start(opts(0)).map_err(|e| format!("{name}: {e}"))?;
    let addr = server.addr().to_string();

    let policy = RetryPolicy { max_attempts: 3, base_ms: 1, cap_ms: 2, budget_ms: 2_000 };
    let cold = run_load(
        &addr,
        &[request_of(&cold_cell)],
        &LoadOptions {
            requests: 2,
            mode: ArrivalMode::Closed { connections: 1 },
            seed: 7,
            retry: Some(policy.clone()),
        },
    )
    .map_err(|e| format!("{name}: cold load: {e}"))?;
    for sample in &cold.samples {
        if sample.ok || sample.attempts != 3 {
            return Err(format!(
                "{name}: cold sample ok={} attempts={}, expected a 3-attempt giveup",
                sample.ok, sample.attempts
            ));
        }
    }
    let attempts = cold.retry.counter("serve.retry.attempts").unwrap_or(0);
    let giveups = cold.retry.counter("serve.retry.giveups").unwrap_or(0);
    if attempts != 4 || giveups != 2 {
        return Err(format!("{name}: retry counters attempts={attempts} giveups={giveups}, expected 4/2"));
    }
    let backoff = cold
        .retry
        .hists
        .iter()
        .find(|(h, _)| h == "serve.retry.hist.backoff_ms")
        .map(|(_, h)| h.summary())
        .ok_or_else(|| format!("{name}: no backoff histogram"))?;
    if backoff.count != 4 || backoff.min < 20 {
        return Err(format!(
            "{name}: backoff hist count={} min={}ms — every sleep must floor at the 20ms hint",
            backoff.count, backoff.min
        ));
    }
    let rejected = server.store().registry().counter("serve.queue.rejected");
    if rejected != 6 {
        return Err(format!("{name}: server rejected {rejected} misses, expected 6 (2 requests × 3 attempts)"));
    }

    // The warmed cell rides the disk spill past admission control, on
    // the first attempt, byte-identical.
    let warm = run_load(
        &addr,
        &[request_of(&warm_cell)],
        &LoadOptions {
            requests: 1,
            mode: ArrivalMode::Closed { connections: 1 },
            seed: 7,
            retry: Some(policy),
        },
    )
    .map_err(|e| format!("{name}: warm load: {e}"))?;
    let sample = &warm.samples[0];
    if !sample.ok || sample.attempts != 1 || sample.source != "disk" {
        return Err(format!(
            "{name}: warm sample ok={} attempts={} source={} — expected a first-attempt disk hit",
            sample.ok, sample.attempts, sample.source
        ));
    }
    let body = fetch_cell_body(&addr, &request_of(&warm_cell)).map_err(|e| format!("{name}: {e}"))?;
    if body != reference_body(&warm_cell)? {
        return Err(format!("{name}: warm cell served wrong bytes under overload"));
    }
    let _ = std::fs::remove_dir_all(&dir);

    Ok(ScenarioOutcome {
        report: ScenarioReport {
            name,
            requests: 4,
            identical: 1,
            note: "cold misses retried 3× then gave up; warm cell served from spill attempt 1".into(),
        },
        counters: vec![
            ("retry.attempts", attempts),
            ("retry.giveups", giveups),
            ("queue.rejected", rejected),
        ],
        cells: vec![SweepCell { config: scenario_config(warm_cell.config, name), ..warm_cell }],
    })
}

/// The host-fault plan the harness runs: every host fault kind the
/// fault crate knows, under one seed.
pub fn harness_plan() -> HostFaultPlan {
    HostFaultPlan::new(0x5EC4_A05)
        .with(HostFaultKind::SpillTruncation)
        .with(HostFaultKind::SpillBitFlip)
        .with(HostFaultKind::SpillGarbageHeader)
        .with(HostFaultKind::TornTmpFile)
        .with(HostFaultKind::WorkerPanic)
        .with(HostFaultKind::SlowClient)
        .with(HostFaultKind::OversizedFrame)
}

/// Run the six-scenario harness. Returns the rendered output or a
/// description of the first violated invariant.
pub fn run_servechaos(threads: usize) -> Result<ServeChaosOutput, String> {
    let plan = harness_plan();
    let outcomes = vec![
        spill_corruption(threads)?,
        torn_restart(threads)?,
        hostile_clients(&plan)?,
        panic_storm(&plan)?,
        deadline_pressure(threads)?,
        overload_backoff()?,
    ];

    let harness_reg = Registry::new();
    let mut rows = Vec::new();
    let mut scenarios = Vec::new();
    for outcome in outcomes {
        for (counter, value) in &outcome.counters {
            harness_reg.add(&format!("servechaos.{}.{counter}", outcome.report.name), *value);
        }
        harness_reg.add(
            &format!("servechaos.{}.requests", outcome.report.name),
            outcome.report.requests as u64,
        );
        for cell in &outcome.cells {
            rows.push(observed_run(cell));
        }
        scenarios.push(outcome.report);
    }
    harness_reg.add("servechaos.scenarios", scenarios.len() as u64);

    Ok(ServeChaosOutput {
        profile: ProfileOutput {
            cells: rows,
            harness: harness_reg.snapshot(),
            options: ProfileOptions { observe: true, host_samples: 0, threads },
        },
        scenarios,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn servechaos_passes_its_invariants() {
        let out = run_servechaos(2).expect("invariants hold");
        assert_eq!(out.scenarios.len(), 6);
        assert!(out.scenarios.iter().all(|s| s.identical >= 1));
        let names: Vec<_> = out.scenarios.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            [
                "spill-corruption",
                "torn-restart",
                "hostile-clients",
                "panic-storm",
                "deadline-pressure",
                "overload-backoff"
            ]
        );
    }

    #[test]
    fn servechaos_document_reuses_the_profile_schema() {
        let out = run_servechaos(2).expect("invariants hold");
        let json = out.to_json();
        assert!(json.contains("\"schema\": \"pvs-bench/profile-v2\""));
        assert!(json.contains("@spill-corruption"));
        assert!(json.contains("@overload-backoff"));
        assert!(json.contains("servechaos.scenarios"));
        let doc = pvs_analyze::profiledoc::load(&json).expect("readable");
        assert!(doc.cells.len() >= 10);
    }

    #[test]
    fn servechaos_reruns_are_bit_identical() {
        // Everything but the recorded thread-count knob is identical at
        // any PVS_THREADS — the model axes the compare sentinel joins on
        // never move.
        let strip = |json: String| {
            json.lines()
                .filter(|l| !l.contains("sweep_threads"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        let a = strip(run_servechaos(1).expect("invariants hold").to_json());
        let b = strip(run_servechaos(4).expect("invariants hold").to_json());
        assert_eq!(a, b, "servechaos output is thread-count independent");
    }

    #[test]
    fn harness_plan_covers_every_host_fault_kind() {
        let plan = harness_plan();
        for kind in [
            HostFaultKind::SpillTruncation,
            HostFaultKind::SpillBitFlip,
            HostFaultKind::SpillGarbageHeader,
            HostFaultKind::TornTmpFile,
            HostFaultKind::WorkerPanic,
            HostFaultKind::SlowClient,
            HostFaultKind::OversizedFrame,
        ] {
            assert!(plan.covers(kind), "plan misses {kind:?}");
        }
    }
}
