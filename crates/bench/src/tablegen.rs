//! Regeneration of the paper's evaluation tables from the performance
//! model, printed side by side with the published values.
//!
//! Every generator runs its model-evaluation cells through the
//! [`pvs_core::pool`] sweep executor: cells are enumerated serially in
//! row-major order, evaluated in parallel, and reassembled in enumeration
//! order, so the rendered output is byte-identical at any thread count.
//! The `*_threads` variants pin the worker count (1 = serial reference);
//! the plain functions use [`default_threads`].

use pvs_core::engine::{run_sweep_threads, SweepJob};
use pvs_core::machine::Machine;
use pvs_core::platforms;
use pvs_core::pool::default_threads;
use pvs_core::report::PerfReport;
use pvs_report::compare::{geometric_mean_ratio, Comparison, ShapeCheck};
use pvs_report::paper::{self, PaperRow, MACHINES};
use pvs_report::tables::{blank_cell, Table};

/// A regenerated table plus its paper-vs-model bookkeeping.
#[derive(Debug, Clone)]
pub struct TableOutput {
    /// The rendered table (model values, paper in parentheses).
    pub table: Table,
    /// All cells for which the paper publishes a value.
    pub comparisons: Vec<Comparison>,
    /// Qualitative shape assertions.
    pub checks: Vec<ShapeCheck>,
}

impl TableOutput {
    /// Render table, comparison lines and checks into one report string.
    pub fn render(&self) -> String {
        let mut out = self.table.render();
        out.push('\n');
        out.push_str("Paper-vs-model (model/paper ratios):\n");
        for c in &self.comparisons {
            out.push_str(&c.line());
            out.push('\n');
        }
        out.push_str(&format!(
            "Geometric-mean ratio over {} published cells: {:.2}x\n\n",
            self.comparisons.len(),
            geometric_mean_ratio(&self.comparisons)
        ));
        out.push_str("Shape checks:\n");
        for c in &self.checks {
            out.push_str(&c.line());
            out.push('\n');
        }
        out
    }

    /// Whether every shape check holds.
    pub fn all_checks_pass(&self) -> bool {
        self.checks.iter().all(|c| c.holds)
    }

    /// Machine-readable rendering (for `--json` on the regeneration bins).
    pub fn render_json(&self) -> String {
        use pvs_report::json::{array, JsonObject};
        let comparisons = array(self.comparisons.iter().map(|c| {
            JsonObject::new()
                .string("label", &c.label)
                .number("paper", c.paper)
                .number("model", c.model)
                .number("ratio", c.ratio())
                .render()
        }));
        let checks = array(self.checks.iter().map(|c| {
            JsonObject::new()
                .string("claim", &c.claim)
                .boolean("holds", c.holds)
                .string("detail", &c.detail)
                .render()
        }));
        JsonObject::new()
            .string("title", &self.table.title)
            .number(
                "geometric_mean_ratio",
                geometric_mean_ratio(&self.comparisons),
            )
            .raw("comparisons", comparisons)
            .raw("checks", checks)
            .render()
    }
}

pub(crate) fn machine_by_name(name: &str) -> Machine {
    platforms::by_name(name).unwrap_or_else(|| panic!("unknown machine {name}"))
}

/// Table 1: the architectural-highlights table (static data).
pub fn table1_text() -> String {
    let mut out = String::from(
        "Table 1: Architectural highlights of the Power3, Power4, Altix, ES, and X1.\n",
    );
    out.push_str(&format!(
        "{:<8} {:>5} {:>8} {:>7} {:>8} {:>6} {:>8} {:>8} {:>9} {:>10}\n",
        "Platform",
        "CPU/N",
        "MHz",
        "GF/s",
        "MemGB/s",
        "B/F",
        "MPI us",
        "NetGB/s",
        "BisB/s/F",
        "Topology"
    ));
    for m in platforms::all() {
        out.push_str(&m.table1_row());
        out.push('\n');
    }
    out
}

/// Table 2: the application-overview table (static data).
pub fn table2_text() -> String {
    let mut t = Table::new(
        "Table 2: Overview of scientific applications examined in our study",
        &["Name", "Lines", "Discipline", "Methods", "Structure"],
    );
    let rows = [
        (
            "LBMHD",
            "1,500",
            "Plasma Physics",
            "Magneto-Hydrodynamics, Lattice Boltzmann",
            "Grid",
        ),
        (
            "PARATEC",
            "50,000",
            "Material Science",
            "Density Functional Theory, Kohn Sham, FFT",
            "Fourier/Grid",
        ),
        (
            "CACTUS",
            "84,000",
            "Astrophysics",
            "Einstein Theory of GR, ADM-BSSN, Method of Lines",
            "Grid",
        ),
        (
            "GTC",
            "5,000",
            "Magnetic Fusion",
            "Particle in Cell, gyrophase-averaged Vlasov-Poisson",
            "Particle",
        ),
    ];
    for (n, l, d, m, s) in rows {
        t.push_row(vec![n.into(), l.into(), d.into(), m.into(), s.into()]);
    }
    t.render()
}

fn cell_with_paper(model: &PerfReport, paper: Option<(f64, f64)>) -> String {
    match paper {
        Some((g, p)) => format!(
            "{:.3}/{:.0}% (paper {:.3}/{:.0}%)",
            model.gflops_per_p, model.pct_peak, g, p
        ),
        None => format!("{:.3}/{:.0}%", model.gflops_per_p, model.pct_peak),
    }
}

fn harvest(
    comparisons: &mut Vec<Comparison>,
    label: String,
    model: &PerfReport,
    paper: Option<(f64, f64)>,
) {
    if let Some((g, _)) = paper {
        comparisons.push(Comparison::new(label, g, model.gflops_per_p));
    }
}

/// Generic per-table driver: for each `(config_label, procs)` row, build
/// the per-machine phase stream with `phases_for(config, machine, procs)`.
/// Cells are evaluated on `threads` workers; the three-pass structure
/// (serial enumeration, parallel sweep, serial assembly) keeps the output
/// byte-identical to the `threads = 1` reference.
fn build_table_threads(
    title: &str,
    paper_rows: Vec<PaperRow>,
    machines: &[&str],
    mut phases_for: impl FnMut(&str, &str, usize) -> Vec<pvs_core::phase::Phase>,
    threads: usize,
) -> (Table, Vec<Comparison>, Vec<(String, PerfReport)>) {
    let mut headers = vec!["Config".to_string(), "P".to_string()];
    headers.extend(machines.iter().map(|m| m.to_string()));
    let mut table = Table {
        title: title.into(),
        headers,
        rows: Vec::new(),
    };

    // Pass 1 (serial): enumerate cells row-major, collecting sweep jobs.
    // `job` is None for cells the paper leaves blank.
    struct CellPlan {
        row: usize,
        machine: String,
        published: Option<(f64, f64)>,
        job: Option<usize>,
    }
    let mut jobs: Vec<SweepJob> = Vec::new();
    let mut plan: Vec<CellPlan> = Vec::new();
    for (ri, row) in paper_rows.iter().enumerate() {
        for &m in machines {
            let col = MACHINES
                .iter()
                .position(|&x| x == m)
                .expect("known machine");
            let published = row.entries[col];
            let phases = phases_for(row.config, m, row.procs);
            let job = if phases.is_empty() {
                None
            } else {
                jobs.push(SweepJob {
                    machine: machine_by_name(m),
                    phases,
                    procs: row.procs,
                });
                Some(jobs.len() - 1)
            };
            plan.push(CellPlan {
                row: ri,
                machine: m.to_string(),
                published,
                job,
            });
        }
    }

    // Pass 2 (parallel): evaluate every cell; results come back in job order.
    let results = run_sweep_threads(jobs, threads);

    // Pass 3 (serial): reassemble rows and comparisons in enumeration order.
    let mut comparisons = Vec::new();
    let mut reports = Vec::new();
    let mut cells = Vec::new();
    let mut current_row = usize::MAX;
    for cell in plan {
        if cell.row != current_row {
            if current_row != usize::MAX {
                table.push_row(std::mem::take(&mut cells));
            }
            current_row = cell.row;
            let row = &paper_rows[cell.row];
            cells = vec![row.config.to_string(), row.procs.to_string()];
        }
        let row = &paper_rows[cell.row];
        match cell.job {
            None => cells.push(blank_cell()),
            Some(j) => {
                let report = &results[j];
                harvest(
                    &mut comparisons,
                    format!(
                        "{} {} P={} {}",
                        title_short(title),
                        row.config,
                        row.procs,
                        cell.machine
                    ),
                    report,
                    cell.published,
                );
                cells.push(cell_with_paper(report, cell.published));
                reports.push((
                    format!("{}|{}|{}", row.config, row.procs, cell.machine),
                    report.clone(),
                ));
            }
        }
    }
    if current_row != usize::MAX {
        table.push_row(cells);
    }
    (table, comparisons, reports)
}

fn title_short(title: &str) -> &str {
    title.split(':').next().unwrap_or(title)
}

fn find<'a>(reports: &'a [(String, PerfReport)], key: &str) -> Option<&'a PerfReport> {
    reports.iter().find(|(k, _)| k == key).map(|(_, r)| r)
}

/// Table 3: LBMHD.
pub fn table3_model() -> TableOutput {
    table3_model_threads(default_threads())
}

/// [`table3_model`] with an explicit worker count (1 = serial
/// reference; any count renders identically).
pub fn table3_model_threads(threads: usize) -> TableOutput {
    use pvs_lbmhd::perf::LbmhdWorkload;
    let machines = ["Power3", "Power4", "Altix", "ES", "X1", "X1-CAF"];
    let (table, comparisons, reports) = build_table_threads(
        "Table 3: LBMHD per processor performance (model vs paper)",
        paper::table3(),
        &machines,
        |config, machine, procs| {
            let grid = if config.starts_with("4096") {
                4096
            } else {
                8192
            };
            let mut w = LbmhdWorkload::new(grid, procs);
            if machine == "X1-CAF" {
                w = w.with_caf();
            }
            w.phases()
        },
        threads,
    );

    let mut checks = Vec::new();
    if let (Some(es), Some(x1), Some(p3)) = (
        find(&reports, "4096x4096|64|ES"),
        find(&reports, "4096x4096|64|X1"),
        find(&reports, "4096x4096|64|Power3"),
    ) {
        checks.push(ShapeCheck::new(
            "vector systems dominate LBMHD (~44x over Power3 at P=64)",
            es.gflops_per_p / p3.gflops_per_p > 20.0,
            format!("ES/Power3 = {:.1}x", es.gflops_per_p / p3.gflops_per_p),
        ));
        checks.push(ShapeCheck::new(
            "ES sustains a higher fraction of peak than the X1",
            es.pct_peak > x1.pct_peak,
            format!("{:.0}% vs {:.0}%", es.pct_peak, x1.pct_peak),
        ));
        checks.push(ShapeCheck::new(
            "AVL and VOR near maximum on both vector systems",
            es.avl().unwrap_or(0.0) > 250.0 && x1.avl().unwrap_or(0.0) > 60.0,
            format!(
                "ES AVL {:.0}, X1 AVL {:.0}, ES VOR {:.1}%",
                es.avl().unwrap_or(0.0),
                x1.avl().unwrap_or(0.0),
                es.vor_pct().unwrap_or(0.0)
            ),
        ));
    }
    if let (Some(caf), Some(mpi)) = (
        find(&reports, "8192x8192|256|X1-CAF"),
        find(&reports, "8192x8192|256|X1"),
    ) {
        checks.push(ShapeCheck::new(
            "CAF improves on MPI for the large grid at scale",
            caf.gflops_per_p >= mpi.gflops_per_p,
            format!("CAF {:.2} vs MPI {:.2}", caf.gflops_per_p, mpi.gflops_per_p),
        ));
    }
    TableOutput {
        table,
        comparisons,
        checks,
    }
}

/// Table 4: PARATEC.
pub fn table4_model() -> TableOutput {
    table4_model_threads(default_threads())
}

/// [`table4_model`] with an explicit worker count (1 = serial
/// reference; any count renders identically).
pub fn table4_model_threads(threads: usize) -> TableOutput {
    use pvs_paratec::perf::ParatecWorkload;
    let machines = ["Power3", "Power4", "Altix", "ES", "X1"];
    let (table, comparisons, reports) = build_table_threads(
        "Table 4: PARATEC per processor performance (model vs paper)",
        paper::table4(),
        &machines,
        |config, _machine, procs| {
            let w = if config.starts_with("432") {
                ParatecWorkload::si432(procs)
            } else {
                ParatecWorkload::si686(procs)
            };
            w.phases()
        },
        threads,
    );

    let mut checks = Vec::new();
    if let (Some(es32), Some(x132), Some(p3)) = (
        find(&reports, "432 atom|32|ES"),
        find(&reports, "432 atom|32|X1"),
        find(&reports, "432 atom|32|Power3"),
    ) {
        checks.push(ShapeCheck::new(
            "every architecture sustains a high fraction on PARATEC",
            p3.pct_peak > 40.0 && es32.pct_peak > 40.0,
            format!("Power3 {:.0}%, ES {:.0}%", p3.pct_peak, es32.pct_peak),
        ));
        checks.push(ShapeCheck::new(
            "ES outperforms the X1 despite the X1's higher peak",
            es32.gflops_per_p > x132.gflops_per_p,
            format!("{:.2} vs {:.2}", es32.gflops_per_p, x132.gflops_per_p),
        ));
    }
    if let (Some(lo), Some(hi)) = (
        find(&reports, "432 atom|32|ES"),
        find(&reports, "432 atom|1024|ES"),
    ) {
        checks.push(ShapeCheck::new(
            "fixed-size scaling declines toward P=1024 (FFT transposes)",
            hi.gflops_per_p < 0.8 * lo.gflops_per_p,
            format!("{:.2} -> {:.2}", lo.gflops_per_p, hi.gflops_per_p),
        ));
    }
    if let (Some(es), Some(x1)) = (
        find(&reports, "686 atom|256|ES"),
        find(&reports, "686 atom|256|X1"),
    ) {
        checks.push(ShapeCheck::new(
            "ES holds a large advantage at P=256 on 686 atoms (paper ~3.5x)",
            es.gflops_per_p > 2.0 * x1.gflops_per_p,
            format!("{:.2} vs {:.2}", es.gflops_per_p, x1.gflops_per_p),
        ));
    }
    TableOutput {
        table,
        comparisons,
        checks,
    }
}

/// Table 5: Cactus.
pub fn table5_model() -> TableOutput {
    table5_model_threads(default_threads())
}

/// [`table5_model`] with an explicit worker count (1 = serial
/// reference; any count renders identically).
pub fn table5_model_threads(threads: usize) -> TableOutput {
    use pvs_cactus::perf::{CactusVariant, CactusWorkload};
    let machines = ["Power3", "Power4", "Altix", "ES", "X1"];
    let (table, comparisons, reports) = build_table_threads(
        "Table 5: Cactus per processor performance, weak scaling (model vs paper)",
        paper::table5(),
        &machines,
        |config, machine, procs| {
            let w = if config == "80x80x80" {
                CactusWorkload::small(procs)
            } else {
                CactusWorkload::large(procs)
            };
            w.phases(CactusVariant::for_machine(machine))
        },
        threads,
    );

    let mut checks = Vec::new();
    if let (Some(es_l), Some(es_s), Some(x1_l), Some(p3_l), Some(p3_s)) = (
        find(&reports, "250x64x64|16|ES"),
        find(&reports, "80x80x80|16|ES"),
        find(&reports, "250x64x64|16|X1"),
        find(&reports, "250x64x64|16|Power3"),
        find(&reports, "80x80x80|16|Power3"),
    ) {
        checks.push(ShapeCheck::new(
            "ES runs the large (long-x) case far more efficiently than the small",
            es_l.pct_peak > 1.3 * es_s.pct_peak,
            format!(
                "{:.0}% vs {:.0}% (AVL {:.0} vs {:.0})",
                es_l.pct_peak,
                es_s.pct_peak,
                es_l.avl().unwrap_or(0.0),
                es_s.avl().unwrap_or(0.0)
            ),
        ));
        checks.push(ShapeCheck::new(
            "X1 sustains far less of its peak than the ES on Cactus",
            x1_l.pct_peak < 0.5 * es_l.pct_peak,
            format!("{:.1}% vs {:.1}%", x1_l.pct_peak, es_l.pct_peak),
        ));
        checks.push(ShapeCheck::new(
            "Power3 collapses on the large case (prefetch streams disengaged)",
            p3_l.gflops_per_p < 0.6 * p3_s.gflops_per_p,
            format!("{:.3} vs {:.3}", p3_l.gflops_per_p, p3_s.gflops_per_p),
        ));
        checks.push(ShapeCheck::new(
            "unvectorized boundaries are a significant ES cost (paper: up to 20%)",
            es_s.phase_fraction("radiation_boundary") > 0.05,
            format!(
                "{:.0}% of ES time",
                100.0 * es_s.phase_fraction("radiation_boundary")
            ),
        ));
    }
    if let (Some(lo), Some(hi)) = (
        find(&reports, "250x64x64|16|ES"),
        find(&reports, "250x64x64|1024|ES"),
    ) {
        checks.push(ShapeCheck::new(
            "weak scaling is nearly flat on the ES",
            hi.gflops_per_p > 0.85 * lo.gflops_per_p,
            format!("{:.2} -> {:.2}", lo.gflops_per_p, hi.gflops_per_p),
        ));
    }
    TableOutput {
        table,
        comparisons,
        checks,
    }
}

/// Table 6: GTC.
pub fn table6_model() -> TableOutput {
    table6_model_threads(default_threads())
}

/// [`table6_model`] with an explicit worker count (1 = serial
/// reference; any count renders identically).
pub fn table6_model_threads(threads: usize) -> TableOutput {
    use pvs_gtc::perf::{GtcVariant, GtcWorkload};
    let machines = ["Power3", "Power4", "Altix", "ES", "X1"];
    let (table, comparisons, reports) = build_table_threads(
        "Table 6: GTC per processor performance (model vs paper)",
        paper::table6(),
        &machines,
        |config, machine, procs| {
            if config.contains("hybrid") {
                if machine != "Power3" {
                    return Vec::new();
                }
                let w = GtcWorkload {
                    procs,
                    mpi_domains: 64,
                    ..GtcWorkload::new(100, procs)
                };
                return w.phases(GtcVariant::hybrid(16));
            }
            let ppc = if config.starts_with("10 ") { 10 } else { 100 };
            GtcWorkload::new(ppc, procs).phases(GtcVariant::for_machine(machine))
        },
        threads,
    );

    let mut checks = Vec::new();
    if let (Some(es10), Some(es100), Some(x1100), Some(p3)) = (
        find(&reports, "10 part/cell|32|ES"),
        find(&reports, "100 part/cell|32|ES"),
        find(&reports, "100 part/cell|32|X1"),
        find(&reports, "100 part/cell|32|Power3"),
    ) {
        checks.push(ShapeCheck::new(
            "higher resolution (100 ppc) improves vector efficiency",
            es100.gflops_per_p > es10.gflops_per_p,
            format!("{:.2} -> {:.2}", es10.gflops_per_p, es100.gflops_per_p),
        ));
        checks.push(ShapeCheck::new(
            "X1 leads in absolute terms; ES sustains the higher fraction",
            x1100.gflops_per_p > 0.9 * es100.gflops_per_p && es100.pct_peak > x1100.pct_peak,
            format!(
                "raw {:.2} vs {:.2}; %pk {:.0} vs {:.0}",
                x1100.gflops_per_p, es100.gflops_per_p, x1100.pct_peak, es100.pct_peak
            ),
        ));
        checks.push(ShapeCheck::new(
            "vector systems are 4-10x faster than superscalar",
            (4.0..20.0).contains(&(es100.gflops_per_p / p3.gflops_per_p)),
            format!("ES/Power3 {:.1}x", es100.gflops_per_p / p3.gflops_per_p),
        ));
    }
    if let (Some(hybrid), Some(flat)) = (
        find(&reports, "100 p/c hybrid|1024|Power3"),
        find(&reports, "100 part/cell|64|Power3"),
    ) {
        checks.push(ShapeCheck::new(
            "1024 hybrid Power3 processors still lose to 64 vector processors",
            hybrid.gflops_per_p < 0.8 * flat.gflops_per_p,
            format!(
                "hybrid {:.3} vs flat {:.3}",
                hybrid.gflops_per_p, flat.gflops_per_p
            ),
        ));
    }
    TableOutput {
        table,
        comparisons,
        checks,
    }
}

/// The (application, config, procs, machine) cells Table 7 derives its
/// "largest comparable" speedups from.
fn table7_cells() -> Vec<(&'static str, &'static str, usize, [usize; 4])> {
    // For each app: config label and the P used per comparison machine
    // [Power3, Power4, Altix, X1].
    vec![
        ("LBMHD", "8192x8192", 0, [1024, 256, 64, 256]),
        ("PARATEC", "432 atom", 0, [512, 256, 64, 128]),
        ("CACTUS", "250x64x64", 0, [1024, 16, 64, 256]),
        ("GTC", "100 part/cell", 0, [64, 64, 64, 64]),
    ]
}

/// Phase stream for one Table 7 / Fig. 9 application cell.
pub(crate) fn app_phases(
    app: &str,
    config: &str,
    machine: &str,
    procs: usize,
) -> Vec<pvs_core::phase::Phase> {
    use pvs_cactus::perf::{CactusVariant, CactusWorkload};
    use pvs_gtc::perf::{GtcVariant, GtcWorkload};
    use pvs_lbmhd::perf::LbmhdWorkload;
    use pvs_paratec::perf::ParatecWorkload;
    match app {
        "LBMHD" => {
            let grid = if config.starts_with("4096") {
                4096
            } else {
                8192
            };
            LbmhdWorkload::new(grid, procs).phases()
        }
        "PARATEC" => {
            if config.starts_with("432") {
                ParatecWorkload::si432(procs).phases()
            } else {
                ParatecWorkload::si686(procs).phases()
            }
        }
        "CACTUS" => {
            let w = if config == "80x80x80" {
                CactusWorkload::small(procs)
            } else {
                CactusWorkload::large(procs)
            };
            w.phases(CactusVariant::for_machine(machine))
        }
        "GTC" => {
            let ppc = if config.starts_with("10 ") { 10 } else { 100 };
            GtcWorkload::new(ppc, procs).phases(GtcVariant::for_machine(machine))
        }
        other => panic!("unknown app {other}"),
    }
}

/// Table 7: ES speedup vs each platform (model vs paper).
pub fn table7_model() -> TableOutput {
    table7_model_threads(default_threads())
}

/// [`table7_model`] with an explicit worker count (1 = serial reference;
/// any count renders identically).
pub fn table7_model_threads(threads: usize) -> TableOutput {
    let mut table = Table::new(
        "Table 7: ES speedup vs each platform, largest comparable configuration (model vs paper)",
        &["Name", "Power3", "Power4", "Altix", "X1"],
    );
    let paper7 = paper::table7();
    let comparators = ["Power3", "Power4", "Altix", "X1"];

    // Pass 1: two jobs (ES + comparator) per cell, row-major.
    let mut jobs: Vec<SweepJob> = Vec::new();
    for (app, config, _, procs_per_machine) in table7_cells() {
        for (col, &m) in comparators.iter().enumerate() {
            let p = procs_per_machine[col];
            for machine in ["ES", m] {
                jobs.push(SweepJob {
                    machine: machine_by_name(machine),
                    phases: app_phases(app, config, machine, p),
                    procs: p,
                });
            }
        }
    }

    // Pass 2: evaluate.
    let results = run_sweep_threads(jobs, threads);

    // Pass 3: assemble speedups in enumeration order.
    let mut comparisons = Vec::new();
    let mut sums = [0.0f64; 4];
    let mut next = results.iter();
    for (app, _, _, _) in table7_cells() {
        let mut cells = vec![app.to_string()];
        let paper_row = paper7
            .iter()
            .find(|(n, _)| *n == app)
            .map(|(_, v)| *v)
            .expect("paper row");
        for (col, &m) in comparators.iter().enumerate() {
            let es = next.next().expect("ES report").gflops_per_p;
            let other = next.next().expect("comparator report").gflops_per_p;
            let speedup = es / other;
            sums[col] += speedup;
            cells.push(format!("{speedup:.1} (paper {:.1})", paper_row[col]));
            comparisons.push(Comparison::new(
                format!("Table 7 {app} ES-vs-{m}"),
                paper_row[col],
                speedup,
            ));
        }
        table.push_row(cells);
    }
    let mut avg_cells = vec!["Average".to_string()];
    let paper_avg = paper7.last().expect("average").1;
    for col in 0..4 {
        avg_cells.push(format!(
            "{:.1} (paper {:.1})",
            sums[col] / 4.0,
            paper_avg[col]
        ));
    }
    table.push_row(avg_cells);

    let checks = vec![ShapeCheck::new(
        "ES is faster than every platform on every application except GTC-on-X1",
        comparisons
            .iter()
            .all(|c| c.model > 1.0 || c.label.contains("GTC ES-vs-X1")),
        "speedup > 1 for all but GTC vs X1",
    )];
    TableOutput {
        table,
        comparisons,
        checks,
    }
}

/// Figure 9: sustained fraction of peak at P=64 (Cactus Power4 at P=16),
/// largest comparable problem sizes.
pub fn fig9_model() -> TableOutput {
    fig9_model_threads(default_threads())
}

/// [`fig9_model`] with an explicit worker count (1 = serial reference;
/// any count renders identically).
pub fn fig9_model_threads(threads: usize) -> TableOutput {
    let machines = ["Power3", "Power4", "Altix", "ES", "X1"];
    let mut table = Table::new(
        "Figure 9: Sustained performance (% of peak) using 64 processors (model vs paper)",
        &["App", "Power3", "Power4", "Altix", "ES", "X1"],
    );
    // Paper series read from Tables 3-6 at the Fig. 9 configurations.
    let paper_vals: [(&str, [Option<f64>; 5]); 4] = [
        (
            "LBMHD",
            [Some(7.0), Some(5.0), Some(11.0), Some(58.0), Some(35.0)],
        ),
        (
            "PARATEC",
            [Some(57.0), Some(33.0), Some(54.0), Some(58.0), Some(20.0)],
        ),
        (
            "CACTUS",
            [Some(6.0), Some(11.0), Some(7.0), Some(34.0), Some(6.0)],
        ),
        (
            "GTC",
            [Some(9.0), Some(6.0), Some(5.0), Some(16.0), Some(11.0)],
        ),
    ];
    // Fig. 9 configurations are the largest comparable sizes of Tables 3-6.
    let config_for = |app: &str| match app {
        "LBMHD" => "8192x8192",
        "PARATEC" => "432 atom",
        "CACTUS" => "250x64x64",
        "GTC" => "100 part/cell",
        _ => unreachable!(),
    };
    // Cactus Power4 ran only P=16 on the large case.
    let procs_for = |app: &str, m: &str| if app == "CACTUS" && m == "Power4" { 16 } else { 64 };

    // Pass 1: one job per (app, machine) cell, row-major.
    let mut jobs: Vec<SweepJob> = Vec::new();
    for (app, _) in &paper_vals {
        for &m in &machines {
            let procs = procs_for(app, m);
            jobs.push(SweepJob {
                machine: machine_by_name(m),
                phases: app_phases(app, config_for(app), m, procs),
                procs,
            });
        }
    }

    // Pass 2: evaluate.
    let results = run_sweep_threads(jobs, threads);

    // Pass 3: assemble in enumeration order.
    let mut comparisons = Vec::new();
    let mut model_vals: Vec<[f64; 5]> = Vec::new();
    let mut next = results.iter();
    for (app, paper_row) in &paper_vals {
        let mut cells = vec![app.to_string()];
        let mut row_vals = [0.0f64; 5];
        for (col, &m) in machines.iter().enumerate() {
            let r = next.next().expect("fig9 report");
            row_vals[col] = r.pct_peak;
            if let Some(p) = paper_row[col] {
                comparisons.push(Comparison::new(
                    format!("Fig9 {app} {m} %peak"),
                    p,
                    r.pct_peak,
                ));
            }
            cells.push(match paper_row[col] {
                Some(p) => format!("{:.0}% (paper {:.0}%)", r.pct_peak, p),
                None => format!("{:.0}%", r.pct_peak),
            });
        }
        model_vals.push(row_vals);
        table.push_row(cells);
    }

    let mut checks = Vec::new();
    for (i, (app, _)) in paper_vals.iter().enumerate() {
        let v = model_vals[i];
        checks.push(ShapeCheck::new(
            format!("{app}: ES sustains the highest fraction of peak"),
            (0..5).all(|c| v[3] >= v[c]),
            format!(
                "ES {:.0}% vs best other {:.0}%",
                v[3],
                (0..5).filter(|&c| c != 3).map(|c| v[c]).fold(0.0, f64::max)
            ),
        ));
    }
    checks.push(ShapeCheck::new(
        "PARATEC is every superscalar machine's best application",
        (0..3).all(|c| {
            model_vals[1][c] >= model_vals[0][c]
                && model_vals[1][c] >= model_vals[2][c]
                && model_vals[1][c] >= model_vals[3][c]
        }),
        "BLAS3/FFT content rewards cache hierarchies",
    ));
    TableOutput {
        table,
        comparisons,
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_and_2_render() {
        let t1 = table1_text();
        assert!(t1.contains("ES") && t1.contains("Crossbar"));
        let t2 = table2_text();
        assert!(t2.contains("PARATEC") && t2.contains("Particle"));
    }

    #[test]
    fn table3_shape_checks_pass() {
        let out = table3_model();
        assert!(out.all_checks_pass(), "\n{}", out.render());
        assert!(!out.comparisons.is_empty());
    }

    #[test]
    fn table5_shape_checks_pass() {
        let out = table5_model();
        assert!(out.all_checks_pass(), "\n{}", out.render());
    }

    #[test]
    fn table6_shape_checks_pass() {
        let out = table6_model();
        assert!(out.all_checks_pass(), "\n{}", out.render());
    }
}
